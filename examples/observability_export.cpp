// Observability export walkthrough (docs/OBSERVABILITY.md): run a traced,
// profiled top-k query and write every export format the engine offers —
// a chrome://tracing JSON you can load in Perfetto (ui.perfetto.dev), a
// Prometheus text exposition, and a flamegraph.pl collapsed-stack profile.
//
//   $ ./observability_export [output-dir]
//
// Files land in output-dir (default /tmp): netalytics_q1.trace.json,
// netalytics_q1.prom, netalytics_q1.folded.
#include <cstdio>
#include <string>

#include "core/netalytics.hpp"
#include "obs/export.hpp"
#include "pktgen/payloads.hpp"
#include "pktgen/session.hpp"

using namespace netalytics;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  auto emu = core::Emulation::make_small(4);

  // Tracing + profiling on: every packet gets a trace id carried through
  // the whole pipeline (including the aggregating bolts, via trace
  // continuation), and both executors publish per-task stage timings.
  core::EngineConfig cfg;
  cfg.trace_sample_denominator = 1;
  cfg.executor_profiler = true;
  cfg.processor_parallelism = 2;
  core::NetAlytics engine(emu, cfg);

  const auto submitted = engine.submit(
      "PARSE http_get FROM * TO h5:80 LIMIT 60s "
      "PROCESS (top-k: k=5, w=1s)",
      /*now=*/0);
  if (!submitted) {
    std::fprintf(stderr, "query rejected: %s\n",
                 submitted.error().to_string().c_str());
    return 1;
  }
  core::QueryHandle* query = *submitted;

  // A skewed HTTP workload so the top-k has something to rank.
  const char* urls[] = {"/popular", "/popular", "/sometimes", "/rare"};
  common::Timestamp now = common::kSecond;
  int port = 30000;
  for (int i = 0; i < 60; ++i) {
    pktgen::SessionSpec s;
    s.flow = {*emu.ip_of_name("h" + std::to_string(i % 4)),
              *emu.ip_of_name("h5"), static_cast<net::Port>(port++), 80, 6};
    s.start = now;
    s.rtt = common::kMillisecond;
    s.server_latency = 2 * common::kMillisecond;
    const auto req = pktgen::http_get_request(urls[i % std::size(urls)], "h5");
    const auto resp = pktgen::http_response(200, 400);
    s.request = req;
    s.response = resp;
    pktgen::emit_tcp_session(s,
                             [&emu](std::span<const std::byte> f,
                                    common::Timestamp ts) { emu.transmit(f, ts); });
    now += 30 * common::kMillisecond;
  }
  for (common::Timestamp t = common::kSecond; t <= 4 * common::kSecond;
       t += common::kSecond) {
    engine.pump(t);
  }

  // One file per registered export format.
  const std::string base = out_dir + "/netalytics_q" + std::to_string(query->id());
  struct Job {
    const char* format;
    std::string content;
  } jobs[] = {
      {"chrome-trace", query->export_chrome_trace()},
      {"prometheus", query->export_metrics()},
      {"collapsed-stack", query->export_profile()},
  };
  for (const auto& job : jobs) {
    const obs::ExporterFormat* fmt = obs::find_format(job.format);
    if (fmt == nullptr) continue;
    const std::string path = base + std::string(fmt->extension);
    if (const auto ok = obs::write_file(path, job.content); !ok) {
      std::fprintf(stderr, "write failed: %s\n", ok.error().to_string().c_str());
      return 1;
    }
    std::printf("%-16s %-60s %zu bytes\n", fmt->name.data(), path.c_str(),
                job.content.size());
  }

  // The engine-wide exposition a scraper would poll; the per-query dump
  // above is the same format filtered to "q1.".
  std::printf("\nengine exposition (excerpt):\n");
  const std::string prom = engine.export_metrics("engine.");
  std::size_t lines = 0, pos = 0;
  while (lines < 6 && pos < prom.size()) {
    const auto eol = prom.find('\n', pos);
    std::printf("  %s\n", prom.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++lines;
  }

  std::printf("\nopen %s.trace.json at ui.perfetto.dev to see one lane per\n"
              "pipeline stage; spans for one packet share an args.trace id.\n",
              base.c_str());
  engine.stop_all(now);
  return 0;
}
