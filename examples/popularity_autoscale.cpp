// Use case §7.3 — real-time popularity monitoring and automated resource
// management (Figs. 16-17).
//
// Part 1 (Fig. 16): a Zipf catalog with churning ranks (the synthetic
// stand-in for the Zink et al. YouTube trace) is watched by a top-k query;
// per-interval popularity of individual videos fluctuates.
//
// Part 2 (Fig. 17): a hot-content burst begins at t=10s. The top-k
// topology's updater bolt notices the surge, adds web servers to the pool
// via the KV store (Redis substitute), and the dynamic proxy redistributes
// load — no human in the loop.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/videoservice.hpp"
#include "core/netalytics.hpp"

using namespace netalytics;

int main() {
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);
  stream::KvStore kvstore;
  apps::VideoServiceConfig cfg;
  apps::VideoService service(emu, kvstore, cfg);

  // Wire the automation loop: rankings land in the KV store and threshold
  // crossings drive the service's pool.
  stream::UpdaterConfig updater;
  updater.upper_threshold = 40;  // requests per window on one URL
  updater.lower_threshold = 2;
  updater.backoff = 3 * common::kSecond;
  engine.set_automation(
      &kvstore, updater,
      [&service](const std::string& url, std::uint64_t count) {
        std::printf("    [autoscaler] %s at %llu req/window -> adding a server\n",
                    url.c_str(), static_cast<unsigned long long>(count));
        service.scale_up(url, count);
      },
      nullptr);

  const auto q = engine.submit(
      "PARSE http_get FROM * TO 10.30.1.0/24:80 LIMIT 600s SAMPLE * "
      "PROCESS (top-k: k=10, w=5s)",
      0);
  if (!q) {
    std::fprintf(stderr, "query rejected: %s\n", q.error().to_string().c_str());
    return 1;
  }

  // ---- Fig. 16: popularity of the top videos over time -------------------
  std::printf("Fig.16 — normalized popularity of two videos over time\n");
  std::printf("%-6s %-10s %-10s pool\n", "t(s)", "video-2", "video-3");

  std::map<std::string, std::uint64_t> last_counts;
  common::Timestamp now = 0;
  for (int second = 1; second <= 30; ++second) {
    now = static_cast<common::Timestamp>(second) * common::kSecond;
    // Baseline catalog traffic all the time; hot burst from t=10s.
    service.run_baseline(now - common::kSecond, 60, common::kSecond);
    if (second >= 10) {
      service.run_hot_burst(now - common::kSecond, 90, common::kSecond);
    }
    if (second % 5 == 0) service.churn_popularity(0.05);
    engine.pump(now + common::kMillisecond);

    // Read the current ranking from the KV store, as a dashboard would.
    std::uint64_t top = 1, second_count = 0, third_count = 0;
    const auto all = kvstore.hgetall("topk");
    std::vector<std::uint64_t> counts;
    for (const auto& [url, count_text] : all) {
      counts.push_back(std::stoull(count_text));
    }
    std::sort(counts.rbegin(), counts.rend());
    if (!counts.empty()) top = std::max<std::uint64_t>(counts[0], 1);
    if (counts.size() > 1) second_count = counts[1];
    if (counts.size() > 2) third_count = counts[2];
    std::printf("%-6d %-10.0f %-10.0f %zu\n", second,
                100.0 * static_cast<double>(second_count) / static_cast<double>(top),
                100.0 * static_cast<double>(third_count) / static_cast<double>(top),
                service.pool_size());

    // ---- Fig. 17 series: requests per server this interval ---------------
    if (second == 9 || second == 12 || second == 20 || second == 30) {
      std::printf("  Fig.17 @%2ds  ", second);
      for (const auto& [server, count] : service.take_per_server_counts()) {
        std::printf("%s=%llu  ", server.c_str(),
                    static_cast<unsigned long long>(count));
      }
      std::printf("\n");
    } else {
      service.take_per_server_counts();
    }
  }
  engine.stop_all(now);

  std::printf("\nAfter the burst the pool grew from 1 to %zu servers and hot\n"
              "load spread across them — Fig. 17's automated replication,\n"
              "driven entirely by NetAlytics measurements.\n",
              service.pool_size());
  return 0;
}
