// Use case §7.1 — multi-tier performance debugging (Figs. 9-11).
//
// A proxy load balances over two app servers backed by MySQL and
// Memcached. AppServer1 is misconfigured: most of its requests go to the
// database instead of the cache. The client sees bimodal response times,
// but CPU metrics look fine everywhere. Two NetAlytics queries localize
// the fault without touching any server:
//   1. tcp_conn_time + diff-group(destIP): per-tier response times;
//   2. tcp_pkt_size + group-sum(pair): per-connection-pair throughput.
#include <cstdio>

#include "apps/multitier.hpp"
#include "core/netalytics.hpp"

using namespace netalytics;

namespace {

std::string ip_name(const apps::MultiTierHosts& hosts, net::Ipv4Addr ip) {
  if (ip == hosts.client) return "Client";
  if (ip == hosts.proxy) return "Proxy";
  if (ip == hosts.app1) return "AppServer1";
  if (ip == hosts.app2) return "AppServer2";
  if (ip == hosts.mysql) return "MySQL";
  if (ip == hosts.memcached) return "Memcached";
  return net::format_ipv4(ip);
}

}  // namespace

int main() {
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);

  apps::MultiTierConfig app_cfg;
  app_cfg.app1_misconfigured = true;
  apps::MultiTierApp app(emu, app_cfg);
  const auto& hosts = app.hosts();

  // ---- Step 1: the symptom (Fig. 10) ------------------------------------
  // Run the workload once with no queries to see what the client sees.
  app.run(common::kSecond, 400, 25 * common::kMillisecond);
  std::printf("Fig.10 — client response time histogram (ms bucket, count)\n");
  common::Histogram hist(0, 200, 40);
  for (const double ms : app.client_response_times_ms().samples()) hist.add(ms);
  std::printf("%s\n", hist.to_rows().c_str());
  std::printf("  -> bimodal: p25=%.1fms vs p95=%.1fms\n\n",
              app.client_response_times_ms().percentile(25),
              app.client_response_times_ms().percentile(95));

  // ---- Step 2: per-tier response times (Fig. 9) --------------------------
  auto q1 = engine.submit(
      "PARSE tcp_conn_time FROM * TO " + net::format_ipv4(hosts.proxy) +
          ":80, " + net::format_ipv4(hosts.app1) + ":8080, " +
          net::format_ipv4(hosts.app2) + ":8080, " +
          net::format_ipv4(hosts.mysql) + ":3306, " +
          net::format_ipv4(hosts.memcached) + ":11211 "
          "LIMIT 90s SAMPLE * PROCESS (diff-group: group=destIP)",
      10 * common::kSecond);
  if (!q1) {
    std::fprintf(stderr, "q1 rejected: %s\n", q1.error().to_string().c_str());
    return 1;
  }

  // ---- Step 3: per-pair throughput (Fig. 11) ------------------------------
  auto q2 = engine.submit(
      "PARSE tcp_pkt_size FROM * TO " + net::format_ipv4(hosts.mysql) +
          ":3306, " + net::format_ipv4(hosts.memcached) + ":11211 "
          "LIMIT 90s SAMPLE * PROCESS (group-sum: group=pair, value=bytes)",
      10 * common::kSecond);
  if (!q2) {
    std::fprintf(stderr, "q2 rejected: %s\n", q2.error().to_string().c_str());
    return 1;
  }

  // Re-run the workload with the monitors live, pumping the engine as
  // virtual time advances.
  common::Timestamp now = 10 * common::kSecond;
  for (int burst = 0; burst < 10; ++burst) {
    app.run(now, 40, 25 * common::kMillisecond);
    now += common::kSecond + common::kMillisecond;
    engine.pump(now);
  }
  engine.stop_all(now);

  std::printf("Fig.9 — avg response time per tier (diff-group: group=destIP)\n");
  for (const auto& row : (*q1)->latest_by_key(1)) {
    const auto ip = static_cast<net::Ipv4Addr>(stream::as_u64(row.at(0)));
    std::printf("  -> %-12s %8.1f ms   (%llu connections)\n",
                ip_name(hosts, ip).c_str(),
                stream::as_f64(row.at(1)) / common::kMillisecond,
                static_cast<unsigned long long>(stream::as_u64(row.at(2))));
  }

  std::printf("\nFig.11 — bytes per src->dst pair (group-sum over tcp_pkt_size)\n");
  for (const auto& row : (*q2)->latest_by_key(2)) {
    const auto src = static_cast<net::Ipv4Addr>(stream::as_u64(row.at(0)));
    const auto dst = static_cast<net::Ipv4Addr>(stream::as_u64(row.at(1)));
    std::printf("  %-12s -> %-10s %10.0f bytes\n", ip_name(hosts, src).c_str(),
                ip_name(hosts, dst).c_str(), stream::as_f64(row.at(2)));
  }

  std::printf(
      "\nDiagnosis: AppServer1's response time is several times AppServer2's,\n"
      "and its MySQL byte volume dwarfs its Memcached volume — the classic\n"
      "signature of a cache misconfiguration, found with zero instrumentation.\n");
  return 0;
}
