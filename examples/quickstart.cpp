// Quickstart: submit a NetAlytics query against an emulated data center,
// push some HTTP traffic through the fabric, and read back the top-k
// result stream.
//
//   $ ./quickstart
//
// The pipeline (paper Fig. 1): query -> SDN mirror rules + NFV monitors ->
// aggregation brokers -> stream processors -> results.
#include <cstdio>

#include "core/netalytics.hpp"
#include "pktgen/payloads.hpp"
#include "pktgen/session.hpp"

using namespace netalytics;

int main() {
  // 1. An emulated data center: 8 racks x 4 hosts, every ToR switch a live
  //    SDN switch under one controller. Hosts are pre-bound as h0..h31.
  auto emu = core::Emulation::make_small(4);

  // 2. The NetAlytics engine on top of it (brokers, orchestrator, query
  //    interface).
  core::NetAlytics engine(emu);

  // 3. A query in the paper's language: watch HTTP traffic to h5:80 for 60
  //    seconds and keep a rolling top-10 of requested URLs.
  const auto submitted = engine.submit(
      "PARSE http_get FROM * TO h5:80 LIMIT 60s SAMPLE * "
      "PROCESS (top-k: k=10, w=30s)",
      /*now=*/0);
  if (!submitted) {
    std::fprintf(stderr, "query rejected: %s\n",
                 submitted.error().to_string().c_str());
    return 1;
  }
  core::QueryHandle* query = *submitted;
  std::printf("query %llu deployed: %zu monitor(s), %zu pair(s) mirrored\n",
              static_cast<unsigned long long>(query->id()),
              query->plan().monitors.size(), query->plan().pairs.size());

  // 4. Application traffic: clients fetch pages from h5 with a skewed
  //    popularity (/popular gets most of the hits).
  const char* urls[] = {"/popular", "/popular", "/popular", "/sometimes",
                        "/sometimes", "/rare"};
  common::Timestamp now = common::kSecond;
  int port = 30000;
  for (int i = 0; i < 120; ++i) {
    pktgen::SessionSpec s;
    s.flow = {*emu.ip_of_name("h" + std::to_string(i % 4)),  // clients h0..h3
              *emu.ip_of_name("h5"), static_cast<net::Port>(port++), 80, 6};
    s.start = now;
    s.rtt = common::kMillisecond;
    s.server_latency = 2 * common::kMillisecond;
    const auto req = pktgen::http_get_request(urls[i % std::size(urls)], "h5");
    const auto resp = pktgen::http_response(200, 800);
    s.request = req;
    s.response = resp;
    pktgen::emit_tcp_session(s, [&emu](std::span<const std::byte> f,
                                       common::Timestamp ts) { emu.transmit(f, ts); });
    now += 20 * common::kMillisecond;
  }

  // 5. Pump the analytics side as virtual time passes (ticks advance the
  //    rolling windows once per second).
  for (common::Timestamp t = common::kSecond; t <= 5 * common::kSecond;
       t += common::kSecond) {
    engine.pump(t);
  }

  // 6. Read the result stream: [rank, url, count] rows, newest ranking
  //    last; view().latest(1) collapses to the current ranking.
  std::printf("\nTop URLs to h5:80\n");
  for (const auto& row : query->view().latest(1)) {
    std::printf("  #%llu  %-12s %llu requests\n",
                static_cast<unsigned long long>(stream::as_u64(row.at(0))),
                stream::as_str(row.at(1)).c_str(),
                static_cast<unsigned long long>(stream::as_u64(row.at(2))));
  }

  // 7. Monitoring was transparent and cheap: compare raw mirrored bytes
  //    with what actually left the monitors as tuples (§3.1).
  const auto stats = query->monitor_stats();
  std::printf("\nmonitor saw %llu packets (%llu bytes), shipped %llu record "
              "bytes (%.1fx reduction)\n",
              static_cast<unsigned long long>(stats.parsed),
              static_cast<unsigned long long>(stats.raw_bytes),
              static_cast<unsigned long long>(stats.record_bytes),
              stats.record_bytes
                  ? static_cast<double>(stats.raw_bytes) /
                        static_cast<double>(stats.record_bytes)
                  : 0.0);
  engine.stop_all(now);

  // 8. Self-observability: everything this query did — monitor counters,
  //    producer/broker traffic, per-stage latency histograms — is in the
  //    engine's metrics registry, rendered Prometheus-style.
  std::printf("\nper-query metrics (excerpt):\n");
  const std::string metrics = query->render_metrics();
  std::size_t lines = 0, pos = 0;
  while (lines < 8 && pos < metrics.size()) {
    const auto eol = metrics.find('\n', pos);
    std::printf("  %s\n", metrics.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++lines;
  }
  std::printf("  ... (%zu chars total; engine.render_metrics() adds brokers)\n",
              metrics.size());
  return 0;
}
