// Use case §7.2 — coordinated performance analysis (Figs. 12-15).
//
// A PHP-style web app runs Sakila-like pages against MySQL. NetAlytics
// queries combine parsers across network layers:
//   1. tcp_conn_time alone          -> client response times (Fig. 12);
//   2. tcp_conn_time + http_get     -> per-URL response CDFs (Figs. 13-14),
//      exposing the buggy page that is suspiciously fast;
//   3. mysql_query                  -> per-SQL-statement latencies (Fig. 15),
//      visible even though queries multiplex over one connection.
#include <cstdio>
#include <map>

#include "apps/webapp.hpp"
#include "core/netalytics.hpp"

using namespace netalytics;

int main() {
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);
  apps::SakilaWebApp app(emu, {});

  const std::string web = net::format_ipv4(app.web_ip());
  const std::string db = net::format_ipv4(app.db_ip());

  auto q_conn = engine.submit("PARSE tcp_conn_time FROM * TO " + web +
                                  ":80 LIMIT 500s SAMPLE * "
                                  "PROCESS (diff-group: group=destIP, agg=none)",
                              0);
  auto q_urls = engine.submit("PARSE (tcp_conn_time, http_get) FROM * TO " + web +
                                  ":80 LIMIT 500s SAMPLE * "
                                  "PROCESS (diff-group: group=get, agg=none)",
                              0);
  auto q_sql = engine.submit("PARSE mysql_query FROM * TO " + db +
                                 ":3306 LIMIT 500s SAMPLE * PROCESS (identity)",
                             0);
  for (const auto* q : {&q_conn, &q_urls, &q_sql}) {
    if (!q->has_value()) {
      std::fprintf(stderr, "query rejected: %s\n", q->error().to_string().c_str());
      return 1;
    }
  }

  common::Timestamp now = common::kSecond;
  for (int burst = 0; burst < 12; ++burst) {
    app.run(now, 60, 15 * common::kMillisecond);
    now += common::kSecond + common::kMillisecond;
    engine.pump(now);
  }
  engine.stop_all(now);

  // ---- Fig. 12: client response-time histogram ---------------------------
  std::printf("Fig.12 — web response-time histogram (ms, count)\n");
  common::Histogram hist(0, 500, 50);
  for (const auto& row : (*q_conn)->results()) {
    hist.add(static_cast<double>(stream::as_u64(row.at(1))) / common::kMillisecond);
  }
  std::printf("%s\n", hist.to_rows().c_str());

  // ---- Figs. 13-14: per-URL response-time CDFs ----------------------------
  std::map<std::string, common::SampleSet> by_url;
  for (const auto& row : (*q_urls)->results()) {
    by_url[stream::as_str(row.at(2))].add(
        static_cast<double>(stream::as_u64(row.at(1))) / common::kMillisecond);
  }
  std::printf("Fig.13/14 — per-URL response times (ms)\n");
  std::printf("  %-28s %8s %8s %8s %6s\n", "url", "p10", "p50", "p90", "n");
  for (const auto& [url, samples] : by_url) {
    std::printf("  %-28s %8.1f %8.1f %8.1f %6zu\n", url.c_str(),
                samples.percentile(10), samples.percentile(50),
                samples.percentile(90), samples.size());
  }
  if (by_url.contains("/overdue.php") && by_url.contains("/overdue-bug.php")) {
    std::printf("  -> /overdue-bug.php finishes %.0fx faster than /overdue.php:"
                " its queries never run (the Fig. 14 regression)\n",
                by_url.at("/overdue.php").percentile(50) /
                    std::max(0.001, by_url.at("/overdue-bug.php").percentile(50)));
  }

  // ---- Fig. 15: per-SQL-query latency histogram ---------------------------
  // identity rows over mysql_query records: [id, ts, statement, latency_ns].
  std::printf("\nFig.15 — per-SQL-statement latency (ms) by statement class\n");
  std::map<std::string, common::SampleSet> by_stmt;
  for (const auto& row : (*q_sql)->results()) {
    std::string stmt = stream::as_str(row.at(2));
    if (stmt.size() > 40) stmt.resize(40);
    by_stmt[stmt].add(static_cast<double>(stream::as_u64(row.at(3))) /
                      common::kMillisecond);
  }
  for (const auto& [stmt, samples] : by_stmt) {
    std::printf("  %-42s median %7.1f ms  (%zu queries)\n", stmt.c_str(),
                samples.percentile(50), samples.size());
  }
  std::printf(
      "\nConnection-level timing (Fig. 12) hides per-query behaviour; the\n"
      "mysql_query parser recovers it without enabling the server's query\n"
      "log (which §7.2 measures at ~20%% throughput cost).\n");
  return 0;
}
