// Figure 6 — analytics pipeline scaling: maximum sustainable input rate as
// NetAlytics processes are added (monitor : kafka : storm kept at the
// paper's ratio, brokers:workers = 1:2, one monitor).
//
// The paper measures this on a cluster; this container exposes one CPU, so
// real threads cannot show parallel speedup. Instead the harness measures
// each stage's single-process service rate on real data (monitor parse
// rate, broker produce rate, storm deserialize+count rate), then composes
// the pipeline bound analytically:
//   max_input = min(monitors * m_rate,
//                   brokers * k_rate / reduction,
//                   workers * s_rate / reduction)
// which is the standard capacity model for a staged pipeline and exactly
// how the paper sizes deployments ("assuming a 10:1 data reduction factor
// between the monitor and the aggregator", §6.1).
#include <chrono>
#include <cmath>
#include <cstdio>

#include "mq/producer.hpp"
#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"
#include "stream/bolts.hpp"
#include "stream/topk.hpp"
#include "stream/tuple.hpp"

using namespace netalytics;

namespace {

constexpr std::size_t kFrameSize = 512;
constexpr double kReduction = 0.1;  // 10:1 data reduction monitor->aggregator

/// Gbps one monitor process parses (http_get, 512 B frames).
double measure_monitor_rate() {
  parsers::register_builtin_parsers();
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = pktgen::TrafficKind::http_get;
  gcfg.frame_size = kFrameSize;
  pktgen::TrafficGenerator gen(gcfg);
  nf::MonitorConfig mcfg;
  mcfg.parsers = {{"http_get", 1}};
  nf::Monitor monitor(mcfg,
                      [](std::string_view, std::vector<std::byte>, const nf::BatchInfo&) {});
  std::uint64_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 2000; ++i) {
      const auto f = gen.next_frame();
      monitor.process(f, 0);
      bytes += f.size();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

/// Gbps of record payload one broker absorbs (produce path, RAM disk).
double measure_broker_rate() {
  mq::Cluster cluster(1);
  mq::Producer producer(cluster, 1);
  std::vector<std::byte> payload(2048, std::byte{0x55});
  std::uint64_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 500; ++i) {
      producer.send("t", payload, 0);
      bytes += payload.size();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

/// Gbps of record payload one storm worker processes (parse + count).
double measure_storm_rate() {
  // A representative batch: 64 http_get records.
  std::vector<nf::Record> batch;
  for (int i = 0; i < 64; ++i) {
    nf::Record r;
    r.topic = "http_get";
    r.id = static_cast<std::uint64_t>(i);
    r.fields = {std::string("request"), std::string("/video/item-12345.mp4")};
    batch.push_back(std::move(r));
  }
  const auto payload = nf::serialize_batch(batch);
  const std::string payload_str(reinterpret_cast<const char*>(payload.data()),
                                payload.size());

  stream::ParsingBolt parse;
  stream::CountingBolt count(3, 10);
  struct Chain final : stream::Collector {
    explicit Chain(stream::CountingBolt& c) : counter(c) {}
    void emit(stream::Tuple t) override {
      struct Null final : stream::Collector {
        void emit(stream::Tuple) override {}
      } null;
      counter.execute(t, null);
    }
    stream::CountingBolt& counter;
  } chain(count);

  std::uint64_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 50; ++i) {
      parse.execute(stream::Tuple{{payload_str}}, chain);
      bytes += payload.size();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

}  // namespace

int main() {
  std::printf("== Figure 6: pipeline capacity vs NetAlytics processes ==\n");
  const double m_rate = measure_monitor_rate();
  const double k_rate = measure_broker_rate();
  const double s_rate = measure_storm_rate();
  std::printf("measured single-process rates: monitor %.2f Gbps(raw), "
              "broker %.2f Gbps(records), storm worker %.2f Gbps(records)\n\n",
              m_rate, k_rate, s_rate);

  // The paper's configurations: the minimum setup is 4 processes (monitor,
  // kafka, storm spout and bolt); scaling keeps brokers:workers = 1:2 and
  // grows the deployment to 16 processes.
  struct Config {
    int monitors, brokers, workers;
  };
  const Config configs[] = {{1, 1, 2}, {2, 2, 4}, {3, 3, 6}, {4, 4, 8}};

  std::printf("%-12s %-10s %-10s %-10s %12s\n", "#processes", "monitors",
              "brokers", "workers", "max input");
  double first = 0, last = 0;
  for (const auto& c : configs) {
    const double bound_m = c.monitors * m_rate;
    const double bound_k = c.brokers * k_rate / kReduction;
    const double bound_s = c.workers * s_rate / kReduction;
    const double max_input = std::min({bound_m, bound_k, bound_s});
    const int total = c.monitors + c.brokers + c.workers;
    std::printf("%-12d %-10d %-10d %-10d %9.2f Gbps\n", total, c.monitors,
                c.brokers, c.workers, max_input);
    if (first == 0) first = max_input;
    last = max_input;
  }

  std::printf("\nshape checks (paper Fig. 6):\n");
  std::printf("  capacity grows with process count: %s (%.2f -> %.2f Gbps)\n",
              last > first * 1.5 ? "yes" : "NO", first, last);

  // The abstract's headline: "NetAlytics can scale to packet rates of
  // 40Gbps using only four monitoring cores and fifteen processing
  // cores." Size a 40 Gbps deployment from the measured rates.
  const double target = 40.0;  // Gbps of raw traffic
  const int need_monitors = static_cast<int>(std::ceil(target / m_rate));
  const int need_brokers =
      static_cast<int>(std::ceil(target * kReduction / k_rate));
  const int need_workers =
      static_cast<int>(std::ceil(target * kReduction / s_rate));
  std::printf("  sizing a 40 Gbps deployment from measured rates: %d monitor "
              "core(s) + %d processing process(es) "
              "(paper: 4 monitoring + 15 processing cores)\n",
              need_monitors, need_brokers + need_workers);
  return 0;
}
