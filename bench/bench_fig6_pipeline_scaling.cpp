// Figure 6 — analytics pipeline scaling: maximum sustainable input rate as
// NetAlytics processes are added (monitor : kafka : storm kept at the
// paper's ratio, brokers:workers = 1:2, one monitor).
//
// The paper measures this on a cluster; this container exposes one CPU, so
// real threads cannot show parallel speedup. Instead the harness measures
// each stage's single-process service rate on real data (monitor parse
// rate, broker produce rate, storm deserialize+count rate), then composes
// the pipeline bound analytically:
//   max_input = min(monitors * m_rate,
//                   brokers * k_rate / reduction,
//                   workers * s_rate / reduction)
// which is the standard capacity model for a staged pipeline and exactly
// how the paper sizes deployments ("assuming a 10:1 data reduction factor
// between the monitor and the aggregator", §6.1).
//
// The second half sweeps the executor worker pool (the in-process "add
// executors" axis, ExecutorConfig::workers) over BOTH executor modes —
// stepped (stage barriers, deterministic) and free_running (work-stealing
// run-to-completion) — at 1/2/4 workers: real wall-clock throughput per
// (mode, workers) cell plus an Amdahl bound per mode composed from the
// measured per-payload bolt service time and each mode's measured serial
// residue (spout + merge/route for stepped; spout + enqueue for free).
// The stepped-vs-free gap per worker count is the headline number the
// determinism contract (docs/DETERMINISM.md) deferred to this bench.
// Results land in BENCH_stream.json in the working directory; every cell
// is labeled measured or model and records the hardware thread count,
// because a container with fewer cores than workers time-slices the pool
// and measured "speedups" below 1.0 are scheduling artifacts, not
// executor properties.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "mq/producer.hpp"
#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"
#include "stream/bolts.hpp"
#include "stream/executor.hpp"
#include "stream/topk.hpp"
#include "stream/tuple.hpp"

using namespace netalytics;

namespace {

constexpr std::size_t kFrameSize = 512;
constexpr double kReduction = 0.1;  // 10:1 data reduction monitor->aggregator

/// Gbps one monitor process parses (http_get, 512 B frames).
double measure_monitor_rate() {
  parsers::register_builtin_parsers();
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = pktgen::TrafficKind::http_get;
  gcfg.frame_size = kFrameSize;
  pktgen::TrafficGenerator gen(gcfg);
  nf::MonitorConfig mcfg;
  mcfg.parsers = {{"http_get", 1}};
  nf::Monitor monitor(mcfg,
                      [](std::string_view, std::vector<std::byte>, const nf::BatchInfo&) {});
  std::uint64_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 2000; ++i) {
      const auto f = gen.next_frame();
      monitor.process(f, 0);
      bytes += f.size();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

/// Gbps of record payload one broker absorbs (produce path, RAM disk).
double measure_broker_rate() {
  mq::Cluster cluster(1);
  mq::Producer producer(cluster, 1);
  std::vector<std::byte> payload(2048, std::byte{0x55});
  std::uint64_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 500; ++i) {
      producer.send("t", payload, 0);
      bytes += payload.size();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

/// Gbps of record payload one storm worker processes (parse + count).
double measure_storm_rate() {
  // A representative batch: 64 http_get records.
  std::vector<nf::Record> batch;
  for (int i = 0; i < 64; ++i) {
    nf::Record r;
    r.topic = "http_get";
    r.id = static_cast<std::uint64_t>(i);
    r.fields = {std::string("request"), std::string("/video/item-12345.mp4")};
    batch.push_back(std::move(r));
  }
  const auto payload = nf::serialize_batch(batch);
  const std::string payload_str(reinterpret_cast<const char*>(payload.data()),
                                payload.size());

  stream::ParsingBolt parse;
  stream::CountingBolt count(3, 10);
  struct Chain final : stream::Collector {
    explicit Chain(stream::CountingBolt& c) : counter(c) {}
    void emit(stream::Tuple t) override {
      struct Null final : stream::Collector {
        void emit(stream::Tuple) override {}
      } null;
      counter.execute(t, null);
    }
    stream::CountingBolt& counter;
  } chain(count);

  std::uint64_t bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 50; ++i) {
      parse.execute(stream::Tuple{{payload_str}}, chain);
      bytes += payload.size();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

/// The serialized record batch the executor sweep feeds through the
/// ParsingBolt stage (the same shape measure_storm_rate uses).
std::string make_sweep_payload() {
  std::vector<nf::Record> batch;
  for (int i = 0; i < 64; ++i) {
    nf::Record r;
    r.topic = "http_get";
    r.id = static_cast<std::uint64_t>(i);
    r.fields = {std::string("request"), std::string("/video/item-12345.mp4")};
    batch.push_back(std::move(r));
  }
  const auto payload = nf::serialize_batch(batch);
  return std::string(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
}

/// Endless source of batch payloads for the sweep topology.
class PayloadSpout final : public stream::Spout {
 public:
  explicit PayloadSpout(std::string payload) : payload_(std::move(payload)) {}
  bool next_tuple(stream::Collector& out, common::Timestamp /*now*/) override {
    out.emit(stream::Tuple{{payload_}});
    return true;
  }

 private:
  std::string payload_;
};

/// Payload tuples per second a topology (spout -> 4-task ParsingBolt
/// stage) executes with `workers` threads under `mode`.
double measure_executor_rate(stream::ExecutorMode mode, std::size_t workers,
                             const std::string& payload) {
  stream::TopologyBuilder b("sweep");
  b.set_spout("src",
              [payload] { return std::make_unique<PayloadSpout>(payload); },
              {"payload"});
  b.set_bolt("parse", [] { return std::make_unique<stream::ParsingBolt>(); },
             {"id", "ts", "field", "value"}, 4)
      .shuffle_grouping("src");
  auto topo = stream::make_executor(
      b.build(), stream::ExecutorConfig{.workers = workers, .mode = mode});
  topo->step(0, 16);  // warmup (spins the pool up)
  std::uint64_t executed = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    executed += topo->step(0, 16);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(executed) / secs;
}

/// Seconds one ParsingBolt execution of the sweep payload takes (the
/// parallelizable per-tuple service time t_exec).
double measure_parse_service_time(const std::string& payload) {
  stream::ParsingBolt parse;
  struct Null final : stream::Collector {
    void emit(stream::Tuple) override {}
  } null;
  std::uint64_t iters = 0;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(300)) {
    for (int i = 0; i < 50; ++i) parse.execute(stream::Tuple{{payload}}, null);
    iters += 50;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return secs / static_cast<double>(iters);
}

}  // namespace

int main() {
  std::printf("== Figure 6: pipeline capacity vs NetAlytics processes ==\n");
  const double m_rate = measure_monitor_rate();
  const double k_rate = measure_broker_rate();
  const double s_rate = measure_storm_rate();
  std::printf("measured single-process rates: monitor %.2f Gbps(raw), "
              "broker %.2f Gbps(records), storm worker %.2f Gbps(records)\n\n",
              m_rate, k_rate, s_rate);

  // The paper's configurations: the minimum setup is 4 processes (monitor,
  // kafka, storm spout and bolt); scaling keeps brokers:workers = 1:2 and
  // grows the deployment to 16 processes.
  struct Config {
    int monitors, brokers, workers;
  };
  const Config configs[] = {{1, 1, 2}, {2, 2, 4}, {3, 3, 6}, {4, 4, 8}};

  std::printf("%-12s %-10s %-10s %-10s %12s\n", "#processes", "monitors",
              "brokers", "workers", "max input");
  double first = 0, last = 0;
  for (const auto& c : configs) {
    const double bound_m = c.monitors * m_rate;
    const double bound_k = c.brokers * k_rate / kReduction;
    const double bound_s = c.workers * s_rate / kReduction;
    const double max_input = std::min({bound_m, bound_k, bound_s});
    const int total = c.monitors + c.brokers + c.workers;
    std::printf("%-12d %-10d %-10d %-10d %9.2f Gbps\n", total, c.monitors,
                c.brokers, c.workers, max_input);
    if (first == 0) first = max_input;
    last = max_input;
  }

  std::printf("\nshape checks (paper Fig. 6):\n");
  std::printf("  capacity grows with process count: %s (%.2f -> %.2f Gbps)\n",
              last > first * 1.5 ? "yes" : "NO", first, last);

  // The abstract's headline: "NetAlytics can scale to packet rates of
  // 40Gbps using only four monitoring cores and fifteen processing
  // cores." Size a 40 Gbps deployment from the measured rates.
  const double target = 40.0;  // Gbps of raw traffic
  const int need_monitors = static_cast<int>(std::ceil(target / m_rate));
  const int need_brokers =
      static_cast<int>(std::ceil(target * kReduction / k_rate));
  const int need_workers =
      static_cast<int>(std::ceil(target * kReduction / s_rate));
  std::printf("  sizing a 40 Gbps deployment from measured rates: %d monitor "
              "core(s) + %d processing process(es) "
              "(paper: 4 monitoring + 15 processing cores)\n",
              need_monitors, need_brokers + need_workers);

  // == Executor worker sweep (ExecutorConfig::workers x ExecutorConfig::mode) ==
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const std::string payload = make_sweep_payload();
  constexpr std::size_t kSweepWorkers[] = {1, 2, 4};
  constexpr stream::ExecutorMode kModes[] = {
      stream::ExecutorMode::stepped, stream::ExecutorMode::free_running};
  double measured_tps[2][3] = {{0, 0, 0}, {0, 0, 0}};
  std::printf("\n== Executor sweep: 4-task parse stage, mode x workers ==\n");
  std::printf("hardware threads: %u\n", hw_threads);
  for (int m = 0; m < 2; ++m) {
    std::printf("mode=%s\n", stream::to_string(kModes[m]));
    for (int i = 0; i < 3; ++i) {
      if (kSweepWorkers[i] > hw_threads) {
        std::printf("  WARNING: workers=%zu > %u hardware thread(s) — the "
                    "pool time-slices one core, so this measured cell shows "
                    "scheduling overhead, not executor scaling; trust the "
                    "model cells for speedup.\n",
                    kSweepWorkers[i], hw_threads);
      }
      measured_tps[m][i] =
          measure_executor_rate(kModes[m], kSweepWorkers[i], payload);
      std::printf("  [measured] workers=%zu: %10.0f payloads/s "
                  "(~%.0f records/s), speedup %.2fx\n",
                  kSweepWorkers[i], measured_tps[m][i],
                  measured_tps[m][i] * 64,
                  measured_tps[m][i] / measured_tps[m][0]);
    }
  }

  // Amdahl composition per mode from measured pieces: a payload costs
  // t_exec of parallelizable bolt work (identical in both modes — the same
  // ParsingBolt runs) plus a per-mode serial residue measured at 1 worker:
  // spout + route + barrier merge for stepped, spout + inbox enqueue for
  // free-running. The free-running residue includes its queue overhead, so
  // the model is conservative for it.
  const double t_exec = measure_parse_service_time(payload);
  double t_serial[2], modeled_speedup[2][3];
  for (int m = 0; m < 2; ++m) {
    const double t_total = 1.0 / measured_tps[m][0];
    t_serial[m] = std::max(t_total - t_exec, 0.0);
    for (int i = 0; i < 3; ++i) {
      modeled_speedup[m][i] =
          t_total /
          (t_serial[m] + t_exec / static_cast<double>(kSweepWorkers[i]));
    }
    std::printf("[model] mode=%s: t_exec %.1f us (parallel), t_serial %.1f us, "
                "parallel fraction %.0f%%, speedup x2=%.2f x4=%.2f\n",
                stream::to_string(kModes[m]), t_exec * 1e6, t_serial[m] * 1e6,
                100 * t_exec / t_total, modeled_speedup[m][1],
                modeled_speedup[m][2]);
  }

  // The headline: what the stage barriers cost. Modeled throughput ratio
  // free/stepped per worker count (one core per worker); the measured
  // ratio rides along for honesty on this container.
  std::printf("stepped-vs-free gap (free/stepped): ");
  double model_gap[3], measured_gap[3];
  for (int i = 0; i < 3; ++i) {
    const double tps_model_stepped =
        measured_tps[0][0] * modeled_speedup[0][i];
    const double tps_model_free = measured_tps[1][0] * modeled_speedup[1][i];
    model_gap[i] = tps_model_free / tps_model_stepped;
    measured_gap[i] = measured_tps[1][i] / measured_tps[0][i];
    std::printf("w%zu model %.2fx (measured %.2fx)%s", kSweepWorkers[i],
                model_gap[i], measured_gap[i], i < 2 ? ", " : "\n");
  }
  std::printf("modeled stepped speedup at 4 workers (target >1.5x): %s\n",
              modeled_speedup[0][2] > 1.5 ? "yes" : "NO");

  if (std::FILE* f = std::fopen("BENCH_stream.json", "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw_threads);
    std::fprintf(f, "  \"stage_tasks\": 4,\n  \"records_per_payload\": 64,\n");
    std::fprintf(f, "  \"modes\": {\n");
    for (int m = 0; m < 2; ++m) {
      std::fprintf(f, "    \"%s\": {\n", stream::to_string(kModes[m]));
      for (int i = 0; i < 3; ++i) {
        // Per-cell honesty: every cell says whether it is wall clock or
        // model and how many hardware threads backed it.
        std::fprintf(f,
                     "      \"workers_%zu\": {\"kind\": \"measured\", "
                     "\"hardware_threads\": %u, \"payloads_per_sec\": %.0f, "
                     "\"speedup\": %.3f},\n",
                     kSweepWorkers[i], hw_threads, measured_tps[m][i],
                     measured_tps[m][i] / measured_tps[m][0]);
      }
      for (int i = 0; i < 3; ++i) {
        std::fprintf(f,
                     "      \"model_workers_%zu\": {\"kind\": \"model\", "
                     "\"hardware_threads\": %u, \"speedup\": %.3f}%s\n",
                     kSweepWorkers[i], hw_threads, modeled_speedup[m][i],
                     i < 2 ? "," : "");
      }
      std::fprintf(f, "      },\n");
      std::fprintf(f, "    \"%s_model_params\": "
                   "{\"kind\": \"model\", \"t_exec_us\": %.3f, "
                   "\"t_serial_us\": %.3f}%s\n",
                   stream::to_string(kModes[m]), t_exec * 1e6,
                   t_serial[m] * 1e6, m < 1 ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"free_vs_stepped\": {\n");
    for (int i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    \"workers_%zu\": {\"model_gap\": %.3f, "
                   "\"measured_gap\": %.3f}%s\n",
                   kSweepWorkers[i], model_gap[i], measured_gap[i],
                   i < 2 ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"note\": \"kind=measured cells are wall clock on this "
                 "container; with workers > hardware_threads the pool "
                 "time-slices and sub-1.0 speedups are scheduling artifacts. "
                 "kind=model cells are the Amdahl bound from the measured "
                 "parallel/serial split (one core per worker). free_vs_stepped "
                 "is the barrier cost: free-running over stepped throughput "
                 "at equal workers\",\n");
    std::fprintf(f, "  \"modeled_speedup_4_workers_gt_1_5\": %s\n",
                 modeled_speedup[0][2] > 1.5 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return modeled_speedup[0][2] > 1.5 ? 0 : 1;
}
