// Monitoring-traffic reduction (§3.1/§6.1): "the amount of data extracted
// from packets and sent to the analytics engine is significantly smaller
// than the size of the raw packets. As a result, NetAlytics is more
// efficient than existing network analytic systems that often mirror
// entire packets or packet headers."
//
// Compares, for the same traffic, the bytes/packet a downstream collector
// would receive under:
//   * full-packet mirroring (e.g. EverFlow-style match-and-mirror),
//   * header-only mirroring (64 B per packet),
//   * NetAlytics tuples (batched serialized records).
#include <cstdio>

#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"

using namespace netalytics;

namespace {

struct Row {
  std::size_t frame_size;
  std::uint64_t raw_bytes;
  std::uint64_t header_bytes;
  std::uint64_t record_bytes;
};

Row run_row(const std::string& parser, pktgen::TrafficKind kind,
            std::size_t frame_size, int packets) {
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = kind;
  gcfg.frame_size = frame_size;
  gcfg.flow_count = 256;
  pktgen::TrafficGenerator gen(gcfg);

  nf::MonitorConfig mcfg;
  mcfg.parsers = {{parser, 1}};
  mcfg.output_batch_records = 64;
  nf::Monitor monitor(mcfg, [](std::string_view, std::vector<std::byte>,
                               const nf::BatchInfo&) {});
  for (int i = 0; i < packets; ++i) monitor.process(gen.next_frame(), i);
  monitor.close(packets);
  const auto stats = monitor.stats();
  return {frame_size, stats.raw_bytes, static_cast<std::uint64_t>(packets) * 64,
          stats.record_bytes};
}

}  // namespace

int main() {
  parsers::register_builtin_parsers();
  constexpr int kPackets = 50000;

  std::printf("== Monitoring traffic per mirroring strategy (%d packets) ==\n",
              kPackets);
  std::printf("%-14s %-8s %12s %12s %12s %9s %9s\n", "parser", "size",
              "full-mirror", "hdr-mirror", "netalytics", "vs full", "vs hdr");

  double worst_vs_header = 1e9;
  for (const auto& [parser, kind] :
       {std::pair{std::string("http_get"), pktgen::TrafficKind::http_get},
        std::pair{std::string("tcp_conn_time"), pktgen::TrafficKind::tcp_lifecycle},
        std::pair{std::string("tcp_pkt_size"), pktgen::TrafficKind::raw_tcp}}) {
    for (const std::size_t size : {256u, 512u, 1024u}) {
      const auto row = run_row(parser, kind, size, kPackets);
      const double vs_full = row.record_bytes
                                 ? static_cast<double>(row.raw_bytes) /
                                       static_cast<double>(row.record_bytes)
                                 : 0;
      const double vs_hdr = row.record_bytes
                                ? static_cast<double>(row.header_bytes) /
                                      static_cast<double>(row.record_bytes)
                                : 0;
      std::printf("%-14s %-8zu %12llu %12llu %12llu %8.1fx %8.1fx\n",
                  parser.c_str(), size,
                  static_cast<unsigned long long>(row.raw_bytes),
                  static_cast<unsigned long long>(row.header_bytes),
                  static_cast<unsigned long long>(row.record_bytes), vs_full,
                  vs_hdr);
      if (vs_hdr > 0) worst_vs_header = std::min(worst_vs_header, vs_hdr);
    }
  }

  std::printf("\nshape checks (§3.1/§6.1's 10:1 reduction assumption):\n");
  std::printf("  tuples always beat header mirroring: %s (worst %.1fx)\n",
              worst_vs_header >= 1.0 ? "yes" : "NO", worst_vs_header);
  std::printf("  aggregating parsers (tcp_pkt_size) reduce by orders of "
              "magnitude; per-packet parsers still cut raw traffic ~10x+\n");
  return 0;
}
