// Figures 9-11 — multi-tier performance debugging (§7.1): regenerates the
// per-tier response times (Fig. 9), the bimodal client histogram (Fig. 10)
// and the per-pair throughput (Fig. 11) through the full NetAlytics
// pipeline, then checks the paper's shapes.
#include <cstdio>

#include "apps/multitier.hpp"
#include "core/netalytics.hpp"

using namespace netalytics;

int main() {
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);
  apps::MultiTierConfig cfg;
  cfg.app1_misconfigured = true;
  apps::MultiTierApp app(emu, cfg);
  const auto& hosts = app.hosts();

  auto q_conn = engine.submit(
      "PARSE tcp_conn_time FROM * TO " + net::format_ipv4(hosts.proxy) +
          ":80, " + net::format_ipv4(hosts.app1) + ":8080, " +
          net::format_ipv4(hosts.app2) + ":8080, " +
          net::format_ipv4(hosts.mysql) + ":3306, " +
          net::format_ipv4(hosts.memcached) + ":11211 "
          "LIMIT 90s SAMPLE * PROCESS (diff-group: group=destIP)",
      0);
  auto q_bytes = engine.submit(
      "PARSE tcp_pkt_size FROM * TO " + net::format_ipv4(hosts.mysql) +
          ":3306, " + net::format_ipv4(hosts.memcached) + ":11211 "
          "LIMIT 90s SAMPLE * PROCESS (group-sum: group=pair, value=bytes)",
      0);
  if (!q_conn || !q_bytes) {
    std::fprintf(stderr, "query rejected\n");
    return 1;
  }

  common::Timestamp now = 0;
  for (int burst = 0; burst < 12; ++burst) {
    app.run(now, 50, 20 * common::kMillisecond);
    now += common::kSecond + common::kMillisecond;
    engine.pump(now);
  }
  engine.stop_all(now);

  // ---- Fig. 10 -----------------------------------------------------------
  std::printf("== Figure 10: client response-time histogram (ms, count) ==\n");
  common::Histogram hist(0, 200, 40);
  for (const double ms : app.client_response_times_ms().samples()) hist.add(ms);
  std::printf("%s\n", hist.to_rows().c_str());

  // ---- Fig. 9 -------------------------------------------------------------
  std::printf("== Figure 9: avg response time per tier (ms) ==\n");
  double app1_ms = 0, app2_ms = 0, mysql_ms = 0, memc_ms = 0;
  for (const auto& row : (*q_conn)->latest_by_key(1)) {
    const auto ip = static_cast<net::Ipv4Addr>(stream::as_u64(row.at(0)));
    const double ms = stream::as_f64(row.at(1)) / common::kMillisecond;
    std::printf("  %-16s %8.1f ms (%llu conns)\n", net::format_ipv4(ip).c_str(),
                ms, static_cast<unsigned long long>(stream::as_u64(row.at(2))));
    if (ip == hosts.app1) app1_ms = ms;
    if (ip == hosts.app2) app2_ms = ms;
    if (ip == hosts.mysql) mysql_ms = ms;
    if (ip == hosts.memcached) memc_ms = ms;
  }

  // ---- Fig. 11 ------------------------------------------------------------
  std::printf("\n== Figure 11: per-pair bytes (group-sum of tcp_pkt_size) ==\n");
  double app1_mysql = 0, app2_mysql = 0, app1_memc = 0, app2_memc = 0;
  for (const auto& row : (*q_bytes)->latest_by_key(2)) {
    const auto src = static_cast<net::Ipv4Addr>(stream::as_u64(row.at(0)));
    const auto dst = static_cast<net::Ipv4Addr>(stream::as_u64(row.at(1)));
    const double bytes = stream::as_f64(row.at(2));
    std::printf("  %-16s -> %-16s %12.0f bytes\n",
                net::format_ipv4(src).c_str(), net::format_ipv4(dst).c_str(),
                bytes);
    if (dst == hosts.app1 && src == hosts.mysql) app1_mysql = bytes;
    if (dst == hosts.app2 && src == hosts.mysql) app2_mysql = bytes;
    if (dst == hosts.app1 && src == hosts.memcached) app1_memc = bytes;
    if (dst == hosts.app2 && src == hosts.memcached) app2_memc = bytes;
  }

  std::printf("\nshape checks (paper §7.1):\n");
  std::printf("  AppServer1 response ~4x AppServer2: %s (%.1f vs %.1f ms)\n",
              app1_ms > app2_ms * 2.5 ? "yes" : "NO", app1_ms, app2_ms);
  std::printf("  MySQL slow, Memcached fast: %s (%.1f vs %.1f ms)\n",
              mysql_ms > memc_ms * 10 ? "yes" : "NO", mysql_ms, memc_ms);
  std::printf("  App1 MySQL bytes >> App2's: %s (%.0f vs %.0f)\n",
              app1_mysql > app2_mysql * 2 ? "yes" : "NO", app1_mysql, app2_mysql);
  std::printf("  App1 Memcached bytes << App2's: %s (%.0f vs %.0f)\n",
              app1_memc * 2 < app2_memc ? "yes" : "NO", app1_memc, app2_memc);
  std::printf("  client histogram bimodal: %s (p25=%.1f, p95=%.1f ms)\n",
              app.client_response_times_ms().percentile(95) >
                      app.client_response_times_ms().percentile(25) * 4
                  ? "yes"
                  : "NO",
              app.client_response_times_ms().percentile(25),
              app.client_response_times_ms().percentile(95));
  return 0;
}
