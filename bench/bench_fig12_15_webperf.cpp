// Figures 12-15 — coordinated performance analysis (§7.2): client
// response-time histogram, per-URL CDFs, the buggy-page regression, and
// per-SQL-query latencies, all through the full NetAlytics pipeline.
#include <cstdio>
#include <map>

#include "apps/webapp.hpp"
#include "core/netalytics.hpp"

using namespace netalytics;

int main() {
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);
  apps::SakilaWebApp app(emu, {});
  const std::string web = net::format_ipv4(app.web_ip());
  const std::string db = net::format_ipv4(app.db_ip());

  auto q_conn = engine.submit("PARSE tcp_conn_time FROM * TO " + web +
                                  ":80 LIMIT 500s SAMPLE * "
                                  "PROCESS (diff-group: group=destIP, agg=none)",
                              0);
  auto q_urls = engine.submit("PARSE (tcp_conn_time, http_get) FROM * TO " + web +
                                  ":80 LIMIT 500s SAMPLE * "
                                  "PROCESS (diff-group: group=get, agg=none)",
                              0);
  auto q_sql = engine.submit("PARSE mysql_query FROM * TO " + db +
                                 ":3306 LIMIT 500s SAMPLE * PROCESS (identity)",
                             0);
  if (!q_conn || !q_urls || !q_sql) {
    std::fprintf(stderr, "query rejected\n");
    return 1;
  }

  common::Timestamp now = 0;
  for (int burst = 0; burst < 15; ++burst) {
    app.run(now, 60, 12 * common::kMillisecond);
    now += common::kSecond + common::kMillisecond;
    engine.pump(now);
  }
  engine.stop_all(now);

  // ---- Fig. 12 -----------------------------------------------------------
  std::printf("== Figure 12: web response-time histogram (ms, count) ==\n");
  common::Histogram hist(0, 700, 70);
  for (const auto& row : (*q_conn)->results()) {
    hist.add(static_cast<double>(stream::as_u64(row.at(1))) / common::kMillisecond);
  }
  std::printf("%s\n", hist.to_rows().c_str());

  // ---- Figs. 13/14 ---------------------------------------------------------
  std::printf("== Figures 13-14: per-URL response-time CDFs (ms) ==\n");
  std::map<std::string, common::SampleSet> by_url;
  for (const auto& row : (*q_urls)->results()) {
    by_url[stream::as_str(row.at(2))].add(
        static_cast<double>(stream::as_u64(row.at(1))) / common::kMillisecond);
  }
  for (const auto& [url, samples] : by_url) {
    std::printf("-- %s (n=%zu)\n%s", url.c_str(), samples.size(),
                samples.cdf_rows(8).c_str());
  }

  // ---- Fig. 15 -------------------------------------------------------------
  std::printf("\n== Figure 15: per-SQL-query latency histogram (ms, count) ==\n");
  common::Histogram sql_hist(0, 200, 40);
  std::size_t sql_records = 0;
  for (const auto& row : (*q_sql)->results()) {
    sql_hist.add(static_cast<double>(stream::as_u64(row.at(3))) /
                 common::kMillisecond);
    ++sql_records;
  }
  std::printf("%s\n", sql_hist.to_rows().c_str());

  std::printf("shape checks (paper §7.2):\n");
  const bool have_pages = by_url.contains("/simple.php") &&
                          by_url.contains("/country-max-payments.php") &&
                          by_url.contains("/overdue.php") &&
                          by_url.contains("/overdue-bug.php");
  std::printf("  all page CDFs captured: %s\n", have_pages ? "yes" : "NO");
  if (have_pages) {
    std::printf("  CDFs separated (heavy >> simple): %s (%.1f vs %.1f ms)\n",
                by_url.at("/country-max-payments.php").percentile(50) >
                        by_url.at("/simple.php").percentile(50) * 10
                    ? "yes"
                    : "NO",
                by_url.at("/country-max-payments.php").percentile(50),
                by_url.at("/simple.php").percentile(50));
    std::printf("  buggy page collapses left (Fig. 14): %s (%.1f vs %.1f ms)\n",
                by_url.at("/overdue-bug.php").percentile(50) * 10 <
                        by_url.at("/overdue.php").percentile(50)
                    ? "yes"
                    : "NO",
                by_url.at("/overdue-bug.php").percentile(50),
                by_url.at("/overdue.php").percentile(50));
  }
  std::printf("  per-query latencies recovered from multiplexed connections: "
              "%s (%zu query/response pairs)\n",
              sql_records > 100 ? "yes" : "NO", sql_records);
  return 0;
}
