// Tiered time-series store microbench: ingest rate into the hot ring
// (with downsampling and cold encoding in the write path), cold-tier
// compression ratio against raw 16 B/sample storage, and range-query
// latency for hot-only, cold-heavy and tier-straddling ranges. The
// acceptance bar is a >= 4x compression ratio for tick-cadence counter
// deltas (the capture() workload).
//
// Results land in BENCH_tsdb.json in the working directory.
#include <chrono>
#include <cstdio>
#include <string>

#include "tsdb/store.hpp"

using namespace netalytics;
using tsdb::Agg;
using tsdb::RangeQuery;
using tsdb::SeriesKind;
using tsdb::StoreConfig;
using tsdb::TieredStore;

namespace {

constexpr std::size_t kSamples = 2'000'000;
constexpr std::size_t kSeries = 32;
constexpr common::Duration kTick = common::kSecond;
constexpr int kQueryReps = 2000;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Deterministic per-tick counter delta: small integers around a plateau,
/// the shape registry counters produce under steady traffic.
double delta_at(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<double>(100 + (state >> 33) % 32);
}

double query_us(const TieredStore& store, const RangeQuery& q) {
  // Warm once, then average.
  (void)store.query_range(q);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t points = 0;
  for (int i = 0; i < kQueryReps; ++i) {
    const auto res = store.query_range(q);
    for (const auto& s : res.series) points += s.points.size();
  }
  const double total = seconds_since(t0);
  std::fprintf(stderr, "  (%zu points/rep)\n", points / kQueryReps);
  return total / kQueryReps * 1e6;
}

}  // namespace

int main() {
  StoreConfig cfg;  // the engine's defaults
  TieredStore store(cfg);

  // ---- ingest rate ---------------------------------------------------------
  std::uint64_t rng = 12345;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::string names[kSeries];
    for (std::size_t s = 0; s < kSeries; ++s) {
      names[s] = "bench.series" + std::to_string(s);
    }
    for (std::size_t i = 0; i < kSamples; ++i) {
      const auto tick = i / kSeries;
      store.ingest(names[i % kSeries], SeriesKind::counter,
                   tick * kTick, delta_at(rng));
    }
  }
  const double ingest_secs = seconds_since(t0);
  const double ingest_rate = static_cast<double>(kSamples) / ingest_secs;

  // ---- compression ratio ---------------------------------------------------
  const auto st = store.stats();
  const double ratio =
      st.cold_bytes == 0
          ? 0
          : static_cast<double>(st.cold_raw_bytes) /
                static_cast<double>(st.cold_bytes);

  // ---- query latency -------------------------------------------------------
  const common::Timestamp last_ts = (kSamples / kSeries - 1) * kTick;
  // Hot: the newest hot_slots ticks of one series, per-sample resolution.
  const RangeQuery hot_q{.selector = "bench.series0",
                         .t0 = last_ts - (cfg.hot_slots - 1) * kTick,
                         .t1 = last_ts,
                         .step = kTick,
                         .agg = Agg::sum};
  // Cold: everything, one point per series (decodes every retained chunk).
  const RangeQuery cold_q{.selector = "bench.", .agg = Agg::sum};
  // Straddle: one series, windowed across the hot/cold boundary.
  const RangeQuery straddle_q{.selector = "bench.series0",
                              .t0 = last_ts - 4096 * kTick,
                              .t1 = last_ts,
                              .step = 64 * kTick,
                              .agg = Agg::avg};
  const double hot_us = query_us(store, hot_q);
  const double cold_us = query_us(store, cold_q);
  const double straddle_us = query_us(store, straddle_q);

  const bool pass = ratio >= 4.0;
  std::printf(
      "tsdb ingest: %.0f samples/s (%zu samples, %zu series)\n"
      "tsdb cold tier: %llu buckets, %llu bytes encoded vs %llu raw "
      "(%.2fx)\n"
      "tsdb query: hot %.1f us, cold %.1f us, straddle %.1f us\n"
      "compression >= 4x: %s\n",
      ingest_rate, kSamples, kSeries,
      static_cast<unsigned long long>(st.cold_buckets),
      static_cast<unsigned long long>(st.cold_bytes),
      static_cast<unsigned long long>(st.cold_raw_bytes), ratio, hot_us,
      cold_us, straddle_us, pass ? "pass" : "FAIL");

  if (std::FILE* f = std::fopen("BENCH_tsdb.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"samples\": %zu,\n"
        "  \"series\": %zu,\n"
        "  \"ingest_samples_per_sec\": %.0f,\n"
        "  \"cold_buckets\": %llu,\n"
        "  \"cold_bytes\": %llu,\n"
        "  \"cold_raw_bytes\": %llu,\n"
        "  \"compression_ratio\": %.2f,\n"
        "  \"query_hot_us\": %.1f,\n"
        "  \"query_cold_us\": %.1f,\n"
        "  \"query_straddle_us\": %.1f,\n"
        "  \"pass\": %s\n"
        "}\n",
        kSamples, kSeries, ingest_rate,
        static_cast<unsigned long long>(st.cold_buckets),
        static_cast<unsigned long long>(st.cold_bytes),
        static_cast<unsigned long long>(st.cold_raw_bytes), ratio, hot_us,
        cold_us, straddle_us, pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
