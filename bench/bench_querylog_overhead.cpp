// §7.2 comparison point — instrumentation vs passive monitoring:
// "The query log records response times for all queries, but we find that
// it lowers the throughput for a simple statement from 40.8K to 33K
// queries per second, a 20% drop. In contrast, NetAlytics incurs no
// overhead on the actual application."
//
// Three configurations of the emulated DB server:
//   1. no monitoring at all (baseline),
//   2. general query log enabled (in-server instrumentation),
//   3. query log off but NetAlytics passively monitoring the server's
//      traffic (the monitor runs in the fabric; the server does nothing).
#include <algorithm>
#include <cstdio>

#include "apps/dbserver.hpp"
#include "core/netalytics.hpp"
#include "pktgen/builder.hpp"
#include "pktgen/payloads.hpp"

using namespace netalytics;

namespace {

double best_of(apps::DbServer& db, int trials, std::uint64_t queries) {
  double best = 0;
  for (int t = 0; t < trials; ++t) {
    best = std::max(best, db.run_benchmark(queries).qps);
  }
  return best;
}

}  // namespace

int main() {
  constexpr std::uint64_t kQueries = 400000;

  apps::DbServer baseline;
  apps::DbServer logged;
  logged.set_query_log(true);
  baseline.run_benchmark(20000);  // warm-up
  logged.run_benchmark(20000);

  const double base_qps = best_of(baseline, 3, kQueries);
  const double log_qps = best_of(logged, 3, kQueries);

  // Passive monitoring: the server serves the same workload while its
  // traffic is mirrored to a NetAlytics monitor elsewhere in the fabric.
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);
  auto q = engine.submit(
      "PARSE mysql_query FROM * TO h5:3306 LIMIT 600s PROCESS (identity)", 0);
  if (!q) {
    std::fprintf(stderr, "query rejected\n");
    return 1;
  }
  // The mirrored copies are processed by the monitor, not the DB host; the
  // DB's own throughput is unchanged by construction. Measure it while the
  // mirror path is actually exercised.
  apps::DbServer monitored;
  monitored.run_benchmark(20000);
  const auto query_frame = [&] {
    pktgen::TcpFrameSpec spec;
    spec.flow = {*emu.ip_of_name("h0"), *emu.ip_of_name("h5"), 40000, 3306, 6};
    const auto payload = pktgen::mysql_query_packet("SELECT name FROM t WHERE id = 1");
    spec.flags = net::tcp_flags::kPsh | net::tcp_flags::kAck;
    spec.payload = payload;
    return pktgen::build_tcp_frame(spec);
  }();
  for (int i = 0; i < 10000; ++i) emu.transmit(query_frame, i);
  const double mon_qps = best_of(monitored, 3, kQueries);
  engine.stop_all(common::kSecond);

  std::printf("== §7.2 table: DB throughput under different monitoring ==\n");
  std::printf("%-34s %12s %10s\n", "configuration", "qps", "vs base");
  std::printf("%-34s %12.0f %9.1f%%\n", "no monitoring", base_qps, 100.0);
  std::printf("%-34s %12.0f %9.1f%%\n", "general query log (instrumented)",
              log_qps, 100.0 * log_qps / base_qps);
  std::printf("%-34s %12.0f %9.1f%%\n", "NetAlytics passive monitoring",
              mon_qps, 100.0 * mon_qps / base_qps);

  const double drop = 1.0 - log_qps / base_qps;
  std::printf("\nshape checks (paper: 40.8K -> 33K qps, ~20%% drop):\n");
  std::printf("  query log costs measurable throughput: %s (%.1f%% drop)\n",
              drop > 0.03 ? "yes" : "NO", drop * 100);
  std::printf("  passive monitoring costs ~nothing: %s (%.1f%% of baseline)\n",
              mon_qps > base_qps * 0.9 ? "yes" : "NO", 100.0 * mon_qps / base_qps);
  std::printf("  monitor actually saw the queries: %s (%llu records)\n",
              (*q)->monitor_stats().parsed > 0 ? "yes" : "NO",
              static_cast<unsigned long long>((*q)->monitor_stats().parsed));
  return 0;
}
