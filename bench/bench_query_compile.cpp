// Query-path microbenchmarks (Table 3): lexing, parsing, semantic
// validation, and full compilation to a deployment plan. NetAlytics
// queries are interactive, so submission latency matters.
#include <benchmark/benchmark.h>

#include "core/compiler.hpp"
#include "parsers/parsers.hpp"
#include "query/lexer.hpp"
#include "query/parser.hpp"

using namespace netalytics;

namespace {

const char* kQuery =
    "PARSE tcp_conn_time, http_get FROM 10.0.0.1:5555 TO 10.0.1.1:80 "
    "LIMIT 90s SAMPLE auto PROCESS (top-k: k=10, w=10s)";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::tokenize(kQuery));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Tokenize);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::parse_query(kQuery));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Parse);

void BM_ParseAndValidate(benchmark::State& state) {
  parsers::register_builtin_parsers();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::parse_and_validate(kQuery));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseAndValidate);

void BM_CompileToPlan(benchmark::State& state) {
  parsers::register_builtin_parsers();
  auto emu = core::Emulation::make_small(4);
  const auto validated = query::parse_and_validate(kQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_query(*validated, emu));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileToPlan);

void BM_CompileSubnetQuery(benchmark::State& state) {
  parsers::register_builtin_parsers();
  auto emu = core::Emulation::make_small(4);
  const auto validated = query::parse_and_validate(
      "PARSE http_get FROM 10.0.0.0/22 TO h5:80 PROCESS (top-k)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_query(*validated, emu));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileSubnetQuery);

}  // namespace
