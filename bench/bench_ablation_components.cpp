// Component microbenchmarks: per-packet decode, each Table-1 parser,
// flow-table lookup, sampling, and the top-k window operations — the
// per-stage costs behind the Fig. 5/6 system numbers.
#include <benchmark/benchmark.h>

#include "nf/parser.hpp"
#include "nf/sampler.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"
#include "sdn/flow_table.hpp"
#include "stream/topk.hpp"

using namespace netalytics;

namespace {

struct NullSink final : nf::RecordSink {
  void emit(nf::Record) override {}
};

void BM_DecodePacket(benchmark::State& state) {
  pktgen::GeneratorConfig cfg;
  cfg.kind = pktgen::TrafficKind::http_get;
  cfg.frame_size = static_cast<std::size_t>(state.range(0));
  pktgen::TrafficGenerator gen(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_packet(gen.next_frame()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodePacket)->Arg(64)->Arg(512)->Arg(1024);

void BM_Parser(benchmark::State& state, const char* parser_name,
               pktgen::TrafficKind kind) {
  parsers::register_builtin_parsers();
  pktgen::GeneratorConfig cfg;
  cfg.kind = kind;
  cfg.frame_size = 512;
  pktgen::TrafficGenerator gen(cfg);
  auto parser = nf::ParserRegistry::instance().make(parser_name);
  NullSink sink;
  for (auto _ : state) {
    auto decoded = net::decode_packet(gen.next_frame());
    parser->on_packet(*decoded, sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Parser, tcp_flow_key, "tcp_flow_key",
                  pktgen::TrafficKind::raw_tcp);
BENCHMARK_CAPTURE(BM_Parser, tcp_conn_time, "tcp_conn_time",
                  pktgen::TrafficKind::tcp_lifecycle);
BENCHMARK_CAPTURE(BM_Parser, tcp_pkt_size, "tcp_pkt_size",
                  pktgen::TrafficKind::raw_tcp);
BENCHMARK_CAPTURE(BM_Parser, http_get, "http_get", pktgen::TrafficKind::http_get);
BENCHMARK_CAPTURE(BM_Parser, memcached_get, "memcached_get",
                  pktgen::TrafficKind::memcached_get);
BENCHMARK_CAPTURE(BM_Parser, mysql_query, "mysql_query",
                  pktgen::TrafficKind::mysql_query);

void BM_FlowSampler(benchmark::State& state) {
  nf::FlowSampler sampler(0.5);
  std::uint64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.keep(h++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowSampler);

void BM_FlowTableLookup(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  sdn::FlowTable table(static_cast<std::size_t>(rules) + 1);
  for (int i = 0; i < rules; ++i) {
    sdn::FlowRule rule;
    rule.priority = 10;
    rule.match.dst_port = static_cast<net::Port>(1000 + i);
    rule.actions = {sdn::OutputAction{0}};
    table.install(rule, 0);
  }
  sdn::FlowRule fallback;
  fallback.priority = 0;
  fallback.actions = {sdn::OutputAction{0}};
  table.install(fallback, 0);

  pktgen::GeneratorConfig cfg;
  cfg.kind = pktgen::TrafficKind::raw_tcp;
  pktgen::TrafficGenerator gen(cfg);
  const auto decoded = net::decode_packet(gen.next_frame());
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(*decoded, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(4)->Arg(64)->Arg(512);

void BM_RollingCounterIncr(benchmark::State& state) {
  stream::RollingCounter counter(10);
  const std::string keys[] = {"/a", "/b", "/c", "/d"};
  std::size_t i = 0;
  for (auto _ : state) {
    counter.incr(keys[i++ % 4]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RollingCounterIncr);

void BM_RankingsUpdate(benchmark::State& state) {
  stream::Rankings rankings(10);
  std::uint64_t i = 0;
  for (auto _ : state) {
    rankings.update("key" + std::to_string(i % 50), i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankingsUpdate);

}  // namespace
