// Figures 16-17 — real-time popularity monitoring and automated
// replication (§7.3): a churning-Zipf video trace watched by top-k
// (Fig. 16), then a hot burst at t=10s that the updater bolt answers by
// growing the server pool, redistributing load (Fig. 17).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/videoservice.hpp"
#include "core/netalytics.hpp"

using namespace netalytics;

int main() {
  auto emu = core::Emulation::make_small(4);
  core::NetAlytics engine(emu);
  stream::KvStore kvstore;
  apps::VideoService service(emu, kvstore, {});

  stream::UpdaterConfig updater;
  updater.upper_threshold = 40;
  updater.lower_threshold = 2;
  updater.backoff = 3 * common::kSecond;
  int scale_ups = 0;
  engine.set_automation(
      &kvstore, updater,
      [&](const std::string& url, std::uint64_t count) {
        ++scale_ups;
        service.scale_up(url, count);
      },
      nullptr);

  const auto q = engine.submit(
      "PARSE http_get FROM * TO 10.30.1.0/24:80 LIMIT 600s SAMPLE * "
      "PROCESS (top-k: k=10, w=5s)",
      0);
  if (!q) {
    std::fprintf(stderr, "query rejected: %s\n", q.error().to_string().c_str());
    return 1;
  }

  std::printf("== Figure 16: video popularity over time (top-k, %% of #1) ==\n");
  std::printf("%-6s %-8s %-8s %-6s  server requests/s (Fig. 17 series)\n",
              "t(s)", "vid#2", "vid#3", "pool");

  std::vector<std::size_t> pool_series;
  std::map<std::string, std::vector<std::uint64_t>> server_series;
  common::Timestamp now = 0;
  for (int second = 1; second <= 30; ++second) {
    now = static_cast<common::Timestamp>(second) * common::kSecond;
    service.run_baseline(now - common::kSecond, 60, common::kSecond);
    if (second >= 10) service.run_hot_burst(now - common::kSecond, 90, common::kSecond);
    if (second % 5 == 0) service.churn_popularity(0.05);
    engine.pump(now + common::kMillisecond);

    std::vector<std::uint64_t> counts;
    for (const auto& [url, text] : kvstore.hgetall("topk")) {
      counts.push_back(std::stoull(text));
    }
    std::sort(counts.rbegin(), counts.rend());
    const double top = counts.empty() ? 1.0 : std::max<double>(counts[0], 1);
    const double v2 = counts.size() > 1 ? 100.0 * counts[1] / top : 0;
    const double v3 = counts.size() > 2 ? 100.0 * counts[2] / top : 0;
    pool_series.push_back(service.pool_size());

    std::printf("%-6d %-8.0f %-8.0f %-6zu ", second, v2, v3, service.pool_size());
    for (const auto& [server, count] : service.take_per_server_counts()) {
      server_series[server].push_back(count);
      std::printf(" %s=%-4llu", server.c_str() + 4,  // strip "vid-"
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }
  engine.stop_all(now);

  std::printf("\nshape checks (paper §7.3):\n");
  std::printf("  popularity ranks fluctuate over intervals (Fig. 16): yes by "
              "construction of the churned trace\n");
  std::printf("  pool grew after the burst: %s (1 -> %zu servers, %d scale-ups)\n",
              pool_series.back() > 1 ? "yes" : "NO", pool_series.back(), scale_ups);
  const auto& s2 = server_series["vid-server2"];
  const bool redistributed =
      !s2.empty() && s2.back() > 0 &&
      std::all_of(s2.begin(), s2.begin() + 9, [](std::uint64_t c) { return c == 0; });
  std::printf("  load redistributed to new servers after t=10s (Fig. 17): %s\n",
              redistributed ? "yes" : "NO");
  return 0;
}
