// Metrics overhead — the cost of self-observability on the hot path.
//
// The instrumentation contract (common/metrics.hpp) is that a counter inc
// is one relaxed atomic add and a histogram observe is three, so fully
// instrumented pipeline code stays within noise of uninstrumented code.
// This harness measures both halves of that claim on this machine:
//   1. raw metric-op cost (inc / gauge set / observe), ns per op;
//   2. monitor inline-path throughput (same cell as Figure 5, 256 B HTTP),
//      which crosses every instrumented layer of the monitor.
// Build once normally and once with -DNETALYTICS_NO_METRICS=ON and compare
// the Mpps lines: the acceptance budget for this repo is 2%.
#include <chrono>
#include <cstdio>

#include "common/metrics.hpp"
#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"

using namespace netalytics;

namespace {

double secs_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// ns per op over `iters` calls of `op` (called with the iteration index).
template <typename Op>
double ns_per_op(std::uint64_t iters, Op&& op) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) op(i);
  return secs_since(start) * 1e9 / static_cast<double>(iters);
}

double monitor_mpps() {
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = pktgen::TrafficKind::http_get;
  gcfg.frame_size = 256;
  gcfg.flow_count = 512;
  pktgen::TrafficGenerator gen(gcfg);

  nf::MonitorConfig mcfg;
  mcfg.parsers = {{"http_get", 1}};
  mcfg.output_batch_records = 64;
  nf::Monitor monitor(mcfg, [](std::string_view, std::vector<std::byte>,
                               const nf::BatchInfo&) {});

  for (int i = 0; i < 20000; ++i) monitor.process(gen.next_frame(), i);

  constexpr auto kWindow = std::chrono::milliseconds(400);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t packets = 0;
  while (std::chrono::steady_clock::now() - start < kWindow) {
    for (int i = 0; i < 2000; ++i) {
      monitor.process(gen.next_frame(), packets);
      ++packets;
    }
  }
  const double secs = secs_since(start);
  monitor.close(packets);
  return static_cast<double>(packets) / secs / 1e6;
}

}  // namespace

int main() {
  parsers::register_builtin_parsers();
#ifdef NETALYTICS_NO_METRICS
  const char* mode = "NETALYTICS_NO_METRICS (mutations compiled out)";
#else
  const char* mode = "instrumented (relaxed-atomic hot path)";
#endif
  std::printf("== Metrics overhead (%s) ==\n", mode);

  common::MetricsRegistry registry;
  auto& counter = registry.counter("bench.hits");
  auto& gauge = registry.gauge("bench.depth");
  auto& hist = registry.histogram("bench.lat");

  constexpr std::uint64_t kOps = 50'000'000;
  std::printf("%-28s %8.2f ns/op\n", "Counter::inc",
              ns_per_op(kOps, [&](std::uint64_t) { counter.inc(); }));
  std::printf("%-28s %8.2f ns/op\n", "Gauge::set",
              ns_per_op(kOps, [&](std::uint64_t i) {
                gauge.set(static_cast<std::int64_t>(i));
              }));
  std::printf("%-28s %8.2f ns/op\n", "HistogramMetric::observe",
              ns_per_op(kOps, [&](std::uint64_t i) {
                hist.observe(i % (10 * common::kSecond));
              }));

  // Best of two windows, as in the Figure 5 harness.
  const double a = monitor_mpps();
  const double b = monitor_mpps();
  std::printf("%-28s %8.2f Mpps\n", "monitor inline path (256B)",
              a >= b ? a : b);
  std::printf("\ncompare this Mpps line against a build with "
              "-DNETALYTICS_NO_METRICS=ON (budget: 2%%)\n");
  return 0;
}
