// Ablation — zero-copy packet fan-out (§5.2): "The collector puts a
// pointer to each packet into the queues, i.e. it does not copy the
// packets themselves." Compares refcounted descriptor fan-out to N parsers
// against copying the packet per parser.
#include <benchmark/benchmark.h>

#include <cstring>

#include "net/packet.hpp"
#include "pktgen/generator.hpp"

using namespace netalytics;

namespace {

pktgen::TrafficGenerator& generator() {
  static pktgen::GeneratorConfig cfg = [] {
    pktgen::GeneratorConfig c;
    c.kind = pktgen::TrafficKind::raw_tcp;
    c.frame_size = 1024;
    return c;
  }();
  static pktgen::TrafficGenerator gen(cfg);
  return gen;
}

void BM_FanoutZeroCopy(benchmark::State& state) {
  const int parsers = static_cast<int>(state.range(0));
  net::PacketPool pool(256);
  auto& gen = generator();
  for (auto _ : state) {
    auto pkt = pool.make_packet(gen.next_frame(), 0);
    // Fan out descriptors: each "parser" gets a refcounted handle and
    // reads the shared buffer.
    std::uint64_t sum = 0;
    for (int p = 0; p < parsers; ++p) {
      net::PacketPtr handle = pkt;
      sum += static_cast<std::uint64_t>(handle->bytes()[64]);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FanoutZeroCopy)->Arg(1)->Arg(2)->Arg(4);

void BM_FanoutCopying(benchmark::State& state) {
  const int parsers = static_cast<int>(state.range(0));
  net::PacketPool pool(256);
  auto& gen = generator();
  for (auto _ : state) {
    const auto frame = gen.next_frame();
    std::uint64_t sum = 0;
    for (int p = 0; p < parsers; ++p) {
      // Copy the packet into a fresh buffer per parser (the naive design).
      auto copy = pool.make_packet(frame, 0);
      sum += static_cast<std::uint64_t>(copy->bytes()[64]);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FanoutCopying)->Arg(1)->Arg(2)->Arg(4);

void BM_PoolAllocateRelease(benchmark::State& state) {
  net::PacketPool pool(256);
  for (auto _ : state) {
    auto pkt = pool.allocate();
    benchmark::DoNotOptimize(pkt.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocateRelease);

}  // namespace
