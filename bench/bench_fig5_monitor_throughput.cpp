// Figure 5 — monitor throughput vs packet size, one parser core.
//
// Paper setup: PktGen-DPDK feeds one monitor running a single parser
// thread; tcp_conn_time (minimal work) reaches 10 Gbps line rate at 128 B
// packets, http_get (string parsing) needs >= 256 B packets.
//
// Here the generator replays template frames into the monitor's inline
// path (decode + sample + parse), so the measured cost is the same code
// the threaded monitor runs per packet. Absolute Gbps depends on this
// machine; the paper's shape — the simple parser faster everywhere, both
// rising with packet size — is what EXPERIMENTS.md tracks.
#include <chrono>
#include <cstdio>

#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"

using namespace netalytics;

namespace {

struct Cell {
  double mpps = 0;
  double gbps = 0;
  double mean_frame = 0;  // a GET request cannot fit a 64 B frame, so the
                          // generator emits the smallest legal frame instead
};

Cell run_cell_once(const std::string& parser, pktgen::TrafficKind kind,
                   std::size_t frame_size) {
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = kind;
  gcfg.frame_size = frame_size;
  gcfg.flow_count = 512;
  pktgen::TrafficGenerator gen(gcfg);

  nf::MonitorConfig mcfg;
  mcfg.parsers = {{parser, 1}};
  mcfg.output_batch_records = 64;
  nf::Monitor monitor(mcfg, [](std::string_view, std::vector<std::byte>,
                               const nf::BatchInfo&) {});

  // Warm up, then measure a fixed wall-clock window.
  for (int i = 0; i < 20000; ++i) monitor.process(gen.next_frame(), i);

  constexpr auto kWindow = std::chrono::milliseconds(400);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  while (std::chrono::steady_clock::now() - start < kWindow) {
    for (int i = 0; i < 2000; ++i) {
      const auto frame = gen.next_frame();
      monitor.process(frame, packets);
      bytes += frame.size();
      ++packets;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  monitor.close(packets);
  return {static_cast<double>(packets) / secs / 1e6,
          static_cast<double>(bytes) * 8.0 / secs / 1e9, gen.mean_frame_size()};
}

/// Best of two windows, to shrug off scheduler noise on shared machines.
Cell run_cell(const std::string& parser, pktgen::TrafficKind kind,
              std::size_t frame_size) {
  const Cell a = run_cell_once(parser, kind, frame_size);
  const Cell b = run_cell_once(parser, kind, frame_size);
  return a.mpps >= b.mpps ? a : b;
}

}  // namespace

int main() {
  parsers::register_builtin_parsers();
  std::printf("== Figure 5: monitor throughput vs packet size (1 parser core) ==\n");
  std::printf("%-8s %-16s %10s %10s %10s\n", "size(B)", "parser", "Mpps",
              "Gbps", "frame(B)");

  const std::size_t sizes[] = {64, 128, 256, 512, 1024};
  Cell conn_cells[5], http_cells[5];
  for (int s = 0; s < 5; ++s) {
    conn_cells[s] =
        run_cell("tcp_conn_time", pktgen::TrafficKind::tcp_lifecycle, sizes[s]);
    http_cells[s] = run_cell("http_get", pktgen::TrafficKind::http_get, sizes[s]);
    std::printf("%-8zu %-16s %10.2f %10.2f %10.0f\n", sizes[s], "tcp_conn_time",
                conn_cells[s].mpps, conn_cells[s].gbps, conn_cells[s].mean_frame);
    std::printf("%-8zu %-16s %10.2f %10.2f %10.0f\n", sizes[s], "http_get",
                http_cells[s].mpps, http_cells[s].gbps, http_cells[s].mean_frame);
  }

  std::printf("\nshape checks (paper Fig. 5):\n");
  // Per-packet cost is the apples-to-apples comparison: a GET request does
  // not fit a 64 B frame, so tiny http frames carry more bytes than asked.
  bool simple_wins = true;
  for (int s = 0; s < 5; ++s) {
    simple_wins &= conn_cells[s].mpps >= http_cells[s].mpps * 0.85;
  }
  std::printf("  tcp_conn_time packet rate >= http_get at every size: %s\n",
              simple_wins ? "yes" : "NO");
  std::printf("  throughput grows with packet size: %s / %s\n",
              conn_cells[4].gbps > conn_cells[0].gbps * 2 ? "yes (conn)"
                                                          : "NO (conn)",
              http_cells[4].gbps > http_cells[0].gbps * 2 ? "yes (http)"
                                                          : "NO (http)");
  // Line-rate crossover: the simple parser reaches 10 Gbps at a smaller
  // packet size than the string-processing parser (paper: 128 B vs 256 B).
  auto crossover = [](const Cell cells[5], const std::size_t szs[5]) -> std::size_t {
    for (int s = 0; s < 5; ++s) {
      if (cells[s].gbps >= 10.0) return szs[s];
    }
    return 0;
  };
  const auto conn_cross = crossover(conn_cells, sizes);
  const auto http_cross = crossover(http_cells, sizes);
  std::printf("  10 Gbps crossover: tcp_conn_time at %zu B, http_get at %zu B "
              "(simple parser crosses no later): %s\n",
              conn_cross, http_cross,
              (conn_cross != 0 && (http_cross == 0 || conn_cross <= http_cross))
                  ? "yes"
                  : "NO");
  return 0;
}
