// Trace-provenance overhead: the fig6-style pipeline (generated http_get
// frames -> monitor -> producer -> broker -> kafka spout) run at trace
// sample denominators {off, 1024, 256, 16, 1}. The flight recorder's cost
// is one hash per admitted packet plus, for sampled packets, a span stamp
// at every stage; the acceptance bar is <= 5% throughput cost at 1/256
// against tracing disabled.
//
// Two observability-export cells ride along: serialization throughput of
// the chrome://tracing exporter over the spans the 1/256 and 1/1 runs
// collected (spans/sec and JSON bytes), and the executor stage profiler's
// throughput cost on a stepped topology (bar: <= 5% against profiling
// off).
//
// Results land in BENCH_trace.json in the working directory.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "mq/producer.hpp"
#include "nf/monitor.hpp"
#include "obs/chrome_trace.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"
#include "stream/bolts.hpp"
#include "stream/executor.hpp"
#include "stream/kafka_spout.hpp"

using namespace netalytics;

namespace {

constexpr std::size_t kFrameSize = 512;
constexpr std::size_t kPackets = 200'000;
constexpr std::size_t kFlushEvery = 4096;

struct TupleCounter final : stream::Collector {
  void emit(stream::Tuple) override { ++tuples; }
  std::uint64_t tuples = 0;
};

struct RunResult {
  double pkts_per_sec = 0;
  std::uint64_t spans = 0;
  std::uint64_t tuples = 0;
};

/// One full pipeline pass over kPackets pre-built frames with the recorder
/// at `denominator` (0 = tracing off). Virtual time advances one unit per
/// packet; real time is what the clock measures. `spans_out`, when given,
/// receives the collected spans (for the export cells).
RunResult run_pipeline(std::uint64_t denominator,
                       std::vector<common::TraceSpan>* spans_out = nullptr) {
  parsers::register_builtin_parsers();
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = pktgen::TrafficKind::http_get;
  gcfg.frame_size = kFrameSize;
  pktgen::TrafficGenerator gen(gcfg);
  // Frames are built outside the timed region: the clock sees the pipeline,
  // not the packet generator.
  std::vector<std::vector<std::byte>> frames;
  frames.reserve(kFlushEvery);
  for (std::size_t i = 0; i < kFlushEvery; ++i) {
    const auto f = gen.next_frame();
    frames.emplace_back(f.begin(), f.end());
  }

  common::MetricsRegistry registry;
  common::TraceRecorder recorder(
      common::TraceRecorder::Config{.sample_denominator = denominator});
  common::DropLedger ledger(registry, "drop");

  mq::Cluster cluster(1);
  mq::Producer producer(cluster, 1);
  producer.bind_metrics(registry, "producer", nullptr, &recorder, &ledger);

  common::Timestamp now = 0;
  nf::MonitorConfig mcfg;
  mcfg.parsers = {{"http_get", 1}};
  mcfg.metrics = &registry;
  mcfg.trace_recorder = &recorder;
  mcfg.drop_ledger = &ledger;
  nf::Monitor monitor(mcfg, [&producer, &now](std::string_view topic,
                                              std::vector<std::byte> payload,
                                              const nf::BatchInfo& info) {
    producer.send(topic, std::move(payload), now, info.records,
                  {info.traces.begin(), info.traces.end()});
  });

  stream::KafkaSpout spout(cluster, "bench", "http_get");
  spout.bind_metrics(registry, "spout", nullptr, &recorder, &ledger);
  TupleCounter sink;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kPackets; ++i) {
    monitor.process(frames[i % kFlushEvery], ++now);
    if ((i + 1) % kFlushEvery == 0) {
      producer.flush(now);
      while (spout.next_tuple(sink, now)) {
      }
    }
  }
  monitor.close(now);
  producer.drain(now);
  while (spout.next_tuple(sink, now)) {
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.pkts_per_sec = static_cast<double>(kPackets) / secs;
  r.spans = recorder.span_count();
  r.tuples = sink.tuples;
  if (spans_out != nullptr) *spans_out = recorder.collect();
  return r;
}

RunResult best_of_three(std::uint64_t denominator) {
  RunResult best = run_pipeline(denominator);
  for (int i = 0; i < 2; ++i) {
    const RunResult r = run_pipeline(denominator);
    if (r.pkts_per_sec > best.pkts_per_sec) best = r;
  }
  return best;
}

struct ExportCell {
  std::uint64_t denominator = 0;
  std::uint64_t spans = 0;
  std::size_t json_bytes = 0;
  double spans_per_sec = 0;
};

/// Serialization throughput of the chrome-trace exporter over the span set
/// one pipeline run at `denominator` collected. Repeated exports amortize
/// the clock; best of three repetitions.
ExportCell measure_export(std::uint64_t denominator) {
  std::vector<common::TraceSpan> spans;
  run_pipeline(denominator, &spans);
  const obs::ChromeTraceExporter exporter;
  constexpr int kReps = 50;
  ExportCell cell;
  cell.denominator = denominator;
  cell.spans = spans.size();
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    std::string json;
    for (int i = 0; i < kReps; ++i) json = exporter.export_json(spans);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    cell.json_bytes = json.size();
    const double rate =
        static_cast<double>(spans.size()) * kReps / (secs > 0 ? secs : 1e-9);
    if (rate > cell.spans_per_sec) cell.spans_per_sec = rate;
  }
  return cell;
}

constexpr std::size_t kProfilerTuples = 200'000;

/// Counting spout for the profiler cell: `n` two-field tuples.
struct CountSpout final : stream::Spout {
  explicit CountSpout(std::size_t n) : left(n) {}
  bool next_tuple(stream::Collector& out, common::Timestamp) override {
    if (left == 0) return false;
    --left;
    out.emit(stream::Tuple{
        {std::uint64_t(left), std::string("k" + std::to_string(left % 8))}});
    return true;
  }
  std::size_t left;
};

/// Tuples/sec of a stepped filter -> group-agg -> sink topology with the
/// stage profiler on or off. Same virtual-time loop either way; the
/// profiler adds two steady_clock reads per task execution and one relaxed
/// add per tuple.
double run_profiled_topology(bool profile) {
  stream::TopologyBuilder b("prof");
  b.set_spout(
      "s", [] { return std::make_unique<CountSpout>(kProfilerTuples); },
      {"n", "k"});
  b.set_bolt("pass",
             [] {
               return std::make_unique<stream::FilterBolt>(
                   [](const stream::Tuple& t) {
                     return stream::as_u64(t.at(0)) % 7 != 0;
                   });
             },
             {"n", "k"}, 2)
      .shuffle_grouping("s");
  b.set_bolt("agg",
             [] {
               stream::GroupAggConfig cfg;
               cfg.group_indices = {1};
               cfg.value_index = 0;
               cfg.op = stream::AggOp::sum;
               return std::make_unique<stream::GroupAggBolt>(cfg);
             },
             {"k", "sum", "samples"}, 2)
      .fields_grouping("pass", {"k"});
  b.set_bolt("sink",
             [] {
               return std::make_unique<stream::SinkBolt>(
                   [](const stream::Tuple&) {});
             },
             {})
      .global_grouping("agg");

  common::MetricsRegistry registry;
  auto topo = stream::make_executor(
      b.build(), stream::ExecutorConfig{.workers = 1, .profile = profile});
  topo->bind_metrics(registry, "bench");
  common::Timestamp now = 0;
  const auto start = std::chrono::steady_clock::now();
  while (topo->step(++now, 1024) > 0) {
  }
  topo->close(++now);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(topo->tuples_executed()) / secs;
}

double best_profiled(bool profile) {
  double best = run_profiled_topology(profile);
  for (int i = 0; i < 2; ++i) {
    const double r = run_profiled_topology(profile);
    if (r > best) best = r;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== trace provenance overhead: %zu pkts/run, %zu B frames ==\n",
              kPackets, kFrameSize);

  const std::uint64_t denominators[] = {0, 1024, 256, 16, 1};
  RunResult results[5];
  for (int i = 0; i < 5; ++i) results[i] = best_of_three(denominators[i]);
  const double baseline = results[0].pkts_per_sec;

  std::printf("%-12s %14s %12s %10s %10s\n", "sample rate", "pkts/s",
              "overhead", "spans", "tuples");
  double overhead[5] = {};
  for (int i = 0; i < 5; ++i) {
    overhead[i] = (baseline - results[i].pkts_per_sec) / baseline * 100.0;
    char label[24];
    if (denominators[i] == 0) {
      std::snprintf(label, sizeof label, "off");
    } else {
      std::snprintf(label, sizeof label, "1/%llu",
                    static_cast<unsigned long long>(denominators[i]));
    }
    std::printf("%-12s %14.0f %11.2f%% %10llu %10llu\n", label,
                results[i].pkts_per_sec, overhead[i],
                static_cast<unsigned long long>(results[i].spans),
                static_cast<unsigned long long>(results[i].tuples));
    if (results[i].tuples == 0) {
      std::fprintf(stderr, "pipeline produced no tuples at %s\n", label);
      return 1;
    }
    if (denominators[i] != 0 && results[i].spans == 0) {
      std::fprintf(stderr, "recorder captured no spans at %s\n", label);
      return 1;
    }
  }

  const bool trace_pass = overhead[2] <= 5.0;  // the 1/256 bar
  std::printf("\noverhead at 1/256: %.2f%% (target <= 5%%): %s\n", overhead[2],
              trace_pass ? "yes" : "NO");

  // Export path: chrome-trace serialization over the collected span sets.
  std::printf("\n== chrome-trace export path ==\n");
  std::printf("%-12s %10s %12s %14s\n", "sample rate", "spans", "json bytes",
              "spans/s");
  const ExportCell exports[] = {measure_export(256), measure_export(1)};
  for (const auto& cell : exports) {
    std::printf("1/%-10llu %10llu %12zu %14.0f\n",
                static_cast<unsigned long long>(cell.denominator),
                static_cast<unsigned long long>(cell.spans), cell.json_bytes,
                cell.spans_per_sec);
    if (cell.spans == 0 || cell.json_bytes == 0) {
      std::fprintf(stderr, "export cell collected nothing\n");
      return 1;
    }
  }

  // Executor stage profiler: throughput cost on a stepped topology.
  const double prof_off = best_profiled(false);
  const double prof_on = best_profiled(true);
  const double prof_overhead = (prof_off - prof_on) / prof_off * 100.0;
  const bool prof_pass = prof_overhead <= 5.0;
  std::printf("\n== executor stage profiler ==\n");
  std::printf("profiler off: %.0f tuples/s\nprofiler on:  %.0f tuples/s\n",
              prof_off, prof_on);
  std::printf("overhead: %.2f%% (target <= 5%%): %s\n", prof_overhead,
              prof_pass ? "yes" : "NO");

  const bool pass = trace_pass && prof_pass;
  if (std::FILE* f = std::fopen("BENCH_trace.json", "w")) {
    std::fprintf(f, "{\n  \"packets_per_run\": %zu,\n  \"frame_bytes\": %zu,\n",
                 kPackets, kFrameSize);
    std::fprintf(f, "  \"sweep\": [\n");
    for (int i = 0; i < 5; ++i) {
      std::fprintf(f,
                   "    {\"denominator\": %llu, \"pkts_per_sec\": %.0f, "
                   "\"overhead_pct\": %.2f, \"spans\": %llu}%s\n",
                   static_cast<unsigned long long>(denominators[i]),
                   results[i].pkts_per_sec, overhead[i],
                   static_cast<unsigned long long>(results[i].spans),
                   i < 4 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"overhead_pct_at_256\": %.2f,\n", overhead[2]);
    std::fprintf(f, "  \"export\": [\n");
    for (std::size_t i = 0; i < 2; ++i) {
      std::fprintf(f,
                   "    {\"denominator\": %llu, \"spans\": %llu, "
                   "\"json_bytes\": %zu, \"spans_per_sec\": %.0f}%s\n",
                   static_cast<unsigned long long>(exports[i].denominator),
                   static_cast<unsigned long long>(exports[i].spans),
                   exports[i].json_bytes, exports[i].spans_per_sec,
                   i == 0 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"profiler\": {\n");
    std::fprintf(f,
                 "    \"tuples_per_sec_off\": %.0f,\n"
                 "    \"tuples_per_sec_on\": %.0f,\n"
                 "    \"overhead_pct\": %.2f,\n"
                 "    \"pass\": %s\n  },\n",
                 prof_off, prof_on, prof_overhead,
                 prof_pass ? "true" : "false");
    std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
