// Trace-provenance overhead: the fig6-style pipeline (generated http_get
// frames -> monitor -> producer -> broker -> kafka spout) run at trace
// sample denominators {off, 1024, 256, 16, 1}. The flight recorder's cost
// is one hash per admitted packet plus, for sampled packets, a span stamp
// at every stage; the acceptance bar is <= 5% throughput cost at 1/256
// against tracing disabled.
//
// Results land in BENCH_trace.json in the working directory.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/trace.hpp"
#include "mq/producer.hpp"
#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"
#include "stream/kafka_spout.hpp"

using namespace netalytics;

namespace {

constexpr std::size_t kFrameSize = 512;
constexpr std::size_t kPackets = 200'000;
constexpr std::size_t kFlushEvery = 4096;

struct TupleCounter final : stream::Collector {
  void emit(stream::Tuple) override { ++tuples; }
  std::uint64_t tuples = 0;
};

struct RunResult {
  double pkts_per_sec = 0;
  std::uint64_t spans = 0;
  std::uint64_t tuples = 0;
};

/// One full pipeline pass over kPackets pre-built frames with the recorder
/// at `denominator` (0 = tracing off). Virtual time advances one unit per
/// packet; real time is what the clock measures.
RunResult run_pipeline(std::uint64_t denominator) {
  parsers::register_builtin_parsers();
  pktgen::GeneratorConfig gcfg;
  gcfg.kind = pktgen::TrafficKind::http_get;
  gcfg.frame_size = kFrameSize;
  pktgen::TrafficGenerator gen(gcfg);
  // Frames are built outside the timed region: the clock sees the pipeline,
  // not the packet generator.
  std::vector<std::vector<std::byte>> frames;
  frames.reserve(kFlushEvery);
  for (std::size_t i = 0; i < kFlushEvery; ++i) {
    const auto f = gen.next_frame();
    frames.emplace_back(f.begin(), f.end());
  }

  common::MetricsRegistry registry;
  common::TraceRecorder recorder(
      common::TraceRecorder::Config{.sample_denominator = denominator});
  common::DropLedger ledger(registry, "drop");

  mq::Cluster cluster(1);
  mq::Producer producer(cluster, 1);
  producer.bind_metrics(registry, "producer", nullptr, &recorder, &ledger);

  common::Timestamp now = 0;
  nf::MonitorConfig mcfg;
  mcfg.parsers = {{"http_get", 1}};
  mcfg.metrics = &registry;
  mcfg.trace_recorder = &recorder;
  mcfg.drop_ledger = &ledger;
  nf::Monitor monitor(mcfg, [&producer, &now](std::string_view topic,
                                              std::vector<std::byte> payload,
                                              const nf::BatchInfo& info) {
    producer.send(topic, std::move(payload), now, info.records,
                  {info.traces.begin(), info.traces.end()});
  });

  stream::KafkaSpout spout(cluster, "bench", "http_get");
  spout.bind_metrics(registry, "spout", nullptr, &recorder, &ledger);
  TupleCounter sink;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kPackets; ++i) {
    monitor.process(frames[i % kFlushEvery], ++now);
    if ((i + 1) % kFlushEvery == 0) {
      producer.flush(now);
      while (spout.next_tuple(sink, now)) {
      }
    }
  }
  monitor.close(now);
  producer.drain(now);
  while (spout.next_tuple(sink, now)) {
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  r.pkts_per_sec = static_cast<double>(kPackets) / secs;
  r.spans = recorder.span_count();
  r.tuples = sink.tuples;
  return r;
}

RunResult best_of_three(std::uint64_t denominator) {
  RunResult best = run_pipeline(denominator);
  for (int i = 0; i < 2; ++i) {
    const RunResult r = run_pipeline(denominator);
    if (r.pkts_per_sec > best.pkts_per_sec) best = r;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== trace provenance overhead: %zu pkts/run, %zu B frames ==\n",
              kPackets, kFrameSize);

  const std::uint64_t denominators[] = {0, 1024, 256, 16, 1};
  RunResult results[5];
  for (int i = 0; i < 5; ++i) results[i] = best_of_three(denominators[i]);
  const double baseline = results[0].pkts_per_sec;

  std::printf("%-12s %14s %12s %10s %10s\n", "sample rate", "pkts/s",
              "overhead", "spans", "tuples");
  double overhead[5] = {};
  for (int i = 0; i < 5; ++i) {
    overhead[i] = (baseline - results[i].pkts_per_sec) / baseline * 100.0;
    char label[16];
    if (denominators[i] == 0) {
      std::snprintf(label, sizeof label, "off");
    } else {
      std::snprintf(label, sizeof label, "1/%llu",
                    static_cast<unsigned long long>(denominators[i]));
    }
    std::printf("%-12s %14.0f %11.2f%% %10llu %10llu\n", label,
                results[i].pkts_per_sec, overhead[i],
                static_cast<unsigned long long>(results[i].spans),
                static_cast<unsigned long long>(results[i].tuples));
    if (results[i].tuples == 0) {
      std::fprintf(stderr, "pipeline produced no tuples at %s\n", label);
      return 1;
    }
    if (denominators[i] != 0 && results[i].spans == 0) {
      std::fprintf(stderr, "recorder captured no spans at %s\n", label);
      return 1;
    }
  }

  const bool pass = overhead[2] <= 5.0;  // the 1/256 bar
  std::printf("\noverhead at 1/256: %.2f%% (target <= 5%%): %s\n", overhead[2],
              pass ? "yes" : "NO");

  if (std::FILE* f = std::fopen("BENCH_trace.json", "w")) {
    std::fprintf(f, "{\n  \"packets_per_run\": %zu,\n  \"frame_bytes\": %zu,\n",
                 kPackets, kFrameSize);
    std::fprintf(f, "  \"sweep\": [\n");
    for (int i = 0; i < 5; ++i) {
      std::fprintf(f,
                   "    {\"denominator\": %llu, \"pkts_per_sec\": %.0f, "
                   "\"overhead_pct\": %.2f, \"spans\": %llu}%s\n",
                   static_cast<unsigned long long>(denominators[i]),
                   results[i].pkts_per_sec, overhead[i],
                   static_cast<unsigned long long>(results[i].spans),
                   i < 4 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"overhead_pct_at_256\": %.2f,\n", overhead[2]);
    std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
