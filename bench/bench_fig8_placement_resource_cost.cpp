// Figure 8 — resource cost of the placement algorithms: total NetAlytics
// processes (monitors + aggregators + processors) deployed as the number
// of monitored flows grows. Includes the paper's inset (a zoom on small
// flow counts, 0-500 flows).
//
// Paper shape: Netalytics-Node (first fit) uses the fewest processes;
// Local-Random the most; all curves level off at large flow counts because
// one monitor handles >100K flows of average size and data reduction keeps
// the analytics tier small.
#include <cstdio>

#include "placement_sim.hpp"

using namespace netalytics;

int main() {
  std::printf("== Figure 8: resource cost of placement algorithms ==\n\n");
  auto setup = benchsim::make_paper_setup();

  const placement::Strategy strategies[] = {
      placement::Strategy::local_random,
      placement::Strategy::netalytics_node,
      placement::Strategy::netalytics_network,
  };

  std::printf("%-10s %-20s %10s %8s %8s %8s\n", "#flows(K)", "algorithm",
              "processes", "mon", "agg", "proc");
  std::size_t node_last = 0, local_last = 0;
  std::size_t totals[3][6] = {};
  int col = 0;
  for (std::size_t flows = 50'000; flows <= 300'000; flows += 50'000, ++col) {
    int row = 0;
    for (const auto strategy : strategies) {
      const auto cost = benchsim::run_avg(setup, flows, strategy);
      std::printf("%-10zu %-20s %10zu %8zu %8zu %8zu\n", flows / 1000,
                  placement::strategy_name(strategy).c_str(),
                  cost.total_processes, cost.monitors, cost.aggregators,
                  cost.processors);
      totals[row][col] = cost.total_processes;
      if (flows == 300'000) {
        if (strategy == placement::Strategy::netalytics_node) {
          node_last = cost.total_processes;
        } else if (strategy == placement::Strategy::local_random) {
          local_last = cost.total_processes;
        }
      }
      ++row;
    }
  }

  // Inset: small flow counts (0 to 0.5K monitored flows).
  std::printf("\ninset — small sweeps (flows, processes per algorithm)\n");
  std::printf("%-10s %-14s %-16s %-18s\n", "#flows", "Local-Random",
              "Netalytics-Node", "Netalytics-Network");
  for (std::size_t flows : {100u, 200u, 300u, 400u, 500u}) {
    std::printf("%-10zu %-14zu %-16zu %-18zu\n", static_cast<std::size_t>(flows),
                benchsim::run_avg(setup, flows, placement::Strategy::local_random).total_processes,
                benchsim::run_avg(setup, flows, placement::Strategy::netalytics_node).total_processes,
                benchsim::run_avg(setup, flows, placement::Strategy::netalytics_network).total_processes);
  }

  std::printf("\nshape checks (paper Fig. 8):\n");
  std::printf("  Netalytics-Node uses fewest processes: %s (%zu vs %zu)\n",
              node_last <= local_last ? "yes" : "NO", node_last, local_last);
  bool levels_off = true;
  for (int r = 0; r < 3; ++r) {
    // 6x the monitored flows must cost far less than 6x the processes
    // ("one monitor can handle more than 100K flows... due to data
    // reduction, we only need a small number of analytics engines").
    const double growth = static_cast<double>(totals[r][5]) /
                          std::max<double>(1.0, static_cast<double>(totals[r][0]));
    levels_off &= growth < 2.0;
  }
  std::printf("  6x flows -> <2x processes (curves level off): %s\n",
              levels_off ? "yes" : "NO");
  return 0;
}
