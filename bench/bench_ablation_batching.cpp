// Ablation — batching at the output interface (§5.1): tuples are shipped
// in batches "to lower the overhead of queue manipulation operations and
// when preparing data tuples to be sent to the aggregators". Sweeps the
// batch size through the serialize+send path.
#include <benchmark/benchmark.h>

#include "mq/producer.hpp"
#include "nf/output.hpp"

using namespace netalytics;

namespace {

nf::Record sample_record(std::uint64_t id) {
  nf::Record r;
  r.topic = "http_get";
  r.id = id;
  r.timestamp = id;
  r.fields = {std::string("request"), std::string("/videos/item-1234.mp4")};
  return r;
}

void BM_OutputBatchSize(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  mq::Cluster cluster(1);
  mq::Producer producer(cluster, 1);
  nf::OutputInterface out(
      [&producer](std::string_view topic, std::vector<std::byte> payload,
                  const nf::BatchInfo&) { producer.send(topic, std::move(payload), 0); },
      batch);
  std::uint64_t id = 0;
  for (auto _ : state) {
    out.emit(sample_record(id++));
  }
  out.flush();
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes/record"] = benchmark::Counter(
      static_cast<double>(out.stats().bytes) /
      std::max<double>(1.0, static_cast<double>(out.stats().records)));
}
BENCHMARK(BM_OutputBatchSize)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_SerializeBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<nf::Record> batch;
  for (std::size_t i = 0; i < n; ++i) batch.push_back(sample_record(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf::serialize_batch(batch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerializeBatch)->Arg(1)->Arg(64);

void BM_DeserializeBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<nf::Record> batch;
  for (std::size_t i = 0; i < n; ++i) batch.push_back(sample_record(i));
  const auto payload = nf::serialize_batch(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf::deserialize_batch(payload));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DeserializeBatch)->Arg(1)->Arg(64);

}  // namespace
