// Aggregation-layer throughput sweep: (global lock vs sharded broker) x
// (per-message vs batched produce) x (copy vs zero-copy poll), with real
// producer threads hammering multiple topics.
//
// "global+permsg" emulates the seed broker — one mutex serializing every
// produce, one broker round-trip per message — by funneling all producers
// through an external mutex. "sharded" lets the per-partition locks work.
// The acceptance bar for this configuration (see ISSUE/ROADMAP): batched
// produce on the sharded broker must beat the global per-message baseline
// by >= 2x at 4 producer threads, and the poll path must hand out payloads
// without deep-copying (checked here via Payload::use_count).
//
// Results land in BENCH_mq.json in the working directory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "mq/broker.hpp"

using namespace netalytics;

namespace {

constexpr std::size_t kThreads = 4;
constexpr std::size_t kTopics = 4;
constexpr std::size_t kPerThread = 60'000;
constexpr std::size_t kPayloadBytes = 256;
constexpr std::size_t kBatchRecords = 32;

const char* const kTopicNames[kTopics] = {"t0", "t1", "t2", "t3"};

mq::BrokerConfig bench_config() {
  mq::BrokerConfig cfg;
  cfg.partitions_per_topic = 4;
  cfg.partition_capacity = 1 << 16;
  cfg.persist_bytes_per_sec = 0;  // RAM disk (§6.1)
  return cfg;
}

struct Cell {
  double msgs_per_sec = 0;
  double bytes_per_sec = 0;
};

mq::Message make_msg(const char* topic, std::uint64_t key) {
  mq::Message m;
  m.topic = topic;
  m.key = key;
  m.payload = std::vector<std::byte>(kPayloadBytes, std::byte{0x5a});
  return m;
}

/// 4 threads produce kPerThread messages each, round-robin over kTopics
/// per batch-sized run. Messages are pre-built outside the timed region so
/// the clock sees the produce path, not payload construction. `global_lock`
/// funnels every broker call through one mutex (the seed's concurrency
/// model); `batched` hands the broker kBatchRecords messages per call.
Cell run_produce(bool global_lock, bool batched) {
  mq::Broker broker(bench_config());
  std::mutex seed_mutex;

  std::vector<std::vector<mq::Message>> prebuilt(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    prebuilt[t].reserve(kPerThread);
    for (std::size_t i = 0; i < kPerThread; ++i) {
      // Runs of kBatchRecords share a topic, like the Producer facade's
      // per-topic accumulation.
      prebuilt[t].push_back(
          make_msg(kTopicNames[(i / kBatchRecords) % kTopics], t + 1));
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::span<mq::Message> msgs(prebuilt[t]);
      mq::ProduceStatus statuses[kBatchRecords];
      std::size_t sent = 0;
      while (sent < kPerThread) {
        if (batched) {
          const std::size_t n = std::min(kBatchRecords, kPerThread - sent);
          if (global_lock) {
            std::lock_guard lock(seed_mutex);
            broker.produce_batch(msgs.subspan(sent, n), 0, {statuses, n});
          } else {
            broker.produce_batch(msgs.subspan(sent, n), 0, {statuses, n});
          }
          sent += n;
        } else {
          if (global_lock) {
            std::lock_guard lock(seed_mutex);
            broker.produce(std::move(msgs[sent]), 0);
          } else {
            broker.produce(std::move(msgs[sent]), 0);
          }
          ++sent;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto stats = broker.stats();
  const double total = static_cast<double>(kThreads * kPerThread);
  if (stats.produced != kThreads * kPerThread) {
    std::fprintf(stderr, "produce accounting broken: %llu\n",
                 static_cast<unsigned long long>(stats.produced));
    std::exit(1);
  }
  return {total / secs, total * static_cast<double>(kPayloadBytes) / secs};
}

/// Drain a prefilled topic. `deep_copy` clones every payload into a fresh
/// buffer (the seed's value-copy consume); otherwise the refcounted bytes
/// are read in place.
Cell run_poll(bool deep_copy) {
  mq::Broker broker(bench_config());
  constexpr std::size_t kMessages = kThreads * kPerThread / 2;
  for (std::size_t i = 0; i < kMessages; ++i) {
    broker.produce(make_msg("t0", i % 8), 0);
  }
  const std::size_t filled = broker.depth("t0");

  std::uint64_t checksum = 0;
  std::size_t polled = 0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto msgs = broker.poll("g", "t0", 512);
    if (msgs.empty()) break;
    polled += msgs.size();
    for (const auto& m : msgs) {
      if (deep_copy) {
        const auto view = m.payload.view();
        std::vector<std::byte> copy(view.begin(), view.end());
        checksum += static_cast<std::uint64_t>(copy[polled % kPayloadBytes]);
      } else {
        // Zero-copy contract: the log and this message share the buffer.
        if (m.payload.use_count() < 2) {
          std::fprintf(stderr, "poll deep-copied a payload\n");
          std::exit(1);
        }
        checksum += static_cast<std::uint64_t>(m.payload[polled % kPayloadBytes]);
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (polled != filled || checksum == 0) {
    std::fprintf(stderr, "poll accounting broken\n");
    std::exit(1);
  }
  return {static_cast<double>(polled) / secs,
          static_cast<double>(polled * kPayloadBytes) / secs};
}

/// Drain via poll_batch(): the fully zero-copy consume path — one topic
/// header per fetch instead of a std::string per message, records are
/// header structs sharing the log's payload bytes.
Cell run_poll_batch() {
  mq::Broker broker(bench_config());
  constexpr std::size_t kMessages = kThreads * kPerThread / 2;
  for (std::size_t i = 0; i < kMessages; ++i) {
    broker.produce(make_msg("t0", i % 8), 0);
  }
  const std::size_t filled = broker.depth("t0");

  std::uint64_t checksum = 0;
  std::size_t polled = 0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto batch = broker.poll_batch("g", "t0", 512);
    if (batch.empty()) break;
    polled += batch.size();
    for (const auto& r : batch.records) {
      // Zero-copy contract: the log and this record share the buffer.
      if (r.payload.use_count() < 2) {
        std::fprintf(stderr, "poll_batch deep-copied a payload\n");
        std::exit(1);
      }
      checksum += static_cast<std::uint64_t>(r.payload[polled % kPayloadBytes]);
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (polled != filled || checksum == 0) {
    std::fprintf(stderr, "poll_batch accounting broken\n");
    std::exit(1);
  }
  return {static_cast<double>(polled) / secs,
          static_cast<double>(polled * kPayloadBytes) / secs};
}

/// Best of two runs, to shrug off scheduler noise on shared machines.
template <typename F>
Cell best_of_two(F&& f) {
  const Cell a = f();
  const Cell b = f();
  return a.msgs_per_sec >= b.msgs_per_sec ? a : b;
}

}  // namespace

int main() {
  std::printf("== mq throughput: %zu producer threads, %zu topics, %zu B payloads ==\n",
              kThreads, kTopics, kPayloadBytes);
  std::printf("%-24s %14s %14s\n", "configuration", "msgs/s", "MB/s");

  struct Row {
    const char* name;
    Cell cell;
  };
  Row rows[] = {
      {"produce global+permsg", best_of_two([] { return run_produce(true, false); })},
      {"produce global+batched", best_of_two([] { return run_produce(true, true); })},
      {"produce sharded+permsg", best_of_two([] { return run_produce(false, false); })},
      {"produce sharded+batched", best_of_two([] { return run_produce(false, true); })},
      {"poll deep-copy", best_of_two([] { return run_poll(true); })},
      {"poll zero-copy", best_of_two([] { return run_poll(false); })},
      {"poll batch-view", best_of_two([] { return run_poll_batch(); })},
  };
  for (const Row& r : rows) {
    std::printf("%-24s %14.0f %14.1f\n", r.name, r.cell.msgs_per_sec,
                r.cell.bytes_per_sec / 1e6);
  }

  const double speedup = rows[3].cell.msgs_per_sec / rows[0].cell.msgs_per_sec;
  const double poll_speedup = rows[5].cell.msgs_per_sec / rows[4].cell.msgs_per_sec;
  const double batch_speedup = rows[6].cell.msgs_per_sec / rows[4].cell.msgs_per_sec;
  std::printf("\nsharded+batched vs global+permsg: %.2fx (target >= 2x): %s\n",
              speedup, speedup >= 2.0 ? "yes" : "NO");
  std::printf("zero-copy vs deep-copy poll: %.2fx\n", poll_speedup);
  std::printf("batch-view vs deep-copy poll: %.2fx\n", batch_speedup);

  if (std::FILE* f = std::fopen("BENCH_mq.json", "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"threads\": %zu,\n  \"topics\": %zu,\n", kThreads, kTopics);
    std::fprintf(f, "  \"payload_bytes\": %zu,\n  \"batch_records\": %zu,\n",
                 kPayloadBytes, kBatchRecords);
    std::fprintf(f, "  \"cells\": {\n");
    const char* const keys[] = {"produce_global_permsg", "produce_global_batched",
                                "produce_sharded_permsg", "produce_sharded_batched",
                                "poll_deep_copy", "poll_zero_copy",
                                "poll_batch_view"};
    for (int i = 0; i < 7; ++i) {
      std::fprintf(f, "    \"%s\": {\"msgs_per_sec\": %.0f, \"bytes_per_sec\": %.0f}%s\n",
                   keys[i], rows[i].cell.msgs_per_sec, rows[i].cell.bytes_per_sec,
                   i < 6 ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"produce_speedup_sharded_batched_vs_global_permsg\": %.2f,\n",
                 speedup);
    std::fprintf(f, "  \"poll_speedup_zero_copy_vs_deep_copy\": %.2f,\n", poll_speedup);
    std::fprintf(f, "  \"poll_speedup_batch_view_vs_deep_copy\": %.2f\n", batch_speedup);
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return speedup >= 2.0 ? 0 : 1;
}
