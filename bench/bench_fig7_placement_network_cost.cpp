// Figure 7 — network cost of the placement algorithms: extra bandwidth (%
// of the 1.2 Tbps workload) consumed by monitoring traffic, in both the
// hop-count and the weighted (core links cost 4x) metrics, as the number
// of monitored flows grows from 50K to 300K.
//
// Paper shape: all curves grow ~linearly; Netalytics-Network is lowest and
// its weighted/unweighted lines nearly overlap (traffic stays in-rack);
// Netalytics-Node is worst; Local-Random sits between. The headline 4.5x
// reduction is Node vs Network at the largest sweep point.
#include <cstdio>

#include "placement_sim.hpp"

using namespace netalytics;

int main() {
  std::printf("== Figure 7: network cost of placement algorithms ==\n");
  std::printf("(fat tree k=16, 1024 hosts, ~1M flows, 1.2 Tbps workload)\n\n");
  auto setup = benchsim::make_paper_setup();

  const placement::Strategy strategies[] = {
      placement::Strategy::local_random,
      placement::Strategy::netalytics_node,
      placement::Strategy::netalytics_network,
  };

  std::printf("%-10s %-20s %14s %14s\n", "#flows(K)", "algorithm",
              "extra bw (%)", "weighted (%)");
  double node_last = 0, network_last = 0, local_last = 0;
  double network_last_weighted = 0, node_last_weighted = 0;
  for (std::size_t flows = 50'000; flows <= 300'000; flows += 50'000) {
    for (const auto strategy : strategies) {
      const auto cost = benchsim::run_avg(setup, flows, strategy);
      std::printf("%-10zu %-20s %14.3f %14.3f\n", flows / 1000,
                  placement::strategy_name(strategy).c_str(),
                  cost.extra_bandwidth_pct, cost.extra_weighted_bandwidth_pct);
      if (flows == 300'000) {
        switch (strategy) {
          case placement::Strategy::local_random:
            local_last = cost.extra_bandwidth_pct;
            break;
          case placement::Strategy::netalytics_node:
            node_last = cost.extra_bandwidth_pct;
            node_last_weighted = cost.extra_weighted_bandwidth_pct;
            break;
          case placement::Strategy::netalytics_network:
            network_last = cost.extra_bandwidth_pct;
            network_last_weighted = cost.extra_weighted_bandwidth_pct;
            break;
        }
      }
    }
  }

  std::printf("\nshape checks (paper Fig. 7):\n");
  std::printf("  Netalytics-Network lowest: %s\n",
              (network_last < node_last && network_last < local_last) ? "yes" : "NO");
  std::printf("  Netalytics-Node highest:   %s\n",
              (node_last > local_last) ? "yes" : "NO");
  std::printf("  Network weighted ~= unweighted (in-rack traffic): %s "
              "(%.3f vs %.3f)\n",
              network_last_weighted < network_last * 2.0 ? "yes" : "NO",
              network_last, network_last_weighted);
  std::printf("  traffic-overhead reduction Node/Network: %.1fx plain, "
              "%.1fx weighted (paper headline: ~4.5x)\n",
              network_last > 0 ? node_last / network_last : 0.0,
              network_last_weighted > 0 ? node_last_weighted / network_last_weighted
                                        : 0.0);
  return 0;
}
