// Federation streaming bench (docs/FEDERATION.md): wire-level records/s
// per child while a parent terminates 1/2/4 concurrent child streams
// (frame encode -> link -> reassembly -> offset dedup -> fan-in), and the
// per-record overhead of the framed wire path against an in-process
// baseline that feeds the same records straight into the fan-in stage.
// The acceptance bar is correctness, not a rate: every streamed record
// must be applied exactly once at every fleet size.
//
// Results land in BENCH_fed.json in the working directory.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fed/parent.hpp"
#include "fed/wire.hpp"
#include "stream/fanin.hpp"

using namespace netalytics;

namespace {

constexpr std::size_t kRecordsPerChild = 262'144;
constexpr std::size_t kRecordsPerFrame = 64;
constexpr std::size_t kFramesPerPump = 8;
constexpr std::size_t kKeyField = 3;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One http_get-shaped record ({id, ts, kind, value}); 64 distinct keys.
nf::Record make_record(std::uint64_t i) {
  nf::Record r;
  r.topic = "fed";
  r.timestamp = i * common::kMillisecond;
  r.fields = {nf::FieldValue{i}, nf::FieldValue{i * common::kMillisecond},
              nf::FieldValue{std::string{"GET"}},
              nf::FieldValue{"/url" + std::to_string(i % 64)}};
  return r;
}

struct SweepResult {
  std::size_t children = 0;
  double seconds = 0;
  double records_per_sec = 0;        // fleet total
  double records_per_sec_child = 0;  // per child
  bool exact = false;
};

/// Stream kRecordsPerChild records from each of `n` children through real
/// links into one ParentNode, frames of kRecordsPerFrame, parent pumped
/// every kFramesPerPump frames per child (a settled streaming cadence).
SweepResult run_sweep(std::size_t n) {
  std::vector<std::unique_ptr<fed::Link>> links;
  std::vector<fed::Link*> raw;
  for (std::size_t i = 0; i < n; ++i) {
    links.push_back(std::make_unique<fed::Link>(
        fed::LinkConfig{.child_index = static_cast<std::uint32_t>(i),
                        .fault_prefix = {}}));
    raw.push_back(links.back().get());
  }
  fed::ParentConfig cfg;
  cfg.children = n;
  cfg.top_k = 10;
  cfg.key_field = kKeyField;
  fed::ParentNode parent(raw, cfg);

  common::Timestamp now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    links[i]->connect(now);
    links[i]->send_up(
        fed::encode(fed::Hello{.child_index = static_cast<std::uint32_t>(i),
                               .node_name = "bench" + std::to_string(i)}),
        now);
  }
  parent.pump(now);
  for (auto& link : links) (void)link->drain_down();  // WELCOMEs

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> offsets(n, 0);
  std::size_t frames_since_pump = 0;
  for (std::size_t batch = 0; batch * kRecordsPerFrame < kRecordsPerChild;
       ++batch) {
    for (std::size_t i = 0; i < n; ++i) {
      fed::RecordsFrame rf;
      rf.offset = offsets[i];
      rf.tick = now;
      rf.records.reserve(kRecordsPerFrame);
      for (std::size_t j = 0; j < kRecordsPerFrame; ++j) {
        rf.records.push_back(make_record(offsets[i] + j));
      }
      offsets[i] += kRecordsPerFrame;
      links[i]->send_up(fed::encode(rf), now);
    }
    if (++frames_since_pump == kFramesPerPump) {
      frames_since_pump = 0;
      now += common::kMillisecond;
      parent.pump(now);
      for (auto& link : links) (void)link->drain_down();  // ACKs
    }
  }
  parent.pump(now + common::kMillisecond);
  const double secs = seconds_since(t0);

  SweepResult res;
  res.children = n;
  res.seconds = secs;
  res.records_per_sec = static_cast<double>(kRecordsPerChild * n) / secs;
  res.records_per_sec_child = res.records_per_sec / static_cast<double>(n);
  res.exact = parent.total_records_applied() == kRecordsPerChild * n;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& st = parent.child_stats(i);
    if (st.applied != kRecordsPerChild || st.lost_records != 0 ||
        st.duplicate_records != 0) {
      res.exact = false;
    }
  }
  return res;
}

struct OverheadResult {
  double wire_ns = 0;       // encode + reassemble + decode + apply
  double inprocess_ns = 0;  // apply only (same records, no wire)
  double overhead_x = 0;
};

/// Per-record cost of the framed wire path vs feeding the fan-in stage
/// directly — the price of crossing a node boundary.
OverheadResult run_overhead() {
  constexpr std::size_t kRecords = 1u << 20;
  std::vector<nf::Record> records;
  records.reserve(kRecordsPerFrame);
  for (std::size_t j = 0; j < kRecordsPerFrame; ++j) {
    records.push_back(make_record(j));
  }

  OverheadResult res;
  {
    stream::FanInTopK fanin(1, 10);
    fed::FrameParser parser;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t offset = 0;
    for (std::size_t f = 0; f * kRecordsPerFrame < kRecords; ++f) {
      fed::RecordsFrame rf;
      rf.offset = offset;
      rf.records = records;
      parser.feed(fed::encode(rf));
      while (auto frame = parser.next()) {
        const auto decoded = fed::decode_records(frame->payload);
        for (const auto& r : decoded.records) {
          fanin.add(0, std::get<std::string>(r.fields[kKeyField]), 1);
        }
        offset += decoded.records.size();
      }
    }
    res.wire_ns = seconds_since(t0) / static_cast<double>(kRecords) * 1e9;
  }
  {
    stream::FanInTopK fanin(1, 10);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t f = 0; f * kRecordsPerFrame < kRecords; ++f) {
      for (const auto& r : records) {
        fanin.add(0, std::get<std::string>(r.fields[kKeyField]), 1);
      }
    }
    res.inprocess_ns =
        seconds_since(t0) / static_cast<double>(kRecords) * 1e9;
  }
  res.overhead_x = res.wire_ns / res.inprocess_ns;
  return res;
}

}  // namespace

int main() {
  SweepResult sweep[3];
  const std::size_t sizes[3] = {1, 2, 4};
  bool pass = true;
  for (int i = 0; i < 3; ++i) {
    sweep[i] = run_sweep(sizes[i]);
    pass = pass && sweep[i].exact;
    std::printf(
        "fed stream: %zu child(ren), %.0f records/s fleet, %.0f records/s "
        "per child (%zu records each, %.2fs) exact=%s\n",
        sweep[i].children, sweep[i].records_per_sec,
        sweep[i].records_per_sec_child, kRecordsPerChild,
        sweep[i].seconds, sweep[i].exact ? "yes" : "NO");
  }
  const OverheadResult oh = run_overhead();
  std::printf(
      "fed wire path: %.0f ns/record vs %.0f ns/record in-process "
      "(%.2fx overhead)\n"
      "exact delivery at every fleet size: %s\n",
      oh.wire_ns, oh.inprocess_ns, oh.overhead_x, pass ? "pass" : "FAIL");

  if (std::FILE* f = std::fopen("BENCH_fed.json", "w")) {
    std::fprintf(f, "{\n  \"records_per_child\": %zu,\n", kRecordsPerChild);
    std::fprintf(f, "  \"records_per_frame\": %zu,\n", kRecordsPerFrame);
    std::fprintf(f, "  \"sweep\": [\n");
    for (int i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    {\"children\": %zu, \"records_per_sec_fleet\": %.0f, "
                   "\"records_per_sec_per_child\": %.0f, \"exact\": %s}%s\n",
                   sweep[i].children, sweep[i].records_per_sec,
                   sweep[i].records_per_sec_child,
                   sweep[i].exact ? "true" : "false", i < 2 ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"wire_ns_per_record\": %.1f,\n"
                 "  \"inprocess_ns_per_record\": %.1f,\n"
                 "  \"wire_overhead_x\": %.2f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 oh.wire_ns, oh.inprocess_ns, oh.overhead_x,
                 pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
