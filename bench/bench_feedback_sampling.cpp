// Feedback-driven sampling (§4.2): when the processors cannot keep up, the
// aggregation layer's buffers fill; the monitor reacts to the backpressure
// signal by lowering its flow-sampling rate, protecting the pipeline from
// wasted bandwidth and retention drops.
//
// Harness: a monitor ships http_get records into a deliberately tiny
// broker while a slow consumer drains a fraction of the input. We compare
// a fixed-rate monitor against the adaptive loop.
#include <cstdio>

#include "mq/consumer.hpp"
#include "mq/producer.hpp"
#include "nf/monitor.hpp"
#include "parsers/parsers.hpp"
#include "pktgen/generator.hpp"

using namespace netalytics;

namespace {

struct Outcome {
  double final_rate = 1.0;
  std::uint64_t retention_drops = 0;
  std::uint64_t records_shipped = 0;
  std::uint64_t records_consumed = 0;
};

Outcome run(bool adaptive) {
  mq::BrokerConfig bcfg;
  bcfg.partition_capacity = 64;  // small elastic buffer: a fast control signal
  bcfg.high_watermark = 0.5;
  mq::Cluster cluster(1, bcfg);

  nf::MonitorConfig mcfg;
  mcfg.parsers = {{"http_get", 1}};
  mcfg.output_batch_records = 16;

  mq::Producer producer(cluster, 1);
  nf::Monitor monitor(mcfg, [&producer](std::string_view topic,
                                        std::vector<std::byte> payload,
                                        const nf::BatchInfo&) {
    producer.send(topic, std::move(payload), 0);
  });

  pktgen::GeneratorConfig gcfg;
  gcfg.kind = pktgen::TrafficKind::http_get;
  gcfg.frame_size = 512;
  gcfg.flow_count = 4096;
  pktgen::TrafficGenerator gen(gcfg);

  mq::Consumer consumer(cluster, "slow-storm");
  Outcome out;
  // 60 rounds: each round the monitor sees 2000 packets (-> ~125 batch
  // messages at full rate) but the processor only drains 40 — a 3x
  // overload at full sampling. The adaptive loop mirrors the engine's
  // pump() plus the updater bolt's backoff: halve on high occupancy (at
  // most once per backoff window, so a draining backlog is not punished
  // repeatedly), inch back up when the buffer has headroom.
  int backoff = 0;
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 2000; ++i) monitor.process(gen.next_frame(), i);
    monitor.tick(static_cast<common::Timestamp>(round) * common::kSecond);
    if (adaptive) {
      // The aggregator judges its buffers when data arrives (§4.2): "the
      // aggregation layer observes its input and output rates to see if
      // the system is overloaded".
      const double occupancy = cluster.occupancy("http_get");
      if (backoff > 0) --backoff;
      if (occupancy > 0.9 && backoff == 0) {
        monitor.on_backpressure();
        backoff = 3;  // give the backlog time to drain before re-judging
      } else if (occupancy < 0.4) {
        monitor.set_sample_rate(std::min(1.0, monitor.sample_rate() + 0.03));
      }
    }
    out.records_consumed += consumer.poll("http_get", 40).size();
  }
  out.final_rate = monitor.sample_rate();
  out.retention_drops = cluster.aggregate_stats().dropped_retention;
  out.records_shipped = cluster.aggregate_stats().produced;
  return out;
}

}  // namespace

int main() {
  parsers::register_builtin_parsers();
  const auto fixed = run(/*adaptive=*/false);
  const auto adaptive = run(/*adaptive=*/true);

  std::printf("== Feedback-driven sampling under 5x processor overload ==\n");
  std::printf("%-22s %12s %12s %14s %12s\n", "mode", "rate(end)", "shipped",
              "lost(retention)", "consumed");
  std::printf("%-22s %12.2f %12llu %14llu %12llu\n", "fixed (rate=1.0)",
              fixed.final_rate,
              static_cast<unsigned long long>(fixed.records_shipped),
              static_cast<unsigned long long>(fixed.retention_drops),
              static_cast<unsigned long long>(fixed.records_consumed));
  std::printf("%-22s %12.2f %12llu %14llu %12llu\n", "adaptive (SAMPLE auto)",
              adaptive.final_rate,
              static_cast<unsigned long long>(adaptive.records_shipped),
              static_cast<unsigned long long>(adaptive.retention_drops),
              static_cast<unsigned long long>(adaptive.records_consumed));

  std::printf("\nshape checks (§4.2):\n");
  std::printf("  adaptive rate settles below 1.0: %s (%.2f)\n",
              adaptive.final_rate < 0.9 ? "yes" : "NO", adaptive.final_rate);
  std::printf("  wasted transfers cut sharply: %s (%llu -> %llu lost records)\n",
              adaptive.retention_drops * 2 < fixed.retention_drops ? "yes" : "NO",
              static_cast<unsigned long long>(fixed.retention_drops),
              static_cast<unsigned long long>(adaptive.retention_drops));
  std::printf("  consumers still fed: %s\n",
              adaptive.records_consumed > fixed.records_consumed / 2 ? "yes" : "NO");
  return 0;
}
