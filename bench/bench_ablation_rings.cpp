// Ablation — lock-free SPSC rings on the hot path (§5.1 "Zero-copy,
// Lockless"). Compares the monitor's SPSC ring against a mutex-based MPMC
// queue and measures the batching win at the ring hop.
#include <benchmark/benchmark.h>

#include <deque>
#include <mutex>

#include "common/mpmc_queue.hpp"
#include "common/spsc_ring.hpp"

using namespace netalytics;

namespace {

void BM_SpscRingSingleItem(benchmark::State& state) {
  common::SpscRing<std::uint64_t> ring(4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(v++);
    std::uint64_t out;
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingSingleItem);

void BM_SpscRingBulk(benchmark::State& state) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  common::SpscRing<std::uint64_t> ring(4096);
  std::vector<std::uint64_t> in(burst, 7), out(burst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push_bulk(in));
    benchmark::DoNotOptimize(ring.try_pop_bulk(out));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_SpscRingBulk)->Arg(8)->Arg(32)->Arg(128);

void BM_MpmcQueue(benchmark::State& state) {
  common::MpmcQueue<std::uint64_t> queue(4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    queue.try_push(v++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueue);

void BM_MutexDeque(benchmark::State& state) {
  std::mutex mutex;
  std::deque<std::uint64_t> deque;
  std::uint64_t v = 0;
  for (auto _ : state) {
    {
      std::lock_guard lock(mutex);
      deque.push_back(v++);
    }
    {
      std::lock_guard lock(mutex);
      if (!deque.empty()) {
        benchmark::DoNotOptimize(deque.front());
        deque.pop_front();
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexDeque);

}  // namespace
