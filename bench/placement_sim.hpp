// Shared setup for the Fig. 7 / Fig. 8 placement simulation (§6.2): fat
// tree k=16, ~1M-flow staggered workload at ~1.2 Tbps, monitored subsets
// swept from 50K to 300K flows, averaged over seeds.
#pragma once

#include <vector>

#include "dcn/workload.hpp"
#include "placement/strategies.hpp"

namespace netalytics::benchsim {

struct SimSetup {
  dcn::Topology topo;
  dcn::Workload workload;
  placement::WorkloadPathCost workload_cost;
  placement::ProcessSpec spec;
};

inline SimSetup make_paper_setup(std::size_t flow_count = 1'000'000) {
  SimSetup setup;
  setup.topo = dcn::build_fat_tree(16);  // 1024 hosts / 128+128+64 switches
  common::Rng rng(42);
  setup.topo.randomize_host_resources(rng);
  dcn::WorkloadConfig wcfg;
  wcfg.flow_count = flow_count;
  wcfg.total_traffic_bps = 1.2e12;
  setup.workload = dcn::generate_workload(setup.topo, wcfg);
  setup.workload_cost = placement::workload_path_cost(setup.topo, setup.workload);
  return setup;
}

/// One placement run: monitor `monitored` randomly-sampled flows with
/// `strategy`, returning its cost report.
inline placement::CostReport run_once(const SimSetup& setup,
                                      std::size_t monitored,
                                      placement::Strategy strategy,
                                      std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<dcn::Flow> flows;
  flows.reserve(monitored);
  for (const auto i : setup.workload.sample_flow_indices(monitored, rng)) {
    flows.push_back(setup.workload.flows[i]);
  }
  dcn::Topology topo = setup.topo;  // placement consumes host resources
  const auto placement =
      placement::run_placement(topo, flows, setup.spec, strategy, rng);
  return placement::compute_cost(topo, placement, setup.spec,
                                 setup.workload_cost);
}

/// Average cost across `seeds` runs ("we run each experiment at least 10
/// times with random seed to get a stable average cost" — scaled down to
/// keep the harness fast; the variance at this size is small).
inline placement::CostReport run_avg(const SimSetup& setup, std::size_t monitored,
                                     placement::Strategy strategy,
                                     int seeds = 3) {
  placement::CostReport avg;
  for (int s = 0; s < seeds; ++s) {
    const auto r = run_once(setup, monitored, strategy, 100 + s);
    avg.extra_bandwidth_pct += r.extra_bandwidth_pct;
    avg.extra_weighted_bandwidth_pct += r.extra_weighted_bandwidth_pct;
    avg.monitors += r.monitors;
    avg.aggregators += r.aggregators;
    avg.processors += r.processors;
    avg.total_processes += r.total_processes;
    avg.monitored_traffic_bps += r.monitored_traffic_bps;
  }
  avg.extra_bandwidth_pct /= seeds;
  avg.extra_weighted_bandwidth_pct /= seeds;
  avg.monitors /= seeds;
  avg.aggregators /= seeds;
  avg.processors /= seeds;
  avg.total_processes /= seeds;
  avg.monitored_traffic_bps /= seeds;
  return avg;
}

}  // namespace netalytics::benchsim
