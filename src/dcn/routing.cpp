#include "dcn/routing.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace netalytics::dcn {

std::vector<NodeId> shortest_path(const Topology& topo, NodeId from, NodeId to) {
  if (from == to) return {from};
  std::vector<NodeId> parent(topo.node_count(), static_cast<NodeId>(-1));
  std::deque<NodeId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (const NodeId next : topo.neighbors(n)) {
      if (parent[next] != static_cast<NodeId>(-1)) continue;
      parent[next] = n;
      if (next == to) {
        std::vector<NodeId> path{to};
        for (NodeId cur = to; cur != from;) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return {};
}

std::size_t hop_count(const Topology& topo, NodeId from, NodeId to) {
  const auto path = shortest_path(topo, from, to);
  return path.empty() ? 0 : path.size() - 1;
}

double link_weight(const Topology& topo, NodeId a, NodeId b) {
  const NodeKind ka = topo.node(a).kind;
  const NodeKind kb = topo.node(b).kind;
  auto has = [&](NodeKind k) { return ka == k || kb == k; };
  if (has(NodeKind::core)) return 4.0;
  if (has(NodeKind::aggregate)) return 2.0;
  return 1.0;  // host-ToR
}

double weighted_hop_cost(const Topology& topo, NodeId from, NodeId to) {
  const auto path = shortest_path(topo, from, to);
  double cost = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    cost += link_weight(topo, path[i - 1], path[i]);
  }
  return cost;
}

PairLocality classify_pair(const Topology& topo, NodeId host_a, NodeId host_b) {
  if (host_a == host_b) return PairLocality::same_host;
  const NodeId tor_a = topo.tor_of_host(host_a);
  const NodeId tor_b = topo.tor_of_host(host_b);
  if (tor_a == tor_b) return PairLocality::same_tor;
  if (topo.node(tor_a).pod == topo.node(tor_b).pod) return PairLocality::same_pod;
  return PairLocality::cross_core;
}

std::size_t locality_hops(PairLocality loc) {
  switch (loc) {
    case PairLocality::same_host: return 0;
    case PairLocality::same_tor: return 2;
    case PairLocality::same_pod: return 4;
    case PairLocality::cross_core: return 6;
  }
  throw std::logic_error("unreachable");
}

double locality_weighted_cost(PairLocality loc) {
  switch (loc) {
    case PairLocality::same_host: return 0.0;
    case PairLocality::same_tor: return 2.0;          // 1+1
    case PairLocality::same_pod: return 6.0;          // 1+2+2+1
    case PairLocality::cross_core: return 14.0;       // 1+2+4+4+2+1
  }
  throw std::logic_error("unreachable");
}

}  // namespace netalytics::dcn
