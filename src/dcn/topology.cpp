#include "dcn/topology.hpp"

#include <stdexcept>

namespace netalytics::dcn {

NodeId Topology::add_node(NodeKind kind, int pod) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.kind = kind;
  n.pod = pod;
  nodes_.push_back(n);
  adj_.emplace_back();
  switch (kind) {
    case NodeKind::host: hosts_.push_back(n.id); break;
    case NodeKind::tor: tors_.push_back(n.id); break;
    case NodeKind::aggregate: aggs_.push_back(n.id); break;
    case NodeKind::core: cores_.push_back(n.id); break;
  }
  return n.id;
}

void Topology::add_link(NodeId a, NodeId b) {
  adj_.at(a).push_back(b);
  adj_.at(b).push_back(a);
}

NodeId Topology::tor_of_host(NodeId host) const {
  for (const NodeId n : neighbors(host)) {
    if (nodes_[n].kind == NodeKind::tor) return n;
  }
  throw std::logic_error("host has no ToR switch");
}

std::vector<NodeId> Topology::hosts_under_tor(NodeId tor) const {
  std::vector<NodeId> out;
  for (const NodeId n : neighbors(tor)) {
    if (nodes_[n].kind == NodeKind::host) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::aggs_of_tor(NodeId tor) const {
  std::vector<NodeId> out;
  for (const NodeId n : neighbors(tor)) {
    if (nodes_[n].kind == NodeKind::aggregate) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::hosts_under_agg(NodeId agg) const {
  std::vector<NodeId> out;
  for (const NodeId tor : neighbors(agg)) {
    if (nodes_[tor].kind != NodeKind::tor) continue;
    for (const NodeId h : neighbors(tor)) {
      if (nodes_[h].kind == NodeKind::host) out.push_back(h);
    }
  }
  return out;
}

void Topology::randomize_host_resources(common::Rng& rng,
                                        const HostResourceConfig& config) {
  for (const NodeId h : hosts_) {
    Node& node = nodes_[h];
    node.mem_capacity_gb = rng.uniform_real(config.mem_min_gb, config.mem_max_gb);
    node.cpu_capacity = rng.uniform_real(config.cpu_min, config.cpu_max);
    const double util = rng.uniform_real(config.util_min, config.util_max);
    node.mem_used_gb = node.mem_capacity_gb * util;
    node.cpu_used = node.cpu_capacity * util;
  }
}

Topology build_fat_tree(int k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat tree: k must be even and >= 2");
  }
  Topology topo;
  const int half = k / 2;

  // Core layer: (k/2)^2 switches in k/2 groups of k/2.
  std::vector<NodeId> cores;
  for (int c = 0; c < half * half; ++c) {
    cores.push_back(topo.add_node(NodeKind::core));
  }

  for (int p = 0; p < k; ++p) {
    std::vector<NodeId> pod_aggs;
    for (int a = 0; a < half; ++a) {
      const NodeId agg = topo.add_node(NodeKind::aggregate, p);
      pod_aggs.push_back(agg);
      // Aggregate a connects to core group a: cores [a*half, (a+1)*half).
      for (int c = 0; c < half; ++c) {
        topo.add_link(agg, cores[static_cast<std::size_t>(a) * half + c]);
      }
    }
    for (int t = 0; t < half; ++t) {
      const NodeId tor = topo.add_node(NodeKind::tor, p);
      for (const NodeId agg : pod_aggs) topo.add_link(tor, agg);
      for (int h = 0; h < half; ++h) {
        const NodeId host = topo.add_node(NodeKind::host, p);
        topo.add_link(host, tor);
      }
    }
  }
  return topo;
}

Topology build_small_tree(std::size_t hosts_per_rack) {
  // 2 cores; 2 pods, each with 2 aggregates and 4 racks (Fig. 2 shape).
  Topology topo;
  const NodeId core0 = topo.add_node(NodeKind::core);
  const NodeId core1 = topo.add_node(NodeKind::core);
  for (int p = 0; p < 2; ++p) {
    const NodeId agg0 = topo.add_node(NodeKind::aggregate, p);
    const NodeId agg1 = topo.add_node(NodeKind::aggregate, p);
    topo.add_link(agg0, core0);
    topo.add_link(agg1, core1);
    for (int t = 0; t < 4; ++t) {
      const NodeId tor = topo.add_node(NodeKind::tor, p);
      topo.add_link(tor, agg0);
      topo.add_link(tor, agg1);
      for (std::size_t h = 0; h < hosts_per_rack; ++h) {
        topo.add_link(topo.add_node(NodeKind::host, p), tor);
      }
    }
  }
  return topo;
}

}  // namespace netalytics::dcn
