// Shortest-path routing and the paper's two bandwidth-cost metrics (§6.2):
// hop count, and weighted hops where "not all links are equal in the data
// center" — host->ToR weighs 1, links to the aggregate layer weigh 2, and
// core links weigh 4.
#pragma once

#include <vector>

#include "dcn/topology.hpp"

namespace netalytics::dcn {

/// BFS shortest path (node ids, inclusive of endpoints). Empty if
/// unreachable. Deterministic: neighbors explored in insertion order.
std::vector<NodeId> shortest_path(const Topology& topo, NodeId from, NodeId to);

/// Number of links on the shortest path between two nodes.
std::size_t hop_count(const Topology& topo, NodeId from, NodeId to);

/// Weight of one link by its endpoint kinds: host-ToR=1, ToR-agg=2,
/// agg-core=4 (either direction).
double link_weight(const Topology& topo, NodeId a, NodeId b);

/// Sum of link weights along the shortest path.
double weighted_hop_cost(const Topology& topo, NodeId from, NodeId to);

/// Precomputed distances from every host to every host would be O(H^2);
/// the placement simulator instead classifies host pairs by locality,
/// which is O(1) per pair on a fat tree.
enum class PairLocality { same_host, same_tor, same_pod, cross_core };

PairLocality classify_pair(const Topology& topo, NodeId host_a, NodeId host_b);

/// Hop count between two hosts implied by locality (2 / 4 / 6 on a
/// three-level tree).
std::size_t locality_hops(PairLocality loc);

/// Weighted cost between two hosts implied by locality
/// (1+1 / 1+2+2+1 / 1+2+4+4+2+1).
double locality_weighted_cost(PairLocality loc);

}  // namespace netalytics::dcn
