// Data-center topology model for the placement simulator (§4.1, §6.2).
// "Our simulations use a three-level fat tree topology with k=16, which
// contains 1024 hosts, 128 edge switches, 128 aggregate switches and 64
// core switches... The memory capacity of each host is a random number
// between 32 to 128 GB and the CPU capacity is a random number between 12
// to 24. The utilization of both resources is between 40% to 80%."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace netalytics::dcn {

using NodeId = std::uint32_t;

enum class NodeKind : std::uint8_t { host, tor, aggregate, core };

struct Node {
  NodeId id = 0;
  NodeKind kind = NodeKind::host;
  int pod = -1;  // -1 for core switches

  // Host resources (hosts only). `*_used` covers the pre-existing tenant
  // load; NetAlytics processes add on top, bounded by capacity.
  double cpu_capacity = 0;
  double cpu_used = 0;
  double mem_capacity_gb = 0;
  double mem_used_gb = 0;

  double cpu_free() const noexcept { return cpu_capacity - cpu_used; }
  double mem_free_gb() const noexcept { return mem_capacity_gb - mem_used_gb; }
  /// Load fraction used by "pick the least-loaded host" steps.
  double load() const noexcept {
    return cpu_capacity > 0 ? cpu_used / cpu_capacity : 1.0;
  }
};

struct HostResourceConfig {
  double mem_min_gb = 32, mem_max_gb = 128;
  double cpu_min = 12, cpu_max = 24;
  double util_min = 0.4, util_max = 0.8;
};

class Topology {
 public:
  NodeId add_node(NodeKind kind, int pod = -1);
  void add_link(NodeId a, NodeId b);

  const Node& node(NodeId id) const { return nodes_.at(id); }
  Node& node(NodeId id) { return nodes_.at(id); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  const std::vector<NodeId>& neighbors(NodeId id) const { return adj_.at(id); }

  const std::vector<NodeId>& hosts() const noexcept { return hosts_; }
  const std::vector<NodeId>& tor_switches() const noexcept { return tors_; }
  const std::vector<NodeId>& aggregate_switches() const noexcept { return aggs_; }
  const std::vector<NodeId>& core_switches() const noexcept { return cores_; }

  /// A host's ToR switch (its unique switch neighbor).
  NodeId tor_of_host(NodeId host) const;

  /// Hosts attached to a ToR switch.
  std::vector<NodeId> hosts_under_tor(NodeId tor) const;

  /// Aggregate switches adjacent to a ToR.
  std::vector<NodeId> aggs_of_tor(NodeId tor) const;

  /// Hosts whose ToR is adjacent to this aggregate switch.
  std::vector<NodeId> hosts_under_agg(NodeId agg) const;

  /// Assign randomized host resources per the simulation setup.
  void randomize_host_resources(common::Rng& rng,
                                const HostResourceConfig& config = {});

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> tors_;
  std::vector<NodeId> aggs_;
  std::vector<NodeId> cores_;
};

/// Build a k-ary three-level fat tree (k even): k pods of k/2 ToR + k/2
/// aggregate switches, (k/2)^2 cores, k^3/4 hosts.
Topology build_fat_tree(int k);

/// Small two-pod tree like the paper's Fig. 2 (2 cores, 4 aggs, 8 racks,
/// `hosts_per_rack` hosts each) for examples and tests.
Topology build_small_tree(std::size_t hosts_per_rack = 4);

}  // namespace netalytics::dcn
