// Workload generation for the placement simulation (§6.2): staggered
// locality ("50% within the ToR switch, 30% within the same aggregate
// switch, and 20% across a core switch"), Benson-style heavy-tailed flow
// sizes, ~1000K flows and ~1.2 Tbps total at the k=16 scale.
#pragma once

#include <cstdint>
#include <vector>

#include "dcn/topology.hpp"

namespace netalytics::dcn {

struct Flow {
  NodeId src_host = 0;
  NodeId dst_host = 0;
  double rate_bps = 0;
  double size_bytes = 0;
};

struct WorkloadConfig {
  std::size_t flow_count = 1'000'000;
  // Staggered locality distribution (ToRP, PodP, CoreP).
  double tor_p = 0.5;
  double pod_p = 0.3;
  double core_p = 0.2;
  /// Target aggregate traffic; per-flow rates are heavy-tailed (lognormal)
  /// and then scaled so the total matches.
  double total_traffic_bps = 1.2e12;
  /// Benson et al.: most flows are small; sizes are lognormal around 10 KB.
  double mean_flow_size_bytes = 10'000;
  std::uint64_t seed = 1;
};

struct Workload {
  std::vector<Flow> flows;
  double total_rate_bps = 0;

  /// Draw `count` distinct flow indices (the monitored set of a query).
  std::vector<std::uint32_t> sample_flow_indices(std::size_t count,
                                                 common::Rng& rng) const;
};

Workload generate_workload(const Topology& topo, const WorkloadConfig& config);

}  // namespace netalytics::dcn
