#include "dcn/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace netalytics::dcn {

namespace {

/// Pick a destination host honoring the staggered locality draw.
NodeId pick_destination(const Topology& topo, NodeId src, common::Rng& rng) {
  const NodeId tor = topo.tor_of_host(src);
  const double draw = rng.next_double();
  const auto& all_hosts = topo.hosts();

  if (draw < 0.5) {
    // Same rack (excluding the source itself when possible).
    const auto rack = topo.hosts_under_tor(tor);
    if (rack.size() > 1) {
      NodeId dst = src;
      while (dst == src) {
        dst = rack[rng.uniform(0, rack.size() - 1)];
      }
      return dst;
    }
  } else if (draw < 0.8) {
    // Same pod, different rack.
    const int pod = topo.node(src).pod;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const NodeId dst = all_hosts[rng.uniform(0, all_hosts.size() - 1)];
      if (topo.node(dst).pod == pod && topo.tor_of_host(dst) != tor) return dst;
    }
  }
  // Cross-core (or fallback): any host in another pod.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const NodeId dst = all_hosts[rng.uniform(0, all_hosts.size() - 1)];
    if (topo.node(dst).pod != topo.node(src).pod) return dst;
  }
  return all_hosts[rng.uniform(0, all_hosts.size() - 1)];
}

}  // namespace

Workload generate_workload(const Topology& topo, const WorkloadConfig& config) {
  if (topo.hosts().empty()) throw std::invalid_argument("workload: no hosts");
  common::Rng rng(config.seed);
  Workload w;
  w.flows.reserve(config.flow_count);

  const auto& hosts = topo.hosts();
  double total = 0;
  for (std::size_t i = 0; i < config.flow_count; ++i) {
    Flow f;
    f.src_host = hosts[rng.uniform(0, hosts.size() - 1)];
    f.dst_host = pick_destination(topo, f.src_host, rng);
    // Lognormal sizes: sigma 1.5 gives the heavy tail Benson et al.
    // observed (most flows tiny, a few elephants).
    constexpr double kSigma = 1.5;
    const double mu =
        std::log(config.mean_flow_size_bytes) - kSigma * kSigma / 2.0;
    f.size_bytes = rng.lognormal(mu, kSigma);
    f.rate_bps = f.size_bytes;  // provisional; scaled below
    total += f.rate_bps;
    w.flows.push_back(f);
  }

  // Scale rates so aggregate traffic hits the configured total.
  const double scale = total > 0 ? config.total_traffic_bps / total : 0;
  w.total_rate_bps = 0;
  for (auto& f : w.flows) {
    f.rate_bps *= scale;
    w.total_rate_bps += f.rate_bps;
  }
  return w;
}

std::vector<std::uint32_t> Workload::sample_flow_indices(std::size_t count,
                                                         common::Rng& rng) const {
  count = std::min(count, flows.size());
  // Partial Fisher-Yates over an index vector.
  std::vector<std::uint32_t> indices(flows.size());
  std::iota(indices.begin(), indices.end(), 0u);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.uniform(0, indices.size() - 1 - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

}  // namespace netalytics::dcn
