// Embedded tiered time-series store (netdata-dbengine style, scoped to
// one engine process). Three tiers per series, oldest to newest:
//
//   evicted rollup -- one lossless {sum,count,min,max,last} aggregate of
//                     everything that aged past the cold tier, so
//                     whole-range sums stay exact forever;
//   cold tier      -- per-bucket {ts,count,sum,min,max,last} aggregates of
//                     `downsample_ticks` hot samples each, delta-of-delta
//                     + varint encoded into fixed-size chunks (FIFO
//                     eviction folds a chunk's rollup into the evicted
//                     aggregate);
//   hot tier       -- a fixed-slot ring of raw (tick, value) samples; the
//                     generalization of the old common::SnapshotRing.
//
// Ingest sources: per-tick cumulative MetricsRegistry snapshots (capture()
// diffs counters into deltas, stores gauges absolute, explodes histograms
// into per-bucket series) and direct scalar samples (per-tick analytics
// emissions from result sinks). Queries additionally merge an optional
// LiveHead — the registry's current cumulative values — so counter totals
// are exact up to "now" even between captures or with the store disabled.
//
// Determinism: contents depend only on the (virtual-time, value) stream
// ingested; nothing reads a clock. Same run -> byte-identical
// RangeResult::render() output.
//
// Concurrency: one mutex around all state. Capture happens once per
// engine tick and queries are operator-driven — neither is a hot path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/expected.hpp"
#include "common/metrics.hpp"
#include "tsdb/query.hpp"

namespace netalytics::tsdb {

struct StoreConfig {
  /// Hot-ring slots per series. 0 disables capture/ingest entirely —
  /// query_range then serves only the live head.
  std::size_t hot_slots = 128;
  /// Hot samples folded into one cold bucket on eviction.
  std::size_t downsample_ticks = 8;
  /// Cold buckets encoded per chunk (chunks decode independently).
  std::size_t cold_chunk_buckets = 64;
  /// Chunks retained per series; the oldest chunk's rollup folds into the
  /// evicted aggregate when exceeded. 0 = unlimited.
  std::size_t cold_chunks = 64;
  /// New-series cap (result sinks can mint series per key); ingest for
  /// names beyond the cap is dropped and counted. 0 = unlimited.
  std::size_t max_series = 8192;

  common::Expected<void> validate() const;
};

/// The registry's current cumulative values, merged at query time as a
/// synthetic newest sample: counters contribute value - (sum of captured
/// deltas), gauges their level, histograms per-bucket tails.
struct LiveHead {
  common::Timestamp ts = 0;
  const common::MetricsSnapshot* snapshot = nullptr;  // cumulative; may be null
};

class TieredStore {
 public:
  explicit TieredStore(StoreConfig cfg = {});

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  bool enabled() const noexcept { return cfg_.hot_slots > 0; }
  const StoreConfig& config() const noexcept { return cfg_; }

  /// Ingest one cumulative registry snapshot (call once per tick).
  /// Counters/histogram buckets are diffed against the previous capture;
  /// gauges are stored absolute. No-op when disabled.
  void capture(common::Timestamp ts, const common::MetricsSnapshot& cumulative);

  /// Ingest one scalar sample directly (result-sink emissions). No-op
  /// when disabled.
  void ingest(const std::string& name, SeriesKind kind, common::Timestamp ts,
              double value);

  /// Execute a range query over stored data, optionally merging the live
  /// registry head. Exactness notes are on RangeResult::exact.
  RangeResult query_range(const RangeQuery& q) const;
  RangeResult query_range(const RangeQuery& q, const LiveHead& live) const;

  struct Stats {
    std::uint64_t captures = 0;        // capture() calls
    std::uint64_t series = 0;          // scalar series (histogram buckets incl.)
    std::uint64_t histograms = 0;      // histogram families
    std::uint64_t samples_ingested = 0;
    std::uint64_t hot_samples = 0;     // currently in hot rings
    std::uint64_t cold_buckets = 0;    // currently encoded (excl. pending)
    std::uint64_t cold_bytes = 0;      // encoded cold-tier size
    std::uint64_t cold_raw_bytes = 0;  // 16 B x samples folded to cold
    std::uint64_t evicted_buckets = 0; // folded into evicted rollups
    std::uint64_t rejected_samples = 0;// dropped by the max_series cap
  };
  Stats stats() const;

 private:
  struct Sample {
    common::Timestamp ts = 0;
    double value = 0;
  };

  /// One downsampled aggregate (also the evicted-rollup accumulator).
  struct Bucket {
    common::Timestamp ts = 0;  // first folded sample's timestamp
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double last = 0;

    void fold(common::Timestamp sample_ts, double v) noexcept;
    void merge(const Bucket& b) noexcept;
  };

  struct Chunk {
    std::vector<std::byte> bytes;
    std::size_t buckets = 0;
    common::Timestamp first_ts = 0;
    common::Timestamp last_ts = 0;
    Bucket rollup;                 // lossless aggregate of the chunk
    std::uint64_t raw_bytes = 0;   // 16 B x samples inside
  };

  struct Cold {
    std::deque<Chunk> chunks;      // oldest first
    Bucket prev;                   // delta base for the open chunk's encoder
    common::Timestamp prev_ts = 0;
    std::int64_t prev_dt = 0;      // previous ts delta (delta-of-delta base)
    Bucket pending;                // accumulating, not yet encoded
    bool pending_open = false;
    Bucket evicted;                // rollup of everything past the chunks
    bool has_evicted = false;
  };

  struct Series {
    SeriesKind kind = SeriesKind::counter;
    std::vector<Sample> hot;       // ring, cfg_.hot_slots entries
    std::size_t head = 0;          // next write slot
    std::size_t count = 0;         // valid entries
    double cum = 0;                // lifetime sum of ingested values
    std::uint64_t ingested = 0;
    Cold cold;
  };

  struct Histogram {
    std::vector<std::uint64_t> bounds;
    std::vector<Series> buckets;   // bounds.size()+1, keyed by position
  };

  Series* find_or_create(const std::string& name, SeriesKind kind);
  void push(Series& s, common::Timestamp ts, double value);
  void fold_to_cold(Series& s, const Sample& evictee);
  void append_bucket(Cold& c, const Bucket& b);
  static std::vector<Bucket> decode_chunk(const Chunk& chunk);

  /// Aggregation atom: a sample (count 1) or a downsampled bucket.
  struct Atom {
    common::Timestamp ts = 0;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double last = 0;
    bool downsampled = false;
  };
  /// All atoms of `s` overlapping [t0, t1], oldest first; appends the
  /// live tail when `live_tail` is non-negative (counters) or kind is
  /// gauge with a fresher head.
  void collect_atoms(const Series& s, common::Timestamp t0,
                     common::Timestamp t1, std::vector<Atom>& out) const;
  static void fold_window(const RangeQuery& q, const std::vector<Atom>& atoms,
                          RangeResult::Series& out, bool& exact);

  StoreConfig cfg_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
  std::map<std::string, Histogram> histograms_;
  common::MetricsSnapshot last_capture_;  // cumulative baseline for deltas
  std::uint64_t captures_ = 0;
  std::uint64_t rejected_samples_ = 0;
  std::uint64_t evicted_buckets_ = 0;
};

}  // namespace netalytics::tsdb
