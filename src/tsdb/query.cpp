#include "tsdb/query.hpp"

#include <cmath>
#include <cstdio>

namespace netalytics::tsdb {

std::string_view agg_name(Agg a) noexcept {
  switch (a) {
    case Agg::sum: return "sum";
    case Agg::avg: return "avg";
    case Agg::min: return "min";
    case Agg::max: return "max";
    case Agg::last: return "last";
    case Agg::p50: return "p50";
    case Agg::p95: return "p95";
    case Agg::p99: return "p99";
  }
  return "?";
}

double agg_quantile(Agg a) noexcept {
  switch (a) {
    case Agg::p50: return 0.50;
    case Agg::p95: return 0.95;
    case Agg::p99: return 0.99;
    default: return 0;
  }
}

std::string_view series_kind_name(SeriesKind k) noexcept {
  return k == SeriesKind::counter ? "counter" : "gauge";
}

double percentile_from_buckets(const std::vector<std::uint64_t>& bounds,
                               const std::vector<double>& bucket_sums,
                               double q) noexcept {
  double total = 0;
  for (const double c : bucket_sums) total += c;
  if (total <= 0 || bounds.empty()) return 0;
  const double target = q * total;
  double cum = 0;
  for (std::size_t i = 0; i < bucket_sums.size(); ++i) {
    cum += bucket_sums[i];
    if (cum >= target) {
      // The +inf bucket clamps to the last finite bound (documented).
      const std::size_t b = i < bounds.size() ? i : bounds.size() - 1;
      return static_cast<double>(bounds[b]);
    }
  }
  return static_cast<double>(bounds.back());
}

std::string format_number(double v) {
  if (std::nearbyint(v) == v && std::abs(v) < 9.0e18) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string RangeResult::render(std::size_t max_points_per_series) const {
  std::string out = "range selector=";
  out += query.selector.empty() ? "*" : query.selector;
  out += " agg=";
  out += agg_name(query.agg);
  out += " t0=" + std::to_string(query.t0);
  out += query.t1 == std::numeric_limits<common::Timestamp>::max()
             ? std::string(" t1=max")
             : " t1=" + std::to_string(query.t1);
  out += " step=" + std::to_string(query.step);
  out += exact ? " exact=true\n" : " exact=false\n";
  for (const auto& s : series) {
    out += s.name;
    out += ' ';
    out += series_kind_name(s.kind);
    out += " points=" + std::to_string(s.points.size());
    out += '\n';
    std::size_t n = 0;
    for (const auto& p : s.points) {
      if (n++ >= max_points_per_series) {
        out += "  ...\n";
        break;
      }
      out += "  t=" + std::to_string(p.t);
      out += " v=" + format_number(p.value);
      out += " n=" + std::to_string(p.samples);
      out += '\n';
    }
  }
  return out;
}

}  // namespace netalytics::tsdb
