// Cold-tier sample encoding: LEB128 varints, zigzag, and a "number" codec
// that stores integral doubles as varints and falls back to raw IEEE bits
// for everything else. Cold buckets are encoded delta-of-delta for
// timestamps (regular tick cadence makes the second difference ~0, one
// byte) and field-delta for values, so a 48-byte raw bucket typically
// compresses to well under 12 bytes (bench_tsdb measures the ratio).
//
// All codecs are exact: decode(encode(x)) == x bit-for-bit, including
// non-integral and negative doubles (those take the 9-byte raw escape).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netalytics::tsdb {

// ---- varints ---------------------------------------------------------------

/// LEB128: 7 value bits per byte, low group first, high bit = continue.
void put_uvarint(std::vector<std::byte>& out, std::uint64_t v);
/// Reads at `pos`, advancing it. Throws std::out_of_range on truncation.
std::uint64_t get_uvarint(std::span<const std::byte> buf, std::size_t& pos);

/// Zigzag fold: small magnitudes (either sign) become small unsigneds.
constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::vector<std::byte>& out, std::int64_t v);
std::int64_t get_svarint(std::span<const std::byte> buf, std::size_t& pos);

// ---- number codec ----------------------------------------------------------

/// True when `v` is a whole number the varint path can carry exactly.
bool integral_number(double v) noexcept;

/// Integral doubles in (-2^61, 2^61) encode as uvarint(zigzag(v) << 1)
/// (always even); anything else as the odd marker byte 0x01 followed by
/// 8 raw little-endian IEEE-754 bytes. Exact for every double.
void put_number(std::vector<std::byte>& out, double v);
double get_number(std::span<const std::byte> buf, std::size_t& pos);

/// Delta form: when both `prev` and `cur` are integral the difference is
/// encoded (small for slowly-moving series); otherwise `cur` is stored
/// absolute via the raw escape. Decode needs the same `prev`.
void put_number_delta(std::vector<std::byte>& out, double prev, double cur);
double get_number_delta(std::span<const std::byte> buf, std::size_t& pos,
                        double prev);

}  // namespace netalytics::tsdb
