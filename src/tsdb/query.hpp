// The unified historical read API: one query shape for everything the
// engine records — monitor counters, broker gauges, stage-latency
// histograms, per-tick analytics emissions. A RangeQuery selects series by
// name prefix, bounds a virtual-time range, and folds samples per step
// window with an aggregation function; the typed RangeResult it returns
// also powers the render paths (RangeResult::render() is deterministic:
// same run, same query -> byte-identical text at any executor_workers).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::tsdb {

/// Aggregation functions. sum/avg/min/max/last fold scalar series
/// (counters are stored as per-capture deltas, so `sum` over a range is
/// "increments in range"; gauges are absolute levels). p50/p95/p99 apply
/// to histogram families only and are served from the fixed bucket
/// layout the registry already maintains — exact at bucket resolution.
enum class Agg : std::uint8_t { sum, avg, min, max, last, p50, p95, p99 };
inline constexpr std::size_t kAggCount = 8;

std::string_view agg_name(Agg a) noexcept;
constexpr bool agg_is_percentile(Agg a) noexcept {
  return a == Agg::p50 || a == Agg::p95 || a == Agg::p99;
}
/// 0.50 / 0.95 / 0.99 for the percentile aggs, 0 otherwise.
double agg_quantile(Agg a) noexcept;

struct RangeQuery {
  /// Series-name prefix: "q1.mon" matches every monitor counter of query
  /// 1, "" matches everything. Percentile aggs match histogram families,
  /// all other aggs match scalar (counter/gauge) series.
  std::string selector;
  /// Inclusive virtual-time range. Defaults cover all recorded history
  /// plus the live head.
  common::Timestamp t0 = 0;
  common::Timestamp t1 = std::numeric_limits<common::Timestamp>::max();
  /// Resolution: samples fold per [t, t+step) window; 0 = one point over
  /// the whole range.
  common::Duration step = 0;
  Agg agg = Agg::sum;
};

/// What kind of scalar stream a series is. Counters ingest per-capture
/// deltas of a monotonic registry counter; gauges ingest absolute levels
/// (registry gauges and result-sink emissions).
enum class SeriesKind : std::uint8_t { counter, gauge };
std::string_view series_kind_name(SeriesKind k) noexcept;

/// Typed range-query result: one Series per matched name, one Point per
/// non-empty step window. Empty windows are omitted (points carry their
/// window-start timestamp, so gaps are recoverable).
struct RangeResult {
  struct Point {
    common::Timestamp t = 0;     // window start
    double value = 0;            // aggregated value
    std::uint64_t samples = 0;   // raw samples folded into this point
    bool operator==(const Point&) const = default;
  };
  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::counter;
    std::vector<Point> points;
    bool operator==(const Series&) const = default;
  };

  RangeQuery query;            // echo of what was asked
  std::vector<Series> series;  // sorted by name
  /// True when every point was folded from per-sample data (hot tier or
  /// live head). False means downsampled cold/evicted aggregates
  /// contributed: sums/avg/samples stay exact over windows aligned to
  /// downsample buckets (and always for step == 0 whole-range queries),
  /// min/max/last are exact at bucket resolution, and a bucket is
  /// attributed to the window containing its first sample.
  bool exact = true;

  /// Deterministic plain-text rendering (diff-stable, like
  /// MetricsSnapshot::render): a header line, then per series one name
  /// line and one "  t=<ns> v=<value> n=<samples>" line per point.
  std::string render(std::size_t max_points_per_series = 1000) const;
};

/// Shared percentile kernel (store and the tests' naive reference use the
/// same one): smallest bucket upper bound whose cumulative count reaches
/// quantile q of the total. The +inf bucket clamps to the last finite
/// bound. Returns 0 when the window saw no observations.
double percentile_from_buckets(const std::vector<std::uint64_t>& bounds,
                               const std::vector<double>& bucket_sums,
                               double q) noexcept;

/// Deterministic number formatting for renders: integral values print
/// with no decimal point, everything else as %.9g.
std::string format_number(double v);

}  // namespace netalytics::tsdb
