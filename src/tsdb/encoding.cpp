#include "tsdb/encoding.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace netalytics::tsdb {

void put_uvarint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_uvarint(std::span<const std::byte> buf, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= buf.size() || shift > 63) {
      throw std::out_of_range("tsdb: truncated uvarint");
    }
    const auto b = static_cast<std::uint8_t>(buf[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

void put_svarint(std::vector<std::byte>& out, std::int64_t v) {
  put_uvarint(out, zigzag(v));
}

std::int64_t get_svarint(std::span<const std::byte> buf, std::size_t& pos) {
  return unzigzag(get_uvarint(buf, pos));
}

namespace {

// Integral doubles the folded-tag varint path can carry: zigzag needs one
// bit, the integral/raw tag another, leaving 62 bits of magnitude.
constexpr double kMaxIntegral = 2305843009213693952.0;  // 2^61

void put_raw(std::vector<std::byte>& out, double v) {
  out.push_back(static_cast<std::byte>(0x01));  // odd = raw escape
  std::byte bits[8];
  std::memcpy(bits, &v, 8);
  out.insert(out.end(), bits, bits + 8);
}

}  // namespace

bool integral_number(double v) noexcept {
  return std::nearbyint(v) == v && v > -kMaxIntegral && v < kMaxIntegral;
}

void put_number(std::vector<std::byte>& out, double v) {
  if (integral_number(v)) {
    put_uvarint(out, zigzag(static_cast<std::int64_t>(v)) << 1);
  } else {
    put_raw(out, v);
  }
}

double get_number(std::span<const std::byte> buf, std::size_t& pos) {
  const auto u = get_uvarint(buf, pos);
  if ((u & 1) == 0) return static_cast<double>(unzigzag(u >> 1));
  if (pos + 8 > buf.size()) throw std::out_of_range("tsdb: truncated number");
  double v;
  std::memcpy(&v, buf.data() + pos, 8);
  pos += 8;
  return v;
}

void put_number_delta(std::vector<std::byte>& out, double prev, double cur) {
  if (integral_number(prev) && integral_number(cur)) {
    const auto d =
        static_cast<std::int64_t>(cur) - static_cast<std::int64_t>(prev);
    put_uvarint(out, zigzag(d) << 1);
  } else {
    put_raw(out, cur);
  }
}

double get_number_delta(std::span<const std::byte> buf, std::size_t& pos,
                        double prev) {
  const auto u = get_uvarint(buf, pos);
  if ((u & 1) == 0) {
    return static_cast<double>(static_cast<std::int64_t>(prev) +
                               unzigzag(u >> 1));
  }
  if (pos + 8 > buf.size()) throw std::out_of_range("tsdb: truncated number");
  double v;
  std::memcpy(&v, buf.data() + pos, 8);
  pos += 8;
  return v;
}

}  // namespace netalytics::tsdb
