#include "tsdb/store.hpp"

#include <algorithm>
#include <optional>

#include "tsdb/encoding.hpp"

namespace netalytics::tsdb {

common::Expected<void> StoreConfig::validate() const {
  using common::Error;
  constexpr std::size_t kLimit = 1u << 20;
  if (hot_slots > kLimit) {
    return Error{"tsdb", "hot_slots must be <= 2^20"};
  }
  if (downsample_ticks == 0 || downsample_ticks > 4096) {
    return Error{"tsdb", "downsample_ticks must be in [1, 4096]"};
  }
  if (cold_chunk_buckets == 0 || cold_chunk_buckets > 4096) {
    return Error{"tsdb", "cold_chunk_buckets must be in [1, 4096]"};
  }
  if (cold_chunks > kLimit || max_series > kLimit) {
    return Error{"tsdb", "cold_chunks/max_series must be <= 2^20"};
  }
  return {};
}

TieredStore::TieredStore(StoreConfig cfg) : cfg_(cfg) {}

// ---- buckets ---------------------------------------------------------------

void TieredStore::Bucket::fold(common::Timestamp sample_ts, double v) noexcept {
  if (count == 0) {
    ts = sample_ts;
    sum = min = max = last = v;
    count = 1;
    return;
  }
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  last = v;
  ++count;
}

void TieredStore::Bucket::merge(const Bucket& b) noexcept {
  if (b.count == 0) return;
  if (count == 0) {
    *this = b;
    return;
  }
  sum += b.sum;
  min = std::min(min, b.min);
  max = std::max(max, b.max);
  last = b.last;
  count += b.count;
}

// ---- ingest ----------------------------------------------------------------

TieredStore::Series* TieredStore::find_or_create(const std::string& name,
                                                 SeriesKind kind) {
  auto it = series_.find(name);
  if (it != series_.end()) return &it->second;
  if (cfg_.max_series != 0) {
    std::size_t total = series_.size();
    for (const auto& [n, h] : histograms_) total += h.buckets.size();
    if (total >= cfg_.max_series) {
      ++rejected_samples_;
      return nullptr;
    }
  }
  Series s;
  s.kind = kind;
  s.hot.resize(cfg_.hot_slots);
  return &series_.emplace(name, std::move(s)).first->second;
}

void TieredStore::push(Series& s, common::Timestamp ts, double value) {
  s.cum += value;
  ++s.ingested;
  if (s.count == s.hot.size()) {
    fold_to_cold(s, s.hot[s.head]);  // head is the oldest slot when full
  } else {
    ++s.count;
  }
  s.hot[s.head] = {ts, value};
  s.head = (s.head + 1) % s.hot.size();
}

void TieredStore::fold_to_cold(Series& s, const Sample& evictee) {
  Cold& c = s.cold;
  c.pending.fold(evictee.ts, evictee.value);
  c.pending_open = true;
  if (c.pending.count >= cfg_.downsample_ticks) {
    append_bucket(c, c.pending);
    c.pending = Bucket{};
    c.pending_open = false;
  }
}

void TieredStore::append_bucket(Cold& c, const Bucket& b) {
  if (c.chunks.empty() || c.chunks.back().buckets >= cfg_.cold_chunk_buckets) {
    c.chunks.emplace_back();
    c.prev = Bucket{};
    c.prev_ts = 0;
    c.prev_dt = 0;
  }
  Chunk& ch = c.chunks.back();
  if (ch.buckets == 0) {
    ch.first_ts = b.ts;
    put_uvarint(ch.bytes, b.ts);
    put_uvarint(ch.bytes, b.count);
    put_number(ch.bytes, b.sum);
    put_number(ch.bytes, b.min);
    put_number(ch.bytes, b.max);
    put_number(ch.bytes, b.last);
    c.prev_dt = 0;
  } else {
    const auto dt = static_cast<std::int64_t>(b.ts - c.prev_ts);
    put_svarint(ch.bytes, dt - c.prev_dt);
    c.prev_dt = dt;
    put_uvarint(ch.bytes, b.count);
    put_number_delta(ch.bytes, c.prev.sum, b.sum);
    put_number_delta(ch.bytes, c.prev.min, b.min);
    put_number_delta(ch.bytes, c.prev.max, b.max);
    put_number_delta(ch.bytes, c.prev.last, b.last);
  }
  c.prev = b;
  c.prev_ts = b.ts;
  ++ch.buckets;
  ch.last_ts = b.ts;
  ch.rollup.merge(b);
  ch.raw_bytes += 16 * b.count;

  if (cfg_.cold_chunks != 0 && c.chunks.size() > cfg_.cold_chunks) {
    c.evicted.merge(c.chunks.front().rollup);
    c.has_evicted = true;
    evicted_buckets_ += c.chunks.front().buckets;
    c.chunks.pop_front();
  }
}

std::vector<TieredStore::Bucket> TieredStore::decode_chunk(const Chunk& chunk) {
  std::vector<Bucket> out;
  out.reserve(chunk.buckets);
  std::span<const std::byte> buf(chunk.bytes);
  std::size_t pos = 0;
  Bucket prev;
  common::Timestamp prev_ts = 0;
  std::int64_t prev_dt = 0;
  for (std::size_t i = 0; i < chunk.buckets; ++i) {
    Bucket b;
    if (i == 0) {
      b.ts = get_uvarint(buf, pos);
      b.count = get_uvarint(buf, pos);
      b.sum = get_number(buf, pos);
      b.min = get_number(buf, pos);
      b.max = get_number(buf, pos);
      b.last = get_number(buf, pos);
    } else {
      const auto dt = prev_dt + get_svarint(buf, pos);
      b.ts = prev_ts + static_cast<common::Timestamp>(dt);
      prev_dt = dt;
      b.count = get_uvarint(buf, pos);
      b.sum = get_number_delta(buf, pos, prev.sum);
      b.min = get_number_delta(buf, pos, prev.min);
      b.max = get_number_delta(buf, pos, prev.max);
      b.last = get_number_delta(buf, pos, prev.last);
    }
    prev = b;
    prev_ts = b.ts;
    out.push_back(b);
  }
  return out;
}

void TieredStore::capture(common::Timestamp ts,
                          const common::MetricsSnapshot& cumulative) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  ++captures_;

  // Counters: per-capture deltas (names only ever grow and snapshots are
  // name-sorted, so a linear merge finds each previous value).
  std::size_t pi = 0;
  const auto& prev = last_capture_;
  for (const auto& c : cumulative.counters) {
    while (pi < prev.counters.size() && prev.counters[pi].name < c.name) ++pi;
    const std::uint64_t before =
        (pi < prev.counters.size() && prev.counters[pi].name == c.name)
            ? prev.counters[pi].value
            : 0;
    if (c.value == before) continue;
    if (Series* s = find_or_create(c.name, SeriesKind::counter)) {
      push(*s, ts, static_cast<double>(c.value - before));
    }
  }

  // Gauges: absolute levels, one sample per capture.
  for (const auto& g : cumulative.gauges) {
    if (Series* s = find_or_create(g.name, SeriesKind::gauge)) {
      push(*s, ts, static_cast<double>(g.value));
    }
  }

  // Histograms: one counter-like series per bucket (percentile queries
  // fold these), plus synthetic <name>_count / <name>_sum scalar series.
  pi = 0;
  for (const auto& h : cumulative.histograms) {
    while (pi < prev.histograms.size() && prev.histograms[pi].name < h.name) {
      ++pi;
    }
    const bool known =
        pi < prev.histograms.size() && prev.histograms[pi].name == h.name;
    const std::uint64_t count_before = known ? prev.histograms[pi].count : 0;
    if (h.count == count_before) continue;

    auto hit = histograms_.find(h.name);
    if (hit == histograms_.end()) {
      Histogram fam;
      fam.bounds = h.bounds;
      fam.buckets.resize(h.buckets.size());
      for (auto& b : fam.buckets) b.hot.resize(cfg_.hot_slots);
      hit = histograms_.emplace(h.name, std::move(fam)).first;
    }
    Histogram& fam = hit->second;
    for (std::size_t b = 0; b < h.buckets.size() && b < fam.buckets.size();
         ++b) {
      const std::uint64_t bucket_before =
          known && b < prev.histograms[pi].buckets.size()
              ? prev.histograms[pi].buckets[b]
              : 0;
      if (h.buckets[b] == bucket_before) continue;
      push(fam.buckets[b], ts,
           static_cast<double>(h.buckets[b] - bucket_before));
    }
    if (Series* s = find_or_create(h.name + "_count", SeriesKind::counter)) {
      push(*s, ts, static_cast<double>(h.count - count_before));
    }
    const std::uint64_t sum_before = known ? prev.histograms[pi].sum : 0;
    if (h.sum != sum_before) {
      if (Series* s = find_or_create(h.name + "_sum", SeriesKind::counter)) {
        push(*s, ts, static_cast<double>(h.sum - sum_before));
      }
    }
  }

  last_capture_ = cumulative;
}

void TieredStore::ingest(const std::string& name, SeriesKind kind,
                         common::Timestamp ts, double value) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  if (Series* s = find_or_create(name, kind)) push(*s, ts, value);
}

// ---- query -----------------------------------------------------------------

namespace {

bool has_prefix(const std::string& name, const std::string& prefix) {
  return name.size() >= prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

void TieredStore::collect_atoms(const Series& s, common::Timestamp t0,
                                common::Timestamp t1,
                                std::vector<Atom>& out) const {
  const auto bucket_atom = [](const Bucket& b) {
    return Atom{b.ts, b.count, b.sum, b.min, b.max, b.last, b.count > 1};
  };
  const Cold& c = s.cold;
  if (c.has_evicted && c.evicted.ts >= t0 && c.evicted.ts <= t1) {
    out.push_back(bucket_atom(c.evicted));
  }
  for (const auto& chunk : c.chunks) {
    if (chunk.buckets == 0 || chunk.first_ts > t1 || chunk.last_ts < t0) {
      continue;
    }
    for (const auto& b : decode_chunk(chunk)) {
      if (b.ts >= t0 && b.ts <= t1) out.push_back(bucket_atom(b));
    }
  }
  if (c.pending_open && c.pending.ts >= t0 && c.pending.ts <= t1) {
    out.push_back(bucket_atom(c.pending));
  }
  const std::size_t first = (s.head + s.hot.size() - s.count) % s.hot.size();
  for (std::size_t i = 0; i < s.count; ++i) {
    const Sample& smp = s.hot[(first + i) % s.hot.size()];
    if (smp.ts >= t0 && smp.ts <= t1) {
      out.push_back(
          Atom{smp.ts, 1, smp.value, smp.value, smp.value, smp.value, false});
    }
  }
}

void TieredStore::fold_window(const RangeQuery& q,
                              const std::vector<Atom>& atoms,
                              RangeResult::Series& out, bool& exact) {
  Bucket acc;
  common::Timestamp window = 0;
  bool open = false;
  const auto flush = [&] {
    if (!open || acc.count == 0) return;
    double v = 0;
    switch (q.agg) {
      case Agg::sum: v = acc.sum; break;
      case Agg::avg: v = acc.sum / static_cast<double>(acc.count); break;
      case Agg::min: v = acc.min; break;
      case Agg::max: v = acc.max; break;
      case Agg::last: v = acc.last; break;
      default: v = acc.sum; break;  // percentiles never reach here
    }
    out.points.push_back({window, v, acc.count});
  };
  for (const Atom& a : atoms) {
    const common::Timestamp ws =
        q.step == 0 ? q.t0 : q.t0 + ((a.ts - q.t0) / q.step) * q.step;
    if (!open || ws != window) {
      flush();
      acc = Bucket{};
      window = ws;
      open = true;
    }
    Bucket b{a.ts, a.count, a.sum, a.min, a.max, a.last};
    acc.merge(b);
    if (a.downsampled) exact = false;
  }
  flush();
}

RangeResult TieredStore::query_range(const RangeQuery& q) const {
  return query_range(q, LiveHead{});
}

RangeResult TieredStore::query_range(const RangeQuery& q,
                                     const LiveHead& live) const {
  std::lock_guard lock(mutex_);
  RangeResult res;
  res.query = q;
  const bool live_ok = live.snapshot != nullptr && live.ts >= q.t0 &&
                       live.ts <= q.t1;

  if (agg_is_percentile(q.agg)) {
    // Histogram families: stored union live, name-sorted by the map.
    std::map<std::string,
             std::pair<const Histogram*,
                       const common::MetricsSnapshot::HistogramSample*>>
        fams;
    for (const auto& [name, fam] : histograms_) {
      if (has_prefix(name, q.selector)) fams[name] = {&fam, nullptr};
    }
    if (live.snapshot != nullptr) {
      for (const auto& h : live.snapshot->histograms) {
        if (has_prefix(h.name, q.selector)) fams[h.name].second = &h;
      }
    }
    const double quantile = agg_quantile(q.agg);
    for (const auto& [name, fam] : fams) {
      const auto* stored = fam.first;
      const auto* head = fam.second;
      const auto& bounds = stored != nullptr ? stored->bounds : head->bounds;
      const std::size_t nb =
          stored != nullptr ? stored->buckets.size() : head->buckets.size();
      // window start -> per-bucket observation sums
      std::map<common::Timestamp, std::vector<double>> windows;
      const auto window_of = [&](common::Timestamp ts) {
        return q.step == 0 ? q.t0 : q.t0 + ((ts - q.t0) / q.step) * q.step;
      };
      for (std::size_t b = 0; b < nb; ++b) {
        std::vector<Atom> atoms;
        double cum = 0;
        if (stored != nullptr) {
          collect_atoms(stored->buckets[b], q.t0, q.t1, atoms);
          cum = stored->buckets[b].cum;
        }
        if (live_ok && head != nullptr && b < head->buckets.size()) {
          const double tail = static_cast<double>(head->buckets[b]) - cum;
          if (tail != 0) atoms.push_back(Atom{live.ts, 1, tail, tail, tail,
                                              tail, false});
        }
        for (const Atom& a : atoms) {
          auto& sums = windows[window_of(a.ts)];
          if (sums.empty()) sums.resize(nb, 0);
          sums[b] += a.sum;
          if (a.downsampled) res.exact = false;
        }
      }
      RangeResult::Series out;
      out.name = name;
      out.kind = SeriesKind::counter;
      for (const auto& [ws, sums] : windows) {
        double total = 0;
        for (const double v : sums) total += v;
        if (total <= 0) continue;
        out.points.push_back({ws, percentile_from_buckets(bounds, sums,
                                                          quantile),
                              static_cast<std::uint64_t>(total)});
      }
      if (!out.points.empty()) res.series.push_back(std::move(out));
    }
    return res;
  }

  // Scalar path: stored series union live counters/gauges (plus the
  // histogram _count/_sum synthetics the live head knows about).
  std::map<std::string, std::pair<SeriesKind, const Series*>> names;
  for (const auto& [name, s] : series_) {
    if (has_prefix(name, q.selector)) names[name] = {s.kind, &s};
  }
  if (live.snapshot != nullptr) {
    for (const auto& c : live.snapshot->counters) {
      if (has_prefix(c.name, q.selector)) {
        names.try_emplace(c.name, SeriesKind::counter, nullptr);
      }
    }
    for (const auto& g : live.snapshot->gauges) {
      if (has_prefix(g.name, q.selector)) {
        names.try_emplace(g.name, SeriesKind::gauge, nullptr);
      }
    }
    for (const auto& h : live.snapshot->histograms) {
      for (const char* suffix : {"_count", "_sum"}) {
        const std::string n = h.name + suffix;
        if (has_prefix(n, q.selector)) {
          names.try_emplace(n, SeriesKind::counter, nullptr);
        }
      }
    }
  }

  // Exact live lookup helpers over the name-sorted snapshot sections.
  const auto live_counter = [&](const std::string& name)
      -> std::optional<double> {
    if (live.snapshot == nullptr) return std::nullopt;
    const auto& cs = live.snapshot->counters;
    const auto it = std::lower_bound(
        cs.begin(), cs.end(), name,
        [](const auto& a, const std::string& n) { return a.name < n; });
    if (it != cs.end() && it->name == name) {
      return static_cast<double>(it->value);
    }
    for (const char* suffix : {"_count", "_sum"}) {
      const std::string_view sv(suffix);
      if (name.size() > sv.size() &&
          name.compare(name.size() - sv.size(), sv.size(), sv) == 0) {
        const auto* h = live.snapshot->find_histogram(
            std::string_view(name).substr(0, name.size() - sv.size()));
        if (h != nullptr) {
          return static_cast<double>(sv == "_count" ? h->count : h->sum);
        }
      }
    }
    return std::nullopt;
  };
  const auto live_gauge = [&](const std::string& name)
      -> std::optional<double> {
    if (live.snapshot == nullptr) return std::nullopt;
    const auto& gs = live.snapshot->gauges;
    const auto it = std::lower_bound(
        gs.begin(), gs.end(), name,
        [](const auto& a, const std::string& n) { return a.name < n; });
    if (it != gs.end() && it->name == name) {
      return static_cast<double>(it->value);
    }
    return std::nullopt;
  };

  for (const auto& [name, info] : names) {
    const SeriesKind kind = info.first;
    const Series* stored = info.second;
    std::vector<Atom> atoms;
    if (stored != nullptr) collect_atoms(*stored, q.t0, q.t1, atoms);
    if (live_ok) {
      if (kind == SeriesKind::counter) {
        if (const auto lv = live_counter(name)) {
          const double tail = *lv - (stored != nullptr ? stored->cum : 0);
          if (tail != 0) {
            atoms.push_back(Atom{live.ts, 1, tail, tail, tail, tail, false});
          }
        }
      } else {
        // A stored sample at (or past) the live timestamp wins; otherwise
        // the current level is the newest sample.
        common::Timestamp newest = 0;
        if (stored != nullptr && stored->count > 0) {
          const std::size_t last_slot =
              (stored->head + stored->hot.size() - 1) % stored->hot.size();
          newest = stored->hot[last_slot].ts;
        }
        if ((stored == nullptr || stored->count == 0 || newest < live.ts)) {
          if (const auto lv = live_gauge(name)) {
            atoms.push_back(Atom{live.ts, 1, *lv, *lv, *lv, *lv, false});
          }
        }
      }
    }
    if (atoms.empty()) continue;
    RangeResult::Series out;
    out.name = name;
    out.kind = kind;
    fold_window(q, atoms, out, res.exact);
    if (!out.points.empty()) res.series.push_back(std::move(out));
  }
  return res;
}

TieredStore::Stats TieredStore::stats() const {
  std::lock_guard lock(mutex_);
  Stats st;
  st.captures = captures_;
  st.histograms = histograms_.size();
  st.rejected_samples = rejected_samples_;
  st.evicted_buckets = evicted_buckets_;
  const auto add_series = [&st](const Series& s) {
    ++st.series;
    st.samples_ingested += s.ingested;
    st.hot_samples += s.count;
    for (const auto& ch : s.cold.chunks) {
      st.cold_buckets += ch.buckets;
      st.cold_bytes += ch.bytes.size();
      st.cold_raw_bytes += ch.raw_bytes;
    }
  };
  for (const auto& [name, s] : series_) add_series(s);
  for (const auto& [name, h] : histograms_) {
    for (const auto& b : h.buckets) add_series(b);
  }
  return st;
}

}  // namespace netalytics::tsdb
