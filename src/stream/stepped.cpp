#include "stream/stepped.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

namespace netalytics::stream {

namespace {
/// Wall-clock for the stage profiler only — virtual time never touches it.
std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

SteppedTopology::SteppedTopology(TopologySpec spec, ExecutorConfig exec)
    : spec_(std::move(spec)), exec_(exec) {
  if (exec_.workers == 0) exec_.workers = 1;
  profile_ = exec_.profile && profiler_available();
  std::map<std::string, std::size_t> index_of;
  nodes_.reserve(spec_.components.size());
  for (const auto& c : spec_.components) {
    index_of[c.name] = nodes_.size();
    Node node;
    node.spec = c;
    node.tasks.resize(c.parallelism);
    for (auto& task : node.tasks) {
      if (c.is_spout()) {
        task.spout = c.spout_factory();
        task.spout->open();
      } else {
        task.bolt = c.bolt_factory();
        task.bolt->prepare();
      }
    }
    nodes_.push_back(std::move(node));
  }

  // Wire edges source -> subscriber with resolved grouping field indices.
  for (std::size_t dst = 0; dst < nodes_.size(); ++dst) {
    for (const auto& sub : nodes_[dst].spec.subscriptions) {
      const std::size_t src = index_of.at(sub.source);
      Edge edge;
      edge.dst = dst;
      edge.type = sub.grouping.type;
      if (edge.type == GroupingType::fields) {
        const auto& schema = nodes_[src].spec.output_fields;
        for (const auto& f : sub.grouping.fields) {
          const auto it = std::find(schema.begin(), schema.end(), f);
          edge.field_indices.push_back(
              static_cast<std::size_t>(it - schema.begin()));
        }
      }
      nodes_[src].out_edges.push_back(std::move(edge));
    }
  }

  // Topological order (spec validated acyclic by TopologyBuilder::build).
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (const auto& node : nodes_) {
    for (const auto& e : node.out_edges) ++in_degree[e.dst];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) frontier.push_back(i);
  }
  while (!frontier.empty()) {
    const std::size_t n = frontier.front();
    frontier.erase(frontier.begin());
    topo_order_.push_back(n);
    for (const auto& e : nodes_[n].out_edges) {
      if (--in_degree[e.dst] == 0) frontier.push_back(e.dst);
    }
  }
  if (topo_order_.size() != nodes_.size()) {
    throw std::invalid_argument("SteppedTopology: cyclic spec");
  }
}

SteppedTopology::~SteppedTopology() {
  {
    std::lock_guard lock(pool_mutex_);
    stop_workers_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

void SteppedTopology::route(std::size_t src_component, Tuple tuple) {
  Node& src = nodes_[src_component];
  for (std::size_t e = 0; e < src.out_edges.size(); ++e) {
    Edge& edge = src.out_edges[e];
    Node& dst = nodes_[edge.dst];
    const bool last_edge = (e + 1 == src.out_edges.size());
    switch (edge.type) {
      case GroupingType::shuffle: {
        const std::size_t idx = edge.rr_cursor++ % dst.tasks.size();
        dst.tasks[idx].inbox.push_back(last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::fields: {
        const std::uint64_t h = hash_fields(tuple, edge.field_indices);
        const std::size_t idx = h % dst.tasks.size();
        dst.tasks[idx].inbox.push_back(last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::global:
        dst.tasks[0].inbox.push_back(last_edge ? std::move(tuple) : tuple);
        break;
      case GroupingType::all:
        for (auto& task : dst.tasks) task.inbox.push_back(tuple);
        break;
    }
  }
}

void SteppedTopology::exec_task(Node& node, Task& task, StageKind kind,
                                common::Timestamp now) {
  TaskProf* prof = nullptr;
  std::uint64_t t0 = 0;
  if (profile_ && !node.prof.empty()) {
    prof = &node.prof[static_cast<std::size_t>(&task - node.tasks.data())];
    t0 = mono_ns();
    const std::uint64_t dispatched =
        prof_stage_start_ns_.load(std::memory_order_relaxed);
    if (dispatched != 0 && t0 > dispatched) {
      prof->queue_wait_ns->inc(t0 - dispatched);
    }
  }
  OutboxCollector out(task.outbox);
  switch (kind) {
    case StageKind::execute:
      while (!task.inbox.empty()) {
        Tuple tuple = std::move(task.inbox.front());
        task.inbox.pop_front();
        if (recorder_ != nullptr && tuple.trace != 0) {
          recorder_->stamp(tuple.trace, common::TraceStage::execute, now, now);
        }
        task.bolt->execute(tuple, out);
        ++task.processed;
        if (node.executed != nullptr) node.executed->inc();
        if (prof != nullptr) prof->tuples->inc();
      }
      break;
    case StageKind::tick:
      task.bolt->tick(now, out);
      break;
    case StageKind::cleanup:
      task.bolt->cleanup(now, out);
      break;
  }
  if (prof != nullptr) prof->self_ns->inc(mono_ns() - t0);
}

std::size_t SteppedTopology::merge_stage(std::size_t component) {
  Node& node = nodes_[component];
  std::size_t processed = 0;
  for (auto& task : node.tasks) {
    processed += task.processed;
    task.processed = 0;
    for (auto& tuple : task.outbox) route(component, std::move(tuple));
    task.outbox.clear();
  }
  return processed;
}

void SteppedTopology::start_workers() {
  if (!pool_.empty()) return;
  pool_.reserve(exec_.workers - 1);
  for (std::size_t i = 0; i + 1 < exec_.workers; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

void SteppedTopology::claim_loop(Node& node, StageKind kind,
                                 common::Timestamp now,
                                 std::uint64_t generation) {
  for (;;) {
    std::size_t t;
    {
      std::lock_guard lock(pool_mutex_);
      // Claims and the generation check share the pool mutex, so a thread
      // that slept through a stage can never claim into the next one.
      if (generation_ != generation || next_task_ >= node.tasks.size()) return;
      t = next_task_++;
    }
    exec_task(node, node.tasks[t], kind, now);
    {
      std::lock_guard lock(pool_mutex_);
      if (--tasks_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void SteppedTopology::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Node* node = nullptr;
    StageKind kind = StageKind::execute;
    common::Timestamp now = 0;
    std::uint64_t generation = 0;
    {
      std::unique_lock lock(pool_mutex_);
      pool_cv_.wait(lock, [&] { return stop_workers_ || generation_ != seen; });
      if (stop_workers_) return;
      generation = seen = generation_;
      node = stage_node_;
      kind = stage_kind_;
      now = stage_now_;
    }
    claim_loop(*node, kind, now, generation);
  }
}

void SteppedTopology::run_bolt_stage(Node& node, StageKind kind,
                                     common::Timestamp now) {
  if (profile_) {
    prof_stage_start_ns_.store(mono_ns(), std::memory_order_relaxed);
    if (prof_stage_dispatches_ != nullptr) prof_stage_dispatches_->inc();
  }
  if (exec_.workers <= 1 || node.tasks.size() <= 1) {
    for (auto& task : node.tasks) exec_task(node, task, kind, now);
    return;
  }
  if (profile_ && prof_parallel_stages_ != nullptr) {
    prof_parallel_stages_->inc();
  }
  start_workers();
  std::uint64_t generation;
  {
    std::lock_guard lock(pool_mutex_);
    stage_node_ = &node;
    stage_kind_ = kind;
    stage_now_ = now;
    next_task_ = 0;
    tasks_remaining_ = node.tasks.size();
    generation = ++generation_;
  }
  pool_cv_.notify_all();
  // The stepping thread is one of the `workers` execution threads.
  claim_loop(node, kind, now, generation);
  std::unique_lock lock(pool_mutex_);
  done_cv_.wait(lock, [this] { return tasks_remaining_ == 0; });
}

std::size_t SteppedTopology::drain(common::Timestamp now) {
  std::size_t processed = 0;
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) continue;
    run_bolt_stage(node, StageKind::execute, now);
    processed += merge_stage(n);
  }
  executed_ += processed;
  return processed;
}

void SteppedTopology::bind_metrics(common::MetricsRegistry& registry,
                                   const std::string& prefix) {
  for (auto& node : nodes_) {
    node.executed = &registry.counter(prefix + "." + node.spec.name + ".executed");
    if (!profile_) continue;
    node.prof.assign(node.tasks.size(), TaskProf{});
    for (std::size_t k = 0; k < node.tasks.size(); ++k) {
      const std::string base = prefix + ".profiler." + node.spec.name + ".t" +
                               std::to_string(k) + ".";
      node.prof[k].tuples = &registry.counter(base + "tuples");
      node.prof[k].self_ns = &registry.counter(base + "self_ns");
      node.prof[k].queue_wait_ns = &registry.counter(base + "queue_wait_ns");
    }
  }
  if (profile_) {
    prof_stage_dispatches_ =
        &registry.counter(prefix + ".profiler.pool.stage_dispatches");
    prof_parallel_stages_ =
        &registry.counter(prefix + ".profiler.pool.parallel_stages");
  }
}

std::size_t SteppedTopology::step(common::Timestamp now,
                                  std::size_t spout_budget_per_task) {
  // Spouts always run sequentially in task order: they pull from shared
  // sources (the mq brokers), where the poll order *is* the data
  // assignment — racing them would trade determinism for nothing, since
  // spout work is a budgeted trickle compared to the bolt stages.
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (!node.spec.is_spout()) continue;
    for (auto& task : node.tasks) {
      TaskProf* prof =
          profile_ && !node.prof.empty()
              ? &node.prof[static_cast<std::size_t>(&task - node.tasks.data())]
              : nullptr;
      const std::uint64_t t0 = prof != nullptr ? mono_ns() : 0;
      OutboxCollector collector(task.outbox);
      for (std::size_t i = 0; i < spout_budget_per_task; ++i) {
        if (!task.spout->next_tuple(collector, now)) break;
      }
      if (prof != nullptr) prof->self_ns->inc(mono_ns() - t0);
    }
    merge_stage(n);
  }
  return drain(now);
}

std::size_t SteppedTopology::run_until_idle(common::Timestamp now,
                                            std::size_t max_rounds) {
  std::size_t total = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::size_t n = step(now);
    total += n;
    if (n == 0) break;
  }
  return total;
}

void SteppedTopology::tick(common::Timestamp now) {
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) continue;
    run_bolt_stage(node, StageKind::tick, now);
    merge_stage(n);
    // Drain immediately so downstream bolts see window emissions in the
    // same tick (a ranking bolt's tick must observe fresh counts).
    drain(now);
  }
}

void SteppedTopology::close(common::Timestamp now) {
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) {
      for (auto& task : node.tasks) {
        OutboxCollector collector(task.outbox);
        task.spout->close(collector);
      }
    } else {
      run_bolt_stage(node, StageKind::cleanup, now);
    }
    merge_stage(n);
    drain(now);
  }
}

}  // namespace netalytics::stream
