#include "stream/stepped.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace netalytics::stream {

SteppedTopology::SteppedTopology(TopologySpec spec) : spec_(std::move(spec)) {
  std::map<std::string, std::size_t> index_of;
  nodes_.reserve(spec_.components.size());
  for (const auto& c : spec_.components) {
    index_of[c.name] = nodes_.size();
    Node node;
    node.spec = c;
    node.tasks.resize(c.parallelism);
    for (auto& task : node.tasks) {
      if (c.is_spout()) {
        task.spout = c.spout_factory();
        task.spout->open();
      } else {
        task.bolt = c.bolt_factory();
        task.bolt->prepare();
      }
    }
    nodes_.push_back(std::move(node));
  }

  // Wire edges source -> subscriber with resolved grouping field indices.
  for (std::size_t dst = 0; dst < nodes_.size(); ++dst) {
    for (const auto& sub : nodes_[dst].spec.subscriptions) {
      const std::size_t src = index_of.at(sub.source);
      Edge edge;
      edge.dst = dst;
      edge.type = sub.grouping.type;
      if (edge.type == GroupingType::fields) {
        const auto& schema = nodes_[src].spec.output_fields;
        for (const auto& f : sub.grouping.fields) {
          const auto it = std::find(schema.begin(), schema.end(), f);
          edge.field_indices.push_back(
              static_cast<std::size_t>(it - schema.begin()));
        }
      }
      nodes_[src].out_edges.push_back(std::move(edge));
    }
  }

  // Topological order (spec validated acyclic by TopologyBuilder::build).
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (const auto& node : nodes_) {
    for (const auto& e : node.out_edges) ++in_degree[e.dst];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) frontier.push_back(i);
  }
  while (!frontier.empty()) {
    const std::size_t n = frontier.front();
    frontier.erase(frontier.begin());
    topo_order_.push_back(n);
    for (const auto& e : nodes_[n].out_edges) {
      if (--in_degree[e.dst] == 0) frontier.push_back(e.dst);
    }
  }
  if (topo_order_.size() != nodes_.size()) {
    throw std::invalid_argument("SteppedTopology: cyclic spec");
  }
}

void SteppedTopology::route(std::size_t src_component, Tuple tuple) {
  Node& src = nodes_[src_component];
  for (std::size_t e = 0; e < src.out_edges.size(); ++e) {
    Edge& edge = src.out_edges[e];
    Node& dst = nodes_[edge.dst];
    const bool last_edge = (e + 1 == src.out_edges.size());
    switch (edge.type) {
      case GroupingType::shuffle: {
        const std::size_t idx = edge.rr_cursor++ % dst.tasks.size();
        dst.tasks[idx].inbox.push_back(last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::fields: {
        const std::uint64_t h = hash_fields(tuple, edge.field_indices);
        const std::size_t idx = h % dst.tasks.size();
        dst.tasks[idx].inbox.push_back(last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::global:
        dst.tasks[0].inbox.push_back(last_edge ? std::move(tuple) : tuple);
        break;
      case GroupingType::all:
        for (auto& task : dst.tasks) task.inbox.push_back(tuple);
        break;
    }
  }
}

std::size_t SteppedTopology::drain(common::Timestamp) {
  std::size_t processed = 0;
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) continue;
    for (std::size_t t = 0; t < node.tasks.size(); ++t) {
      Task& task = node.tasks[t];
      RoutingCollector collector(*this, n);
      while (!task.inbox.empty()) {
        Tuple tuple = std::move(task.inbox.front());
        task.inbox.pop_front();
        task.bolt->execute(tuple, collector);
        ++processed;
        if (node.executed != nullptr) node.executed->inc();
      }
    }
  }
  executed_ += processed;
  return processed;
}

void SteppedTopology::bind_metrics(common::MetricsRegistry& registry,
                                   const std::string& prefix) {
  for (auto& node : nodes_) {
    node.executed = &registry.counter(prefix + "." + node.spec.name + ".executed");
  }
}

std::size_t SteppedTopology::step(common::Timestamp now,
                                  std::size_t spout_budget_per_task) {
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (!node.spec.is_spout()) continue;
    for (auto& task : node.tasks) {
      RoutingCollector collector(*this, n);
      for (std::size_t i = 0; i < spout_budget_per_task; ++i) {
        if (!task.spout->next_tuple(collector, now)) break;
      }
    }
  }
  return drain(now);
}

std::size_t SteppedTopology::run_until_idle(common::Timestamp now,
                                            std::size_t max_rounds) {
  std::size_t total = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::size_t n = step(now);
    total += n;
    if (n == 0) break;
  }
  return total;
}

void SteppedTopology::tick(common::Timestamp now) {
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) continue;
    for (auto& task : node.tasks) {
      RoutingCollector collector(*this, n);
      task.bolt->tick(now, collector);
    }
    // Drain immediately so downstream bolts see window emissions in the
    // same tick (a ranking bolt's tick must observe fresh counts).
    drain(now);
  }
}

void SteppedTopology::close(common::Timestamp now) {
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    for (auto& task : node.tasks) {
      RoutingCollector collector(*this, n);
      if (node.spec.is_spout()) {
        task.spout->close(collector);
      } else {
        task.bolt->cleanup(now, collector);
      }
    }
    drain(now);
  }
}

}  // namespace netalytics::stream
