// The spout linking the stream engine to the aggregation layer (§5.3):
// polls one topic of the mq cluster and emits each message's payload as a
// [payload:string] tuple for the parsing bolt. Pull-based, so when the
// processors fall behind, data accumulates in the brokers — the behaviour
// the feedback-sampling loop reacts to.
#pragma once

#include <deque>
#include <string>

#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "mq/consumer.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

/// Fault site: an armed "stream.spout.poll" makes a poll fail transiently —
/// the spout reports no tuple and the data waits in the brokers, exactly
/// like a dropped fetch against a real Kafka; the next poll picks it up.
inline constexpr std::string_view kFaultSpoutPoll = "stream.spout.poll";

class KafkaSpout final : public Spout {
 public:
  /// With join_group = false (the default, matching the original
  /// signature) the spout's consumer polls every partition. With true it
  /// joins `group` as a coordinator member (mq/group.hpp): N spout tasks
  /// sharing one group name split the topic's partitions deterministically
  /// — the task-index order they are constructed in is their member-rank
  /// order. `task` distinguishes this instance's absolute gauges
  /// (buffered_records) when several tasks bind the same metrics prefix.
  KafkaSpout(mq::Cluster& cluster, std::string group, std::string topic,
             std::size_t poll_batch = 64, common::FaultPlan* faults = nullptr,
             bool join_group = false, std::size_t task = 0);

  bool next_tuple(Collector& out, common::Timestamp now) override;

  std::uint64_t messages_emitted() const noexcept { return emitted_->value(); }
  std::uint64_t poll_failures() const noexcept { return poll_failures_->value(); }

  /// Re-home counters into `registry` under `prefix` ("<prefix>.emitted",
  /// ".poll_failures", a ".lag" gauge: messages buffered in the brokers
  /// for this topic, refreshed at every poll, and ".task<i>.buffered_records":
  /// the parser records sitting in *this task's* local buffer — per-task
  /// because it is an absolute gauge, while the counters are shared across
  /// all tasks of a spout group). When `tracer` is
  /// given, each emitted message stamps the consume stage (broker append ->
  /// spout poll); `recorder` gets per-trace consume spans; `ledger` gets
  /// failed polls (consume_poll_failure — bookkeeping, the data retries).
  /// Bind before the first next_tuple.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix,
                    common::StageTracer* tracer = nullptr,
                    common::TraceRecorder* recorder = nullptr,
                    common::DropLedger* ledger = nullptr);

  /// Parser records held in the local poll buffer (in-flight for
  /// engine.reconcile()).
  std::uint64_t buffered_records() const noexcept { return buffered_records_value_; }

  /// The spout's group member identity — mq-level churn tests leave() /
  /// rejoin() through this; the engine-level equivalent drives churn via
  /// the cluster's coordinator directly.
  mq::Consumer& consumer() noexcept { return consumer_; }

 private:
  mq::Cluster& cluster_;
  mq::Consumer consumer_;
  std::string topic_;
  std::size_t task_ = 0;
  std::size_t poll_batch_;
  common::FaultPlan* faults_;
  // FetchedRecord, not Message: the spout consumes via the zero-copy
  // poll_batch path, so nothing per-message (topic strings included) is
  // allocated between broker log and tuple emission.
  std::deque<mq::FetchedRecord> buffer_;
  // Counters live in the bound (or owned fallback) registry.
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::Counter* emitted_ = nullptr;
  common::Counter* poll_failures_ = nullptr;
  common::Gauge* lag_ = nullptr;
  common::Gauge* buffered_records_ = nullptr;
  std::uint64_t buffered_records_value_ = 0;
  common::StageTracer* tracer_ = nullptr;
  common::TraceRecorder* recorder_ = nullptr;
  common::DropLedger* ledger_ = nullptr;
};

}  // namespace netalytics::stream
