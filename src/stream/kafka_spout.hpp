// The spout linking the stream engine to the aggregation layer (§5.3):
// polls one topic of the mq cluster and emits each message's payload as a
// [payload:string] tuple for the parsing bolt. Pull-based, so when the
// processors fall behind, data accumulates in the brokers — the behaviour
// the feedback-sampling loop reacts to.
#pragma once

#include <deque>
#include <string>

#include "common/fault.hpp"
#include "mq/consumer.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

/// Fault site: an armed "stream.spout.poll" makes a poll fail transiently —
/// the spout reports no tuple and the data waits in the brokers, exactly
/// like a dropped fetch against a real Kafka; the next poll picks it up.
inline constexpr std::string_view kFaultSpoutPoll = "stream.spout.poll";

class KafkaSpout final : public Spout {
 public:
  KafkaSpout(mq::Cluster& cluster, std::string group, std::string topic,
             std::size_t poll_batch = 64, common::FaultPlan* faults = nullptr);

  bool next_tuple(Collector& out) override;

  std::uint64_t messages_emitted() const noexcept { return emitted_; }
  std::uint64_t poll_failures() const noexcept { return poll_failures_; }

 private:
  mq::Consumer consumer_;
  std::string topic_;
  std::size_t poll_batch_;
  common::FaultPlan* faults_;
  std::deque<mq::Message> buffer_;
  std::uint64_t emitted_ = 0;
  std::uint64_t poll_failures_ = 0;
};

}  // namespace netalytics::stream
