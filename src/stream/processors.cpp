#include "stream/processors.hpp"

#include <algorithm>
#include <cctype>

#include "common/string_util.hpp"
#include "stream/kafka_spout.hpp"

namespace netalytics::stream {

namespace {

constexpr const char* kProcessors[] = {
    "top-k",     "diff-group", "diff-group-avg", "group-sum", "group-avg",
    "group-max", "group-min",  "group-count",    "identity",  "join",
};

std::size_t field_index(const Fields& schema, const std::string& name) {
  const auto it = std::find(schema.begin(), schema.end(), name);
  return it == schema.end() ? schema.size()
                            : static_cast<std::size_t>(it - schema.begin());
}

/// Expand the paper's group aliases (destIP, srcIP, pair, get) to schema
/// field names; otherwise split a comma-separated field list.
std::vector<std::string> expand_group(const std::string& group) {
  if (group == "destIP" || group == "destip") return {"dst_ip"};
  if (group == "srcIP" || group == "srcip") return {"src_ip"};
  if (group == "pair") return {"src_ip", "dst_ip"};
  std::vector<std::string> out;
  for (const auto part : common::split(group, ',')) {
    out.emplace_back(common::trim(part));
  }
  return out;
}

common::Error err(std::string message) {
  return common::Error{"processor", std::move(message)};
}

/// Common front of every processor: Kafka spout + parsing bolt for one
/// topic. Returns the parse component's name.
std::string add_source(TopologyBuilder& b, const ProcessorContext& ctx,
                       const std::string& topic, std::size_t index) {
  const std::string spout_name = "spout" + std::to_string(index);
  const std::string parse_name = "parse" + std::to_string(index);
  mq::Cluster* cluster = ctx.cluster;
  common::FaultPlan* faults = ctx.fault_plan;
  common::MetricsRegistry* metrics = ctx.metrics;
  common::StageTracer* tracer = ctx.tracer;
  common::TraceRecorder* recorder = ctx.trace_recorder;
  common::DropLedger* ledger = ctx.drop_ledger;
  const std::string spout_prefix = ctx.metrics_prefix + "." + spout_name;
  const std::string group = ctx.consumer_group + "-" + spout_name;
  const std::size_t group_size = std::max<std::size_t>(1, ctx.spout_group_size);
  // The executor instantiates tasks sequentially in task-index order, so
  // the shared counter hands each task its index — and the spouts join the
  // consumer group in that same order, making member ranks (and therefore
  // the partition assignment) deterministic (docs/DETERMINISM.md).
  auto task_counter = std::make_shared<std::size_t>(0);
  b.set_spout(
      spout_name,
      [cluster, group, topic, faults, metrics, tracer, recorder, ledger,
       spout_prefix, task_counter] {
        const std::size_t task = (*task_counter)++;
        auto spout = std::make_unique<KafkaSpout>(*cluster, group, topic,
                                                  /*poll_batch=*/64, faults,
                                                  /*join_group=*/true, task);
        if (metrics != nullptr) {
          spout->bind_metrics(*metrics, spout_prefix, tracer, recorder, ledger);
        }
        return spout;
      },
      {"payload"}, group_size);
  b.set_bolt(
       parse_name, [] { return std::make_unique<ParsingBolt>(); },
       record_schema(topic), ctx.parallelism)
      .shuffle_grouping(spout_name);
  return parse_name;
}

common::Expected<TopologySpec> build_topk(const ProcessorParams& params,
                                          const ProcessorContext& ctx) {
  const std::string topic = ctx.topics.front();
  const Fields schema = record_schema(topic);
  if (schema.empty()) return err("top-k: unknown parser topic '" + topic + "'");

  // Default counted field: the record's natural key (URL for http_get,
  // key for memcached, statement for mysql); overridable via field=.
  std::string key_field = params.get("field", "");
  if (key_field.empty()) {
    if (topic == "http_get") key_field = "value";
    else if (topic == "memcached_get") key_field = "key";
    else if (topic == "mysql_query") key_field = "statement";
    else key_field = schema.back();
  }
  const std::size_t key_index = field_index(schema, key_field);
  if (key_index >= schema.size()) {
    return err("top-k: field '" + key_field + "' not in schema of " + topic);
  }

  const std::size_t k = params.get_u64("k", 10);
  const std::size_t slots = std::max<std::uint64_t>(1, params.get_u64("w", 10));

  TopologyBuilder b("top-k");
  std::string upstream = add_source(b, ctx, topic, 0);

  if (topic == "http_get") {
    // Count only GET requests; response records carry a numeric status.
    const std::size_t kind_index = field_index(schema, "kind");
    b.set_bolt(
         "filter",
         [kind_index] {
           return std::make_unique<FilterBolt>([kind_index](const Tuple& t) {
             return std::holds_alternative<std::string>(t.at(kind_index)) &&
                    as_str(t.at(kind_index)) == "request";
           });
         },
         schema, ctx.parallelism)
        .shuffle_grouping(upstream);
    upstream = "filter";
  }

  common::Gauge* count_window =
      ctx.metrics == nullptr
          ? nullptr
          : &ctx.metrics->gauge(ctx.metrics_prefix + ".count.window_keys");
  common::DropLedger* count_ledger = ctx.drop_ledger;
  b.set_bolt(
       "count",
       [key_index, slots, count_window, count_ledger] {
         auto bolt = std::make_unique<CountingBolt>(key_index, slots);
         bolt->set_window_gauge(count_window);
         bolt->set_drop_ledger(count_ledger);
         return bolt;
       },
       {"key", "count"}, ctx.parallelism)
      .fields_grouping(upstream, {schema[key_index]});
  b.set_bolt(
       "rank", [k] { return std::make_unique<IntermediateRankingsBolt>(k); },
       {"key", "count"}, ctx.parallelism)
      .fields_grouping("count", {"key"});
  b.set_bolt(
       "total", [k] { return std::make_unique<TotalRankingsBolt>(k); },
       {"rank", "key", "count"})
      .global_grouping("rank");

  std::string tail = "total";
  if (ctx.kvstore != nullptr) {
    KvStore* store = ctx.kvstore;
    b.set_bolt(
         "db", [store] { return std::make_unique<DatabaseBolt>(*store); },
         {"rank", "key", "count"})
        .global_grouping("total");
    tail = "db";
  }
  if (ctx.on_scale_up || ctx.on_scale_down) {
    const UpdaterConfig ucfg = ctx.updater_config;
    auto up = ctx.on_scale_up;
    auto down = ctx.on_scale_down;
    b.set_bolt(
         "updater",
         [ucfg, up, down] { return std::make_unique<UpdaterBolt>(ucfg, up, down); },
         {})
        .global_grouping(tail);
  }
  auto sink = ctx.result_sink;
  b.set_bolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); }, {})
      .global_grouping(tail);
  return b.build();
}

common::Expected<TopologySpec> build_diff_group(const ProcessorParams& params,
                                                const ProcessorContext& ctx) {
  const auto conn_it =
      std::find(ctx.topics.begin(), ctx.topics.end(), "tcp_conn_time");
  if (conn_it == ctx.topics.end()) {
    return err("diff-group requires the tcp_conn_time parser");
  }
  const std::string group = params.get("group", "destIP");
  const std::string agg = params.get("agg", "avg");

  TopologyBuilder b("diff-group");
  add_source(b, ctx, "tcp_conn_time", 0);

  // Diff start/end by id. Fields-grouped by id so parallel instances see
  // both events of a connection.
  DiffConfig dcfg;
  dcfg.passthrough = {3, 4, 5, 6};  // src_ip, dst_ip, src_port, dst_port
  common::DropLedger* diff_ledger = ctx.drop_ledger;
  b.set_bolt(
       "diff",
       [dcfg, diff_ledger] {
         auto bolt = std::make_unique<DiffBolt>(dcfg);
         bolt->set_drop_ledger(diff_ledger);
         return bolt;
       },
       {"id", "diff", "src_ip", "dst_ip", "src_port", "dst_port"},
       ctx.parallelism)
      .fields_grouping("parse0", {"id"});

  std::string value_source = "diff";
  Fields value_schema = {"id", "diff", "src_ip", "dst_ip", "src_port", "dst_port"};

  if (group == "get") {
    // Join connection durations with the requested URL (§7.2).
    if (std::find(ctx.topics.begin(), ctx.topics.end(), "http_get") ==
        ctx.topics.end()) {
      return err("diff-group group=get requires the http_get parser");
    }
    const Fields http_schema = record_schema("http_get");
    add_source(b, ctx, "http_get", 1);
    const std::size_t kind_index = field_index(http_schema, "kind");
    b.set_bolt(
         "filter1",
         [kind_index] {
           return std::make_unique<FilterBolt>([kind_index](const Tuple& t) {
             return std::holds_alternative<std::string>(t.at(kind_index)) &&
                    as_str(t.at(kind_index)) == "request";
           });
         },
         http_schema, ctx.parallelism)
        .shuffle_grouping("parse1");

    JoinConfig jcfg;
    jcfg.left_arity = 6;  // diff output
    jcfg.left_passthrough = {1};   // diff value
    jcfg.right_passthrough = {3};  // url
    common::DropLedger* join_ledger = ctx.drop_ledger;
    b.set_bolt(
         "join",
         [jcfg, join_ledger] {
           auto bolt = std::make_unique<JoinByIdBolt>(jcfg);
           bolt->set_drop_ledger(join_ledger);
           return bolt;
         },
         {"id", "diff", "url"}, ctx.parallelism)
        .fields_grouping("diff", {"id"})
        .fields_grouping("filter1", {"id"});
    value_source = "join";
    value_schema = {"id", "diff", "url"};
  }

  auto sink = ctx.result_sink;
  if (agg == "none") {
    b.set_bolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); }, {})
        .shuffle_grouping(value_source);
    return b.build();
  }

  AggOp op = AggOp::avg;
  if (agg == "sum") op = AggOp::sum;
  else if (agg == "max") op = AggOp::max;
  else if (agg == "min") op = AggOp::min;
  else if (agg != "avg") return err("diff-group: unknown agg '" + agg + "'");

  GroupAggConfig gcfg;
  gcfg.op = op;
  gcfg.value_index = 1;  // diff
  Fields out_fields;
  const std::vector<std::string> group_fields =
      group == "get" ? std::vector<std::string>{"url"} : expand_group(group);
  for (const auto& f : group_fields) {
    const std::size_t idx = field_index(value_schema, f);
    if (idx >= value_schema.size()) {
      return err("diff-group: group field '" + f + "' unavailable");
    }
    gcfg.group_indices.push_back(idx);
    out_fields.push_back(f);
  }
  out_fields.push_back("agg");
  out_fields.push_back("samples");

  common::Gauge* group_window =
      ctx.metrics == nullptr
          ? nullptr
          : &ctx.metrics->gauge(ctx.metrics_prefix + ".group.window_keys");
  b.set_bolt(
       "group",
       [gcfg, group_window] {
         auto bolt = std::make_unique<GroupAggBolt>(gcfg);
         bolt->set_window_gauge(group_window);
         return bolt;
       },
       out_fields)
      .global_grouping(value_source);
  b.set_bolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); }, {})
      .global_grouping("group");
  return b.build();
}

common::Expected<TopologySpec> build_group_agg(const std::string& name,
                                               const ProcessorParams& params,
                                               const ProcessorContext& ctx) {
  const std::string topic = ctx.topics.front();
  const Fields schema = record_schema(topic);
  if (schema.empty()) return err(name + ": unknown parser topic '" + topic + "'");

  AggOp op = AggOp::sum;
  if (name == "group-avg") op = AggOp::avg;
  else if (name == "group-max") op = AggOp::max;
  else if (name == "group-min") op = AggOp::min;
  else if (name == "group-count") op = AggOp::count;

  // Sensible per-parser defaults: tcp_pkt_size sums bytes per src/dst pair
  // (§7.1 Fig. 11); mysql_query aggregates latency per statement.
  std::string default_group = "pair";
  std::string default_value = "bytes";
  if (topic == "mysql_query") {
    default_group = "statement";
    default_value = "latency_ns";
  }

  GroupAggConfig gcfg;
  gcfg.op = op;
  Fields out_fields;
  for (const auto& f : expand_group(params.get("group", default_group))) {
    const std::size_t idx = field_index(schema, f);
    if (idx >= schema.size()) {
      return err(name + ": group field '" + f + "' not in schema of " + topic);
    }
    gcfg.group_indices.push_back(idx);
    out_fields.push_back(f);
  }
  if (op != AggOp::count) {
    const std::string value = params.get("value", default_value);
    const std::size_t idx = field_index(schema, value);
    if (idx >= schema.size()) {
      return err(name + ": value field '" + value + "' not in schema of " + topic);
    }
    gcfg.value_index = idx;
  }
  out_fields.push_back("agg");
  out_fields.push_back("samples");

  TopologyBuilder b(name);
  const std::string parse = add_source(b, ctx, topic, 0);
  common::Gauge* group_window =
      ctx.metrics == nullptr
          ? nullptr
          : &ctx.metrics->gauge(ctx.metrics_prefix + ".group.window_keys");
  b.set_bolt(
       "group",
       [gcfg, group_window] {
         auto bolt = std::make_unique<GroupAggBolt>(gcfg);
         bolt->set_window_gauge(group_window);
         return bolt;
       },
       out_fields)
      .global_grouping(parse);
  auto sink = ctx.result_sink;
  b.set_bolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); }, {})
      .global_grouping("group");
  return b.build();
}

// "join" — the operation §3.4 leaves as future work, built from the same
// blocks: correlate the records of the query's first two parsers by their
// shared flow id and emit the merged rows. Params: left=/right= select the
// joined value field from each side (default: each record's last field).
common::Expected<TopologySpec> build_join(const ProcessorParams& params,
                                          const ProcessorContext& ctx) {
  if (ctx.topics.size() < 2) {
    return err("join requires two parsers in the PARSE clause");
  }
  const std::string& left_topic = ctx.topics[0];
  const std::string& right_topic = ctx.topics[1];
  if (left_topic == right_topic) {
    return err("join requires two distinct parsers");
  }
  const Fields left_schema = record_schema(left_topic);
  const Fields right_schema = record_schema(right_topic);
  if (left_schema.empty() || right_schema.empty()) {
    return err("join: unknown parser topic");
  }

  const std::string left_field = params.get("left", left_schema.back());
  const std::string right_field = params.get("right", right_schema.back());
  const std::size_t left_index = field_index(left_schema, left_field);
  const std::size_t right_index = field_index(right_schema, right_field);
  if (left_index >= left_schema.size()) {
    return err("join: field '" + left_field + "' not in schema of " + left_topic);
  }
  if (right_index >= right_schema.size()) {
    return err("join: field '" + right_field + "' not in schema of " + right_topic);
  }

  TopologyBuilder b("join");
  add_source(b, ctx, left_topic, 0);
  add_source(b, ctx, right_topic, 1);

  // Tag each side so the join can tell streams apart regardless of the
  // record layouts' widths.
  Fields left_tagged = left_schema;
  left_tagged.push_back("side");
  Fields right_tagged = right_schema;
  right_tagged.push_back("side");
  b.set_bolt("tagL", [] { return std::make_unique<TagBolt>("L"); }, left_tagged,
             ctx.parallelism)
      .shuffle_grouping("parse0");
  b.set_bolt("tagR", [] { return std::make_unique<TagBolt>("R"); }, right_tagged,
             ctx.parallelism)
      .shuffle_grouping("parse1");

  JoinConfig jcfg;
  jcfg.by_tag = true;
  jcfg.left_passthrough = {left_index};
  jcfg.right_passthrough = {right_index};
  common::DropLedger* join_ledger = ctx.drop_ledger;
  b.set_bolt(
       "join",
       [jcfg, join_ledger] {
         auto bolt = std::make_unique<JoinByIdBolt>(jcfg);
         bolt->set_drop_ledger(join_ledger);
         return bolt;
       },
       {"id", left_field, right_field}, ctx.parallelism)
      .fields_grouping("tagL", {"id"})
      .fields_grouping("tagR", {"id"});

  auto sink = ctx.result_sink;
  b.set_bolt("sink", [sink] { return std::make_unique<SinkBolt>(sink); }, {})
      .shuffle_grouping("join");
  return b.build();
}

common::Expected<TopologySpec> build_identity(const ProcessorContext& ctx) {
  TopologyBuilder b("identity");
  auto sink = ctx.result_sink;
  std::vector<std::string> parses;
  for (std::size_t i = 0; i < ctx.topics.size(); ++i) {
    parses.push_back(add_source(b, ctx, ctx.topics[i], i));
  }
  auto handle = b.set_bolt(
      "sink", [sink] { return std::make_unique<SinkBolt>(sink); }, {});
  for (const auto& p : parses) handle.shuffle_grouping(p);
  return b.build();
}

}  // namespace

std::string ProcessorParams::get(const std::string& key,
                                 const std::string& fallback) const {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::uint64_t ProcessorParams::get_u64(const std::string& key,
                                       std::uint64_t fallback) const {
  const auto it = args.find(key);
  if (it == args.end()) return fallback;
  std::string_view s = it->second;
  // Strip a trailing duration suffix ("10s" -> 10); windows are measured in
  // ticks, which the runtime drives once per second.
  while (!s.empty() && !std::isdigit(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  std::uint64_t v = 0;
  return common::parse_u64(s, v) ? v : fallback;
}

Fields record_schema(const std::string& topic) {
  if (topic == "tcp_flow_key") {
    return {"id", "ts", "src_ip", "dst_ip", "src_port", "dst_port"};
  }
  if (topic == "tcp_conn_time") {
    return {"id", "ts", "event", "src_ip", "dst_ip", "src_port", "dst_port"};
  }
  if (topic == "tcp_pkt_size") {
    return {"id", "ts", "src_ip", "dst_ip", "dst_port", "bytes", "packets"};
  }
  if (topic == "http_get") return {"id", "ts", "kind", "value"};
  if (topic == "memcached_get") return {"id", "ts", "key"};
  if (topic == "mysql_query") return {"id", "ts", "statement", "latency_ns"};
  return {};
}

bool is_known_processor(const std::string& name) {
  return std::find(std::begin(kProcessors), std::end(kProcessors), name) !=
         std::end(kProcessors);
}

std::vector<std::string> processor_names() {
  return {std::begin(kProcessors), std::end(kProcessors)};
}

common::Expected<TopologySpec> build_processor(const std::string& name,
                                               const ProcessorParams& params,
                                               const ProcessorContext& ctx) {
  if (ctx.cluster == nullptr) return err("no aggregation cluster configured");
  if (!ctx.result_sink) return err("no result sink configured");
  if (ctx.topics.empty()) return err("processor has no input topics");

  if (name == "top-k") return build_topk(params, ctx);
  if (name == "diff-group" || name == "diff-group-avg") {
    return build_diff_group(params, ctx);
  }
  if (name.starts_with("group-") && is_known_processor(name)) {
    return build_group_agg(name, params, ctx);
  }
  if (name == "join") return build_join(params, ctx);
  if (name == "identity") return build_identity(ctx);
  return err("unknown processor '" + name + "'");
}

}  // namespace netalytics::stream
