#include "stream/fanin.hpp"

#include <stdexcept>

namespace netalytics::stream {

FanInTopK::FanInTopK(std::size_t sources, std::size_t k)
    : counts_(sources), k_(k == 0 ? 1 : k) {
  if (sources == 0) {
    throw std::invalid_argument("FanInTopK: sources must be > 0");
  }
}

void FanInTopK::add(std::size_t source, const std::string& key,
                    std::uint64_t by) {
  counts_.at(source)[key] += by;
  updates_ += 1;
}

const std::map<std::string, std::uint64_t>& FanInTopK::local(
    std::size_t source) const {
  return counts_.at(source);
}

Rankings FanInTopK::global() const {
  // Child-index merge order (docs/FEDERATION.md). The sum itself is
  // commutative; the ordered walk makes the fold — and anything a future
  // non-commutative consumer hangs off it — reproducible by construction.
  std::map<std::string, std::uint64_t> total;
  for (const auto& source : counts_) {
    for (const auto& [key, count] : source) total[key] += count;
  }
  Rankings r(k_);
  for (const auto& [key, count] : total) r.update(key, count);
  return r;
}

std::string FanInTopK::render() const {
  std::string out;
  std::uint64_t rank = 1;
  const Rankings ranked = global();
  for (const auto& e : ranked.entries()) {
    out += std::to_string(rank++);
    out += ' ';
    out += e.key;
    out += ' ';
    out += std::to_string(e.count);
    out += '\n';
  }
  return out;
}

FanInSpout::FanInSpout(std::size_t sources) : queues_(sources) {
  if (sources == 0) {
    throw std::invalid_argument("FanInSpout: sources must be > 0");
  }
}

void FanInSpout::push(std::size_t source, Tuple tuple) {
  queues_.at(source).push_back(std::move(tuple));
}

bool FanInSpout::next_tuple(Collector& out, common::Timestamp /*now*/) {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    out.emit(std::move(q.front()));
    q.pop_front();
    return true;
  }
  return false;
}

std::size_t FanInSpout::buffered() const noexcept {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace netalytics::stream
