#include "stream/free_running.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

namespace netalytics::stream {

namespace {
// Run-to-completion chunk: how many tuples a claimer executes before
// re-checking the claim (keeps tick()'s claim spin bounded).
constexpr std::size_t kChunk = 128;
// Help-on-full drains less so the blocked pusher gets back to its own
// tuple quickly once space exists.
constexpr std::size_t kHelpChunk = 32;

/// Wall-clock for the stage profiler only — virtual time never touches it.
std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

FreeRunningTopology::FreeRunningTopology(TopologySpec spec,
                                         ExecutorConfig exec)
    : spec_(std::move(spec)), exec_(exec) {
  if (exec_.workers == 0) exec_.workers = 1;
  if (exec_.inbox_capacity == 0) exec_.inbox_capacity = 1;
  profile_ = exec_.profile && profiler_available();
  std::map<std::string, std::size_t> index_of;
  for (const auto& c : spec_.components) {
    index_of[c.name] = nodes_.size();
    Node& node = nodes_.emplace_back();
    node.spec = c;
    for (std::size_t t = 0; t < c.parallelism; ++t) {
      Task& task = node.tasks.emplace_back(exec_.inbox_capacity);
      if (c.is_spout()) {
        task.spout = c.spout_factory();
        task.spout->open();
      } else {
        task.bolt = c.bolt_factory();
        task.bolt->prepare();
      }
    }
  }

  // Wire edges source -> subscriber with resolved grouping field indices.
  for (std::size_t dst = 0; dst < nodes_.size(); ++dst) {
    for (const auto& sub : nodes_[dst].spec.subscriptions) {
      const std::size_t src = index_of.at(sub.source);
      Edge& edge = nodes_[src].out_edges.emplace_back();
      edge.dst = dst;
      edge.type = sub.grouping.type;
      if (edge.type == GroupingType::fields) {
        const auto& schema = nodes_[src].spec.output_fields;
        for (const auto& f : sub.grouping.fields) {
          const auto it = std::find(schema.begin(), schema.end(), f);
          edge.field_indices.push_back(
              static_cast<std::size_t>(it - schema.begin()));
        }
      }
    }
  }

  // Topological order (spec validated acyclic by TopologyBuilder::build).
  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (const auto& node : nodes_) {
    for (const auto& e : node.out_edges) ++in_degree[e.dst];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) frontier.push_back(i);
  }
  while (!frontier.empty()) {
    const std::size_t n = frontier.front();
    frontier.erase(frontier.begin());
    topo_order_.push_back(n);
    for (const auto& e : nodes_[n].out_edges) {
      if (--in_degree[e.dst] == 0) frontier.push_back(e.dst);
    }
  }
  if (topo_order_.size() != nodes_.size()) {
    throw std::invalid_argument("FreeRunningTopology: cyclic spec");
  }

  pool_.reserve(exec_.workers - 1);
  for (std::size_t i = 0; i + 1 < exec_.workers; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

FreeRunningTopology::~FreeRunningTopology() {
  {
    std::lock_guard lock(park_mutex_);
    stop_.store(true, std::memory_order_seq_cst);
  }
  park_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

void FreeRunningTopology::bind_metrics(common::MetricsRegistry& registry,
                                       const std::string& prefix) {
  for (auto& node : nodes_) {
    node.executed =
        &registry.counter(prefix + "." + node.spec.name + ".executed");
    if (!profile_) continue;
    node.prof.assign(node.tasks.size(), TaskProf{});
    for (std::size_t k = 0; k < node.tasks.size(); ++k) {
      const std::string base = prefix + ".profiler." + node.spec.name + ".t" +
                               std::to_string(k) + ".";
      node.prof[k].tuples = &registry.counter(base + "tuples");
      node.prof[k].self_ns = &registry.counter(base + "self_ns");
      node.prof[k].queue_wait_ns = &registry.counter(base + "queue_wait_ns");
    }
  }
  if (profile_) {
    prof_claims_.store(&registry.counter(prefix + ".profiler.pool.claims"),
                       std::memory_order_release);
    prof_helps_.store(&registry.counter(prefix + ".profiler.pool.helps"),
                      std::memory_order_release);
    prof_parks_.store(&registry.counter(prefix + ".profiler.pool.parks"),
                      std::memory_order_release);
  }
}

void FreeRunningTopology::route(std::size_t src_component, Tuple tuple) {
  Node& src = nodes_[src_component];
  const std::size_t n_edges = src.out_edges.size();
  for (std::size_t e = 0; e < n_edges; ++e) {
    Edge& edge = src.out_edges[e];
    Node& dst = nodes_[edge.dst];
    const bool last_edge = (e + 1 == n_edges);
    switch (edge.type) {
      case GroupingType::shuffle: {
        // fetch_add makes the cursor race-free but the task a tuple lands
        // on is no longer reproducible — shuffle distribution is part of
        // what the relaxed mode gives up (docs/DETERMINISM.md).
        const std::size_t idx =
            edge.rr_cursor.fetch_add(1, std::memory_order_relaxed) %
            dst.tasks.size();
        enqueue(edge.dst, idx, last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::fields: {
        const std::uint64_t h = hash_fields(tuple, edge.field_indices);
        const std::size_t idx = h % dst.tasks.size();
        enqueue(edge.dst, idx, last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::global:
        enqueue(edge.dst, 0, last_edge ? std::move(tuple) : tuple);
        break;
      case GroupingType::all:
        for (std::size_t k = 0; k < dst.tasks.size(); ++k) {
          enqueue(edge.dst, k, tuple);
        }
        break;
    }
  }
}

void FreeRunningTopology::enqueue(std::size_t dst_component,
                                  std::size_t task_index, Tuple tuple) {
  Task& task = nodes_[dst_component].tasks[task_index];
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  while (!task.inbox.try_push_keep(tuple)) {
    // Full inbox: help drain the destination instead of spinning — the
    // backpressure mechanism that keeps the bounded inboxes deadlock-free
    // (progress argument in free_running.hpp).
    if (try_claim(task)) {
      if (profile_) {
        if (auto* c = prof_helps_.load(std::memory_order_acquire)) c->inc();
      }
      execute_chunk(dst_component, task_index, kHelpChunk);
      release_claim(task);
    } else {
      std::this_thread::yield();
    }
  }
  if (profile_ &&
      task.pending_since_ns.load(std::memory_order_relaxed) == 0) {
    task.pending_since_ns.store(mono_ns(), std::memory_order_relaxed);
  }
  wake_workers();
}

std::size_t FreeRunningTopology::execute_chunk(std::size_t component,
                                               std::size_t task_index,
                                               std::size_t limit) {
  Node& node = nodes_[component];
  Task& task = node.tasks[task_index];
  TaskProf* prof = nullptr;
  std::uint64_t t0 = 0;
  if (profile_ && task_index < node.prof.size()) {
    prof = &node.prof[task_index];
    t0 = mono_ns();
    const std::uint64_t pending =
        task.pending_since_ns.exchange(0, std::memory_order_relaxed);
    if (pending != 0 && t0 > pending) {
      prof->queue_wait_ns->inc(t0 - pending);
    }
  }
  RouteCollector out(*this, component);
  std::size_t done = 0;
  while (done < limit) {
    auto tuple = task.inbox.try_pop();
    if (!tuple) break;
    if (recorder_ != nullptr && tuple->trace != 0) {
      const common::Timestamp now = now_.load(std::memory_order_relaxed);
      recorder_->stamp(tuple->trace, common::TraceStage::execute, now, now);
    }
    task.bolt->execute(*tuple, out);
    if (node.executed != nullptr) node.executed->inc();
    executed_total_.fetch_add(1, std::memory_order_relaxed);
    // Decrement only after execute() returned: the children this tuple
    // emitted are already counted, so in_flight_ never dips to zero while
    // work is still reachable.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    ++done;
  }
  if (prof != nullptr) {
    prof->self_ns->inc(mono_ns() - t0);
    if (done != 0) prof->tuples->inc(done);
  }
  return done;
}

std::size_t FreeRunningTopology::run_pass() {
  std::size_t executed = 0;
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) continue;
    for (std::size_t t = 0; t < node.tasks.size(); ++t) {
      Task& task = node.tasks[t];
      if (task.inbox.size() == 0) continue;
      if (!try_claim(task)) continue;
      if (profile_) {
        if (auto* c = prof_claims_.load(std::memory_order_acquire)) c->inc();
      }
      // Run to completion: drain until the inbox stays empty.
      std::size_t chunk;
      do {
        chunk = execute_chunk(n, t, kChunk);
        executed += chunk;
      } while (chunk == kChunk);
      release_claim(task);
    }
  }
  return executed;
}

void FreeRunningTopology::quiesce() {
  // The driving thread is one of the workers: it helps drain, so
  // quiescence never depends on pool wakeups. A nonzero in_flight_ with
  // empty inboxes means some worker is mid-execute — yield until its
  // decrement lands.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    if (run_pass() == 0) std::this_thread::yield();
  }
}

void FreeRunningTopology::wake_workers() {
  if (pool_.empty()) return;
  wake_seq_.fetch_add(1, std::memory_order_seq_cst);
  if (idle_workers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(park_mutex_);
    park_cv_.notify_all();
  }
}

void FreeRunningTopology::worker_loop() {
  for (;;) {
    // Snapshot the eventcount BEFORE scanning: any push that the scan
    // misses bumps wake_seq_ afterwards, so the park predicate below sees
    // it and refuses to sleep.
    const std::uint64_t seq = wake_seq_.load(std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_relaxed)) return;
    if (run_pass() > 0) continue;
    std::unique_lock lock(park_mutex_);
    if (stop_.load(std::memory_order_relaxed)) return;
    if (profile_) {
      if (auto* c = prof_parks_.load(std::memory_order_acquire)) c->inc();
    }
    idle_workers_.fetch_add(1, std::memory_order_seq_cst);
    park_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return stop_.load(std::memory_order_relaxed) ||
             wake_seq_.load(std::memory_order_seq_cst) != seq;
    });
    idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

std::size_t FreeRunningTopology::step(common::Timestamp now,
                                      std::size_t spout_budget_per_task) {
  now_.store(now, std::memory_order_relaxed);
  const std::uint64_t before =
      executed_total_.load(std::memory_order_relaxed);
  // Spouts run sequentially on the driving thread, exactly like the
  // stepped executor: the broker poll order *is* the data assignment, and
  // group membership joins must happen in task order. Workers execute the
  // routed tuples concurrently while the spouts are still emitting.
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (!node.spec.is_spout()) continue;
    RouteCollector out(*this, n);
    for (std::size_t t = 0; t < node.tasks.size(); ++t) {
      Task& task = node.tasks[t];
      TaskProf* prof =
          profile_ && t < node.prof.size() ? &node.prof[t] : nullptr;
      const std::uint64_t t0 = prof != nullptr ? mono_ns() : 0;
      for (std::size_t i = 0; i < spout_budget_per_task; ++i) {
        if (!task.spout->next_tuple(out, now)) break;
      }
      if (prof != nullptr) prof->self_ns->inc(mono_ns() - t0);
    }
  }
  // Return quiescent so every step boundary is a reconcile point —
  // nothing is ever silently in flight between pumps.
  quiesce();
  return executed_total_.load(std::memory_order_relaxed) - before;
}

std::size_t FreeRunningTopology::run_until_idle(common::Timestamp now,
                                                std::size_t max_rounds) {
  std::size_t total = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::size_t n = step(now);
    total += n;
    if (n == 0) break;
  }
  return total;
}

void FreeRunningTopology::tick(common::Timestamp now) {
  now_.store(now, std::memory_order_relaxed);
  quiesce();
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    if (node.spec.is_spout()) continue;
    for (auto& task : node.tasks) {
      // Claim so a straggling worker can't execute concurrently with the
      // tick; after quiesce() the inboxes are empty, so any holder is in
      // its final (empty) chunk check and releases promptly.
      while (!try_claim(task)) std::this_thread::yield();
      RouteCollector out(*this, n);
      task.bolt->tick(now, out);
      release_claim(task);
    }
    // Drain before the next component ticks: a ranking bolt's tick must
    // observe this tick's fresh window counts, same as stepped tick().
    quiesce();
  }
}

void FreeRunningTopology::close(common::Timestamp now) {
  now_.store(now, std::memory_order_relaxed);
  quiesce();
  for (const std::size_t n : topo_order_) {
    Node& node = nodes_[n];
    RouteCollector out(*this, n);
    if (node.spec.is_spout()) {
      for (auto& task : node.tasks) task.spout->close(out);
    } else {
      for (auto& task : node.tasks) {
        while (!try_claim(task)) std::this_thread::yield();
        task.bolt->cleanup(now, out);
        release_claim(task);
      }
    }
    quiesce();
  }
}

}  // namespace netalytics::stream
