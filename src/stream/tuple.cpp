#include "stream/tuple.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

#include "common/hash.hpp"

namespace netalytics::stream {

std::uint64_t hash_value(const Value& v) noexcept {
  return std::visit(
      [](const auto& x) -> std::uint64_t {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return common::mix64(static_cast<std::uint64_t>(x) ^ 0x11);
        } else if constexpr (std::is_same_v<T, std::uint64_t>) {
          return common::mix64(x ^ 0x22);
        } else if constexpr (std::is_same_v<T, double>) {
          return common::mix64(std::bit_cast<std::uint64_t>(x) ^ 0x33);
        } else {
          return common::fnv1a64(std::string_view(x));
        }
      },
      v);
}

std::uint64_t hash_fields(const Tuple& t, const std::vector<std::size_t>& indices) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::size_t i : indices) {
    h = common::hash_combine(h, hash_value(t.at(i)));
  }
  return h;
}

std::string format_value(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return x;
        } else if constexpr (std::is_same_v<T, double>) {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.4f", x);
          return buf;
        } else {
          return std::to_string(x);
        }
      },
      v);
}

std::string format_tuple(const Tuple& t) {
  std::string out = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    if (std::holds_alternative<std::string>(t.values[i])) {
      out += '"' + format_value(t.values[i]) + '"';
    } else {
      out += format_value(t.values[i]);
    }
  }
  out += ")";
  return out;
}

double as_number(const Value& v) {
  return std::visit(
      [](const auto& x) -> double {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          throw std::invalid_argument("as_number: value is a string");
        } else {
          return static_cast<double>(x);
        }
      },
      v);
}

}  // namespace netalytics::stream
