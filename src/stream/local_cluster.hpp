// Free-running threaded topology executor: one thread per task, bounded
// MPMC inboxes, blocking emit for natural backpressure. Runs the same
// TopologySpec as SteppedTopology but without its determinism contract —
// tuple interleaving and shuffle destinations depend on the thread
// schedule (docs/DETERMINISM.md spells out the difference). Use it where
// wall-clock behaviour is the point (soak runs, live demos); use the
// stepped executor (with ExecutorConfig::workers for real cores) wherever
// results must replay bit-identically.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mpmc_queue.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

struct LocalClusterConfig {
  /// Bounded per-task inbox; a full inbox blocks the emitter (the
  /// cluster's backpressure mechanism).
  std::size_t inbox_capacity = 8192;
  /// Wall-clock period between Bolt::tick deliveries.
  common::Duration tick_interval = 200 * common::kMillisecond;
};

class LocalCluster {
 public:
  /// Instantiates one spout/bolt per task from the spec's factories.
  /// Threads do not start until start().
  explicit LocalCluster(TopologySpec spec, LocalClusterConfig config = {});
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Launch one thread per task; spouts begin emitting immediately.
  void start();
  /// Stop spouts, drain every bolt in topological order, run cleanups.
  void stop();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Tuples executed by all bolt tasks so far (racy read, monotonic).
  std::uint64_t tuples_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::unique_ptr<Spout> spout;
    std::unique_ptr<Bolt> bolt;
    std::unique_ptr<common::MpmcQueue<Tuple>> inbox;  // bolts only
    std::thread thread;
  };

  struct Edge {
    std::size_t dst = 0;
    GroupingType type = GroupingType::shuffle;
    std::vector<std::size_t> field_indices;
    std::atomic<std::size_t> rr_cursor{0};
  };

  struct Node {
    ComponentSpec spec;
    std::vector<std::unique_ptr<Task>> tasks;
    std::vector<std::unique_ptr<Edge>> out_edges;
    std::atomic<bool> stop{false};
  };

  class EmitCollector final : public Collector {
   public:
    EmitCollector(LocalCluster& cluster, std::size_t src)
        : cluster_(cluster), src_(src) {}
    void emit(Tuple tuple) override { cluster_.route(src_, std::move(tuple)); }

   private:
    LocalCluster& cluster_;
    std::size_t src_;
  };

  void route(std::size_t src_component, Tuple tuple);
  void spout_loop(Node& node, Task& task, std::size_t component_index);
  void bolt_loop(Node& node, Task& task, std::size_t component_index);

  TopologySpec spec_;
  LocalClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::size_t> topo_order_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace netalytics::stream
