#include "stream/bolts.hpp"

#include <algorithm>

#include "common/byte_io.hpp"
#include "nf/record.hpp"

namespace netalytics::stream {

namespace {

Value from_field(const nf::FieldValue& f) {
  return std::visit([](const auto& v) -> Value { return v; }, f);
}

}  // namespace

void ParsingBolt::execute(const Tuple& input, Collector& out) {
  // Input: [payload:string] — the serialized batch from an mq message.
  const auto& payload = as_str(input.at(0));
  const auto records = nf::deserialize_batch(common::as_bytes(payload));
  for (const auto& rec : records) {
    Tuple t;
    t.trace = rec.trace;
    t.values.reserve(2 + rec.fields.size());
    t.values.emplace_back(std::uint64_t{rec.id});
    t.values.emplace_back(std::uint64_t{rec.timestamp});
    for (const auto& f : rec.fields) t.values.push_back(from_field(f));
    out.emit(std::move(t));
  }
}

void DiffBolt::execute(const Tuple& input, Collector& out) {
  const auto id = as_u64(input.at(config_.id_index));
  const auto& event = as_str(input.at(config_.event_index));

  if (event == config_.start_token) {
    if (pending_.size() >= config_.max_pending) {  // shed load
      if (ledger_ != nullptr) {
        ledger_->add(common::DropCause::stream_window_eviction, pending_.size());
      }
      pending_.clear();
    }
    pending_.insert_or_assign(id, input);
    return;
  }
  if (event != config_.end_token) return;

  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // end without observed start
  const auto start_ts = as_u64(it->second.at(config_.ts_index));
  const auto end_ts = as_u64(input.at(config_.ts_index));
  const std::uint64_t diff = end_ts >= start_ts ? end_ts - start_ts : 0;

  Tuple result;
  // Provenance follows the end event (it closed the pair), falling back to
  // the start tuple's trace.
  result.trace = input.trace != 0 ? input.trace : it->second.trace;
  result.values.reserve(2 + config_.passthrough.size());
  result.values.emplace_back(std::uint64_t{id});
  result.values.emplace_back(std::uint64_t{diff});
  for (const auto idx : config_.passthrough) {
    result.values.push_back(it->second.at(idx));
  }
  pending_.erase(it);
  out.emit(std::move(result));
}

void JoinByIdBolt::execute(const Tuple& input, Collector& out) {
  bool is_left;
  Tuple stored = input;
  if (config_.by_tag) {
    is_left = as_str(input.values.back()) == config_.left_tag;
    stored.values.pop_back();  // strip the marker
  } else {
    is_left = input.size() == config_.left_arity;
  }
  auto& mine = is_left ? pending_left_ : pending_right_;
  const std::size_t id_index =
      is_left ? config_.left_id_index : config_.right_id_index;
  const auto id = as_u64(stored.at(id_index));
  if (mine.size() >= config_.max_pending) {  // shed load
    if (ledger_ != nullptr) {
      ledger_->add(common::DropCause::stream_window_eviction, mine.size());
    }
    mine.clear();
  }
  // 1:1 join, first record per id wins (a flow's first HTTP request pairs
  // with its first timing event; later same-id records are dropped).
  mine.try_emplace(id, std::move(stored));
  try_join(id, out);
}

void JoinByIdBolt::try_join(std::uint64_t id, Collector& out) {
  const auto lit = pending_left_.find(id);
  const auto rit = pending_right_.find(id);
  if (lit == pending_left_.end() || rit == pending_right_.end()) return;

  Tuple result;
  result.trace = lit->second.trace != 0 ? lit->second.trace : rit->second.trace;
  result.values.reserve(1 + config_.left_passthrough.size() +
                        config_.right_passthrough.size());
  result.values.emplace_back(std::uint64_t{id});
  for (const auto idx : config_.left_passthrough) {
    result.values.push_back(lit->second.at(idx));
  }
  for (const auto idx : config_.right_passthrough) {
    result.values.push_back(rit->second.at(idx));
  }
  pending_left_.erase(lit);
  pending_right_.erase(rit);
  out.emit(std::move(result));
}

void GroupAggBolt::execute(const Tuple& input, Collector&) {
  std::string key;
  std::vector<Value> group_values;
  group_values.reserve(config_.group_indices.size());
  for (const auto idx : config_.group_indices) {
    key += format_value(input.at(idx));
    key += '\x1f';
    group_values.push_back(input.at(idx));
  }

  auto [it, inserted] = groups_.try_emplace(key);
  Agg& agg = it->second;
  if (inserted) agg.group_values = std::move(group_values);

  double v = 0;
  if (config_.op != AggOp::count) v = as_number(input.at(config_.value_index));
  if (agg.count == 0) {
    agg.max = agg.min = v;
  } else {
    agg.max = std::max(agg.max, v);
    agg.min = std::min(agg.min, v);
  }
  agg.sum += v;
  ++agg.count;
  agg.trace = std::max(agg.trace, input.trace);
  report_window();
}

void GroupAggBolt::report_window() {
  const auto current = static_cast<std::int64_t>(groups_.size());
  if (window_gauge_ != nullptr) window_gauge_->add(current - last_window_);
  last_window_ = current;
}

void GroupAggBolt::emit_groups(Collector& out) {
  for (const auto& [key, agg] : groups_) {
    if (agg.count == 0) continue;
    double result = 0;
    switch (config_.op) {
      case AggOp::sum: result = agg.sum; break;
      case AggOp::avg: result = agg.sum / static_cast<double>(agg.count); break;
      case AggOp::max: result = agg.max; break;
      case AggOp::min: result = agg.min; break;
      case AggOp::count: result = static_cast<double>(agg.count); break;
    }
    Tuple t;
    t.values = agg.group_values;
    t.values.emplace_back(result);
    t.values.emplace_back(std::uint64_t{agg.count});
    t.trace = agg.trace;
    out.emit(std::move(t));
  }
  if (config_.reset_after_emit) {
    groups_.clear();
    report_window();
  }
}

void GroupAggBolt::tick(common::Timestamp, Collector& out) {
  if (config_.emit_on_tick) emit_groups(out);
}

void GroupAggBolt::cleanup(common::Timestamp, Collector& out) {
  if (!config_.emit_on_tick || config_.reset_after_emit) emit_groups(out);
}

}  // namespace netalytics::stream
