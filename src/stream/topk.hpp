// The top-k topology bolts of Fig. 4: Parsing -> Counting (rolling counts,
// fields-grouped by key) -> intermediate Rankings -> global Rankings ->
// Database/Updater. This is the processor behind trending-content queries
// (§5.3, §7.3).
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <string>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "stream/kvstore.hpp"
#include "stream/topology.hpp"
#include "stream/window.hpp"

namespace netalytics::stream {

/// Rolling count per key. Emits [key:str, count:u64] for every windowed key
/// on tick, then advances the window slot.
class CountingBolt final : public Bolt {
 public:
  /// `key_index`: which input value is the counted key. `slots`: window
  /// slots retained (Storm's rolling-count "window length / emit period").
  CountingBolt(std::size_t key_index, std::size_t slots)
      : key_index_(key_index), counter_(slots) {}

  void execute(const Tuple& input, Collector&) override {
    const std::string key = format_value(input.at(key_index_));
    counter_.incr(key);
    if (input.trace != 0) {
      // Trace continuation: a windowed emission inherits the max sampled
      // trace id among its contributors — max is commutative, so the
      // choice is independent of tuple arrival interleaving.
      auto& t = trace_of_[key];
      t = std::max(t, input.trace);
    }
    report_window();
  }
  void tick(common::Timestamp, Collector& out) override {
    for (const auto& [key, count] : counter_.totals()) {
      const auto it = trace_of_.find(key);
      out.emit(Tuple{{key, std::uint64_t{count}},
                     it != trace_of_.end() ? it->second : 0});
    }
    const std::size_t before = counter_.key_count();
    counter_.advance();
    const std::size_t after = counter_.key_count();
    if (after < before && ledger_ != nullptr) {
      ledger_->add(common::DropCause::stream_window_eviction, before - after);
    }
    const auto live = counter_.totals();
    for (auto it = trace_of_.begin(); it != trace_of_.end();) {
      it = live.count(it->first) != 0 ? std::next(it) : trace_of_.erase(it);
    }
    report_window();
  }

  /// Window-size gauge shared across parallel tasks: each task reports its
  /// key-count delta, so the gauge holds the total tracked keys.
  void set_window_gauge(common::Gauge* gauge) noexcept { window_gauge_ = gauge; }

  /// Account keys aged out of the rolling window (stream_window_eviction).
  void set_drop_ledger(common::DropLedger* ledger) noexcept { ledger_ = ledger; }

 private:
  void report_window() {
    const auto current = static_cast<std::int64_t>(counter_.key_count());
    if (window_gauge_ != nullptr) window_gauge_->add(current - last_window_);
    last_window_ = current;
  }

  std::size_t key_index_;
  RollingCounter counter_;
  std::map<std::string, std::uint64_t> trace_of_;  // key -> max sampled trace
  common::Gauge* window_gauge_ = nullptr;
  common::DropLedger* ledger_ = nullptr;
  std::int64_t last_window_ = 0;
};

/// Local top-k over [key, count] updates; emits its rankings on tick as
/// [key:str, count:u64] rows (the parallel-reduction step of §5.3).
class IntermediateRankingsBolt final : public Bolt {
 public:
  explicit IntermediateRankingsBolt(std::size_t k) : rankings_(k) {}

  void execute(const Tuple& input, Collector&) override {
    const std::string key = as_str(input.at(0));
    rankings_.update(key, as_u64(input.at(1)));
    if (input.trace != 0) {
      auto& t = trace_of_[key];
      t = std::max(t, input.trace);
    }
  }
  void tick(common::Timestamp, Collector& out) override {
    for (const auto& e : rankings_.entries()) {
      const auto it = trace_of_.find(e.key);
      out.emit(Tuple{{e.key, std::uint64_t{e.count}},
                     it != trace_of_.end() ? it->second : 0});
    }
    prune_traces();
  }

 private:
  /// Keep trace ids only for keys still ranked, so the map stays O(k).
  void prune_traces() {
    std::map<std::string, std::uint64_t> live;
    for (const auto& e : rankings_.entries()) {
      const auto it = trace_of_.find(e.key);
      if (it != trace_of_.end()) live.emplace(e.key, it->second);
    }
    trace_of_ = std::move(live);
  }

  Rankings rankings_;
  std::map<std::string, std::uint64_t> trace_of_;  // key -> max sampled trace
};

/// Global top-k (global-grouped): merges local rankings and emits the final
/// ordered list on tick as [rank:u64, key:str, count:u64].
class TotalRankingsBolt final : public Bolt {
 public:
  explicit TotalRankingsBolt(std::size_t k) : rankings_(k) {}

  void execute(const Tuple& input, Collector&) override {
    const std::string key = as_str(input.at(0));
    rankings_.update(key, as_u64(input.at(1)));
    if (input.trace != 0) {
      auto& t = trace_of_[key];
      t = std::max(t, input.trace);
    }
  }
  void tick(common::Timestamp, Collector& out) override {
    std::uint64_t rank = 1;
    for (const auto& e : rankings_.entries()) {
      const auto it = trace_of_.find(e.key);
      out.emit(Tuple{{std::uint64_t{rank++}, e.key, std::uint64_t{e.count}},
                     it != trace_of_.end() ? it->second : 0});
    }
    std::map<std::string, std::uint64_t> live;
    for (const auto& e : rankings_.entries()) {
      const auto it = trace_of_.find(e.key);
      if (it != trace_of_.end()) live.emplace(e.key, it->second);
    }
    trace_of_ = std::move(live);
  }

 private:
  Rankings rankings_;
  std::map<std::string, std::uint64_t> trace_of_;  // key -> max sampled trace
};

/// Stores the rolling top-k into the KV store (Redis substitute): hash
/// "topk" maps key -> count, and "topk:rank:<n>" holds the ordered list
/// (§7.3: "store the URLs of the most popular content into a Redis
/// in-memory data store"). Forwards its input unchanged.
class DatabaseBolt final : public Bolt {
 public:
  explicit DatabaseBolt(KvStore& store) : store_(store) {}
  void execute(const Tuple& input, Collector& out) override;

 private:
  KvStore& store_;
};

/// Drives automation (§7.3): fires scale-up when a key's frequency crosses
/// the upper threshold and scale-down when the whole top-k stays below the
/// lower one, with a backoff so rolling counts don't thrash the pool.
struct UpdaterConfig {
  std::uint64_t upper_threshold = 1000;
  std::uint64_t lower_threshold = 100;
  common::Duration backoff = 5 * common::kSecond;
};

class UpdaterBolt final : public Bolt {
 public:
  using ScaleCallback = std::function<void(const std::string& key, std::uint64_t count)>;

  UpdaterBolt(UpdaterConfig config, ScaleCallback on_scale_up,
              ScaleCallback on_scale_down)
      : config_(config),
        on_scale_up_(std::move(on_scale_up)),
        on_scale_down_(std::move(on_scale_down)) {}

  void execute(const Tuple& input, Collector&) override;
  void tick(common::Timestamp now, Collector&) override;

 private:
  UpdaterConfig config_;
  ScaleCallback on_scale_up_;
  ScaleCallback on_scale_down_;
  std::uint64_t window_peak_ = 0;
  std::string peak_key_;
  common::Timestamp next_allowed_action_ = 0;
};

}  // namespace netalytics::stream
