// The top-k topology bolts of Fig. 4: Parsing -> Counting (rolling counts,
// fields-grouped by key) -> intermediate Rankings -> global Rankings ->
// Database/Updater. This is the processor behind trending-content queries
// (§5.3, §7.3).
#pragma once

#include <functional>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "stream/kvstore.hpp"
#include "stream/topology.hpp"
#include "stream/window.hpp"

namespace netalytics::stream {

/// Rolling count per key. Emits [key:str, count:u64] for every windowed key
/// on tick, then advances the window slot.
class CountingBolt final : public Bolt {
 public:
  /// `key_index`: which input value is the counted key. `slots`: window
  /// slots retained (Storm's rolling-count "window length / emit period").
  CountingBolt(std::size_t key_index, std::size_t slots)
      : key_index_(key_index), counter_(slots) {}

  void execute(const Tuple& input, Collector&) override {
    counter_.incr(format_value(input.at(key_index_)));
    report_window();
  }
  void tick(common::Timestamp, Collector& out) override {
    for (const auto& [key, count] : counter_.totals()) {
      out.emit(Tuple{{key, std::uint64_t{count}}});
    }
    const std::size_t before = counter_.key_count();
    counter_.advance();
    const std::size_t after = counter_.key_count();
    if (after < before && ledger_ != nullptr) {
      ledger_->add(common::DropCause::stream_window_eviction, before - after);
    }
    report_window();
  }

  /// Window-size gauge shared across parallel tasks: each task reports its
  /// key-count delta, so the gauge holds the total tracked keys.
  void set_window_gauge(common::Gauge* gauge) noexcept { window_gauge_ = gauge; }

  /// Account keys aged out of the rolling window (stream_window_eviction).
  void set_drop_ledger(common::DropLedger* ledger) noexcept { ledger_ = ledger; }

 private:
  void report_window() {
    const auto current = static_cast<std::int64_t>(counter_.key_count());
    if (window_gauge_ != nullptr) window_gauge_->add(current - last_window_);
    last_window_ = current;
  }

  std::size_t key_index_;
  RollingCounter counter_;
  common::Gauge* window_gauge_ = nullptr;
  common::DropLedger* ledger_ = nullptr;
  std::int64_t last_window_ = 0;
};

/// Local top-k over [key, count] updates; emits its rankings on tick as
/// [key:str, count:u64] rows (the parallel-reduction step of §5.3).
class IntermediateRankingsBolt final : public Bolt {
 public:
  explicit IntermediateRankingsBolt(std::size_t k) : rankings_(k) {}

  void execute(const Tuple& input, Collector&) override {
    rankings_.update(as_str(input.at(0)), as_u64(input.at(1)));
  }
  void tick(common::Timestamp, Collector& out) override {
    for (const auto& e : rankings_.entries()) {
      out.emit(Tuple{{e.key, std::uint64_t{e.count}}});
    }
  }

 private:
  Rankings rankings_;
};

/// Global top-k (global-grouped): merges local rankings and emits the final
/// ordered list on tick as [rank:u64, key:str, count:u64].
class TotalRankingsBolt final : public Bolt {
 public:
  explicit TotalRankingsBolt(std::size_t k) : rankings_(k) {}

  void execute(const Tuple& input, Collector&) override {
    rankings_.update(as_str(input.at(0)), as_u64(input.at(1)));
  }
  void tick(common::Timestamp, Collector& out) override {
    std::uint64_t rank = 1;
    for (const auto& e : rankings_.entries()) {
      out.emit(Tuple{{std::uint64_t{rank++}, e.key, std::uint64_t{e.count}}});
    }
  }

 private:
  Rankings rankings_;
};

/// Stores the rolling top-k into the KV store (Redis substitute): hash
/// "topk" maps key -> count, and "topk:rank:<n>" holds the ordered list
/// (§7.3: "store the URLs of the most popular content into a Redis
/// in-memory data store"). Forwards its input unchanged.
class DatabaseBolt final : public Bolt {
 public:
  explicit DatabaseBolt(KvStore& store) : store_(store) {}
  void execute(const Tuple& input, Collector& out) override;

 private:
  KvStore& store_;
};

/// Drives automation (§7.3): fires scale-up when a key's frequency crosses
/// the upper threshold and scale-down when the whole top-k stays below the
/// lower one, with a backoff so rolling counts don't thrash the pool.
struct UpdaterConfig {
  std::uint64_t upper_threshold = 1000;
  std::uint64_t lower_threshold = 100;
  common::Duration backoff = 5 * common::kSecond;
};

class UpdaterBolt final : public Bolt {
 public:
  using ScaleCallback = std::function<void(const std::string& key, std::uint64_t count)>;

  UpdaterBolt(UpdaterConfig config, ScaleCallback on_scale_up,
              ScaleCallback on_scale_down)
      : config_(config),
        on_scale_up_(std::move(on_scale_up)),
        on_scale_down_(std::move(on_scale_down)) {}

  void execute(const Tuple& input, Collector&) override;
  void tick(common::Timestamp now, Collector&) override;

 private:
  UpdaterConfig config_;
  ScaleCallback on_scale_up_;
  ScaleCallback on_scale_down_;
  std::uint64_t window_peak_ = 0;
  std::string peak_key_;
  common::Timestamp next_allowed_action_ = 0;
};

}  // namespace netalytics::stream
