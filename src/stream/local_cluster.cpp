#include "stream/local_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

namespace netalytics::stream {

LocalCluster::LocalCluster(TopologySpec spec, LocalClusterConfig config)
    : spec_(std::move(spec)), config_(config) {
  std::map<std::string, std::size_t> index_of;
  for (const auto& c : spec_.components) {
    index_of[c.name] = nodes_.size();
    auto node = std::make_unique<Node>();
    node->spec = c;
    for (std::size_t t = 0; t < c.parallelism; ++t) {
      auto task = std::make_unique<Task>();
      if (c.is_spout()) {
        task->spout = c.spout_factory();
      } else {
        task->bolt = c.bolt_factory();
        task->inbox =
            std::make_unique<common::MpmcQueue<Tuple>>(config_.inbox_capacity);
      }
      node->tasks.push_back(std::move(task));
    }
    nodes_.push_back(std::move(node));
  }

  for (std::size_t dst = 0; dst < nodes_.size(); ++dst) {
    for (const auto& sub : nodes_[dst]->spec.subscriptions) {
      const std::size_t src = index_of.at(sub.source);
      auto edge = std::make_unique<Edge>();
      edge->dst = dst;
      edge->type = sub.grouping.type;
      if (edge->type == GroupingType::fields) {
        const auto& schema = nodes_[src]->spec.output_fields;
        for (const auto& f : sub.grouping.fields) {
          const auto it = std::find(schema.begin(), schema.end(), f);
          edge->field_indices.push_back(
              static_cast<std::size_t>(it - schema.begin()));
        }
      }
      nodes_[src]->out_edges.push_back(std::move(edge));
    }
  }

  std::vector<std::size_t> in_degree(nodes_.size(), 0);
  for (const auto& node : nodes_) {
    for (const auto& e : node->out_edges) ++in_degree[e->dst];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) frontier.push_back(i);
  }
  while (!frontier.empty()) {
    const std::size_t n = frontier.front();
    frontier.erase(frontier.begin());
    topo_order_.push_back(n);
    for (const auto& e : nodes_[n]->out_edges) {
      if (--in_degree[e->dst] == 0) frontier.push_back(e->dst);
    }
  }
  if (topo_order_.size() != nodes_.size()) {
    throw std::invalid_argument("LocalCluster: cyclic spec");
  }
}

LocalCluster::~LocalCluster() {
  if (running()) stop();
}

void LocalCluster::route(std::size_t src_component, Tuple tuple) {
  Node& src = *nodes_[src_component];
  for (std::size_t e = 0; e < src.out_edges.size(); ++e) {
    Edge& edge = *src.out_edges[e];
    Node& dst = *nodes_[edge.dst];
    const bool last_edge = (e + 1 == src.out_edges.size());
    switch (edge.type) {
      case GroupingType::shuffle: {
        const std::size_t idx =
            edge.rr_cursor.fetch_add(1, std::memory_order_relaxed) %
            dst.tasks.size();
        dst.tasks[idx]->inbox->push(last_edge ? std::move(tuple) : tuple);
        break;
      }
      case GroupingType::fields: {
        const std::uint64_t h = hash_fields(tuple, edge.field_indices);
        dst.tasks[h % dst.tasks.size()]->inbox->push(last_edge ? std::move(tuple)
                                                               : tuple);
        break;
      }
      case GroupingType::global:
        dst.tasks[0]->inbox->push(last_edge ? std::move(tuple) : tuple);
        break;
      case GroupingType::all:
        for (auto& task : dst.tasks) task->inbox->push(tuple);
        break;
    }
  }
}

void LocalCluster::spout_loop(Node& node, Task& task, std::size_t component_index) {
  EmitCollector collector(*this, component_index);
  common::WallClock clock;
  task.spout->open();
  while (!node.stop.load(std::memory_order_acquire)) {
    if (!task.spout->next_tuple(collector, clock.now())) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  task.spout->close(collector);
}

void LocalCluster::bolt_loop(Node& node, Task& task, std::size_t component_index) {
  EmitCollector collector(*this, component_index);
  common::WallClock clock;
  task.bolt->prepare();
  common::Timestamp last_tick = clock.now();
  while (true) {
    auto tuple = task.inbox->pop_for(std::chrono::milliseconds(5));
    if (tuple.has_value()) {
      task.bolt->execute(*tuple, collector);
      executed_.fetch_add(1, std::memory_order_relaxed);
    } else if (node.stop.load(std::memory_order_acquire) &&
               task.inbox->size() == 0) {
      break;
    }
    const common::Timestamp now = clock.now();
    if (now - last_tick >= config_.tick_interval) {
      task.bolt->tick(now, collector);
      last_tick = now;
    }
  }
  task.bolt->cleanup(clock.now(), collector);
}

void LocalCluster::start() {
  if (running()) return;
  running_.store(true, std::memory_order_release);
  // Bolts first so inboxes are consumed from the instant spouts emit.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    Node& node = *nodes_[n];
    if (node.spec.is_spout()) continue;
    for (auto& task : node.tasks) {
      task->thread = std::thread([this, &node, t = task.get(), n] {
        bolt_loop(node, *t, n);
      });
    }
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    Node& node = *nodes_[n];
    if (!node.spec.is_spout()) continue;
    for (auto& task : node.tasks) {
      task->thread = std::thread([this, &node, t = task.get(), n] {
        spout_loop(node, *t, n);
      });
    }
  }
}

void LocalCluster::stop() {
  if (!running()) return;
  // Topological shutdown: stop and join each component only after all of
  // its upstreams finished, so every in-flight tuple is processed.
  for (const std::size_t n : topo_order_) {
    Node& node = *nodes_[n];
    node.stop.store(true, std::memory_order_release);
    for (auto& task : node.tasks) {
      if (task->thread.joinable()) task->thread.join();
    }
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace netalytics::stream
