#include "stream/topk.hpp"

namespace netalytics::stream {

void DatabaseBolt::execute(const Tuple& input, Collector& out) {
  // Input: [rank, key, count] from the total ranker.
  const auto rank = as_u64(input.at(0));
  const auto& key = as_str(input.at(1));
  const auto count = as_u64(input.at(2));
  store_.hset("topk", key, std::to_string(count));
  store_.set("topk:rank:" + std::to_string(rank), key);
  out.emit(input);
}

void UpdaterBolt::execute(const Tuple& input, Collector&) {
  const auto& key = as_str(input.at(1));
  const auto count = as_u64(input.at(2));
  if (count > window_peak_) {
    window_peak_ = count;
    peak_key_ = key;
  }
}

void UpdaterBolt::tick(common::Timestamp now, Collector&) {
  if (now >= next_allowed_action_ && !peak_key_.empty()) {
    if (window_peak_ >= config_.upper_threshold) {
      if (on_scale_up_) on_scale_up_(peak_key_, window_peak_);
      next_allowed_action_ = now + config_.backoff;
    } else if (window_peak_ < config_.lower_threshold) {
      if (on_scale_down_) on_scale_down_(peak_key_, window_peak_);
      next_allowed_action_ = now + config_.backoff;
    }
  }
  window_peak_ = 0;
  peak_key_.clear();
}

}  // namespace netalytics::stream
