// Deterministic single-threaded topology executor. Components are run in
// topological order each step, so a tuple emitted by a spout flows through
// every downstream bolt within the same step. Used by the simulated
// use-case pipelines, the figure benches, and the tests; the threaded
// LocalCluster (local_cluster.hpp) runs the same TopologySpec with real
// parallelism.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

class SteppedTopology {
 public:
  explicit SteppedTopology(TopologySpec spec);

  /// One scheduling round: every spout task may emit up to
  /// `spout_budget_per_task` tuples, then all inboxes drain through the
  /// bolts in topological order. Returns the number of tuples executed.
  std::size_t step(common::Timestamp now, std::size_t spout_budget_per_task = 32);

  /// Step until the spouts report idle and all inboxes are empty, or until
  /// `max_rounds` is hit. Returns tuples executed.
  std::size_t run_until_idle(common::Timestamp now, std::size_t max_rounds = 4096);

  /// Deliver a tick to every bolt (rolling windows advance, rankings emit)
  /// and drain the results.
  void tick(common::Timestamp now);

  /// cleanup() every bolt and drain final emissions.
  void close(common::Timestamp now);

  std::uint64_t tuples_executed() const noexcept { return executed_; }
  const TopologySpec& spec() const noexcept { return spec_; }

  /// Publish per-component executed-tuple counters into `registry` as
  /// "<prefix>.<component>.executed". Bind before stepping.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix);

 private:
  struct Task {
    std::unique_ptr<Spout> spout;  // exactly one of spout/bolt set
    std::unique_ptr<Bolt> bolt;
    std::deque<Tuple> inbox;
  };

  struct Edge {
    std::size_t dst = 0;  // component index
    GroupingType type = GroupingType::shuffle;
    std::vector<std::size_t> field_indices;
    std::size_t rr_cursor = 0;  // shuffle round-robin
  };

  struct Node {
    ComponentSpec spec;
    std::vector<Task> tasks;
    std::vector<Edge> out_edges;
    common::Counter* executed = nullptr;  // null until bind_metrics
  };

  class RoutingCollector final : public Collector {
   public:
    RoutingCollector(SteppedTopology& topo, std::size_t src) : topo_(topo), src_(src) {}
    void emit(Tuple tuple) override { topo_.route(src_, std::move(tuple)); }

   private:
    SteppedTopology& topo_;
    std::size_t src_;
  };

  void route(std::size_t src_component, Tuple tuple);
  std::size_t drain(common::Timestamp now);

  TopologySpec spec_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> topo_order_;
  std::uint64_t executed_ = 0;
};

}  // namespace netalytics::stream
