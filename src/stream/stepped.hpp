// Deterministic topology executor with an optional worker pool. Components
// run in topological order each step, so a tuple emitted by a spout flows
// through every downstream bolt within the same step. With
// ExecutorConfig::workers > 1 each bolt stage fans its tasks out to real
// threads behind a stage barrier while keeping the single-threaded
// executor's exact virtual-time semantics — same tuple counts, same
// grouping destinations, same window/tick ordering (the contract is
// documented in docs/DETERMINISM.md and proven differentially in
// tests/core/parallel_executor_differential_test.cpp). Used by the
// simulated use-case pipelines, the figure benches, and the tests; the
// threaded LocalCluster (local_cluster.hpp) runs the same TopologySpec
// free-running, without the deterministic contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "stream/executor.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

class SteppedTopology final : public TopologyExecutor {
 public:
  /// Instantiates one spout/bolt per task from the spec's factories.
  /// `exec.workers` > 1 enables the stage-parallel execution mode; pool
  /// threads are started lazily on the first parallel stage.
  explicit SteppedTopology(TopologySpec spec, ExecutorConfig exec = {});
  ~SteppedTopology() override;

  SteppedTopology(const SteppedTopology&) = delete;
  SteppedTopology& operator=(const SteppedTopology&) = delete;

  /// One scheduling round: every spout task may emit up to
  /// `spout_budget_per_task` tuples, then all inboxes drain through the
  /// bolts in topological order. Returns the number of tuples executed.
  std::size_t step(common::Timestamp now,
                   std::size_t spout_budget_per_task = 32) override;

  /// Step until the spouts report idle and all inboxes are empty, or until
  /// `max_rounds` is hit. Returns tuples executed.
  std::size_t run_until_idle(common::Timestamp now,
                             std::size_t max_rounds = 4096) override;

  /// Deliver a tick to every bolt (rolling windows advance, rankings emit)
  /// and drain the results. Stage-ordered: a component's tick runs only
  /// after every upstream emission of this round has been drained, and its
  /// own emissions are drained before the next component ticks.
  void tick(common::Timestamp now) override;

  /// cleanup() every bolt and drain final emissions.
  void close(common::Timestamp now) override;

  std::uint64_t tuples_executed() const noexcept override { return executed_; }
  const TopologySpec& spec() const noexcept override { return spec_; }
  /// Total execution threads a bolt stage may use (1 = inline).
  std::size_t workers() const noexcept override { return exec_.workers; }
  ExecutorMode mode() const noexcept override { return ExecutorMode::stepped; }

  /// Publish per-component executed-tuple counters into `registry` as
  /// "<prefix>.<component>.executed". With ExecutorConfig::profile also
  /// creates the stage-profiler counters
  /// ("<prefix>.profiler.<component>.t<k>.{tuples,self_ns,queue_wait_ns}"
  /// plus "<prefix>.profiler.pool.*"). Bind before stepping.
  void bind_metrics(common::MetricsRegistry& registry,
                    const std::string& prefix) override;

  /// Stamp a TraceStage::execute span for every executed tuple whose
  /// `Tuple::trace` is nonzero. Bind before stepping; pass nullptr to
  /// disable (the default).
  void bind_trace(common::TraceRecorder* recorder) noexcept override {
    recorder_ = recorder;
  }

 private:
  struct Task {
    std::unique_ptr<Spout> spout;  // exactly one of spout/bolt set
    std::unique_ptr<Bolt> bolt;
    std::deque<Tuple> inbox;
    // Emissions buffered during a stage, routed at the barrier in task
    // order — the mechanism that makes parallel execution deterministic.
    std::vector<Tuple> outbox;
    std::size_t processed = 0;  // tuples executed this stage
  };

  struct Edge {
    std::size_t dst = 0;  // component index
    GroupingType type = GroupingType::shuffle;
    std::vector<std::size_t> field_indices;
    std::size_t rr_cursor = 0;  // shuffle round-robin
  };

  /// Stage-profiler counters of one task (null until bind_metrics with
  /// ExecutorConfig::profile). Wall-clock values: never part of the
  /// deterministic render contract (docs/DETERMINISM.md).
  struct TaskProf {
    common::Counter* tuples = nullptr;
    common::Counter* self_ns = nullptr;
    common::Counter* queue_wait_ns = nullptr;
  };

  struct Node {
    ComponentSpec spec;
    std::vector<Task> tasks;
    std::vector<Edge> out_edges;
    common::Counter* executed = nullptr;  // null until bind_metrics
    std::vector<TaskProf> prof;           // empty unless profiling
  };

  /// Collector handed to components: appends to the executing task's
  /// outbox. Routing happens later, single-threaded, at the stage barrier.
  class OutboxCollector final : public Collector {
   public:
    explicit OutboxCollector(std::vector<Tuple>& out) : out_(out) {}
    void emit(Tuple tuple) override { out_.push_back(std::move(tuple)); }

   private:
    std::vector<Tuple>& out_;
  };

  enum class StageKind { execute, tick, cleanup };

  void route(std::size_t src_component, Tuple tuple);
  std::size_t drain(common::Timestamp now);
  /// Run one bolt stage (all tasks of `node`), inline or on the pool.
  void run_bolt_stage(Node& node, StageKind kind, common::Timestamp now);
  /// Execute one task of the current stage (worker or stepping thread).
  void exec_task(Node& node, Task& task, StageKind kind, common::Timestamp now);
  /// Route every task's outbox in task-index order (the stage barrier's
  /// deterministic merge). Returns the tuples processed this stage.
  std::size_t merge_stage(std::size_t component);
  void claim_loop(Node& node, StageKind kind, common::Timestamp now,
                  std::uint64_t generation);
  void start_workers();
  void worker_loop();

  TopologySpec spec_;
  ExecutorConfig exec_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> topo_order_;
  std::uint64_t executed_ = 0;
  common::TraceRecorder* recorder_ = nullptr;

  // Stage profiler (ExecutorConfig::profile && profiler_available()).
  // prof_stage_start_ns_ is the wall-clock instant the current stage was
  // dispatched; each task's queue-wait is its start minus that instant.
  bool profile_ = false;
  common::Counter* prof_stage_dispatches_ = nullptr;
  common::Counter* prof_parallel_stages_ = nullptr;
  std::atomic<std::uint64_t> prof_stage_start_ns_{0};

  // Stage-synchronous worker pool (empty until the first parallel stage).
  // All coordination state is guarded by pool_mutex_; task claims go
  // through next_task_ under the same mutex, so a worker can never act on
  // a stale stage.
  std::vector<std::thread> pool_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // stepping thread waits for completion
  std::uint64_t generation_ = 0;
  Node* stage_node_ = nullptr;
  StageKind stage_kind_ = StageKind::execute;
  common::Timestamp stage_now_ = 0;
  std::size_t next_task_ = 0;
  std::size_t tasks_remaining_ = 0;
  bool stop_workers_ = false;
};

}  // namespace netalytics::stream
