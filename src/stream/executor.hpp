// Executor-agnostic interface over a TopologySpec. Two implementations
// share it: SteppedTopology (stage barriers, bit-identical determinism —
// stepped.hpp) and FreeRunningTopology (work-stealing run-to-completion,
// relaxed inter-key ordering — free_running.hpp). Both are driven by the
// same virtual-time loop: step()/run_until_idle() pump tuples, tick()
// fires windows and rankings, close() flushes. The engine picks one via
// make_executor(ExecutorConfig::mode); everything downstream of the
// factory call is mode-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

class TopologyExecutor {
 public:
  virtual ~TopologyExecutor() = default;

  /// One scheduling round: every spout task may emit up to
  /// `spout_budget_per_task` tuples, then emitted tuples are executed
  /// through the bolts. Returns the number of tuples executed. Both
  /// executors return quiescent — the stepped one drains in topological
  /// stage order, the free-running one lets its pool race ahead and then
  /// helps drain to in_flight == 0 — so every step boundary is a valid
  /// reconcile point.
  virtual std::size_t step(common::Timestamp now,
                           std::size_t spout_budget_per_task = 32) = 0;

  /// Step until the spouts report idle and the topology is quiescent, or
  /// until `max_rounds` is hit. Returns tuples executed. On return the
  /// topology is quiescent in both modes: no tuple is buffered or in
  /// flight, which is what makes engine.reconcile() exact at pump
  /// boundaries regardless of mode.
  virtual std::size_t run_until_idle(common::Timestamp now,
                                     std::size_t max_rounds = 4096) = 0;

  /// Deliver a tick to every bolt (rolling windows advance, rankings
  /// emit). Both executors order ticks per component over a quiescent
  /// topology, so windows fire exactly once with identical contents.
  virtual void tick(common::Timestamp now) = 0;

  /// cleanup() every bolt and drain final emissions.
  virtual void close(common::Timestamp now) = 0;

  virtual std::uint64_t tuples_executed() const noexcept = 0;
  virtual const TopologySpec& spec() const noexcept = 0;
  /// Total execution threads the executor may use (1 = inline).
  virtual std::size_t workers() const noexcept = 0;
  virtual ExecutorMode mode() const noexcept = 0;

  /// Publish per-component executed-tuple counters into `registry` as
  /// "<prefix>.<component>.executed". Bind before stepping.
  virtual void bind_metrics(common::MetricsRegistry& registry,
                            const std::string& prefix) = 0;

  /// Stamp a TraceStage::execute span for every executed tuple whose
  /// `Tuple::trace` is nonzero. Bind before stepping; pass nullptr to
  /// disable (the default).
  virtual void bind_trace(common::TraceRecorder* recorder) noexcept = 0;
};

/// True when this build can honor ExecutorConfig::profile — the stage
/// profiler publishes through registry counters, so a NETALYTICS_NO_METRICS
/// build compiles its increments away and the executors skip the clock
/// reads entirely.
constexpr bool profiler_available() noexcept {
#ifndef NETALYTICS_NO_METRICS
  return true;
#else
  return false;
#endif
}

/// Instantiate the executor `exec.mode` selects over `spec`.
std::unique_ptr<TopologyExecutor> make_executor(TopologySpec spec,
                                                ExecutorConfig exec = {});

}  // namespace netalytics::stream
