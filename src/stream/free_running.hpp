// Free-running topology executor: work-stealing, run-to-completion. Where
// SteppedTopology buys bit-identical determinism with stage barriers, this
// executor routes every emission immediately into bounded per-task MPMC
// inboxes and lets a worker pool drain whichever task has work — the
// Storm-style datapath the paper assumes (§2.2), with the stepped executor
// retained as the correctness oracle.
//
// What survives the relaxation (docs/DETERMINISM.md "relaxed mode",
// proven differentially in tests/core/free_running_differential_test.cpp):
//   - the multiset of delivered results (inter-key order is relaxed, but
//     every fields/global-grouped bolt still sees its whole key stream),
//   - per-key order: one task's emissions enter a downstream inbox in
//     emission order, because a task has at most one claimer at a time and
//     emissions are routed while the claim is held,
//   - tick/close semantics: both are quiescence points (in_flight_ == 0),
//     so windows and rankings fire exactly once over the same contents the
//     stepped executor would show them,
//   - metrics/trace/DropLedger accounting, and engine.reconcile() at pump
//     boundaries — step() returns quiescent, so nothing is silently in
//     flight.
//
// Deadlock freedom: a thread whose push finds a full inbox helps drain the
// destination task (if it can claim it) and retries. A claim holder only
// blocks pushing further downstream, and sinks never emit, so every chain
// of full inboxes bottoms out at a task whose claimer is making progress —
// induction on the (acyclic) topology depth.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/mpmc_queue.hpp"
#include "common/trace.hpp"
#include "stream/executor.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

class FreeRunningTopology final : public TopologyExecutor {
 public:
  /// Instantiates one spout/bolt per task from the spec's factories and
  /// starts `exec.workers - 1` pool threads (the driving thread is the
  /// remaining worker: it helps drain during step/quiesce).
  explicit FreeRunningTopology(TopologySpec spec, ExecutorConfig exec = {});
  ~FreeRunningTopology() override;

  FreeRunningTopology(const FreeRunningTopology&) = delete;
  FreeRunningTopology& operator=(const FreeRunningTopology&) = delete;

  /// Emit up to `spout_budget_per_task` tuples per spout task (spouts run
  /// sequentially on the driving thread: broker poll order is the data
  /// assignment), then drain to quiescence — pool workers execute
  /// concurrently with the spout emission and the drain. Returns tuples
  /// executed during the call.
  std::size_t step(common::Timestamp now,
                   std::size_t spout_budget_per_task = 32) override;

  std::size_t run_until_idle(common::Timestamp now,
                             std::size_t max_rounds = 4096) override;

  /// Quiesce, then tick each component in topological order, quiescing
  /// again after every component so downstream windows observe fresh
  /// upstream emissions — the same once-per-tick firing the stepped
  /// executor guarantees.
  void tick(common::Timestamp now) override;

  /// Quiesce, then close spouts / cleanup bolts in topological order with
  /// a quiescence point after every component.
  void close(common::Timestamp now) override;

  std::uint64_t tuples_executed() const noexcept override {
    return executed_total_.load(std::memory_order_relaxed);
  }
  const TopologySpec& spec() const noexcept override { return spec_; }
  std::size_t workers() const noexcept override { return exec_.workers; }
  ExecutorMode mode() const noexcept override {
    return ExecutorMode::free_running;
  }

  /// Publish per-component executed-tuple counters (and, with
  /// ExecutorConfig::profile, the "<prefix>.profiler.*" stage-profiler
  /// counters). Bind before stepping.
  void bind_metrics(common::MetricsRegistry& registry,
                    const std::string& prefix) override;
  void bind_trace(common::TraceRecorder* recorder) noexcept override {
    recorder_ = recorder;
  }

 private:
  /// One task: a spout/bolt instance plus its bounded inbox. `claimed` is
  /// the single-claimer gate — exchange(true, acquire) to claim,
  /// store(false, release) to hand it back, so claim hand-offs publish the
  /// bolt's state to the next claimer.
  struct Task {
    explicit Task(std::size_t inbox_capacity) : inbox(inbox_capacity) {}
    std::unique_ptr<Spout> spout;  // exactly one of spout/bolt set
    std::unique_ptr<Bolt> bolt;
    common::MpmcQueue<Tuple> inbox;
    std::atomic<bool> claimed{false};
    // Stage profiler: wall-clock instant the inbox last went empty ->
    // nonempty; the next chunk's start minus this is the queue-wait.
    std::atomic<std::uint64_t> pending_since_ns{0};
  };

  struct Edge {
    std::size_t dst = 0;  // component index
    GroupingType type = GroupingType::shuffle;
    std::vector<std::size_t> field_indices;
    std::atomic<std::size_t> rr_cursor{0};  // shuffle round-robin
  };

  // std::deque because Task and Edge hold non-movable members (queues,
  // atomics) — deque never relocates elements.
  /// Stage-profiler counters of one task (set by bind_metrics when
  /// ExecutorConfig::profile is on). Wall-clock values: excluded from the
  /// deterministic render contract (docs/DETERMINISM.md).
  struct TaskProf {
    common::Counter* tuples = nullptr;
    common::Counter* self_ns = nullptr;
    common::Counter* queue_wait_ns = nullptr;
  };

  struct Node {
    ComponentSpec spec;
    std::deque<Task> tasks;
    std::deque<Edge> out_edges;
    common::Counter* executed = nullptr;  // null until bind_metrics
    std::vector<TaskProf> prof;           // empty unless profiling
  };

  /// Routes immediately from whichever thread is executing — the
  /// free-running replacement for the stepped executor's OutboxCollector.
  class RouteCollector final : public Collector {
   public:
    RouteCollector(FreeRunningTopology& topo, std::size_t src)
        : topo_(topo), src_(src) {}
    void emit(Tuple tuple) override { topo_.route(src_, std::move(tuple)); }

   private:
    FreeRunningTopology& topo_;
    std::size_t src_;
  };

  static bool try_claim(Task& task) noexcept {
    return !task.claimed.exchange(true, std::memory_order_acquire);
  }
  static void release_claim(Task& task) noexcept {
    task.claimed.store(false, std::memory_order_release);
  }

  void route(std::size_t src_component, Tuple tuple);
  void enqueue(std::size_t dst_component, std::size_t task_index, Tuple tuple);
  /// Execute up to `limit` inbox tuples of a claimed task. Returns the
  /// number executed. Tasks are addressed by index (Node::tasks is a
  /// deque, so no pointer arithmetic) — the profiler keys off it.
  std::size_t execute_chunk(std::size_t component, std::size_t task_index,
                            std::size_t limit);
  /// One work-finding pass over every bolt task (claim, run to completion,
  /// release). Returns the number of tuples executed.
  std::size_t run_pass();
  /// Drive (and help) until in_flight_ hits zero.
  void quiesce();
  void wake_workers();
  void worker_loop();

  TopologySpec spec_;
  ExecutorConfig exec_;
  std::deque<Node> nodes_;
  std::vector<std::size_t> topo_order_;
  common::TraceRecorder* recorder_ = nullptr;

  /// Tuples enqueued but not yet executed. Incremented before the inbox
  /// push; decremented only after the bolt's execute() returns, so a
  /// parent tuple stays counted until its children are — zero therefore
  /// means the whole topology is quiescent, not just that inboxes look
  /// empty.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> executed_total_{0};
  std::atomic<common::Timestamp> now_{0};  // worker-side trace stamps

  // Worker parking: an eventcount. Workers snapshot wake_seq_ before
  // scanning for work and park only if the sequence is unchanged when they
  // get the mutex; every enqueue bumps the sequence, so a push that lands
  // after a failed scan flips the predicate before the scanner can sleep.
  // The bounded wait_for is a belt-and-braces liveness net, and the
  // driving thread never parks (quiesce() spins/helps), so forward
  // progress never depends on a wakeup.
  std::vector<std::thread> pool_;
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> wake_seq_{0};
  std::atomic<std::size_t> idle_workers_{0};
  std::atomic<bool> stop_{false};

  // Stage profiler (ExecutorConfig::profile && profiler_available()).
  // Pool counters are atomic pointers because workers run (and may park)
  // from construction, before bind_metrics installs the counters.
  bool profile_ = false;
  std::atomic<common::Counter*> prof_claims_{nullptr};
  std::atomic<common::Counter*> prof_helps_{nullptr};
  std::atomic<common::Counter*> prof_parks_{nullptr};
};

}  // namespace netalytics::stream
