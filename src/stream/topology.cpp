#include "stream/topology.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace netalytics::stream {

const ComponentSpec* TopologySpec::find(const std::string& component) const noexcept {
  for (const auto& c : components) {
    if (c.name == component) return &c;
  }
  return nullptr;
}

TopologyBuilder::TopologyBuilder(std::string name) { spec_.name = std::move(name); }

void TopologyBuilder::set_spout(const std::string& name, SpoutFactory factory,
                                Fields output_fields, std::size_t parallelism) {
  ComponentSpec c;
  c.name = name;
  c.parallelism = parallelism == 0 ? 1 : parallelism;
  c.output_fields = std::move(output_fields);
  c.spout_factory = std::move(factory);
  spec_.components.push_back(std::move(c));
}

TopologyBuilder::BoltHandle TopologyBuilder::set_bolt(const std::string& name,
                                                      BoltFactory factory,
                                                      Fields output_fields,
                                                      std::size_t parallelism) {
  ComponentSpec c;
  c.name = name;
  c.parallelism = parallelism == 0 ? 1 : parallelism;
  c.output_fields = std::move(output_fields);
  c.bolt_factory = std::move(factory);
  spec_.components.push_back(std::move(c));
  return BoltHandle(*this, spec_.components.size() - 1);
}

TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::shuffle_grouping(
    const std::string& source) {
  builder_.spec_.components[index_].subscriptions.push_back(
      {source, {GroupingType::shuffle, {}}});
  return *this;
}

TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::fields_grouping(
    const std::string& source, Fields fields) {
  builder_.spec_.components[index_].subscriptions.push_back(
      {source, {GroupingType::fields, std::move(fields)}});
  return *this;
}

TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::global_grouping(
    const std::string& source) {
  builder_.spec_.components[index_].subscriptions.push_back(
      {source, {GroupingType::global, {}}});
  return *this;
}

TopologyBuilder::BoltHandle& TopologyBuilder::BoltHandle::all_grouping(
    const std::string& source) {
  builder_.spec_.components[index_].subscriptions.push_back(
      {source, {GroupingType::all, {}}});
  return *this;
}

TopologySpec TopologyBuilder::build() {
  std::set<std::string> names;
  for (const auto& c : spec_.components) {
    if (!names.insert(c.name).second) {
      throw std::invalid_argument("topology: duplicate component '" + c.name + "'");
    }
    if (c.is_spout() == static_cast<bool>(c.bolt_factory)) {
      throw std::invalid_argument("topology: component '" + c.name +
                                  "' must be exactly one of spout/bolt");
    }
    if (c.is_spout() && !c.subscriptions.empty()) {
      throw std::invalid_argument("topology: spout '" + c.name +
                                  "' cannot subscribe to streams");
    }
  }

  for (const auto& c : spec_.components) {
    if (!c.is_spout() && c.subscriptions.empty()) {
      throw std::invalid_argument("topology: bolt '" + c.name +
                                  "' has no input stream");
    }
    for (const auto& sub : c.subscriptions) {
      const ComponentSpec* src = spec_.find(sub.source);
      if (src == nullptr) {
        throw std::invalid_argument("topology: '" + c.name +
                                    "' subscribes to unknown component '" +
                                    sub.source + "'");
      }
      if (sub.grouping.type == GroupingType::fields) {
        if (sub.grouping.fields.empty()) {
          throw std::invalid_argument("topology: fields grouping on '" + c.name +
                                      "' declares no fields");
        }
        for (const auto& f : sub.grouping.fields) {
          if (std::find(src->output_fields.begin(), src->output_fields.end(), f) ==
              src->output_fields.end()) {
            throw std::invalid_argument("topology: grouping field '" + f +
                                        "' not in output of '" + sub.source + "'");
          }
        }
      }
    }
  }

  // Cycle check: Kahn's algorithm over subscription edges.
  std::map<std::string, std::size_t> in_degree;
  std::map<std::string, std::vector<std::string>> downstream;
  for (const auto& c : spec_.components) in_degree[c.name] = 0;
  for (const auto& c : spec_.components) {
    for (const auto& sub : c.subscriptions) {
      downstream[sub.source].push_back(c.name);
      ++in_degree[c.name];
    }
  }
  std::vector<std::string> frontier;
  for (const auto& [name, deg] : in_degree) {
    if (deg == 0) frontier.push_back(name);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::string node = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const auto& next : downstream[node]) {
      if (--in_degree[next] == 0) frontier.push_back(next);
    }
  }
  if (visited != spec_.components.size()) {
    throw std::invalid_argument("topology: subscription graph has a cycle");
  }

  return spec_;
}

}  // namespace netalytics::stream
