// Topology model (§2.2, §3.2): "Storm conceptualizes its workflow as a
// directed acyclic graph wherein one processor emits data to other
// processors in the graph... a graph is a 'topology' whose root nodes, or
// 'spouts', feed other nodes, or 'bolts'". Components declare output
// fields; edges carry a grouping (shuffle / fields / global / all) that
// determines which task of the consumer receives each tuple.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "stream/tuple.hpp"

namespace netalytics::stream {

/// Passed to components so they can emit downstream.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void emit(Tuple tuple) = 0;
};

/// A data source. next_tuple() returns false when nothing is available
/// right now (the executor will retry later). `now` is the executor's
/// current time (virtual in SteppedTopology, wall in LocalCluster) so
/// sources can measure residency of the data they pull.
class Spout {
 public:
  virtual ~Spout() = default;
  virtual void open() {}
  virtual bool next_tuple(Collector& out, common::Timestamp now) = 0;
  virtual void close(Collector& /*out*/) {}
};

/// A processing node.
class Bolt {
 public:
  virtual ~Bolt() = default;
  virtual void prepare() {}
  virtual void execute(const Tuple& input, Collector& out) = 0;
  /// Periodic tick (rolling windows, ranking emission). Storm models this
  /// with tick tuples; here it is an explicit callback.
  virtual void tick(common::Timestamp /*now*/, Collector& /*out*/) {}
  /// Final flush when the topology shuts down.
  virtual void cleanup(common::Timestamp /*now*/, Collector& /*out*/) {}
};

/// How an edge picks the consumer task for each tuple (Storm's groupings):
/// `shuffle` round-robins, `fields` hashes a subset of the values so equal
/// keys always land on the same task, `global` pins everything to task 0,
/// `all` broadcasts a copy to every task.
enum class GroupingType { shuffle, fields, global, all };

struct Grouping {
  GroupingType type = GroupingType::shuffle;
  Fields fields{};  // for GroupingType::fields: names in the source's schema
};

/// Which executor make_executor() builds over a TopologySpec.
/// `stepped` (default): stage barriers, bit-identical results at any worker
/// count. `free_running`: work-stealing run-to-completion over per-task
/// MPMC inboxes — relaxed inter-key ordering, but the multiset of results,
/// per-key order for fields groupings, and reconcile/ledger accounting are
/// preserved (docs/DETERMINISM.md "relaxed mode", proven in
/// tests/core/free_running_differential_test.cpp).
enum class ExecutorMode { stepped, free_running };

const char* to_string(ExecutorMode mode) noexcept;

/// Execution-resource configuration for a topology executor. `workers` is
/// the total number of threads a scheduling round may use — the stepping
/// thread plus `workers - 1` pool threads. 1 (the default) runs everything
/// inline on the stepping thread; in stepped mode any value produces
/// bit-identical results (see docs/DETERMINISM.md for the contract and
/// tests/core/parallel_executor_differential_test.cpp for the proof).
/// `inbox_capacity` bounds each free-running task inbox (backpressure);
/// ignored by the stepped executor, whose inboxes are unbounded deques.
/// `profile` turns on the executor stage profiler: per-task wall-clock
/// self-time / queue-wait / pool-event counters published into the bound
/// registry under "<prefix>.profiler." (see docs/OBSERVABILITY.md). Off by
/// default because wall-clock values are not part of the deterministic
/// render contract; ignored when built with NETALYTICS_NO_METRICS.
struct ExecutorConfig {
  std::size_t workers = 1;
  ExecutorMode mode = ExecutorMode::stepped;
  std::size_t inbox_capacity = 4096;
  bool profile = false;
};

/// Factories, not instances: every task of a component gets its own
/// spout/bolt object, which is what lets tasks run concurrently without
/// sharing mutable state (the per-task isolation the parallel executor
/// relies on — docs/DETERMINISM.md).
using SpoutFactory = std::function<std::unique_ptr<Spout>()>;
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;

/// One incoming edge of a bolt: which component it consumes and how tuples
/// are distributed over this bolt's tasks.
struct Subscription {
  std::string source;
  Grouping grouping;
};

/// One node of the DAG: a named spout or bolt, its task count, the output
/// schema its tuples follow, and the edges it consumes.
struct ComponentSpec {
  std::string name;
  std::size_t parallelism = 1;
  Fields output_fields;
  SpoutFactory spout_factory;  // exactly one of spout/bolt factory is set
  BoltFactory bolt_factory;
  std::vector<Subscription> subscriptions;  // empty for spouts

  bool is_spout() const noexcept { return static_cast<bool>(spout_factory); }
};

/// A validated, executor-agnostic topology: both SteppedTopology and
/// LocalCluster instantiate their tasks from the same spec.
struct TopologySpec {
  std::string name;
  std::vector<ComponentSpec> components;

  const ComponentSpec* find(const std::string& component) const noexcept;
};

/// Fluent builder mirroring Storm's TopologyBuilder.
class TopologyBuilder {
 public:
  explicit TopologyBuilder(std::string name);

  class BoltHandle {
   public:
    BoltHandle& shuffle_grouping(const std::string& source);
    BoltHandle& fields_grouping(const std::string& source, Fields fields);
    BoltHandle& global_grouping(const std::string& source);
    BoltHandle& all_grouping(const std::string& source);

   private:
    friend class TopologyBuilder;
    BoltHandle(TopologyBuilder& builder, std::size_t index)
        : builder_(builder), index_(index) {}
    TopologyBuilder& builder_;
    std::size_t index_;
  };

  void set_spout(const std::string& name, SpoutFactory factory, Fields output_fields,
                 std::size_t parallelism = 1);
  BoltHandle set_bolt(const std::string& name, BoltFactory factory,
                      Fields output_fields, std::size_t parallelism = 1);

  /// Validate wiring (unique names, known sources, grouping fields exist,
  /// acyclic) and return the spec. Throws std::invalid_argument on errors.
  TopologySpec build();

 private:
  TopologySpec spec_;
};

}  // namespace netalytics::stream
