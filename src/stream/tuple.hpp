// Tuples flowing through the stream engine. Mirrors Storm's model: a tuple
// is a list of dynamically-typed values whose names are declared by the
// emitting component ("declare output fields"); fields groupings hash a
// subset of the values to pick the consumer task.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::stream {

using Value = std::variant<std::int64_t, std::uint64_t, double, std::string>;

/// Declared names for a component's output values, in position order.
using Fields = std::vector<std::string>;

struct Tuple {
  std::vector<Value> values;
  /// Provenance: nonzero when this tuple descends from a trace-sampled
  /// packet. Bolts deriving a tuple from inputs copy the id forward; 0 (the
  /// usual case — tracing samples 1/N) means untraced.
  std::uint64_t trace = 0;

  const Value& at(std::size_t i) const { return values.at(i); }
  std::size_t size() const noexcept { return values.size(); }

  bool operator==(const Tuple&) const = default;
};

/// Stable hash of one value (for fields grouping and key aggregation).
std::uint64_t hash_value(const Value& v) noexcept;

/// Hash of the values at `indices`.
std::uint64_t hash_fields(const Tuple& t, const std::vector<std::size_t>& indices);

/// Human-readable rendering, e.g. (42, "url", 2.5).
std::string format_tuple(const Tuple& t);

/// Render a single value as text (keys, table cells).
std::string format_value(const Value& v);

// Typed accessors; throw std::bad_variant_access on type mismatch.
inline std::int64_t as_i64(const Value& v) { return std::get<std::int64_t>(v); }
inline std::uint64_t as_u64(const Value& v) { return std::get<std::uint64_t>(v); }
inline double as_f64(const Value& v) { return std::get<double>(v); }
inline const std::string& as_str(const Value& v) { return std::get<std::string>(v); }

/// Numeric coercion for aggregation blocks (sum/avg/max/min work on any
/// numeric value); throws std::invalid_argument for strings.
double as_number(const Value& v);

}  // namespace netalytics::stream
