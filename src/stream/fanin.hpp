// Fan-in primitives for multi-stream merge (the federation parent's global
// topology stage, docs/FEDERATION.md): N indexed sub-streams — one per
// child engine — feed a single downstream consumer. Determinism rule:
// whenever per-source state is folded into a global view, sources are
// visited in source-index order, extending the executor contract
// (docs/DETERMINISM.md) across node boundaries.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "stream/topology.hpp"
#include "stream/window.hpp"

namespace netalytics::stream {

/// Global top-k over N per-source key counters (the fan-in counterpart of
/// the Fig.-4 rankings bolts): add() charges a key under one source;
/// global() folds the per-source totals — iterating sources in index
/// order — and returns the k largest summed (key, count) pairs. Unlike
/// Rankings::merge (an upsert of one owner's latest totals), the fold
/// *sums* across sources, because distinct children count the same key
/// independently.
class FanInTopK {
 public:
  FanInTopK(std::size_t sources, std::size_t k);

  void add(std::size_t source, const std::string& key, std::uint64_t by = 1);

  /// Per-source totals (exact, not truncated to k).
  const std::map<std::string, std::uint64_t>& local(std::size_t source) const;

  /// Global top-k over the summed totals.
  Rankings global() const;

  /// Deterministic "rank key count" table of global(), one row per line.
  std::string render() const;

  std::size_t sources() const noexcept { return counts_.size(); }
  std::uint64_t total_updates() const noexcept { return updates_; }

 private:
  std::vector<std::map<std::string, std::uint64_t>> counts_;
  std::size_t k_;
  std::uint64_t updates_ = 0;
};

/// A Spout over N externally-fed queues, drained in source-index order: the
/// bridge between a fan-in receiver (the federation parent) and a stream
/// topology. push() enqueues a tuple under its source; next_tuple() emits
/// the head of the lowest-indexed non-empty queue, so the tuple order seen
/// downstream is a pure function of queue contents — independent of the
/// interleaving in which sources were fed between polls.
class FanInSpout final : public Spout {
 public:
  explicit FanInSpout(std::size_t sources);

  void push(std::size_t source, Tuple tuple);

  bool next_tuple(Collector& out, common::Timestamp now) override;

  std::size_t buffered() const noexcept;

 private:
  std::vector<std::deque<Tuple>> queues_;
};

}  // namespace netalytics::stream
