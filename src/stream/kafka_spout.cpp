#include "stream/kafka_spout.hpp"

#include "common/byte_io.hpp"

namespace netalytics::stream {

KafkaSpout::KafkaSpout(mq::Cluster& cluster, std::string group, std::string topic,
                       std::size_t poll_batch, common::FaultPlan* faults)
    : consumer_(cluster, std::move(group)),
      topic_(std::move(topic)),
      poll_batch_(poll_batch == 0 ? 1 : poll_batch),
      faults_(faults) {}

bool KafkaSpout::next_tuple(Collector& out) {
  if (buffer_.empty()) {
    if (faults_ != nullptr && faults_->should_fail(kFaultSpoutPoll)) {
      // Transient fetch failure: nothing is consumed, offsets are
      // untouched, the broker keeps the data for the next poll.
      ++poll_failures_;
      return false;
    }
    auto batch = consumer_.poll(topic_, poll_batch_);
    for (auto& m : batch) buffer_.push_back(std::move(m));
  }
  if (buffer_.empty()) return false;

  const mq::Message& msg = buffer_.front();
  out.emit(Tuple{{std::string(common::as_string_view(msg.payload))}});
  buffer_.pop_front();
  ++emitted_;
  return true;
}

}  // namespace netalytics::stream
