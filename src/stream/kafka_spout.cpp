#include "stream/kafka_spout.hpp"

#include "common/byte_io.hpp"

namespace netalytics::stream {

KafkaSpout::KafkaSpout(mq::Cluster& cluster, std::string group, std::string topic,
                       std::size_t poll_batch, common::FaultPlan* faults,
                       bool join_group, std::size_t task)
    : cluster_(cluster),
      consumer_(cluster, std::move(group), join_group),
      topic_(std::move(topic)),
      task_(task),
      poll_batch_(poll_batch == 0 ? 1 : poll_batch),
      faults_(faults) {
  owned_metrics_ = std::make_unique<common::MetricsRegistry>();
  bind_metrics(*owned_metrics_, "stream.spout");
}

void KafkaSpout::bind_metrics(common::MetricsRegistry& registry,
                              const std::string& prefix,
                              common::StageTracer* tracer,
                              common::TraceRecorder* recorder,
                              common::DropLedger* ledger) {
  emitted_ = &registry.counter(prefix + ".emitted");
  poll_failures_ = &registry.counter(prefix + ".poll_failures");
  lag_ = &registry.gauge(prefix + ".lag");
  // Absolute gauge, so every task of a spout group needs its own (the
  // shared counters above accumulate correctly across tasks; a shared
  // gauge would let one task's set() hide another's buffered backlog and
  // break engine.reconcile()).
  buffered_records_ = &registry.gauge(prefix + ".task" + std::to_string(task_) +
                                      ".buffered_records");
  tracer_ = tracer;
  recorder_ = recorder;
  ledger_ = ledger;
  if (&registry != owned_metrics_.get()) owned_metrics_.reset();
}

bool KafkaSpout::next_tuple(Collector& out, common::Timestamp now) {
  if (buffer_.empty()) {
    if (faults_ != nullptr && faults_->should_fail(kFaultSpoutPoll)) {
      // Transient fetch failure: nothing is consumed, offsets are
      // untouched, the broker keeps the data for the next poll.
      poll_failures_->inc();
      if (ledger_ != nullptr) {
        ledger_->add(common::DropCause::consume_poll_failure);
      }
      return false;
    }
    auto batch = consumer_.poll_batch(topic_, poll_batch_);
    for (auto& r : batch.records) {
      buffered_records_value_ += r.records;
      buffer_.push_back(std::move(r));
    }
    buffered_records_->set(static_cast<std::int64_t>(buffered_records_value_));
    // Consumer lag after the fetch: what the brokers still hold for this
    // topic beyond what we just pulled (retention-based depth).
    lag_->set(static_cast<std::int64_t>(cluster_.depth(topic_)));
  }
  if (buffer_.empty()) return false;

  const mq::FetchedRecord& msg = buffer_.front();
  if (tracer_ != nullptr) {
    tracer_->stamp(common::StageTracer::Stage::consume, now, msg.append_ts);
  }
  if (recorder_ != nullptr) {
    for (const std::uint64_t trace : msg.traces) {
      recorder_->stamp(trace, common::TraceStage::consume, msg.append_ts, now);
    }
  }
  out.emit(Tuple{{std::string(common::as_string_view(msg.payload))}});
  buffered_records_value_ -= msg.records;
  buffered_records_->set(static_cast<std::int64_t>(buffered_records_value_));
  buffer_.pop_front();
  emitted_->inc();
  return true;
}

}  // namespace netalytics::stream
