// Named processors: the PROCESS clause of a NetAlytics query names one of
// these and the compiler instantiates the corresponding topology over the
// aggregation layer (§3.3-3.4). "NetAlytics provides topologies for several
// common processing tasks, and we name the topology by connecting a set of
// blocks' names" (§3.2) — e.g. diff-group takes two streams and calculates
// their difference value, then groups the results by some attribute.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "mq/cluster.hpp"
#include "stream/bolts.hpp"
#include "stream/kvstore.hpp"
#include "stream/topk.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

/// Key=value arguments from the PROCESS clause, e.g. (top-k: k=10, w=10s).
struct ProcessorParams {
  std::map<std::string, std::string> args;

  std::string get(const std::string& key, const std::string& fallback) const;
  /// Parses integers and duration-suffixed values ("10" or "10s").
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
};

/// Everything a processor needs from its environment.
struct ProcessorContext {
  mq::Cluster* cluster = nullptr;  // aggregation layer (required)
  std::string consumer_group = "netalytics";
  std::vector<std::string> topics;  // parser topics, in PARSE order
  /// Final results land here (required). The engine's sink also feeds
  /// windowed emissions (top-k, group-*) into its time-series store as
  /// per-tick "q<id>.result.proc<i>.<key>" gauge series.
  SinkBolt::Callback result_sink;
  /// Optional automation hooks (top-k only).
  KvStore* kvstore = nullptr;
  UpdaterConfig updater_config{};
  UpdaterBolt::ScaleCallback on_scale_up;
  UpdaterBolt::ScaleCallback on_scale_down;
  /// Parallelism for the scalable stages (parse/count/rank).
  std::size_t parallelism = 1;
  /// Spout tasks per source: all tasks of one source share a consumer
  /// group and split the topic's partitions via the cluster's
  /// GroupCoordinator (mq/group.hpp) instead of each draining every
  /// broker. 1 (default) keeps a single member that owns everything.
  std::size_t spout_group_size = 1;
  /// Chaos plan handed to every KafkaSpout (null = no injection).
  common::FaultPlan* fault_plan = nullptr;
  /// Observability: when `metrics` is set, spouts and windowed bolts publish
  /// into it under "<metrics_prefix>.<component>...", and spouts stamp the
  /// consume stage on `tracer` (both optional).
  common::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "stream";
  common::StageTracer* tracer = nullptr;
  /// Trace provenance: spouts stamp per-trace consume spans on `recorder`;
  /// spouts and stateful bolts attribute discards to `ledger` (both
  /// optional).
  common::TraceRecorder* trace_recorder = nullptr;
  common::DropLedger* drop_ledger = nullptr;
};

/// Tuple schema the parsing bolt produces for a parser topic
/// (["id","ts", <record fields...>]); empty Fields for unknown topics.
Fields record_schema(const std::string& topic);

/// True if `name` names a processor this library provides.
bool is_known_processor(const std::string& name);
std::vector<std::string> processor_names();

/// Build the topology for processor `name`. Errors (unknown processor,
/// missing topics, bad params) are returned, not thrown — queries are user
/// input.
common::Expected<TopologySpec> build_processor(const std::string& name,
                                               const ProcessorParams& params,
                                               const ProcessorContext& ctx);

}  // namespace netalytics::stream
