#include "stream/window.hpp"

#include <algorithm>
#include <stdexcept>

namespace netalytics::stream {

RollingCounter::RollingCounter(std::size_t slots) : slots_(slots) {
  if (slots == 0) throw std::invalid_argument("RollingCounter: slots must be > 0");
}

void RollingCounter::incr(const std::string& key, std::uint64_t by) {
  auto it = counts_.find(key);
  if (it == counts_.end()) {
    it = counts_.emplace(key, std::vector<std::uint64_t>(slots_, 0)).first;
  }
  it->second[head_] += by;
}

std::map<std::string, std::uint64_t> RollingCounter::totals() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, slots] : counts_) {
    std::uint64_t total = 0;
    for (const auto v : slots) total += v;
    if (total > 0) out.emplace(key, total);
  }
  return out;
}

void RollingCounter::advance() {
  head_ = (head_ + 1) % slots_;
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second[head_] = 0;
    const bool all_zero =
        std::all_of(it->second.begin(), it->second.end(),
                    [](std::uint64_t v) { return v == 0; });
    it = all_zero ? counts_.erase(it) : std::next(it);
  }
}

Rankings::Rankings(std::size_t k) : k_(k == 0 ? 1 : k) {}

void Rankings::update(const std::string& key, std::uint64_t count) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.key == key; });
  if (it != entries_.end()) {
    it->count = count;
  } else {
    entries_.push_back({key, count});
  }
  sort_and_trim();
}

void Rankings::merge(const Rankings& other) {
  for (const auto& e : other.entries_) update(e.key, e.count);
}

void Rankings::sort_and_trim() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.key < b.key;  // deterministic tie-break
                   });
  if (entries_.size() > k_) entries_.resize(k_);
}

}  // namespace netalytics::stream
