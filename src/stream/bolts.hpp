// The composable analytic building blocks of Table 2 (top-k, max/min, sum,
// avg, diff, group) plus the plumbing bolts (parsing, filter, sink) that
// processors are assembled from. "System administrators can easily create
// more by combining the building blocks within these topologies in new
// ways" (§3.2).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "stream/topology.hpp"

namespace netalytics::stream {

/// Terminal bolt: forwards every input tuple to a callback (the query's
/// result interface).
class SinkBolt final : public Bolt {
 public:
  using Callback = std::function<void(const Tuple&)>;
  explicit SinkBolt(Callback callback) : callback_(std::move(callback)) {}
  void execute(const Tuple& input, Collector&) override { callback_(input); }

 private:
  Callback callback_;
};

/// Deserializes record batches (one tuple per mq message payload, emitted
/// by the Kafka spout) into one tuple per record:
/// [id:u64, ts:u64, <record fields...>].
class ParsingBolt final : public Bolt {
 public:
  void execute(const Tuple& input, Collector& out) override;
};

/// Drops tuples failing a predicate.
class FilterBolt final : public Bolt {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  explicit FilterBolt(Predicate pred) : pred_(std::move(pred)) {}
  void execute(const Tuple& input, Collector& out) override {
    if (pred_(input)) out.emit(input);
  }

 private:
  Predicate pred_;
};

/// Table 2 "diff": joins a start event and an end event sharing an id and
/// emits their timestamp difference. Input layout is the parsing-bolt
/// record layout; the event discriminator field says which side a tuple is.
struct DiffConfig {
  std::size_t id_index = 0;
  std::size_t ts_index = 1;
  std::size_t event_index = 2;
  std::string start_token = "start";
  std::string end_token = "end";
  /// Input value indices copied into the output after [id, diff_ns].
  std::vector<std::size_t> passthrough;
  std::size_t max_pending = 1 << 20;  // unmatched starts kept at most
};

class DiffBolt final : public Bolt {
 public:
  explicit DiffBolt(DiffConfig config) : config_(std::move(config)) {}
  /// Output: [id:u64, diff_ns:u64, passthrough... (from the start tuple)].
  void execute(const Tuple& input, Collector& out) override;

  std::size_t pending() const noexcept { return pending_.size(); }

  /// Account shed pending state (stream_window_eviction) in `ledger`.
  void set_drop_ledger(common::DropLedger* ledger) noexcept { ledger_ = ledger; }

 private:
  DiffConfig config_;
  std::unordered_map<std::uint64_t, Tuple> pending_;
  common::DropLedger* ledger_ = nullptr;
};

/// Appends a constant string to every tuple — used to mark which upstream
/// component a tuple came from when downstream bolts (join) must tell
/// sides apart (Storm exposes the source component on the tuple itself;
/// here the tag makes it explicit data).
class TagBolt final : public Bolt {
 public:
  explicit TagBolt(std::string tag) : tag_(std::move(tag)) {}
  void execute(const Tuple& input, Collector& out) override {
    Tuple tagged = input;
    tagged.values.emplace_back(tag_);
    out.emit(std::move(tagged));
  }

 private:
  std::string tag_;
};

/// Joins two streams by a shared u64 id (the record id both parsers derive
/// from the flow). Used by queries that combine parsers, e.g. grouping TCP
/// connection times by the HTTP page requested (§7.2). Emits
/// [id, left passthrough..., right passthrough...] once both sides arrive.
struct JoinConfig {
  std::size_t left_id_index = 0;
  std::size_t right_id_index = 0;
  std::vector<std::size_t> left_passthrough;
  std::vector<std::size_t> right_passthrough;
  /// Side detection. Default: a tuple is "left" when it has `left_arity`
  /// values (works when the two record layouts differ in width). With
  /// `by_tag`, the tuple's last value is a TagBolt marker compared against
  /// `left_tag` and stripped before the join (works always).
  std::size_t left_arity = 0;
  bool by_tag = false;
  std::string left_tag = "L";
  std::size_t max_pending = 1 << 20;
};

class JoinByIdBolt final : public Bolt {
 public:
  explicit JoinByIdBolt(JoinConfig config) : config_(std::move(config)) {}
  void execute(const Tuple& input, Collector& out) override;

  std::size_t pending() const noexcept {
    return pending_left_.size() + pending_right_.size();
  }

  /// Account shed pending state (stream_window_eviction) in `ledger`.
  void set_drop_ledger(common::DropLedger* ledger) noexcept { ledger_ = ledger; }

 private:
  void try_join(std::uint64_t id, Collector& out);

  JoinConfig config_;
  std::unordered_map<std::uint64_t, Tuple> pending_left_;
  std::unordered_map<std::uint64_t, Tuple> pending_right_;
  common::DropLedger* ledger_ = nullptr;
};

enum class AggOp { sum, avg, max, min, count };

/// Table 2 "group" + an aggregate: groups tuples by one or more value
/// indices and aggregates a numeric value index; emits per-group rows on
/// tick and cleanup: [group fields..., aggregate:f64, samples:u64].
struct GroupAggConfig {
  std::vector<std::size_t> group_indices;
  std::size_t value_index = 0;  // ignored for AggOp::count
  AggOp op = AggOp::avg;
  bool emit_on_tick = true;  // false: only emit at cleanup (final table)
  bool reset_after_emit = false;
};

class GroupAggBolt final : public Bolt {
 public:
  explicit GroupAggBolt(GroupAggConfig config) : config_(std::move(config)) {}

  void execute(const Tuple& input, Collector& out) override;
  void tick(common::Timestamp now, Collector& out) override;
  void cleanup(common::Timestamp now, Collector& out) override;

  /// Window-size gauge shared across parallel tasks: each task reports its
  /// group-count delta, so the gauge holds the total tracked groups.
  void set_window_gauge(common::Gauge* gauge) noexcept { window_gauge_ = gauge; }

 private:
  struct Agg {
    std::vector<Value> group_values;
    double sum = 0;
    double max = 0;
    double min = 0;
    std::uint64_t count = 0;
    // Max sampled trace id among the group's contributors: commutative, so
    // trace continuation is independent of arrival interleaving.
    std::uint64_t trace = 0;
  };
  void emit_groups(Collector& out);
  void report_window();

  GroupAggConfig config_;
  std::map<std::string, Agg> groups_;
  common::Gauge* window_gauge_ = nullptr;
  std::int64_t last_window_ = 0;
};

}  // namespace netalytics::stream
