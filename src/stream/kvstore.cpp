#include "stream/kvstore.hpp"

namespace netalytics::stream {

void KvStore::set(const std::string& key, std::string value) {
  std::lock_guard lock(mutex_);
  strings_[key] = std::move(value);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::erase(const std::string& key) {
  std::lock_guard lock(mutex_);
  return strings_.erase(key) > 0;
}

void KvStore::hset(const std::string& key, const std::string& field,
                   std::string value) {
  std::lock_guard lock(mutex_);
  hashes_[key][field] = std::move(value);
}

std::optional<std::string> KvStore::hget(const std::string& key,
                                         const std::string& field) const {
  std::lock_guard lock(mutex_);
  const auto it = hashes_.find(key);
  if (it == hashes_.end()) return std::nullopt;
  const auto fit = it->second.find(field);
  if (fit == it->second.end()) return std::nullopt;
  return fit->second;
}

std::map<std::string, std::string> KvStore::hgetall(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = hashes_.find(key);
  if (it == hashes_.end()) return {};
  return it->second;
}

void KvStore::rpush(const std::string& key, std::string value) {
  std::lock_guard lock(mutex_);
  lists_[key].push_back(std::move(value));
}

std::vector<std::string> KvStore::lrange(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = lists_.find(key);
  if (it == lists_.end()) return {};
  return it->second;
}

void KvStore::del_list(const std::string& key) {
  std::lock_guard lock(mutex_);
  lists_.erase(key);
}

std::size_t KvStore::size() const {
  std::lock_guard lock(mutex_);
  return strings_.size() + hashes_.size() + lists_.size();
}

}  // namespace netalytics::stream
