// Rolling-window primitives for the counting/ranking bolts, after the
// storm-starter "Rolling Top Words" lineage the paper's top-k topology
// extends (§5.3): a slot-based counter tracks per-key counts over the last
// N window slots, and Rankings keeps the k largest (key, count) pairs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace netalytics::stream {

/// Per-key counter over a circular window of slots. Advancing the window
/// zeroes the oldest slot, so totals always cover the last `slots` windows.
class RollingCounter {
 public:
  explicit RollingCounter(std::size_t slots);

  void incr(const std::string& key, std::uint64_t by = 1);

  /// Totals over the whole window.
  std::map<std::string, std::uint64_t> totals() const;

  /// Advance to the next slot, zeroing what it previously held and dropping
  /// keys whose total became zero.
  void advance();

  std::size_t slots() const noexcept { return slots_; }
  std::size_t key_count() const noexcept { return counts_.size(); }

 private:
  std::size_t slots_;
  std::size_t head_ = 0;
  std::map<std::string, std::vector<std::uint64_t>> counts_;
};

/// Top-k rankings by count, descending. update() is an upsert with the
/// key's latest total (not an increment).
class Rankings {
 public:
  explicit Rankings(std::size_t k);

  void update(const std::string& key, std::uint64_t count);
  void merge(const Rankings& other);

  struct Entry {
    std::string key;
    std::uint64_t count = 0;
    bool operator==(const Entry&) const = default;
  };

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  std::size_t max_size() const noexcept { return k_; }

 private:
  void sort_and_trim();

  std::size_t k_;
  std::vector<Entry> entries_;
};

}  // namespace netalytics::stream
