// In-memory key-value store — the Redis substitute of §7.3. The top-k
// database bolt writes here and the dynamic proxy reads its pool
// configuration from here, closing the automation loop. Thread-safe.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace netalytics::stream {

class KvStore {
 public:
  void set(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  bool erase(const std::string& key);

  /// Redis-style hash operations.
  void hset(const std::string& key, const std::string& field, std::string value);
  std::optional<std::string> hget(const std::string& key,
                                  const std::string& field) const;
  std::map<std::string, std::string> hgetall(const std::string& key) const;

  /// Redis-style list append / full read (used for server pools).
  void rpush(const std::string& key, std::string value);
  std::vector<std::string> lrange(const std::string& key) const;
  void del_list(const std::string& key);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::map<std::string, std::string>> hashes_;
  std::map<std::string, std::vector<std::string>> lists_;
};

}  // namespace netalytics::stream
