#include "stream/executor.hpp"

#include "stream/free_running.hpp"
#include "stream/stepped.hpp"

namespace netalytics::stream {

const char* to_string(ExecutorMode mode) noexcept {
  switch (mode) {
    case ExecutorMode::stepped:
      return "stepped";
    case ExecutorMode::free_running:
      return "free_running";
  }
  return "unknown";
}

std::unique_ptr<TopologyExecutor> make_executor(TopologySpec spec,
                                                ExecutorConfig exec) {
  if (exec.mode == ExecutorMode::free_running) {
    return std::make_unique<FreeRunningTopology>(std::move(spec), exec);
  }
  return std::make_unique<SteppedTopology>(std::move(spec), exec);
}

}  // namespace netalytics::stream
