// The emulated child<->parent transport: an in-process duplex byte stream
// with TCP-connection semantics and deterministic fault injection via
// common::FaultPlan. Frames written with send_up()/send_down() keep their
// byte layout (the receiver reassembles them with fed::FrameParser), so
// the wire format of docs/FEDERATION.md is exercised end to end even
// though no real socket exists.
//
// Connection model: a link is either connected or down. Any fired
// "<prefix>.down" fault drops the connection *and both directions'
// undelivered bytes* (RST semantics — in-flight data on a dead TCP
// connection is gone); subsequent sends fail until connect() succeeds
// again, which the child drives with backoff. A fired
// "<prefix>.duplicate" fault delivers the sent frame twice, emulating the
// retransmission double-delivery the parent's offset dedup must absorb.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"

namespace netalytics::fed {

struct LinkConfig {
  std::uint32_t child_index = 0;
  /// Fault-site prefix; empty selects "fed.link.<child_index>". Sites:
  /// "<prefix>.down" (checked on every connect and send; drops the
  /// connection) and "<prefix>.duplicate" (checked on every successful
  /// send; delivers the frame twice).
  std::string fault_prefix;
};

struct LinkStats {
  std::uint64_t connects = 0;
  std::uint64_t drops = 0;
  std::uint64_t frames_up = 0;
  std::uint64_t frames_down = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t duplicated_frames = 0;
  /// Frames that were queued but destroyed by a connection drop before
  /// the receiver drained them.
  std::uint64_t frames_lost = 0;
};

class Link {
 public:
  explicit Link(LinkConfig cfg, common::FaultPlan* faults = nullptr);

  bool connected() const noexcept { return connected_; }

  /// Attempt to (re)establish the connection. Fails while the down site
  /// fires (e.g. an armed outage window). Idempotent when connected.
  bool connect(common::Timestamp now);

  /// Drop the connection, losing all undelivered bytes in both
  /// directions. Used by chaos tests and by the down fault.
  void drop() noexcept;

  /// Queue one encoded frame child -> parent (parent -> child). Returns
  /// false — after dropping the connection — when the link is down or the
  /// down fault fires on this send.
  bool send_up(std::span<const std::byte> frame_bytes, common::Timestamp now);
  bool send_down(std::span<const std::byte> frame_bytes, common::Timestamp now);

  /// Take every byte delivered to the parent (child) side. A drained
  /// frame is delivered: connection drops only lose undrained bytes.
  std::vector<std::byte> drain_up();
  std::vector<std::byte> drain_down();

  /// Frames currently queued (sent, not yet drained) child -> parent —
  /// the link's contribution to the in-flight term of Federation
  /// reconcile().
  std::uint64_t frames_in_flight_up() const noexcept { return up_frames_; }

  const LinkStats& stats() const noexcept { return stats_; }
  const LinkConfig& config() const noexcept { return cfg_; }

 private:
  bool check_down(common::Timestamp now);
  bool send(std::vector<std::byte>& buf, std::uint64_t& frames,
            std::uint64_t& stat_frames, std::uint64_t& stat_bytes,
            std::span<const std::byte> frame_bytes, common::Timestamp now);

  LinkConfig cfg_;
  std::string down_site_;
  std::string duplicate_site_;
  common::FaultPlan* faults_ = nullptr;
  bool connected_ = false;
  std::vector<std::byte> up_;
  std::vector<std::byte> down_;
  std::uint64_t up_frames_ = 0;
  std::uint64_t down_frames_ = 0;
  LinkStats stats_;
};

}  // namespace netalytics::fed
