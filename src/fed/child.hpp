// The child side of federation streaming (docs/FEDERATION.md): wraps one
// NetAlytics engine monitoring a traffic slice and streams its query
// results (RECORDS frames, replicated by record offset) and registry
// state (METRICS frames, absolute values) to the parent over a Link.
//
// Reliability model, rrdpush-lineage:
//   - every collected result enters a bounded replay buffer of encoded
//     RECORDS frames; entries leave only when the parent's cumulative ACK
//     covers them (or the buffer overflows, which is counted, not hidden);
//   - a failed send or a dead link moves the child to reconnecting state:
//     it retries connect() with exponential backoff, re-handshakes
//     (HELLO -> WELCOME), and replays every buffered frame beyond the
//     parent's WELCOME high watermark — gap replication;
//   - frame construction is a deterministic function of the result
//     stream, so a restarted child (fresh ChildNode over the same engine)
//     re-streams byte-compatible data the parent deduplicates exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/netalytics.hpp"
#include "fed/link.hpp"
#include "fed/wire.hpp"

namespace netalytics::fed {

struct ChildConfig {
  std::uint32_t index = 0;
  std::string name;  // defaults to "child<index>"
  std::size_t replay_capacity = 1024;
  std::size_t records_per_frame = 64;
  common::Duration reconnect_backoff = 200 * common::kMillisecond;
  common::Duration reconnect_backoff_max = 2 * common::kSecond;
};

/// Child-side streaming statistics (kept off the engine registry so the
/// metric stream itself quiesces with the traffic).
struct ChildStats {
  std::uint64_t frames_sent = 0;        // first-time RECORDS/METRICS sends
  std::uint64_t frames_replayed = 0;    // gap-replication resends
  std::uint64_t records_streamed = 0;   // distinct records framed (offsets)
  std::uint64_t metrics_frames = 0;
  std::uint64_t reconnects = 0;         // completed handshakes (incl. first)
  std::uint64_t handshakes_refused = 0;
  std::uint64_t replay_overflow_frames = 0;
  std::uint64_t replay_overflow_records = 0;
};

class ChildNode {
 public:
  /// `engine` must outlive the node; `query` must belong to `engine`.
  ChildNode(core::NetAlytics& engine, const core::QueryHandle& query,
            Link& link, ChildConfig cfg);

  /// One streaming round, called after the engine itself was pumped:
  /// process parent frames (WELCOME/ACK), drive reconnect, collect new
  /// results into RECORDS frames, send a METRICS frame when the registry
  /// changed, flush the replay queue.
  void pump(common::Timestamp now);

  /// Like pump(), but creates no new frames: processes parent frames and
  /// (re)sends whatever is already buffered. Federation::settle() uses
  /// this to drain the fleet without minting fresh METRICS deltas.
  void flush(common::Timestamp now);

  /// Send BYE and stop streaming (pump becomes a no-op).
  void shutdown(common::Timestamp now);

  /// Chaos helper: drop the connection right now, as if the transport
  /// RSTed. The normal reconnect path takes over on the next pump.
  void drop_connection(common::Timestamp now);

  // ---- accounting (Federation::reconcile) ------------------------------
  /// True once the handshake completed and streaming is live.
  bool streaming() const noexcept { return state_ == State::streaming; }
  /// Next record offset to be framed == count of records framed so far.
  std::uint64_t next_offset() const noexcept { return next_offset_; }
  /// Highest cumulative ACK received from the parent.
  std::uint64_t acked_watermark() const noexcept { return acked_; }
  /// Records in replay-buffer frames strictly beyond `watermark` — the
  /// unapplied backlog when `watermark` is the parent's applied count.
  std::uint64_t pending_records_beyond(std::uint64_t watermark) const noexcept;
  std::uint64_t pending_frames() const noexcept { return replay_.size(); }
  const ChildStats& stats() const noexcept { return stats_; }
  const ChildConfig& config() const noexcept { return cfg_; }
  const core::NetAlytics& engine() const noexcept { return engine_; }

 private:
  enum class State { backoff, hello_sent, streaming, shut_down };

  struct PendingFrame {
    std::uint64_t offset = 0;   // first record offset
    std::uint64_t count = 0;    // records in the frame
    bool sent_once = false;     // distinguishes first sends from replays
    std::vector<std::byte> bytes;
  };

  void handle_parent_frames(common::Timestamp now);
  void maybe_reconnect(common::Timestamp now);
  void collect_records(common::Timestamp now);
  void send_metrics(common::Timestamp now);
  void send_pending(common::Timestamp now);
  /// Send one encoded frame; on failure, transition to backoff.
  bool send(std::span<const std::byte> bytes, common::Timestamp now);
  void enter_backoff(common::Timestamp now);
  /// Double the backoff (capped) and set the next connect attempt time.
  void schedule_retry(common::Timestamp now);

  core::NetAlytics& engine_;
  const core::QueryHandle& query_;
  Link& link_;
  ChildConfig cfg_;

  State state_ = State::backoff;
  common::Timestamp reconnect_at_ = 0;  // next connect attempt when backoff
  common::Duration backoff_ = 0;
  FrameParser parser_;  // parent -> child stream

  std::size_t results_cursor_ = 0;    // results() consumed so far
  std::uint64_t next_offset_ = 0;     // == records framed so far
  std::uint64_t acked_ = 0;
  std::deque<PendingFrame> replay_;
  /// Index into replay_ of the first frame not yet sent on the current
  /// connection; WELCOME rewinds it (gap replication).
  std::size_t send_from_ = 0;

  /// Last registry values successfully framed (absolute); a reconnect
  /// clears it so the next METRICS frame is a full resync.
  common::MetricsSnapshot last_metrics_;
  bool metrics_resync_ = true;

  ChildStats stats_;
};

}  // namespace netalytics::fed
