#include "fed/child.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <variant>

namespace netalytics::fed {

namespace {

nf::Record to_record(const stream::Tuple& t, common::Timestamp now) {
  nf::Record r;
  r.topic = "fed";
  r.id = 0;  // results are post-analytics rows, not flow-keyed packets
  r.timestamp = now;
  r.fields.reserve(t.values.size());
  for (const auto& v : t.values) {
    r.fields.push_back(
        std::visit([](const auto& x) { return nf::FieldValue(x); }, v));
  }
  r.trace = t.trace;
  return r;
}

}  // namespace

ChildNode::ChildNode(core::NetAlytics& engine, const core::QueryHandle& query,
                     Link& link, ChildConfig cfg)
    : engine_(engine), query_(query), link_(link), cfg_(std::move(cfg)) {
  if (cfg_.name.empty()) cfg_.name = "child" + std::to_string(cfg_.index);
  if (cfg_.replay_capacity == 0) cfg_.replay_capacity = 1;
  if (cfg_.records_per_frame == 0) cfg_.records_per_frame = 1;
  // First connect attempt happens on the first pump (reconnect_at_ == 0).
}

void ChildNode::pump(common::Timestamp now) {
  if (state_ == State::shut_down) return;
  handle_parent_frames(now);
  if (!link_.connected() && state_ != State::backoff) enter_backoff(now);
  maybe_reconnect(now);
  // Results keep accumulating into the replay buffer while disconnected —
  // that local buffering is what gap replication replays later.
  collect_records(now);
  if (state_ == State::streaming) {
    send_metrics(now);
    send_pending(now);
  }
}

void ChildNode::flush(common::Timestamp now) {
  if (state_ == State::shut_down) return;
  handle_parent_frames(now);
  if (!link_.connected() && state_ != State::backoff) enter_backoff(now);
  maybe_reconnect(now);
  if (state_ == State::streaming) send_pending(now);
}

void ChildNode::shutdown(common::Timestamp now) {
  if (state_ == State::streaming) {
    send(encode(Bye{.child_index = cfg_.index, .final_offset = next_offset_}),
         now);
  }
  state_ = State::shut_down;
}

void ChildNode::drop_connection(common::Timestamp now) {
  if (state_ == State::shut_down) return;
  link_.drop();
  enter_backoff(now);
}

std::uint64_t ChildNode::pending_records_beyond(
    std::uint64_t watermark) const noexcept {
  std::uint64_t n = 0;
  for (const auto& f : replay_) {
    const std::uint64_t end = f.offset + f.count;
    if (end <= watermark) continue;
    n += end - std::max(f.offset, watermark);
  }
  return n;
}

void ChildNode::handle_parent_frames(common::Timestamp now) {
  const auto bytes = link_.drain_down();
  if (!bytes.empty()) parser_.feed(bytes);
  while (auto frame = parser_.next()) {
    switch (frame->type) {
      case MsgType::welcome: {
        const Welcome w = decode_welcome(frame->payload);
        if (w.version != kProtocolVersion || w.child_index != cfg_.index) {
          stats_.handshakes_refused += 1;
          link_.drop();
          enter_backoff(now);
          return;
        }
        acked_ = std::max(acked_, w.high_watermark);
        while (!replay_.empty() &&
               replay_.front().offset + replay_.front().count <= acked_) {
          replay_.pop_front();
        }
        send_from_ = 0;  // gap replication: resend everything unacked
        metrics_resync_ = true;
        backoff_ = 0;
        state_ = State::streaming;
        stats_.reconnects += 1;
        break;
      }
      case MsgType::ack: {
        const Ack a = decode_ack(frame->payload);
        acked_ = std::max(acked_, a.high_watermark);
        while (!replay_.empty() &&
               replay_.front().offset + replay_.front().count <= acked_) {
          replay_.pop_front();
          if (send_from_ > 0) send_from_ -= 1;
        }
        break;
      }
      default:
        break;  // parent never sends the other types; tolerate and skip
    }
  }
}

void ChildNode::maybe_reconnect(common::Timestamp now) {
  if (state_ != State::backoff || now < reconnect_at_) return;
  if (!link_.connect(now)) {
    schedule_retry(now);
    return;
  }
  const Hello hello{.magic = kMagic,
                    .version = kProtocolVersion,
                    .child_index = cfg_.index,
                    .next_offset =
                        replay_.empty() ? next_offset_ : replay_.front().offset,
                    .node_name = cfg_.name};
  if (!send(encode(hello), now)) return;  // send() re-entered backoff
  state_ = State::hello_sent;
}

void ChildNode::collect_records(common::Timestamp now) {
  const auto fresh = query_.results_since(results_cursor_);
  if (fresh.empty()) return;
  results_cursor_ += fresh.size();
  std::size_t i = 0;
  while (i < fresh.size()) {
    const std::size_t n = std::min(cfg_.records_per_frame, fresh.size() - i);
    RecordsFrame rf{.offset = next_offset_, .tick = now, .records = {}};
    rf.records.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      rf.records.push_back(to_record(fresh[i + j], now));
    }
    replay_.push_back(PendingFrame{.offset = next_offset_,
                                   .count = n,
                                   .sent_once = false,
                                   .bytes = encode(rf)});
    next_offset_ += n;
    stats_.records_streamed += n;
    i += n;
  }
  // Bounded buffer: shed oldest frames, charge the overflow counters. This
  // is the one place federation gives up exactness (reconcile reports it).
  while (replay_.size() > cfg_.replay_capacity) {
    stats_.replay_overflow_frames += 1;
    stats_.replay_overflow_records += replay_.front().count;
    replay_.pop_front();
    if (send_from_ > 0) send_from_ -= 1;
  }
}

void ChildNode::send_metrics(common::Timestamp now) {
  const auto snap = engine_.metrics().snapshot();
  MetricsFrame mf{.tick = now, .counters = {}, .gauges = {}};
  if (metrics_resync_) {
    for (const auto& c : snap.counters) {
      mf.counters.push_back({c.name, c.value});
    }
    for (const auto& g : snap.gauges) mf.gauges.push_back({g.name, g.value});
  } else {
    std::map<std::string_view, std::uint64_t> prev_c;
    for (const auto& c : last_metrics_.counters) prev_c[c.name] = c.value;
    std::map<std::string_view, std::int64_t> prev_g;
    for (const auto& g : last_metrics_.gauges) prev_g[g.name] = g.value;
    for (const auto& c : snap.counters) {
      const auto it = prev_c.find(c.name);
      if (it == prev_c.end() || it->second != c.value) {
        mf.counters.push_back({c.name, c.value});
      }
    }
    for (const auto& g : snap.gauges) {
      const auto it = prev_g.find(g.name);
      if (it == prev_g.end() || it->second != g.value) {
        mf.gauges.push_back({g.name, g.value});
      }
    }
  }
  if (mf.counters.empty() && mf.gauges.empty()) return;
  if (!send(encode(mf), now)) return;
  last_metrics_ = snap;
  metrics_resync_ = false;
  stats_.metrics_frames += 1;
  stats_.frames_sent += 1;
}

void ChildNode::send_pending(common::Timestamp now) {
  while (send_from_ < replay_.size()) {
    PendingFrame& f = replay_[send_from_];
    if (!send(f.bytes, now)) return;
    if (f.sent_once) {
      stats_.frames_replayed += 1;
    } else {
      f.sent_once = true;
      stats_.frames_sent += 1;
    }
    send_from_ += 1;
  }
}

bool ChildNode::send(std::span<const std::byte> bytes, common::Timestamp now) {
  if (link_.send_up(bytes, now)) return true;
  enter_backoff(now);
  return false;
}

void ChildNode::enter_backoff(common::Timestamp now) {
  state_ = State::backoff;
  parser_.reset();  // a new connection restarts at a frame boundary
  schedule_retry(now);
}

void ChildNode::schedule_retry(common::Timestamp now) {
  backoff_ = backoff_ == 0
                 ? cfg_.reconnect_backoff
                 : std::min(backoff_ * 2, cfg_.reconnect_backoff_max);
  reconnect_at_ = now + backoff_;
}

}  // namespace netalytics::fed
