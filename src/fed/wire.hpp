// The federation wire protocol (docs/FEDERATION.md): the framed, versioned
// message format child engines use to stream records and metric snapshots
// to a parent, rrdpush-lineage. Every message travels as one length-prefixed
// frame over a byte stream:
//
//   [u32 payload_len (LE)] [u8 MsgType] [payload_len - 1 bytes of payload]
//
// The length prefix covers the type byte, so a FrameParser can reassemble
// frames from arbitrarily-fragmented byte input. Payload fields are
// little-endian via common::ByteWriter/ByteReader; RECORDS payloads embed
// nf::serialize_batch output, so trace ids ride the wire in the same
// compact trailer they use inside a monitor.
//
// Exactness model: RECORDS frames are replicated by *record offset* (the
// 0-based index of a record in the child's result stream), not by frame
// identity — a replayed or re-framed stream with different batch boundaries
// still deduplicates exactly at the parent, which is what makes child
// restarts idempotent. METRICS frames carry absolute counter values (the
// parent derives per-tick deltas), so applying them is idempotent too.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "nf/record.hpp"

namespace netalytics::fed {

/// Stream magic carried in HELLO ("NAFD" little-endian) — a connection that
/// opens with anything else is not a federation child.
inline constexpr std::uint32_t kMagic = 0x4446414Eu;

/// Protocol version negotiated at handshake. The parent refuses a HELLO
/// whose version it does not speak; the child must not stream after a
/// refused handshake (docs/FEDERATION.md, "Version rules").
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Upper bound on one frame's payload (type byte included). Larger length
/// prefixes mean a corrupt or hostile stream; FrameParser throws rather
/// than buffering unbounded garbage.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;

/// Message types, one per frame. tests/check_docs.sh (check 6) requires
/// every enumerator to be documented in docs/FEDERATION.md — keep one
/// enumerator per line so the check can extract them.
enum class MsgType : std::uint8_t {
  hello = 1,
  welcome = 2,
  metrics = 3,
  records = 4,
  ack = 5,
  bye = 6,
};

const char* to_string(MsgType t) noexcept;

/// Child -> parent, first frame after (re)connect. `next_offset` is the
/// record offset the child will resume from if the parent has no state
/// (a fresh parent answers with high_watermark = 0 and the child streams
/// from its replay buffer head).
struct Hello {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint32_t child_index = 0;
  std::uint64_t next_offset = 0;
  std::string node_name;

  bool operator==(const Hello&) const = default;
};

/// Parent -> child, handshake accept. `high_watermark` is the count of
/// records the parent has durably applied from this child; the child
/// replays everything at or beyond that offset (gap replication).
struct Welcome {
  std::uint16_t version = kProtocolVersion;
  std::uint32_t child_index = 0;
  std::uint64_t high_watermark = 0;

  bool operator==(const Welcome&) const = default;
};

/// One counter sample in a METRICS frame: absolute cumulative value. The
/// parent merges with max(), so duplicates and replays are idempotent.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;

  bool operator==(const CounterSample&) const = default;
};

/// One gauge sample: absolute level, last-writer-wins.
struct GaugeSample {
  std::string name;
  std::int64_t value = 0;

  bool operator==(const GaugeSample&) const = default;
};

/// Child -> parent: the registry series that changed since the last send
/// (a delta *selection* carrying absolute values — see docs/FEDERATION.md,
/// "METRICS semantics"). `tick` timestamps the parent-side tsdb ingest.
struct MetricsFrame {
  common::Timestamp tick = 0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;

  bool operator==(const MetricsFrame&) const = default;
};

/// Child -> parent: a batch of result records. `offset` is the 0-based
/// index of records.front() in the child's result stream; the parent
/// applies the suffix beyond its high watermark and discards the rest as
/// duplicates, which makes replay with different batch boundaries exact.
struct RecordsFrame {
  std::uint64_t offset = 0;
  common::Timestamp tick = 0;
  std::vector<nf::Record> records;

  bool operator==(const RecordsFrame&) const = default;
};

/// Parent -> child: cumulative record high watermark. The child drops
/// replay-buffer entries wholly at or below the watermark.
struct Ack {
  std::uint32_t child_index = 0;
  std::uint64_t high_watermark = 0;

  bool operator==(const Ack&) const = default;
};

/// Child -> parent: clean shutdown after `final_offset` records. The
/// parent marks the child departed; a later HELLO re-admits it.
struct Bye {
  std::uint32_t child_index = 0;
  std::uint64_t final_offset = 0;

  bool operator==(const Bye&) const = default;
};

// ---- Encoding: one complete frame (length prefix + type + payload) ---------

std::vector<std::byte> encode(const Hello& m);
std::vector<std::byte> encode(const Welcome& m);
std::vector<std::byte> encode(const MetricsFrame& m);
std::vector<std::byte> encode(const RecordsFrame& m);
std::vector<std::byte> encode(const Ack& m);
std::vector<std::byte> encode(const Bye& m);

// ---- Decoding: payload (without length prefix / type byte) -> message ------
// All throw std::out_of_range on truncated or malformed payloads.

Hello decode_hello(std::span<const std::byte> payload);
Welcome decode_welcome(std::span<const std::byte> payload);
MetricsFrame decode_metrics(std::span<const std::byte> payload);
RecordsFrame decode_records(std::span<const std::byte> payload);
Ack decode_ack(std::span<const std::byte> payload);
Bye decode_bye(std::span<const std::byte> payload);

/// One reassembled frame: the type byte plus its payload bytes.
struct Frame {
  MsgType type = MsgType::hello;
  std::vector<std::byte> payload;
};

/// Incremental frame reassembly over an arbitrarily-fragmented byte
/// stream: feed() appends whatever arrived, next() yields one complete
/// frame at a time (std::nullopt while incomplete). reset() discards any
/// partial frame — called when the transport drops, since a new
/// connection restarts framing from a frame boundary.
class FrameParser {
 public:
  void feed(std::span<const std::byte> bytes);
  /// Throws std::out_of_range when the stream announces a payload larger
  /// than kMaxFramePayload or an unknown message type.
  std::optional<Frame> next();
  void reset() noexcept;

  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace netalytics::fed
