#include "fed/parent.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <variant>

#include "obs/prometheus.hpp"
#include "stream/tuple.hpp"

namespace netalytics::fed {

namespace {

std::string key_of(const nf::Record& r, std::size_t field) {
  if (field >= r.fields.size()) return "<missing>";
  return stream::format_value(std::visit(
      [](const auto& x) { return stream::Value(x); }, r.fields[field]));
}

}  // namespace

ParentNode::ParentNode(std::vector<Link*> links, ParentConfig cfg)
    : cfg_(std::move(cfg)),
      slots_(links.size()),
      fanin_(links.empty() ? 1 : links.size(), cfg_.top_k),
      store_(cfg_.store) {
  if (links.empty()) {
    throw std::invalid_argument("ParentNode: at least one child link");
  }
  for (std::size_t i = 0; i < links.size(); ++i) slots_[i].link = links[i];
}

void ParentNode::pump(common::Timestamp now) {
  now_ = now;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    // A reconnected link starts at a frame boundary; discard any partial
    // frame left over from the dropped connection.
    if (slot.link->stats().connects != slot.seen_connects) {
      slot.seen_connects = slot.link->stats().connects;
      slot.parser.reset();
    }
    if (!slot.link->connected()) slot.stats.connected = false;
    const auto bytes = slot.link->drain_up();
    if (!bytes.empty()) slot.parser.feed(bytes);
    while (auto frame = slot.parser.next()) {
      apply_frame(i, *frame, now);
      if (!slot.link->connected()) break;  // refused HELLO dropped the link
    }
    if (slot.stats.connected && slot.stats.applied != slot.last_acked) {
      const Ack ack{.child_index = static_cast<std::uint32_t>(i),
                    .high_watermark = slot.stats.applied};
      if (slot.link->send_down(encode(ack), now)) {
        slot.last_acked = slot.stats.applied;
      }
    }
  }
  if (store_.enabled()) store_.capture(now, registry_.snapshot());
}

void ParentNode::apply_frame(std::size_t child, const Frame& frame,
                             common::Timestamp now) {
  Slot& slot = slots_[child];
  switch (frame.type) {
    case MsgType::hello: {
      const Hello h = decode_hello(frame.payload);
      if (h.magic != kMagic || h.version != kProtocolVersion ||
          h.child_index != child) {
        slot.stats.refused += 1;
        slot.link->drop();  // version rules: refuse by RST
        return;
      }
      slot.stats.node_name = h.node_name;
      const Welcome w{.version = kProtocolVersion,
                      .child_index = static_cast<std::uint32_t>(child),
                      .high_watermark = slot.stats.applied};
      if (slot.link->send_down(encode(w), now)) {
        slot.stats.connected = true;
        slot.stats.handshakes += 1;
        slot.last_acked = slot.stats.applied;  // WELCOME doubles as an ACK
      }
      return;
    }
    case MsgType::records:
      slot.stats.record_frames += 1;
      apply_records(child, decode_records(frame.payload));
      return;
    case MsgType::metrics:
      slot.stats.metrics_frames += 1;
      apply_metrics(child, decode_metrics(frame.payload));
      return;
    case MsgType::bye: {
      (void)decode_bye(frame.payload);
      slot.stats.byes += 1;
      slot.stats.connected = false;
      return;
    }
    default:
      return;  // children never send WELCOME/ACK; tolerate and skip
  }
}

void ParentNode::apply_records(std::size_t child, const RecordsFrame& rf) {
  Slot& slot = slots_[child];
  const std::uint64_t end = rf.offset + rf.records.size();
  if (end <= slot.stats.applied) {
    // Whole frame below the watermark: a replay or duplicated frame.
    slot.stats.duplicate_records += rf.records.size();
    return;
  }
  if (rf.offset > slot.stats.applied) {
    // Offset gap: the child overflowed its replay buffer and shed frames
    // it could no longer replicate. Charge the loss; exactness for these
    // records is given up (and visible in reconcile()).
    slot.stats.lost_records += rf.offset - slot.stats.applied;
  } else {
    slot.stats.duplicate_records += slot.stats.applied - rf.offset;
  }
  const std::uint64_t start = std::max(rf.offset, slot.stats.applied);
  for (std::size_t i = start - rf.offset; i < rf.records.size(); ++i) {
    const nf::Record& r = rf.records[i];
    fanin_.add(child, key_of(r, cfg_.key_field), 1);
    slot.records.push_back(r);
  }
  slot.stats.applied = end;
}

void ParentNode::apply_metrics(std::size_t child, const MetricsFrame& mf) {
  // Samples carry absolute values, so application is idempotent: counters
  // max-merge (a replayed older frame can never regress the merged value),
  // gauges are last-writer-wins within the per-connection frame order.
  const std::string prefix =
      "fleet.child" + std::to_string(child) + ".";
  for (const auto& c : mf.counters) {
    auto& counter = registry_.counter(prefix + c.name);
    const std::uint64_t cur = counter.value();
    if (c.value > cur) counter.inc(c.value - cur);
  }
  for (const auto& g : mf.gauges) {
    registry_.gauge(prefix + g.name).set(g.value);
  }
}

std::vector<nf::Record> ParentNode::all_records() const {
  std::vector<nf::Record> out;
  for (const auto& slot : slots_) {
    out.insert(out.end(), slot.records.begin(), slot.records.end());
  }
  return out;
}

std::uint64_t ParentNode::total_records_applied() const noexcept {
  std::uint64_t n = 0;
  for (const auto& slot : slots_) n += slot.stats.applied;
  return n;
}

std::string ParentNode::export_metrics() const {
  const obs::PrometheusExporter exporter(cfg_.export_options);
  return exporter.export_snapshot(registry_.snapshot());
}

tsdb::RangeResult ParentNode::query_range(const tsdb::RangeQuery& q) const {
  const auto head = registry_.snapshot();
  return store_.query_range(q, tsdb::LiveHead{now_, &head});
}

}  // namespace netalytics::fed
