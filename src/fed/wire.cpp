#include "fed/wire.hpp"

#include <stdexcept>

#include "common/byte_io.hpp"

namespace netalytics::fed {

namespace {

/// Wrap an encoded payload body in the frame header. The length prefix
/// covers the type byte plus the body.
std::vector<std::byte> frame(MsgType type, const common::ByteWriter& body) {
  common::ByteWriter header;
  header.u32(static_cast<std::uint32_t>(body.size() + 1));
  header.u8(static_cast<std::uint8_t>(type));
  std::vector<std::byte> bytes = header.take();
  const auto view = body.view();
  bytes.insert(bytes.end(), view.begin(), view.end());
  return bytes;
}

}  // namespace

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::hello: return "HELLO";
    case MsgType::welcome: return "WELCOME";
    case MsgType::metrics: return "METRICS";
    case MsgType::records: return "RECORDS";
    case MsgType::ack: return "ACK";
    case MsgType::bye: return "BYE";
  }
  return "?";
}

std::vector<std::byte> encode(const Hello& m) {
  common::ByteWriter w;
  w.u32(m.magic);
  w.u16(m.version);
  w.u32(m.child_index);
  w.u64(m.next_offset);
  w.str(m.node_name);
  return frame(MsgType::hello, w);
}

Hello decode_hello(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  Hello m;
  m.magic = r.u32();
  m.version = r.u16();
  m.child_index = r.u32();
  m.next_offset = r.u64();
  m.node_name = r.str();
  return m;
}

std::vector<std::byte> encode(const Welcome& m) {
  common::ByteWriter w;
  w.u16(m.version);
  w.u32(m.child_index);
  w.u64(m.high_watermark);
  return frame(MsgType::welcome, w);
}

Welcome decode_welcome(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  Welcome m;
  m.version = r.u16();
  m.child_index = r.u32();
  m.high_watermark = r.u64();
  return m;
}

std::vector<std::byte> encode(const MetricsFrame& m) {
  common::ByteWriter w;
  w.u64(m.tick);
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& c : m.counters) {
    w.str(c.name);
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(m.gauges.size()));
  for (const auto& g : m.gauges) {
    w.str(g.name);
    w.u64(static_cast<std::uint64_t>(g.value));
  }
  return frame(MsgType::metrics, w);
}

MetricsFrame decode_metrics(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  MetricsFrame m;
  m.tick = r.u64();
  const std::uint32_t nc = r.u32();
  m.counters.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    CounterSample c;
    c.name = r.str();
    c.value = r.u64();
    m.counters.push_back(std::move(c));
  }
  const std::uint32_t ng = r.u32();
  m.gauges.reserve(ng);
  for (std::uint32_t i = 0; i < ng; ++i) {
    GaugeSample g;
    g.name = r.str();
    g.value = static_cast<std::int64_t>(r.u64());
    m.gauges.push_back(std::move(g));
  }
  return m;
}

std::vector<std::byte> encode(const RecordsFrame& m) {
  common::ByteWriter w;
  w.u64(m.offset);
  w.u64(m.tick);
  w.bytes(nf::serialize_batch(m.records));
  return frame(MsgType::records, w);
}

RecordsFrame decode_records(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  RecordsFrame m;
  m.offset = r.u64();
  m.tick = r.u64();
  const auto batch = r.bytes();
  m.records = nf::deserialize_batch(batch);
  return m;
}

std::vector<std::byte> encode(const Ack& m) {
  common::ByteWriter w;
  w.u32(m.child_index);
  w.u64(m.high_watermark);
  return frame(MsgType::ack, w);
}

Ack decode_ack(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  Ack m;
  m.child_index = r.u32();
  m.high_watermark = r.u64();
  return m;
}

std::vector<std::byte> encode(const Bye& m) {
  common::ByteWriter w;
  w.u32(m.child_index);
  w.u64(m.final_offset);
  return frame(MsgType::bye, w);
}

Bye decode_bye(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  Bye m;
  m.child_index = r.u32();
  m.final_offset = r.u64();
  return m;
}

void FrameParser::feed(std::span<const std::byte> bytes) {
  // Compact the consumed prefix before growing, so long sessions do not
  // accumulate dead bytes.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameParser::next() {
  const std::span<const std::byte> avail{buf_.data() + pos_, buf_.size() - pos_};
  if (avail.size() < 4) return std::nullopt;
  const std::uint32_t len = common::load_le32(avail, 0);
  if (len == 0 || len > kMaxFramePayload) {
    throw std::out_of_range("fed::FrameParser: bad frame length");
  }
  if (avail.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const auto raw_type = static_cast<std::uint8_t>(avail[4]);
  if (raw_type < static_cast<std::uint8_t>(MsgType::hello) ||
      raw_type > static_cast<std::uint8_t>(MsgType::bye)) {
    throw std::out_of_range("fed::FrameParser: unknown message type");
  }
  Frame f;
  f.type = static_cast<MsgType>(raw_type);
  f.payload.assign(avail.begin() + 5, avail.begin() + 4 + len);
  pos_ += 4 + static_cast<std::size_t>(len);
  return f;
}

void FrameParser::reset() noexcept {
  buf_.clear();
  pos_ = 0;
}

}  // namespace netalytics::fed
