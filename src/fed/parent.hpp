// The parent side of federation streaming (docs/FEDERATION.md): terminates
// every child's frame stream, deduplicates RECORDS by record offset against
// a per-child high watermark, max-merges METRICS into a fleet-prefixed
// registry ("fleet.child<i>.<series>"), and runs the global topology — a
// fan-in top-k over all children's result records — plus the fleet's
// historical store, so export_metrics()/query_range() see the whole fleet
// through the same read APIs a single engine offers.
//
// Determinism: pump() walks children in child-index order and applies each
// child's frames in arrival order (the Link preserves per-connection
// ordering), so parent state is a pure function of the per-child byte
// streams — byte-identical renders across runs and across child
// executor worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "fed/link.hpp"
#include "fed/wire.hpp"
#include "obs/export.hpp"
#include "stream/fanin.hpp"
#include "tsdb/store.hpp"

namespace netalytics::fed {

struct ParentConfig {
  std::size_t children = 2;
  /// Global fan-in top-k size.
  std::size_t top_k = 10;
  /// Record-field index the fan-in counts keys from.
  std::size_t key_field = 0;
  /// Fleet metric history (per-pump captures of the fleet registry).
  tsdb::StoreConfig store{};
  /// Prometheus export options for the fleet exposition.
  obs::ExportOptions export_options{};
};

/// Parent-side per-child accounting. `applied` is the protocol high
/// watermark: records durably applied, in offset order, no gaps except
/// those charged to `lost_records` (child replay-buffer overflow).
struct ParentChildStats {
  bool connected = false;          // handshake completed, not departed
  std::string node_name;
  std::uint64_t applied = 0;       // record high watermark
  std::uint64_t duplicate_records = 0;  // replayed below the watermark
  std::uint64_t lost_records = 0;  // offset gaps (child replay overflow)
  std::uint64_t record_frames = 0;
  std::uint64_t metrics_frames = 0;
  std::uint64_t handshakes = 0;    // WELCOMEs sent
  std::uint64_t refused = 0;       // HELLOs rejected (magic/version/index)
  std::uint64_t byes = 0;
};

class ParentNode {
 public:
  /// `links[i]` is child i's duplex link; all must outlive the node.
  ParentNode(std::vector<Link*> links, ParentConfig cfg);

  /// One fan-in round: for each child in index order, drain its link,
  /// apply complete frames (handshakes, metrics, records), and answer with
  /// WELCOME/ACK. Then capture the fleet registry into the store at `now`.
  void pump(common::Timestamp now);

  // ---- global result interface ----------------------------------------
  /// Global top-k over every child's applied records, merged in
  /// child-index order.
  std::string render_top_k() const { return fanin_.render(); }
  const stream::FanInTopK& top_k() const noexcept { return fanin_; }

  /// Applied records of one child, in offset order.
  const std::vector<nf::Record>& records(std::size_t child) const {
    return slots_.at(child).records;
  }
  /// Every applied record, children concatenated in index order.
  std::vector<nf::Record> all_records() const;
  std::uint64_t total_records_applied() const noexcept;

  /// Prometheus text exposition of the fleet registry (fleet.child<i>.*
  /// series; the exporter lifts child<i> into a child="i" label).
  std::string export_metrics() const;
  /// Historical range query over the fleet store, merged with the live
  /// fleet registry head (same semantics as NetAlytics::query_range).
  tsdb::RangeResult query_range(const tsdb::RangeQuery& q) const;

  const common::MetricsRegistry& metrics() const noexcept { return registry_; }
  const tsdb::TieredStore& store() const noexcept { return store_; }
  const ParentChildStats& child_stats(std::size_t child) const {
    return slots_.at(child).stats;
  }
  const ParentConfig& config() const noexcept { return cfg_; }

 private:
  struct Slot {
    Link* link = nullptr;
    FrameParser parser;
    std::uint64_t seen_connects = 0;  // link epoch; reset parser on change
    std::uint64_t last_acked = 0;     // watermark last sent in an ACK
    std::vector<nf::Record> records;
    ParentChildStats stats;
  };

  void apply_frame(std::size_t child, const Frame& frame,
                   common::Timestamp now);
  void apply_records(std::size_t child, const RecordsFrame& rf);
  void apply_metrics(std::size_t child, const MetricsFrame& mf);

  ParentConfig cfg_;
  std::vector<Slot> slots_;
  stream::FanInTopK fanin_;
  common::MetricsRegistry registry_;  // fleet.child<i>.* series
  tsdb::TieredStore store_;
  common::Timestamp now_ = 0;
};

}  // namespace netalytics::fed
