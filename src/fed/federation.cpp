#include "fed/federation.hpp"

#include <stdexcept>
#include <utility>

namespace netalytics::fed {

namespace {

ChildConfig child_config(const core::FederationConfig& cfg, std::size_t i) {
  return ChildConfig{.index = static_cast<std::uint32_t>(i),
                     .name = "child" + std::to_string(i),
                     .replay_capacity = cfg.replay_capacity,
                     .records_per_frame = cfg.records_per_frame,
                     .reconnect_backoff = cfg.reconnect_backoff,
                     .reconnect_backoff_max = cfg.reconnect_backoff_max};
}

}  // namespace

Federation::Federation(core::FederationConfig cfg, common::FaultPlan* faults)
    : cfg_(std::move(cfg)), faults_(faults) {
  if (auto ok = cfg_.validate(); !ok) {
    throw std::invalid_argument(ok.error().to_string());
  }
  std::vector<Link*> links;
  for (std::size_t i = 0; i < cfg_.children; ++i) {
    emus_.push_back(std::make_unique<core::Emulation>(
        core::Emulation::make_small(cfg_.hosts_per_rack)));
    // Chaos plumbing must precede engine construction (core/emulation.hpp).
    if (faults_ != nullptr) emus_.back()->install_faults(faults_);
    engines_.push_back(
        std::make_unique<core::NetAlytics>(*emus_.back(), cfg_.child_engine));
    links_.push_back(std::make_unique<Link>(
        LinkConfig{.child_index = static_cast<std::uint32_t>(i),
                   .fault_prefix = {}},
        faults_));
    links.push_back(links_.back().get());
  }
  parent_ = std::make_unique<ParentNode>(
      std::move(links), ParentConfig{.children = cfg_.children,
                                     .top_k = cfg_.top_k,
                                     .key_field = cfg_.key_field,
                                     .store = cfg_.parent_store,
                                     .export_options = cfg_.parent_export});
}

common::Expected<void> Federation::submit(std::string_view query,
                                          common::Timestamp now) {
  if (!nodes_.empty()) {
    return common::Error{"fed", "federation already has a running query"};
  }
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    auto handle = engines_[i]->submit(query, now);
    if (!handle) return handle.error();
    queries_.push_back(*handle);
    nodes_.push_back(std::make_unique<ChildNode>(
        *engines_[i], **handle, *links_[i], child_config(cfg_, i)));
  }
  return {};
}

void Federation::pump(common::Timestamp now) {
  for (auto& engine : engines_) engine->pump(now);
  for (auto& node : nodes_) node->pump(now);
  parent_->pump(now);
  for (auto& node : nodes_) node->flush(now);
}

common::Timestamp Federation::settle(common::Timestamp from,
                                     std::size_t max_rounds) {
  common::Timestamp t = from;
  std::size_t stable = 0;
  std::uint64_t prev_fingerprint = ~std::uint64_t{0};
  for (std::size_t round = 0; round < max_rounds; ++round) {
    pump(t);
    std::uint64_t fingerprint = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      fingerprint = fingerprint * 1000003 + parent_->child_stats(i).applied;
      fingerprint = fingerprint * 1000003 + nodes_[i]->next_offset();
    }
    stable = quiescent_round() && fingerprint == prev_fingerprint ? stable + 1
                                                                  : 0;
    prev_fingerprint = fingerprint;
    // Three consecutive unchanged quiescent rounds: nothing is still
    // draining anywhere in the pipeline (engine, link, or replay buffer).
    if (stable >= 3) return t;
    t += cfg_.child_engine.tick_interval;
  }
  return t;
}

bool Federation::quiescent_round() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ChildNode& node = *nodes_[i];
    if (!node.streaming()) return false;
    if (links_[i]->frames_in_flight_up() != 0) return false;
    if (node.pending_records_beyond(parent_->child_stats(i).applied) != 0) {
      return false;
    }
  }
  return true;
}

FederationReconcile Federation::reconcile() const {
  FederationReconcile report;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ChildNode& node = *nodes_[i];
    const ParentChildStats& ps = parent_->child_stats(i);
    ChildReconcile c;
    c.child = i;
    c.results = queries_[i]->results().size();
    c.streamed = node.next_offset();
    c.applied = ps.applied;
    c.pending = node.pending_records_beyond(ps.applied);
    c.lost = ps.lost_records;
    c.overflow = node.stats().replay_overflow_records;
    c.duplicates = ps.duplicate_records;
    report.children.push_back(c);
  }
  return report;
}

void Federation::restart_child(std::size_t i, common::Timestamp now) {
  if (i >= nodes_.size()) throw std::out_of_range("Federation::restart_child");
  links_.at(i)->drop();
  nodes_[i] = std::make_unique<ChildNode>(*engines_[i], *queries_[i],
                                          *links_[i], child_config(cfg_, i));
  // The fresh node attempts its first connect on the next pump; backoff
  // state restarts too, exactly like a new process. `now` only documents
  // when the restart happened.
  (void)now;
}

std::string FederationReconcile::render() const {
  std::string out;
  for (const auto& c : children) {
    out += "child" + std::to_string(c.child);
    out += " results=" + std::to_string(c.results);
    out += " streamed=" + std::to_string(c.streamed);
    out += " applied=" + std::to_string(c.applied);
    out += " pending=" + std::to_string(c.pending);
    out += " lost=" + std::to_string(c.lost);
    out += " overflow=" + std::to_string(c.overflow);
    out += " duplicates=" + std::to_string(c.duplicates);
    out += " residual=" + std::to_string(c.residual());
    out += '\n';
  }
  out += exact() ? "exact\n" : "INEXACT\n";
  return out;
}

}  // namespace netalytics::fed
