#include "fed/link.hpp"

#include <utility>

namespace netalytics::fed {

Link::Link(LinkConfig cfg, common::FaultPlan* faults)
    : cfg_(std::move(cfg)), faults_(faults) {
  if (cfg_.fault_prefix.empty()) {
    cfg_.fault_prefix = "fed.link." + std::to_string(cfg_.child_index);
  }
  down_site_ = cfg_.fault_prefix + ".down";
  duplicate_site_ = cfg_.fault_prefix + ".duplicate";
}

bool Link::check_down(common::Timestamp now) {
  return faults_ != nullptr && faults_->should_fail(down_site_, now);
}

bool Link::connect(common::Timestamp now) {
  if (connected_) return true;
  if (check_down(now)) return false;
  connected_ = true;
  stats_.connects += 1;
  return true;
}

void Link::drop() noexcept {
  if (!connected_ && up_.empty() && down_.empty()) return;
  connected_ = false;
  stats_.drops += 1;
  stats_.frames_lost += up_frames_ + down_frames_;
  up_.clear();
  down_.clear();
  up_frames_ = 0;
  down_frames_ = 0;
}

bool Link::send(std::vector<std::byte>& buf, std::uint64_t& frames,
                std::uint64_t& stat_frames, std::uint64_t& stat_bytes,
                std::span<const std::byte> frame_bytes, common::Timestamp now) {
  if (!connected_) return false;
  if (check_down(now)) {
    drop();
    return false;
  }
  buf.insert(buf.end(), frame_bytes.begin(), frame_bytes.end());
  frames += 1;
  stat_frames += 1;
  stat_bytes += frame_bytes.size();
  if (faults_ != nullptr && faults_->should_fail(duplicate_site_, now)) {
    buf.insert(buf.end(), frame_bytes.begin(), frame_bytes.end());
    frames += 1;
    stat_frames += 1;
    stat_bytes += frame_bytes.size();
    stats_.duplicated_frames += 1;
  }
  return true;
}

bool Link::send_up(std::span<const std::byte> frame_bytes,
                   common::Timestamp now) {
  return send(up_, up_frames_, stats_.frames_up, stats_.bytes_up, frame_bytes,
              now);
}

bool Link::send_down(std::span<const std::byte> frame_bytes,
                     common::Timestamp now) {
  return send(down_, down_frames_, stats_.frames_down, stats_.bytes_down,
              frame_bytes, now);
}

std::vector<std::byte> Link::drain_up() {
  up_frames_ = 0;
  return std::exchange(up_, {});
}

std::vector<std::byte> Link::drain_down() {
  down_frames_ = 0;
  return std::exchange(down_, {});
}

}  // namespace netalytics::fed
