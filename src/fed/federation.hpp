// The federation orchestrator (docs/FEDERATION.md): owns N child engines —
// each with its own emulated fabric and traffic slice — their fault-
// injectable links, the streaming nodes on both ends, and the parent that
// merges the fleet. One pump(now) advances the whole federation one round
// in child-index order:
//
//   1. every child engine pumps (analytics side drains into results);
//   2. every ChildNode pumps (collects results, streams RECORDS/METRICS);
//   3. the parent pumps (applies frames, answers WELCOME/ACK);
//   4. every ChildNode flushes (processes the parent's replies).
//
// All four steps are deterministic functions of virtual time, traffic, and
// the FaultPlan, so a federated run is as reproducible as a single engine:
// same inputs -> byte-identical parent renders at any child worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.hpp"
#include "core/emulation.hpp"
#include "core/netalytics.hpp"
#include "fed/child.hpp"
#include "fed/link.hpp"
#include "fed/parent.hpp"

namespace netalytics::fed {

/// Conservation accounting for one child's stream at a pump boundary:
/// every record the child framed is either applied at the parent (below
/// the watermark), waiting in the replay buffer beyond it, or was shed by
/// replay-buffer overflow. `lost` is the parent-observed part of the shed
/// records (offset gaps); `overflow` is the child-side count, a
/// conservative upper bound — a shed frame the parent had already applied
/// (its ACK died with a connection) overflows without losing anything.
struct ChildReconcile {
  std::size_t child = 0;
  std::uint64_t results = 0;     // engine result tuples produced
  std::uint64_t streamed = 0;    // records framed into RECORDS frames
  std::uint64_t applied = 0;     // parent high watermark
  std::uint64_t pending = 0;     // replay records beyond the watermark
  std::uint64_t lost = 0;        // parent-observed offset gaps
  std::uint64_t overflow = 0;    // child-side replay overflow records
  std::uint64_t duplicates = 0;  // parent-discarded duplicate records

  /// streamed − applied − pending: records shed by overflow that the
  /// parent has not yet observed as a gap. 0 whenever overflow == 0.
  std::int64_t residual() const noexcept {
    return static_cast<std::int64_t>(streamed) -
           static_cast<std::int64_t>(applied + pending);
  }
  /// Exact delivery: everything framed is applied or pending, nothing was
  /// shed, and every engine result has been framed.
  bool exact() const noexcept {
    return residual() == 0 && lost == 0 && overflow == 0 &&
           streamed == results;
  }
};

struct FederationReconcile {
  std::vector<ChildReconcile> children;

  bool exact() const noexcept {
    for (const auto& c : children) {
      if (!c.exact()) return false;
    }
    return true;
  }
  /// One line per child plus a verdict line.
  std::string render() const;
};

class Federation {
 public:
  /// Builds the fleet: one Emulation + NetAlytics engine per child (the
  /// fault plan, when given, is installed on every emulation *before* its
  /// engine is constructed, and drives the links' "fed.link.<i>.*" sites).
  /// Throws std::invalid_argument on an invalid config. The plan is
  /// borrowed and must outlive the federation.
  explicit Federation(core::FederationConfig cfg,
                      common::FaultPlan* faults = nullptr);

  /// Submit the same query text to every child engine and start the
  /// streaming nodes. One query per federation (matching the differential
  /// oracle shape); resubmission is an error.
  common::Expected<void> submit(std::string_view query, common::Timestamp now);

  /// One federation round at `now` (see file comment for the order).
  void pump(common::Timestamp now);

  /// Pump at `from`, then keep pumping every child tick_interval until the
  /// fleet is quiescent — links drained, every child streaming with no
  /// unapplied backlog, and watermarks stable for a few rounds — or
  /// `max_rounds` is exhausted (armed outage windows are waited out).
  /// Returns the timestamp of the last pump.
  common::Timestamp settle(common::Timestamp from, std::size_t max_rounds = 64);

  /// Conservation accounting at the current pump boundary.
  FederationReconcile reconcile() const;

  /// Chaos: restart child i's streaming node — the connection drops and
  /// all node state (cursors, replay buffer, metric baseline) is lost, as
  /// in a process restart. The fresh node re-frames the engine's result
  /// stream from offset 0; the parent's watermark dedup makes that exact.
  void restart_child(std::size_t i, common::Timestamp now);

  // ---- component access ------------------------------------------------
  std::size_t children() const noexcept { return engines_.size(); }
  core::Emulation& emulation(std::size_t i) { return *emus_.at(i); }
  core::NetAlytics& engine(std::size_t i) { return *engines_.at(i); }
  const core::QueryHandle* query(std::size_t i) const {
    return queries_.at(i);
  }
  Link& link(std::size_t i) { return *links_.at(i); }
  ChildNode& child(std::size_t i) { return *nodes_.at(i); }
  ParentNode& parent() noexcept { return *parent_; }
  const ParentNode& parent() const noexcept { return *parent_; }
  const core::FederationConfig& config() const noexcept { return cfg_; }

  // Parent-side fleet views, re-exported for convenience.
  std::string render_top_k() const { return parent_->render_top_k(); }
  std::string export_metrics() const { return parent_->export_metrics(); }
  tsdb::RangeResult query_range(const tsdb::RangeQuery& q) const {
    return parent_->query_range(q);
  }

 private:
  bool quiescent_round() const;

  core::FederationConfig cfg_;
  common::FaultPlan* faults_ = nullptr;
  std::vector<std::unique_ptr<core::Emulation>> emus_;
  std::vector<std::unique_ptr<core::NetAlytics>> engines_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<const core::QueryHandle*> queries_;
  std::vector<std::unique_ptr<ChildNode>> nodes_;
  std::unique_ptr<ParentNode> parent_;
};

}  // namespace netalytics::fed
