// A cluster of aggregation brokers. "Parsers, potentially distributed
// across multiple monitoring hosts, send their data to one of the Kafka
// servers. Using Kafka, we can fuse together data streams from parsers
// replicated at different points in the network" (§3.2). Messages route to
// a broker by key hash, so one topic spreads across brokers while a given
// producer's stream stays ordered.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "mq/broker.hpp"
#include "mq/group.hpp"

namespace netalytics::mq {

class Cluster {
 public:
  /// `brokers` nodes, each configured identically.
  Cluster(std::size_t brokers, BrokerConfig config = {});

  /// On blocked/dropped, `msg` is left intact for the caller to retry.
  ProduceStatus produce(Message&& msg, common::Timestamp now);

  /// Batch produce: routes runs of same-broker messages (a single-key batch
  /// is one run) to Broker::produce_batch; statuses[i] reports msgs[i].
  /// Spans must be the same length. Same move/retry contract as the broker.
  void produce_batch(std::span<Message> msgs, common::Timestamp now,
                     std::span<ProduceStatus> statuses);

  /// Poll up to `max` messages across all brokers for a group. The
  /// member-less legacy shim: reads every partition of every broker (a
  /// non-member consumer behaves like a group of one).
  std::vector<Message> poll(std::string_view group, std::string_view topic,
                            std::size_t max);

  /// Membership-aware poll: fetch only the partitions the coordinator
  /// currently assigns to `member` (see mq/group.hpp), in (broker,
  /// partition) order. member == 0 means "not a member" and falls back to
  /// the poll-everything shim; a departed member's poll returns nothing.
  std::vector<Message> poll(std::string_view group, std::string_view topic,
                            std::size_t max, std::uint64_t member);

  /// Batched fetch (Broker::poll_batch across brokers): one topic header
  /// per call, per-partition slice views with the broker index filled in,
  /// no per-message allocation. Same membership semantics as poll():
  /// member == 0 reads every partition of every broker.
  FetchBatch poll_batch(std::string_view group, std::string_view topic,
                        std::size_t max, std::uint64_t member = 0);

  /// Membership and deterministic partition assignment for every consumer
  /// group on this cluster.
  GroupCoordinator& coordinator() noexcept { return coordinator_; }
  const GroupCoordinator& coordinator() const noexcept { return coordinator_; }

  /// Worst-case partition occupancy of `topic` across brokers — the signal
  /// the feedback-sampling controller watches (§4.2).
  double occupancy(std::string_view topic) const;
  std::size_t depth(std::string_view topic) const;
  /// Parser records buffered for `topic` across brokers that the slowest
  /// consumer group has not read (engine.reconcile()'s broker term).
  std::uint64_t unread_records(std::string_view topic) const;

  std::size_t broker_count() const noexcept { return brokers_.size(); }
  Broker& broker(std::size_t i) { return *brokers_.at(i); }
  BrokerStats aggregate_stats() const;

  /// Install a chaos plan on every broker. Broker `i` checks sites named
  /// "mq.broker.<i>.<suffix>", so a test can kill exactly one node.
  void install_faults(common::FaultPlan* plan);

  /// Re-home every broker's counters into `registry`: broker `i` gets the
  /// prefix "<prefix><i>" (default registry names "mq.broker<i>.*"). Bind
  /// before traffic starts.
  void bind_metrics(common::MetricsRegistry& registry,
                    const std::string& prefix = "mq.broker");
  /// Broker index `key`-hashed messages land on (lets chaos tests aim at
  /// the node that actually carries a producer's stream).
  std::size_t broker_of_key(std::uint64_t key) const noexcept;

  /// Route every broker's evicted-unread record counts into `ledger`
  /// (broker_retention cause). Install before traffic starts.
  void set_drop_ledger(common::DropLedger* ledger) noexcept;

 private:
  std::vector<std::unique_ptr<Broker>> brokers_;
  GroupCoordinator coordinator_;
};

}  // namespace netalytics::mq
