// Consumer facade for the stream engine's spouts: "Storm then uses multiple
// Kafka 'Spouts' (i.e. data sources linked to the Kafka servers) to poll
// for new messages" (§5.3). Offsets are tracked per consumer group inside
// the brokers; distinct group names replay independently.
//
// A consumer constructed with join_group = true becomes a *member* of its
// group: the cluster's GroupCoordinator assigns it a deterministic share of
// the partition grid and poll() fetches only that share, so N members split
// a topic instead of each draining every broker. The two-argument
// constructor keeps the original member-less semantics (poll everything) as
// a shim for existing call sites.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mq/cluster.hpp"

namespace netalytics::mq {

class Consumer {
 public:
  /// join_group = false (the legacy shim) polls every partition; true joins
  /// `group` as a member and polls only the coordinator-assigned share.
  Consumer(Cluster& cluster, std::string group, bool join_group = false);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Fetch up to `max` new messages on `topic`. Returned messages share
  /// their payload bytes with the broker log (refcounted, zero-copy). A
  /// member that has left the group fetches nothing until rejoin().
  std::vector<Message> poll(std::string_view topic, std::size_t max);

  /// Batched fetch: one FetchBatch (single topic header, per-partition
  /// slices, no per-message allocation) instead of a vector of Message
  /// copies. Same membership semantics as poll().
  FetchBatch poll_batch(std::string_view topic, std::size_t max);

  /// Leave the group now (idempotent; bumps the group generation so the
  /// survivors inherit this member's partitions at their next poll).
  void leave();
  /// Join again after leave() — as a *new* member (fresh id, last rank).
  void rejoin();

  std::uint64_t total_consumed() const noexcept { return consumed_; }
  const std::string& group() const noexcept { return group_; }
  /// 0 for the member-less shim or after leave().
  std::uint64_t member_id() const noexcept { return member_; }

 private:
  Cluster& cluster_;
  std::string group_;
  bool grouped_ = false;  // constructed as a member (poll is share-only)
  std::uint64_t member_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace netalytics::mq
