// Consumer facade for the stream engine's spouts: "Storm then uses multiple
// Kafka 'Spouts' (i.e. data sources linked to the Kafka servers) to poll
// for new messages" (§5.3). Offsets are tracked per consumer group inside
// the brokers; distinct group names replay independently.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mq/cluster.hpp"

namespace netalytics::mq {

class Consumer {
 public:
  Consumer(Cluster& cluster, std::string group);

  /// Fetch up to `max` new messages on `topic`. Returned messages share
  /// their payload bytes with the broker log (refcounted, zero-copy).
  std::vector<Message> poll(std::string_view topic, std::size_t max);

  std::uint64_t total_consumed() const noexcept { return consumed_; }
  const std::string& group() const noexcept { return group_; }

 private:
  Cluster& cluster_;
  std::string group_;
  std::uint64_t consumed_ = 0;
};

}  // namespace netalytics::mq
