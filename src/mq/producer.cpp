#include "mq/producer.hpp"

#include <algorithm>

namespace netalytics::mq {

Producer::Producer(Cluster& cluster, std::uint64_t producer_id,
                   BackpressureCallback on_backpressure, RetryPolicy retry)
    : cluster_(cluster),
      producer_id_(producer_id),
      on_backpressure_(std::move(on_backpressure)),
      retry_(retry) {
  if (retry_.multiplier < 1.0) retry_.multiplier = 1.0;
  if (retry_.initial_backoff == 0) retry_.initial_backoff = 1;
}

common::Duration Producer::backoff_after(std::size_t attempts) const noexcept {
  double d = static_cast<double>(retry_.initial_backoff);
  for (std::size_t i = 1; i < attempts; ++i) {
    d *= retry_.multiplier;
    if (d >= static_cast<double>(retry_.max_backoff)) return retry_.max_backoff;
  }
  return std::min(retry_.max_backoff, static_cast<common::Duration>(d));
}

void Producer::record_delivery_locked(ProduceStatus status, std::size_t bytes,
                                      std::vector<ProduceStatus>& events) {
  ++stats_.sent;
  stats_.bytes += bytes;
  if (status == ProduceStatus::low_buffer) {
    ++stats_.backpressure_events;
    events.push_back(status);
  }
}

void Producer::flush_locked(common::Timestamp now,
                            std::vector<ProduceStatus>& events) {
  while (!pending_.empty()) {
    PendingSend& p = pending_.front();
    if (p.next_attempt > now) break;
    const std::size_t bytes = p.msg.payload.size();
    const ProduceStatus status = cluster_.produce(std::move(p.msg), now);
    ++stats_.retries;
    if (status == ProduceStatus::ok || status == ProduceStatus::low_buffer) {
      record_delivery_locked(status, bytes, events);
      pending_.pop_front();
      continue;
    }
    ++p.attempts;
    ++stats_.backpressure_events;
    events.push_back(status);
    if (retry_.max_attempts != 0 && p.attempts >= retry_.max_attempts) {
      ++stats_.lost;
      pending_.pop_front();
      continue;  // the next buffered message gets its own tries
    }
    p.next_attempt = now + backoff_after(p.attempts);
    // Younger messages must not overtake this one (per-key order), so stop
    // the flush at the first message still backing off.
    break;
  }
}

bool Producer::enqueue_locked(Message&& msg, common::Timestamp now) {
  if (pending_.size() >= retry_.max_buffered) {
    ++stats_.lost;
    return false;
  }
  PendingSend p;
  p.msg = std::move(msg);
  p.attempts = 1;
  p.next_attempt = now + backoff_after(1);
  pending_.push_back(std::move(p));
  return true;
}

bool Producer::send(const std::string& topic, std::vector<std::byte> payload,
                    common::Timestamp now) {
  Message msg;
  msg.topic = topic;
  msg.key = producer_id_;
  msg.timestamp = now;
  const std::size_t bytes = payload.size();
  msg.payload = std::move(payload);

  bool accepted = true;
  std::vector<ProduceStatus> events;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    if (!pending_.empty()) {
      // Order: while older messages wait on backoff, new ones queue behind.
      accepted = enqueue_locked(std::move(msg), now);
    } else {
      const ProduceStatus status = cluster_.produce(std::move(msg), now);
      if (status == ProduceStatus::ok || status == ProduceStatus::low_buffer) {
        record_delivery_locked(status, bytes, events);
      } else {
        ++stats_.backpressure_events;
        events.push_back(status);
        accepted = enqueue_locked(std::move(msg), now);
      }
    }
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return accepted;
}

std::size_t Producer::flush(common::Timestamp now) {
  std::vector<ProduceStatus> events;
  std::size_t remaining = 0;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    remaining = pending_.size();
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return remaining;
}

std::size_t Producer::pending() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

ProducerStats Producer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace netalytics::mq
