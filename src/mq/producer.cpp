#include "mq/producer.hpp"

#include <algorithm>

namespace netalytics::mq {

Producer::Producer(Cluster& cluster, std::uint64_t producer_id,
                   BackpressureCallback on_backpressure, RetryPolicy retry)
    : cluster_(cluster),
      producer_id_(producer_id),
      on_backpressure_(std::move(on_backpressure)),
      retry_(retry) {
  if (retry_.multiplier < 1.0) retry_.multiplier = 1.0;
  if (retry_.initial_backoff == 0) retry_.initial_backoff = 1;
  owned_metrics_ = std::make_unique<common::MetricsRegistry>();
  resolve_metrics_locked(*owned_metrics_, "mq.producer");
}

void Producer::resolve_metrics_locked(common::MetricsRegistry& registry,
                                      const std::string& prefix) {
  sent_ = &registry.counter(prefix + ".sent");
  backpressure_events_ = &registry.counter(prefix + ".backpressure_events");
  lost_ = &registry.counter(prefix + ".lost");
  bytes_ = &registry.counter(prefix + ".bytes");
  retries_ = &registry.counter(prefix + ".retries");
  pending_depth_ = &registry.gauge(prefix + ".pending");
}

void Producer::bind_metrics(common::MetricsRegistry& registry,
                            const std::string& prefix,
                            common::StageTracer* tracer) {
  std::lock_guard lock(mutex_);
  resolve_metrics_locked(registry, prefix);
  owned_metrics_.reset();  // all pointers now target the bound registry
  tracer_ = tracer;
}

common::Duration Producer::backoff_after(std::size_t attempts) const noexcept {
  double d = static_cast<double>(retry_.initial_backoff);
  for (std::size_t i = 1; i < attempts; ++i) {
    d *= retry_.multiplier;
    if (d >= static_cast<double>(retry_.max_backoff)) return retry_.max_backoff;
  }
  return std::min(retry_.max_backoff, static_cast<common::Duration>(d));
}

void Producer::record_delivery_locked(ProduceStatus status, std::size_t bytes,
                                      common::Timestamp origin,
                                      common::Timestamp now,
                                      std::vector<ProduceStatus>& events) {
  sent_->inc();
  bytes_->inc(bytes);
  if (tracer_ != nullptr) {
    tracer_->stamp(common::StageTracer::Stage::produce, now, origin);
  }
  if (status == ProduceStatus::low_buffer) {
    backpressure_events_->inc();
    events.push_back(status);
  }
}

void Producer::flush_locked(common::Timestamp now,
                            std::vector<ProduceStatus>& events) {
  while (!pending_.empty()) {
    PendingSend& p = pending_.front();
    if (p.next_attempt > now) break;
    const std::size_t bytes = p.msg.payload.size();
    const common::Timestamp origin = p.msg.timestamp;
    const ProduceStatus status = cluster_.produce(std::move(p.msg), now);
    retries_->inc();
    if (status == ProduceStatus::ok || status == ProduceStatus::low_buffer) {
      record_delivery_locked(status, bytes, origin, now, events);
      pending_.pop_front();
      continue;
    }
    ++p.attempts;
    backpressure_events_->inc();
    events.push_back(status);
    if (retry_.max_attempts != 0 && p.attempts >= retry_.max_attempts) {
      lost_->inc();
      pending_.pop_front();
      continue;  // the next buffered message gets its own tries
    }
    p.next_attempt = now + backoff_after(p.attempts);
    // Younger messages must not overtake this one (per-key order), so stop
    // the flush at the first message still backing off.
    break;
  }
  pending_depth_->set(static_cast<std::int64_t>(pending_.size()));
}

bool Producer::enqueue_locked(Message&& msg, common::Timestamp now) {
  if (pending_.size() >= retry_.max_buffered) {
    lost_->inc();
    return false;
  }
  PendingSend p;
  p.msg = std::move(msg);
  p.attempts = 1;
  p.next_attempt = now + backoff_after(1);
  pending_.push_back(std::move(p));
  pending_depth_->set(static_cast<std::int64_t>(pending_.size()));
  return true;
}

bool Producer::send(const std::string& topic, std::vector<std::byte> payload,
                    common::Timestamp now) {
  Message msg;
  msg.topic = topic;
  msg.key = producer_id_;
  msg.timestamp = now;
  const std::size_t bytes = payload.size();
  msg.payload = std::move(payload);

  bool accepted = true;
  std::vector<ProduceStatus> events;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    if (!pending_.empty()) {
      // Order: while older messages wait on backoff, new ones queue behind.
      accepted = enqueue_locked(std::move(msg), now);
    } else {
      const ProduceStatus status = cluster_.produce(std::move(msg), now);
      if (status == ProduceStatus::ok || status == ProduceStatus::low_buffer) {
        record_delivery_locked(status, bytes, now, now, events);
      } else {
        backpressure_events_->inc();
        events.push_back(status);
        accepted = enqueue_locked(std::move(msg), now);
      }
    }
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return accepted;
}

std::size_t Producer::flush(common::Timestamp now) {
  std::vector<ProduceStatus> events;
  std::size_t remaining = 0;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    remaining = pending_.size();
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return remaining;
}

std::size_t Producer::pending() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

ProducerStats Producer::stats() const {
  std::lock_guard lock(mutex_);
  ProducerStats s;
  s.sent = sent_->value();
  s.backpressure_events = backpressure_events_->value();
  s.lost = lost_->value();
  s.bytes = bytes_->value();
  s.retries = retries_->value();
  return s;
}

}  // namespace netalytics::mq
