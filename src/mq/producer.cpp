#include "mq/producer.hpp"

#include <algorithm>

namespace netalytics::mq {

Producer::Producer(Cluster& cluster, std::uint64_t producer_id,
                   BackpressureCallback on_backpressure, RetryPolicy retry,
                   BatchPolicy batch)
    : cluster_(cluster),
      producer_id_(producer_id),
      on_backpressure_(std::move(on_backpressure)),
      retry_(retry),
      batch_(batch) {
  if (retry_.multiplier < 1.0) retry_.multiplier = 1.0;
  if (retry_.initial_backoff == 0) retry_.initial_backoff = 1;
  if (batch_.max_records == 0) batch_.max_records = 1;
  owned_metrics_ = std::make_unique<common::MetricsRegistry>();
  resolve_metrics_locked(*owned_metrics_, "mq.producer");
}

void Producer::resolve_metrics_locked(common::MetricsRegistry& registry,
                                      const std::string& prefix) {
  sent_ = &registry.counter(prefix + ".sent");
  backpressure_events_ = &registry.counter(prefix + ".backpressure_events");
  lost_ = &registry.counter(prefix + ".lost");
  bytes_ = &registry.counter(prefix + ".bytes");
  retries_ = &registry.counter(prefix + ".retries");
  batches_ = &registry.counter(prefix + ".batches");
  sent_records_ = &registry.counter(prefix + ".sent_records");
  lost_records_ = &registry.counter(prefix + ".lost_records");
  pending_depth_ = &registry.gauge(prefix + ".pending");
}

void Producer::bind_metrics(common::MetricsRegistry& registry,
                            const std::string& prefix,
                            common::StageTracer* tracer,
                            common::TraceRecorder* recorder,
                            common::DropLedger* ledger) {
  std::lock_guard lock(mutex_);
  resolve_metrics_locked(registry, prefix);
  owned_metrics_.reset();  // all pointers now target the bound registry
  tracer_ = tracer;
  recorder_ = recorder;
  ledger_ = ledger;
}

common::Duration Producer::backoff_after(std::size_t attempts) const noexcept {
  double d = static_cast<double>(retry_.initial_backoff);
  for (std::size_t i = 1; i < attempts; ++i) {
    d *= retry_.multiplier;
    if (d >= static_cast<double>(retry_.max_backoff)) return retry_.max_backoff;
  }
  return std::min(retry_.max_backoff, static_cast<common::Duration>(d));
}

void Producer::record_delivery_locked(const Message& msg,
                                      std::span<const std::uint64_t> traces,
                                      ProduceStatus status, common::Timestamp now,
                                      std::vector<ProduceStatus>& events) {
  sent_->inc();
  sent_records_->inc(msg.records);
  bytes_->inc(msg.payload.size());
  if (tracer_ != nullptr) {
    tracer_->stamp(common::StageTracer::Stage::produce, now, msg.timestamp);
  }
  if (recorder_ != nullptr) {
    for (const std::uint64_t trace : traces) {
      recorder_->stamp(trace, common::TraceStage::produce, msg.timestamp, now);
    }
  }
  if (status == ProduceStatus::low_buffer) {
    backpressure_events_->inc();
    events.push_back(status);
  }
}

void Producer::lose_locked(const Message& msg, common::DropCause cause) {
  lost_->inc();
  lost_records_->inc(msg.records);
  if (ledger_ != nullptr) ledger_->add(cause, msg.records);
}

void Producer::flush_locked(common::Timestamp now,
                            std::vector<ProduceStatus>& events) {
  while (!pending_.empty()) {
    PendingSend& p = pending_.front();
    if (p.next_attempt > now) break;
    // A successful produce moves the message into the broker's log, taking
    // its trace-id vector with it; copy the ids first for span stamping.
    std::vector<std::uint64_t> traces;
    if (recorder_ != nullptr) traces = p.msg.traces;
    const ProduceStatus status = cluster_.produce(std::move(p.msg), now);
    retries_->inc();
    if (status == ProduceStatus::ok || status == ProduceStatus::low_buffer) {
      record_delivery_locked(p.msg, traces, status, now, events);
      pending_.pop_front();
      continue;
    }
    ++p.attempts;
    backpressure_events_->inc();
    events.push_back(status);
    if (retry_.max_attempts != 0 && p.attempts >= retry_.max_attempts) {
      lose_locked(p.msg, common::DropCause::produce_retries_exhausted);
      pending_.pop_front();
      continue;  // the next buffered message gets its own tries
    }
    p.next_attempt = now + backoff_after(p.attempts);
    // Younger messages must not overtake this one (per-key order), so stop
    // the flush at the first message still backing off.
    break;
  }
  pending_depth_->set(static_cast<std::int64_t>(pending_.size()));
}

bool Producer::enqueue_locked(Message&& msg, common::Timestamp now) {
  if (pending_.size() >= retry_.max_buffered) {
    lose_locked(msg, common::DropCause::produce_buffer_overflow);
    return false;
  }
  PendingSend p;
  p.msg = std::move(msg);
  p.attempts = 1;
  p.next_attempt = now + backoff_after(1);
  pending_.push_back(std::move(p));
  pending_depth_->set(static_cast<std::int64_t>(pending_.size()));
  return true;
}

bool Producer::ship_locked(OpenBatch& batch, common::Timestamp now,
                           std::vector<ProduceStatus>& events) {
  bool accepted = true;
  if (!pending_.empty()) {
    // Older messages are waiting on backoff; the whole batch queues behind
    // them so per-key order survives the retry.
    for (Message& msg : batch.msgs) {
      accepted = enqueue_locked(std::move(msg), now) && accepted;
    }
    return accepted;
  }

  ProduceStatus small_statuses[16];
  std::vector<ProduceStatus> big_statuses;
  std::span<ProduceStatus> statuses;
  if (batch.msgs.size() <= std::size(small_statuses)) {
    statuses = {small_statuses, batch.msgs.size()};
  } else {
    big_statuses.resize(batch.msgs.size());
    statuses = big_statuses;
  }
  // Appended messages move into the broker's log, trace ids included; copy
  // the ids first so delivered traced records get their produce span.
  std::vector<std::vector<std::uint64_t>> traces;
  if (recorder_ != nullptr) {
    traces.resize(batch.msgs.size());
    for (std::size_t i = 0; i < batch.msgs.size(); ++i) {
      traces[i] = batch.msgs[i].traces;
    }
  }
  cluster_.produce_batch(batch.msgs, now, statuses);
  batches_->inc();
  for (std::size_t i = 0; i < batch.msgs.size(); ++i) {
    const ProduceStatus status = statuses[i];
    if (status == ProduceStatus::ok || status == ProduceStatus::low_buffer) {
      // Appended (payload moved into the log); msgs[i] is a husk whose
      // scalar fields survive.
      record_delivery_locked(batch.msgs[i],
                             recorder_ != nullptr
                                 ? std::span<const std::uint64_t>(traces[i])
                                 : std::span<const std::uint64_t>{},
                             status, now, events);
      continue;
    }
    backpressure_events_->inc();
    events.push_back(status);
    accepted = enqueue_locked(std::move(batch.msgs[i]), now) && accepted;
  }
  return accepted;
}

void Producer::ship_due_locked(common::Timestamp now, DueMode mode,
                               std::vector<ProduceStatus>& events) {
  for (auto it = open_.begin(); it != open_.end();) {
    OpenBatch& batch = it->second;
    const bool due = mode == DueMode::all ||
                     (mode == DueMode::due ? batch.deadline <= now
                                           : batch.deadline < now);
    if (batch.msgs.empty() || !due) {
      ++it;
      continue;
    }
    ship_locked(batch, now, events);
    it = open_.erase(it);
  }
}

bool Producer::send(std::string_view topic, Payload payload,
                    common::Timestamp now, std::uint64_t records,
                    std::vector<std::uint64_t> traces) {
  bool accepted = true;
  std::vector<ProduceStatus> events;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    // Ship any batch whose linger deadline time has moved past — but not
    // batches due exactly "now": same-timestamp sends keep accumulating.
    ship_due_locked(now, DueMode::elapsed, events);

    auto it = open_.find(topic);
    if (it == open_.end()) {
      it = open_.emplace(std::string(topic), OpenBatch{}).first;
    }
    OpenBatch& batch = it->second;
    if (batch.msgs.empty()) {
      batch.bytes = 0;
      batch.deadline = now + batch_.linger;
      batch.msgs.reserve(batch_.max_records);
    }
    Message msg;
    msg.topic = it->first;
    msg.key = producer_id_;
    msg.timestamp = now;
    msg.records = records == 0 ? 1 : records;
    msg.traces = std::move(traces);
    batch.bytes += payload.size();
    msg.payload = std::move(payload);
    batch.msgs.push_back(std::move(msg));

    if (batch.msgs.size() >= batch_.max_records ||
        (batch_.max_bytes != 0 && batch.bytes >= batch_.max_bytes)) {
      accepted = ship_locked(batch, now, events);
      open_.erase(it);
    }
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return accepted;
}

std::size_t Producer::flush(common::Timestamp now) {
  std::vector<ProduceStatus> events;
  std::size_t remaining = 0;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    ship_due_locked(now, DueMode::due, events);
    remaining = pending_.size() + open_records_locked();
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return remaining;
}

std::size_t Producer::drain(common::Timestamp now) {
  std::vector<ProduceStatus> events;
  std::size_t remaining = 0;
  {
    std::lock_guard lock(mutex_);
    flush_locked(now, events);
    ship_due_locked(now, DueMode::all, events);
    remaining = pending_.size();
  }
  for (const ProduceStatus s : events) {
    if (on_backpressure_) on_backpressure_(s);
  }
  return remaining;
}

std::size_t Producer::open_records_locked() const {
  std::size_t n = 0;
  for (const auto& [topic, batch] : open_) n += batch.msgs.size();
  return n;
}

std::size_t Producer::pending() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t Producer::open_records() const {
  std::lock_guard lock(mutex_);
  return open_records_locked();
}

std::uint64_t Producer::held_records() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const PendingSend& p : pending_) n += p.msg.records;
  for (const auto& [topic, batch] : open_) {
    for (const Message& msg : batch.msgs) n += msg.records;
  }
  return n;
}

ProducerStats Producer::stats() const {
  std::lock_guard lock(mutex_);
  ProducerStats s;
  s.sent = sent_->value();
  s.backpressure_events = backpressure_events_->value();
  s.lost = lost_->value();
  s.bytes = bytes_->value();
  s.retries = retries_->value();
  s.batches = batches_->value();
  s.sent_records = sent_records_->value();
  s.lost_records = lost_records_->value();
  return s;
}

}  // namespace netalytics::mq
