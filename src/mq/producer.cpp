#include "mq/producer.hpp"

namespace netalytics::mq {

Producer::Producer(Cluster& cluster, std::uint64_t producer_id,
                   BackpressureCallback on_backpressure)
    : cluster_(cluster),
      producer_id_(producer_id),
      on_backpressure_(std::move(on_backpressure)) {}

bool Producer::send(const std::string& topic, std::vector<std::byte> payload,
                    common::Timestamp now) {
  Message msg;
  msg.topic = topic;
  msg.key = producer_id_;
  msg.timestamp = now;
  const std::size_t bytes = payload.size();
  msg.payload = std::move(payload);

  const ProduceStatus status = cluster_.produce(std::move(msg), now);
  {
    std::lock_guard lock(mutex_);
    switch (status) {
      case ProduceStatus::ok:
        ++stats_.sent;
        stats_.bytes += bytes;
        break;
      case ProduceStatus::low_buffer:
        ++stats_.sent;
        stats_.bytes += bytes;
        ++stats_.backpressure_events;
        break;
      case ProduceStatus::blocked:
      case ProduceStatus::dropped:
        ++stats_.lost;
        ++stats_.backpressure_events;
        break;
    }
  }
  if (status != ProduceStatus::ok && on_backpressure_) on_backpressure_(status);
  return status == ProduceStatus::ok || status == ProduceStatus::low_buffer;
}

ProducerStats Producer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace netalytics::mq
