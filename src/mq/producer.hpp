// Producer facade used by monitors' output interfaces. Adds Kafka-style
// batch accumulation and retry-aware delivery on top of the cluster, and
// surfaces backpressure to a callback — the hook the feedback-driven
// sampling mechanism uses: "the aggregator sends a status message back to
// the monitor indicating it has low buffer space" (§4.2).
//
// Batching: send() appends to a per-topic open batch that ships through
// Cluster::produce_batch when it reaches max_records/max_bytes, or when its
// linger deadline (virtual time) passes at the next send()/flush(). The
// default policy (max_records = 1) ships every message immediately —
// byte-for-byte the pre-batching behavior.
//
// Delivery is at-least-once: a message the broker refuses (blocked/dropped)
// is parked in a bounded send-buffer and retried with capped exponential
// backoff as virtual time advances; messages are only abandoned after
// max_attempts tries or when the buffer itself overflows. While anything is
// buffered, newly shipped batches queue behind it — and the broker holds
// back the remainder of a batch after a mid-batch failure — so the per-key
// order the cluster's hashing guarantees is preserved end to end.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string_view>

#include "common/trace.hpp"
#include "mq/cluster.hpp"

namespace netalytics::mq {

/// Invoked when the broker reports low buffer space or blocks on
/// persistence. The receiver (monitor side) lowers its sampling rate.
using BackpressureCallback = std::function<void(ProduceStatus status)>;

struct RetryPolicy {
  /// Total tries per message (first attempt included); 0 = retry forever.
  std::size_t max_attempts = 8;
  common::Duration initial_backoff = common::kMillisecond;
  double multiplier = 2.0;
  common::Duration max_backoff = 64 * common::kMillisecond;
  /// Send-buffer cap; a refused send is abandoned once the buffer is full.
  std::size_t max_buffered = 16384;
};

/// Kafka-style accumulation knobs. A batch ships as soon as any trigger
/// fires; an open batch whose linger deadline has passed ships at the next
/// send() or flush() (virtual time only advances through those calls).
struct BatchPolicy {
  /// Records per topic batch; 1 = ship every send immediately (legacy).
  std::size_t max_records = 1;
  /// Payload bytes per topic batch; 0 = no byte trigger.
  std::size_t max_bytes = 0;
  /// How long the first record of a batch may wait for companions. 0 means
  /// "ship at the next flush()" — in the engine, at the next pump.
  common::Duration linger = 0;
};

/// Thin typed view over the producer's registry counters (the numbers live
/// in the MetricsRegistry; stats() copies them out).
struct ProducerStats {
  std::uint64_t sent = 0;
  std::uint64_t backpressure_events = 0;
  std::uint64_t lost = 0;     // abandoned after retries / buffer overflow
  std::uint64_t bytes = 0;
  std::uint64_t retries = 0;  // re-send attempts of buffered messages
  std::uint64_t batches = 0;  // produce_batch calls that shipped records
  std::uint64_t sent_records = 0;  // parser records inside delivered messages
  std::uint64_t lost_records = 0;  // parser records inside abandoned messages
};

class Producer {
 public:
  Producer(Cluster& cluster, std::uint64_t producer_id,
           BackpressureCallback on_backpressure = nullptr,
           RetryPolicy retry = {}, BatchPolicy batch = {});

  /// Send one payload (a serialized record batch). The payload joins the
  /// topic's open batch (and may ship immediately, per BatchPolicy); a
  /// refused ship is buffered for retry. Returns false only if the message
  /// was abandoned right away (send-buffer full at ship time). Thread-safe.
  /// `records` is the parser-record count inside the payload (drop and
  /// delivery accounting works in records); `traces` carries the trace ids
  /// of sampled records for produce-stage span stamping.
  bool send(std::string_view topic, Payload payload, common::Timestamp now,
            std::uint64_t records = 1, std::vector<std::uint64_t> traces = {});

  /// Ship open batches whose size or linger deadline is due, then retry
  /// buffered messages whose backoff has expired. Call as time advances
  /// (the engine does this every pump). Returns messages still held
  /// (retry buffer + open batches) afterwards.
  std::size_t flush(common::Timestamp now);

  /// Force-ship every open batch regardless of linger, then flush retries.
  /// The engine calls this at query teardown. Returns messages still in
  /// the retry buffer.
  std::size_t drain(common::Timestamp now);

  /// Retry-buffer depth (messages refused by the broker awaiting backoff).
  std::size_t pending() const;
  /// Records accumulated in open (not yet shipped) batches.
  std::size_t open_records() const;
  /// Parser records held anywhere inside the producer (retry buffer plus
  /// open batches) — the producer's in-flight term in engine.reconcile().
  std::uint64_t held_records() const;
  const RetryPolicy& retry_policy() const noexcept { return retry_; }
  const BatchPolicy& batch_policy() const noexcept { return batch_; }
  ProducerStats stats() const;

  /// Re-home counters into `registry` under `prefix` (e.g. "q0.producer1")
  /// and, when `tracer` is given, stamp the produce stage (send -> broker
  /// append, i.e. linger + retry/backoff + persistence delay) on every
  /// delivery. `recorder` gets a per-trace produce span per delivered
  /// traced record; `ledger` gets every abandoned record attributed to its
  /// cause. Bind before traffic starts.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix,
                    common::StageTracer* tracer = nullptr,
                    common::TraceRecorder* recorder = nullptr,
                    common::DropLedger* ledger = nullptr);

 private:
  struct PendingSend {
    Message msg;
    std::size_t attempts = 0;  // tries already made
    common::Timestamp next_attempt = 0;
  };
  struct OpenBatch {
    std::vector<Message> msgs;
    std::size_t bytes = 0;
    common::Timestamp deadline = 0;  // first record's arrival + linger
  };

  /// Backoff after `attempts` failed tries: initial * multiplier^(n-1),
  /// capped at max_backoff.
  common::Duration backoff_after(std::size_t attempts) const noexcept;
  void flush_locked(common::Timestamp now, std::vector<ProduceStatus>& events);
  /// Ship one open batch through the cluster (or queue it behind the retry
  /// buffer). Returns false if any message was abandoned.
  bool ship_locked(OpenBatch& batch, common::Timestamp now,
                   std::vector<ProduceStatus>& events);
  /// Which open batches to ship: `elapsed` = linger deadline strictly past
  /// (send path — batches keep accumulating across same-timestamp sends),
  /// `due` = deadline reached (flush path), `all` = force (drain path).
  enum class DueMode { elapsed, due, all };
  void ship_due_locked(common::Timestamp now, DueMode mode,
                       std::vector<ProduceStatus>& events);
  bool enqueue_locked(Message&& msg, common::Timestamp now);
  /// `msg` may be a moved-from husk (scalar fields survive the move);
  /// `traces` is the pre-move copy of its trace ids.
  void record_delivery_locked(const Message& msg,
                              std::span<const std::uint64_t> traces,
                              ProduceStatus status, common::Timestamp now,
                              std::vector<ProduceStatus>& events);
  /// Account one abandoned message (counters + ledger).
  void lose_locked(const Message& msg, common::DropCause cause);
  void resolve_metrics_locked(common::MetricsRegistry& registry,
                              const std::string& prefix);
  std::size_t open_records_locked() const;

  Cluster& cluster_;
  std::uint64_t producer_id_;
  BackpressureCallback on_backpressure_;
  RetryPolicy retry_;
  BatchPolicy batch_;
  mutable std::mutex mutex_;
  std::deque<PendingSend> pending_;
  std::map<std::string, OpenBatch, std::less<>> open_;
  // Counters live in the bound (or owned fallback) registry.
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::Counter* sent_ = nullptr;
  common::Counter* backpressure_events_ = nullptr;
  common::Counter* lost_ = nullptr;
  common::Counter* bytes_ = nullptr;
  common::Counter* retries_ = nullptr;
  common::Counter* batches_ = nullptr;
  common::Counter* sent_records_ = nullptr;
  common::Counter* lost_records_ = nullptr;
  common::Gauge* pending_depth_ = nullptr;  // retry-buffer depth
  common::StageTracer* tracer_ = nullptr;
  common::TraceRecorder* recorder_ = nullptr;
  common::DropLedger* ledger_ = nullptr;
};

}  // namespace netalytics::mq
