// Producer facade used by monitors' output interfaces. Adds retry-aware
// delivery on top of the cluster and surfaces backpressure to a callback —
// the hook the feedback-driven sampling mechanism uses: "the aggregator
// sends a status message back to the monitor indicating it has low buffer
// space" (§4.2).
#pragma once

#include <functional>

#include "mq/cluster.hpp"

namespace netalytics::mq {

/// Invoked when the broker reports low buffer space or blocks on
/// persistence. The receiver (monitor side) lowers its sampling rate.
using BackpressureCallback = std::function<void(ProduceStatus status)>;

struct ProducerStats {
  std::uint64_t sent = 0;
  std::uint64_t backpressure_events = 0;
  std::uint64_t lost = 0;  // blocked sends abandoned after retries
  std::uint64_t bytes = 0;
};

class Producer {
 public:
  Producer(Cluster& cluster, std::uint64_t producer_id,
           BackpressureCallback on_backpressure = nullptr);

  /// Send one payload (a serialized record batch). Returns false if the
  /// message was abandoned because the broker stayed blocked.
  bool send(const std::string& topic, std::vector<std::byte> payload,
            common::Timestamp now);

  ProducerStats stats() const;

 private:
  Cluster& cluster_;
  std::uint64_t producer_id_;
  BackpressureCallback on_backpressure_;
  mutable std::mutex mutex_;
  ProducerStats stats_;
};

}  // namespace netalytics::mq
