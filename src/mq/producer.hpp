// Producer facade used by monitors' output interfaces. Adds retry-aware
// delivery on top of the cluster and surfaces backpressure to a callback —
// the hook the feedback-driven sampling mechanism uses: "the aggregator
// sends a status message back to the monitor indicating it has low buffer
// space" (§4.2).
//
// Delivery is at-least-once: a send the broker refuses (blocked/dropped) is
// parked in a bounded send-buffer and retried with capped exponential
// backoff as virtual time advances; messages are only abandoned after
// max_attempts tries or when the buffer itself overflows. While anything is
// buffered, new sends queue behind it, so the per-key order the cluster's
// hashing guarantees is preserved end to end.
#pragma once

#include <deque>
#include <functional>

#include "mq/cluster.hpp"

namespace netalytics::mq {

/// Invoked when the broker reports low buffer space or blocks on
/// persistence. The receiver (monitor side) lowers its sampling rate.
using BackpressureCallback = std::function<void(ProduceStatus status)>;

struct RetryPolicy {
  /// Total tries per message (first attempt included); 0 = retry forever.
  std::size_t max_attempts = 8;
  common::Duration initial_backoff = common::kMillisecond;
  double multiplier = 2.0;
  common::Duration max_backoff = 64 * common::kMillisecond;
  /// Send-buffer cap; a refused send is abandoned once the buffer is full.
  std::size_t max_buffered = 16384;
};

/// Thin typed view over the producer's registry counters (the numbers live
/// in the MetricsRegistry; stats() copies them out).
struct ProducerStats {
  std::uint64_t sent = 0;
  std::uint64_t backpressure_events = 0;
  std::uint64_t lost = 0;     // abandoned after retries / buffer overflow
  std::uint64_t bytes = 0;
  std::uint64_t retries = 0;  // re-send attempts of buffered messages
};

class Producer {
 public:
  Producer(Cluster& cluster, std::uint64_t producer_id,
           BackpressureCallback on_backpressure = nullptr,
           RetryPolicy retry = {});

  /// Send one payload (a serialized record batch). A refused send is
  /// buffered for retry; returns false only if the message was abandoned
  /// (send-buffer full). Flushes due retries first.
  bool send(const std::string& topic, std::vector<std::byte> payload,
            common::Timestamp now);

  /// Retry buffered messages whose backoff has expired. Call as time
  /// advances (the engine does this every pump). Returns messages still
  /// buffered afterwards.
  std::size_t flush(common::Timestamp now);

  std::size_t pending() const;
  const RetryPolicy& retry_policy() const noexcept { return retry_; }
  ProducerStats stats() const;

  /// Re-home counters into `registry` under `prefix` (e.g. "q0.producer1")
  /// and, when `tracer` is given, stamp the produce stage (send -> broker
  /// append, i.e. retry/backoff + persistence delay) on every delivery.
  /// Bind before traffic starts.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix,
                    common::StageTracer* tracer = nullptr);

 private:
  struct PendingSend {
    Message msg;
    std::size_t attempts = 0;  // tries already made
    common::Timestamp next_attempt = 0;
  };

  /// Backoff after `attempts` failed tries: initial * multiplier^(n-1),
  /// capped at max_backoff.
  common::Duration backoff_after(std::size_t attempts) const noexcept;
  void flush_locked(common::Timestamp now, std::vector<ProduceStatus>& events);
  bool enqueue_locked(Message&& msg, common::Timestamp now);
  void record_delivery_locked(ProduceStatus status, std::size_t bytes,
                              common::Timestamp origin, common::Timestamp now,
                              std::vector<ProduceStatus>& events);
  void resolve_metrics_locked(common::MetricsRegistry& registry,
                              const std::string& prefix);

  Cluster& cluster_;
  std::uint64_t producer_id_;
  BackpressureCallback on_backpressure_;
  RetryPolicy retry_;
  mutable std::mutex mutex_;
  std::deque<PendingSend> pending_;
  // Counters live in the bound (or owned fallback) registry.
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::Counter* sent_ = nullptr;
  common::Counter* backpressure_events_ = nullptr;
  common::Counter* lost_ = nullptr;
  common::Counter* bytes_ = nullptr;
  common::Counter* retries_ = nullptr;
  common::Gauge* pending_depth_ = nullptr;  // retry-buffer depth
  common::StageTracer* tracer_ = nullptr;
};

}  // namespace netalytics::mq
