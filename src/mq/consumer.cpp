#include "mq/consumer.hpp"

namespace netalytics::mq {

Consumer::Consumer(Cluster& cluster, std::string group, bool join_group)
    : cluster_(cluster), group_(std::move(group)), grouped_(join_group) {
  if (join_group) member_ = cluster_.coordinator().join(group_);
}

Consumer::~Consumer() { leave(); }

std::vector<Message> Consumer::poll(std::string_view topic, std::size_t max) {
  // A departed member owns no partitions — it must not fall back to the
  // member-less poll-everything path, which would double-deliver against
  // the survivors' shared cursors.
  if (grouped_ && member_ == 0) return {};
  auto out = cluster_.poll(group_, topic, max, member_);
  consumed_ += out.size();
  return out;
}

FetchBatch Consumer::poll_batch(std::string_view topic, std::size_t max) {
  if (grouped_ && member_ == 0) return {};
  auto out = cluster_.poll_batch(group_, topic, max, member_);
  consumed_ += out.records.size();
  return out;
}

void Consumer::leave() {
  if (member_ == 0) return;
  cluster_.coordinator().leave(group_, member_);
  member_ = 0;
}

void Consumer::rejoin() {
  if (member_ != 0) return;
  member_ = cluster_.coordinator().join(group_);
}

}  // namespace netalytics::mq
