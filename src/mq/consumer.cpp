#include "mq/consumer.hpp"

namespace netalytics::mq {

Consumer::Consumer(Cluster& cluster, std::string group)
    : cluster_(cluster), group_(std::move(group)) {}

std::vector<Message> Consumer::poll(std::string_view topic, std::size_t max) {
  auto out = cluster_.poll(group_, topic, max);
  consumed_ += out.size();
  return out;
}

}  // namespace netalytics::mq
