// Messages in the aggregation layer (§3.2). A message is one serialized
// record batch from a monitor; the topic is the parser type, "since the
// parser type is used to select a buffer".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::mq {

struct Message {
  std::string topic;
  std::uint64_t key = 0;  // partition selector (e.g. monitor id hash)
  std::vector<std::byte> payload;
  common::Timestamp timestamp = 0;
  std::uint64_t offset = 0;  // assigned by the broker on append
};

}  // namespace netalytics::mq
