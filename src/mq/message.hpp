// Messages in the aggregation layer (§3.2). A message is one serialized
// record batch from a monitor; the topic is the parser type, "since the
// parser type is used to select a buffer".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::mq {

/// Immutable, refcounted payload buffer — the mq analogue of a
/// net::PacketPool descriptor. A Payload is created once (adopting the
/// producer's serialized batch without copying it) and then shared by
/// reference: the broker's log, every poll result and every retry buffer
/// entry hold the same bytes, so the consume path never deep-copies.
class Payload {
 public:
  Payload() = default;

  /// Adopt `bytes` (no copy): the vector becomes the shared owner and the
  /// payload aliases its storage. Implicit so existing call sites that pass
  /// a std::vector<std::byte> keep working.
  Payload(std::vector<std::byte> bytes) {  // NOLINT(google-explicit-constructor)
    if (bytes.empty()) return;
    auto owner = std::make_shared<std::vector<std::byte>>(std::move(bytes));
    size_ = owner->size();
    const std::byte* p = owner->data();
    data_ = std::shared_ptr<const std::byte>(std::move(owner), p);
  }

  /// Copy `bytes` into a fresh shared buffer (for callers that only have a
  /// borrowed view).
  static Payload copy_of(std::span<const std::byte> bytes) {
    return Payload(std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  std::span<const std::byte> view() const noexcept { return {data_.get(), size_}; }
  operator std::span<const std::byte>() const noexcept {  // NOLINT
    return view();
  }

  const std::byte* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::byte operator[](std::size_t i) const noexcept { return data_.get()[i]; }

  /// How many Payload instances share these bytes. A polled message whose
  /// use_count() > 1 proves the poll path did not deep-copy (the broker's
  /// log still holds the other reference) — asserted by bench_mq_throughput.
  long use_count() const noexcept { return data_.use_count(); }

 private:
  std::shared_ptr<const std::byte> data_;  // aliases the owning vector
  std::size_t size_ = 0;
};

struct Message {
  std::string topic;
  std::uint64_t key = 0;  // partition selector (e.g. monitor id hash)
  Payload payload;
  common::Timestamp timestamp = 0;  // set by the producer at send()
  std::uint64_t offset = 0;   // assigned by the broker on append
  /// Broker append time, stamped in produce(). timestamp..append_ts is the
  /// produce-stage latency (retries, backoff, persistence); append_ts..poll
  /// is the consume-stage latency measured by the spout.
  common::Timestamp append_ts = 0;
  /// Parser records inside the payload. Drop accounting works in records —
  /// a lost message loses `records` records, not one unit — so the count
  /// rides with the message instead of being re-parsed from the payload.
  std::uint64_t records = 1;
  /// Trace ids of the sampled records inside the payload (usually empty).
  std::vector<std::uint64_t> traces;
};

/// One fetched message without the per-message header copies poll() pays:
/// the topic lives once on the enclosing FetchBatch instead of being a
/// fresh std::string per message, and the payload bytes stay shared with
/// the broker log (refcounted). The only remaining allocation is `traces`,
/// and only for the 1-in-N sampled messages that carry any.
struct FetchedRecord {
  std::uint64_t key = 0;
  Payload payload;
  common::Timestamp timestamp = 0;
  std::uint64_t offset = 0;
  common::Timestamp append_ts = 0;
  std::uint64_t records = 1;
  std::vector<std::uint64_t> traces;
};

/// A contiguous run of FetchBatch::records fetched from one partition, in
/// offset order — the "ring slice" view of a poll: consumers that care
/// which shard data came from (per-partition ordering checks, rebalance
/// accounting) read the slices; consumers that don't just scan `records`.
struct PartitionSlice {
  std::size_t broker = 0;     // filled by Cluster::poll_batch
  std::size_t partition = 0;  // partition index within the broker
  std::size_t begin = 0;      // [begin, end) into FetchBatch::records
  std::size_t end = 0;
};

/// Result of a batched fetch: one topic header for the whole batch.
struct FetchBatch {
  std::string topic;
  std::vector<FetchedRecord> records;
  std::vector<PartitionSlice> slices;  // per-partition runs, fetch order
  std::uint64_t total_records = 0;     // Σ records[i].records

  bool empty() const noexcept { return records.empty(); }
  std::size_t size() const noexcept { return records.size(); }
};

}  // namespace netalytics::mq
