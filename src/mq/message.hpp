// Messages in the aggregation layer (§3.2). A message is one serialized
// record batch from a monitor; the topic is the parser type, "since the
// parser type is used to select a buffer".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::mq {

struct Message {
  std::string topic;
  std::uint64_t key = 0;  // partition selector (e.g. monitor id hash)
  std::vector<std::byte> payload;
  common::Timestamp timestamp = 0;  // set by the producer at send()
  std::uint64_t offset = 0;   // assigned by the broker on append
  /// Broker append time, stamped in produce(). timestamp..append_ts is the
  /// produce-stage latency (retries, backoff, persistence); append_ts..poll
  /// is the consume-stage latency measured by the spout.
  common::Timestamp append_ts = 0;
};

}  // namespace netalytics::mq
