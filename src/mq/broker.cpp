#include "mq/broker.hpp"

#include <algorithm>
#include <cassert>

#include "common/hash.hpp"

namespace netalytics::mq {

Broker::Broker(BrokerConfig config) : config_(config) {
  if (config_.partitions_per_topic == 0) config_.partitions_per_topic = 1;
  if (config_.partition_capacity == 0) config_.partition_capacity = 1;
  owned_metrics_ = std::make_unique<common::MetricsRegistry>();
  resolve_metrics(*owned_metrics_, "mq.broker");
  install_faults(nullptr);
}

void Broker::resolve_metrics(common::MetricsRegistry& registry,
                             const std::string& prefix) {
  produced_ = &registry.counter(prefix + ".produced");
  blocked_ = &registry.counter(prefix + ".blocked");
  dropped_retention_ = &registry.counter(prefix + ".dropped_retention");
  consumed_ = &registry.counter(prefix + ".consumed");
  bytes_in_ = &registry.counter(prefix + ".bytes_in");
  produced_records_ = &registry.counter(prefix + ".produced_records");
  consumed_records_ = &registry.counter(prefix + ".consumed_records");
  evicted_unread_records_ = &registry.counter(prefix + ".evicted_unread_records");
  duplicated_records_ = &registry.counter(prefix + ".duplicated_records");
  eviction_lag_ = &registry.gauge(prefix + ".eviction_lag");
  faulted_down_ = &registry.counter(prefix + ".faulted_down");
  faulted_reject_ = &registry.counter(prefix + ".faulted_reject");
  faulted_delay_ = &registry.counter(prefix + ".faulted_delay");
  faulted_duplicate_ = &registry.counter(prefix + ".faulted_duplicate");
}

void Broker::bind_metrics(common::MetricsRegistry& registry,
                          const std::string& prefix) {
  std::unique_lock lock(registry_mutex_);
  resolve_metrics(registry, prefix);
  owned_metrics_.reset();  // all pointers now target the bound registry
}

void Broker::install_faults(common::FaultPlan* plan, std::string site_prefix) {
  std::unique_lock lock(registry_mutex_);
  faults_ = plan;
  const auto site = [&site_prefix](std::string_view suffix) {
    std::string s = site_prefix;
    s += '.';
    s += suffix;
    return s;
  };
  site_down_ = site(kFaultDown);
  site_reject_ = site(kFaultReject);
  site_delay_ = site(kFaultDelay);
  site_duplicate_ = site(kFaultDuplicate);
}

bool Broker::fault(const std::string& site, common::Timestamp now) {
  if (faults_ == nullptr) return false;
  return faults_->should_fail(site, now);
}

Broker::Topic* Broker::find_topic(std::string_view name) const {
  std::shared_lock lock(registry_mutex_);
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second.get();
}

Broker::Topic& Broker::topic(std::string_view name) {
  if (Topic* t = find_topic(name)) return *t;
  std::unique_lock lock(registry_mutex_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    auto t = std::make_unique<Topic>();
    t->partitions.reserve(config_.partitions_per_topic);
    for (std::size_t i = 0; i < config_.partitions_per_topic; ++i) {
      t->partitions.push_back(std::make_unique<Partition>());
    }
    it = topics_.emplace(std::string(name), std::move(t)).first;
  }
  return *it->second;
}

std::size_t Broker::unread(const Partition& part) {
  if (part.group_offsets.empty()) return part.log.size();
  std::uint64_t slowest = part.next_offset;
  for (const auto& [group, offset] : part.group_offsets) {
    slowest = std::min(slowest, offset);
  }
  const std::uint64_t floor = std::max(slowest, part.base_offset);
  return static_cast<std::size_t>(part.next_offset - floor);
}

std::uint64_t Broker::evict_front(Partition& part) {
  std::uint64_t slowest = part.base_offset;  // no groups: nothing read yet
  if (!part.group_offsets.empty()) {
    slowest = part.next_offset;
    for (const auto& [group, offset] : part.group_offsets) {
      slowest = std::min(slowest, offset);
    }
  }
  const Message& front = part.log.front();
  const std::uint64_t lost = slowest <= front.offset ? front.records : 0;
  part.log.pop_front();
  ++part.base_offset;
  return lost;
}

bool Broker::disk_admit(std::size_t bytes, common::Timestamp now) {
  // Disk persistence model: every byte takes 1/rate seconds to persist; the
  // log's write point may lag `now` by at most max_persist_lag.
  if (config_.persist_bytes_per_sec == 0) return true;
  const common::Duration cost = static_cast<common::Duration>(
      static_cast<double>(bytes) /
      static_cast<double>(config_.persist_bytes_per_sec) *
      static_cast<double>(common::kSecond));
  std::lock_guard lock(disk_mutex_);
  const common::Timestamp start = std::max(disk_busy_until_, now);
  if (start + cost > now + config_.max_persist_lag) return false;
  disk_busy_until_ = start + cost;
  return true;
}

ProduceStatus Broker::produce(Message&& msg, common::Timestamp now) {
  ProduceStatus status = ProduceStatus::ok;
  produce_batch({&msg, 1}, now, {&status, 1});
  return status;
}

void Broker::produce_batch(std::span<Message> msgs, common::Timestamp now,
                           std::span<ProduceStatus> statuses) {
  assert(msgs.size() == statuses.size());
  if (msgs.empty()) return;

  common::Timestamp seen = last_now_.load(std::memory_order_relaxed);
  while (seen < now &&
         !last_now_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }

  // Pass 1 (no messages moved yet, so views into them are safe): resolve
  // every message to its partition, caching the last topic resolution —
  // producer batches are single-topic, so the registry lock is typically
  // taken once per batch.
  Partition* small_parts[16];
  std::vector<Partition*> big_parts;
  std::span<Partition*> parts;
  if (msgs.size() <= std::size(small_parts)) {
    parts = {small_parts, msgs.size()};
  } else {
    big_parts.resize(msgs.size());
    parts = big_parts;
  }
  {
    std::string_view cached_name;
    Topic* cached_topic = nullptr;
    for (std::size_t j = 0; j < msgs.size(); ++j) {
      if (cached_topic == nullptr || msgs[j].topic != cached_name) {
        cached_topic = &topic(msgs[j].topic);
        cached_name = msgs[j].topic;
      }
      const std::size_t index = common::hash_to_bucket(
          common::mix64(msgs[j].key), cached_topic->partitions.size());
      parts[j] = cached_topic->partitions[index].get();
    }
  }

  // Per-key order under retry: once a message of a partition fails, the
  // rest of this batch's messages for that partition are held back (the
  // producer will retry them in order). Batches touch very few partitions,
  // so a flat list beats a hash set.
  std::vector<Partition*> stalled;

  // Pass 2: append runs of same-partition messages under one lock
  // acquisition each. Counter increments are batched per run — the shared
  // atomics are the one cache line every producer thread would otherwise
  // fight over once the locks shard.
  std::size_t i = 0;
  while (i < msgs.size()) {
    Partition& part = *parts[i];
    std::size_t end = i + 1;
    while (end < msgs.size() && parts[end] == &part) ++end;

    std::uint64_t n_produced = 0, n_bytes = 0, n_blocked = 0, n_evicted = 0;
    std::uint64_t n_down = 0, n_reject = 0;
    std::uint64_t n_records = 0, n_evicted_unread = 0;
    std::int64_t oldest_age = -1;
    {
      std::unique_lock part_lock(part.mutex);
      // Age retention first (Kafka's retention.ms): virtual time only
      // advances through produce, so expiry is enforced here.
      if (config_.retention_age != 0) {
        while (!part.log.empty() &&
               part.log.front().append_ts + config_.retention_age < now) {
          n_evicted_unread += evict_front(part);
          ++n_evicted;
        }
      }
      for (std::size_t j = i; j < end; ++j) {
        Message& msg = msgs[j];
        if (std::find(stalled.begin(), stalled.end(), &part) != stalled.end()) {
          statuses[j] = ProduceStatus::blocked;
          ++n_blocked;
          continue;
        }
        if (fault(site_down_, now)) {
          ++n_down;
          ++n_blocked;
          statuses[j] = ProduceStatus::blocked;
          stalled.push_back(&part);
          continue;
        }
        if (fault(site_reject_, now)) {
          ++n_reject;
          statuses[j] = ProduceStatus::dropped;
          stalled.push_back(&part);
          continue;
        }
        if (!disk_admit(msg.payload.size(), now)) {
          ++n_blocked;
          statuses[j] = ProduceStatus::blocked;
          stalled.push_back(&part);
          continue;
        }

        // Retention: evict the oldest message when the partition is full
        // (size cap; the age cap ran above).
        if (part.log.size() >= config_.partition_capacity) {
          n_evicted_unread += evict_front(part);
          ++n_evicted;
        }

        msg.offset = part.next_offset++;
        msg.append_ts = now;
        n_bytes += msg.payload.size();
        ++n_produced;
        n_records += msg.records;
        part.log.push_back(std::move(msg));

        const double occ = static_cast<double>(unread(part)) /
                           static_cast<double>(config_.partition_capacity);
        statuses[j] = occ >= config_.high_watermark ? ProduceStatus::low_buffer
                                                    : ProduceStatus::ok;
      }
      if (!part.log.empty() && now >= part.log.front().append_ts) {
        oldest_age = static_cast<std::int64_t>(now - part.log.front().append_ts);
      }
    }
    if (n_produced != 0) produced_->inc(n_produced);
    if (n_bytes != 0) bytes_in_->inc(n_bytes);
    if (n_blocked != 0) blocked_->inc(n_blocked);
    if (n_evicted != 0) dropped_retention_->inc(n_evicted);
    if (n_records != 0) produced_records_->inc(n_records);
    if (n_evicted_unread != 0) {
      evicted_unread_records_->inc(n_evicted_unread);
      if (drop_ledger_ != nullptr) {
        drop_ledger_->add(common::DropCause::broker_retention, n_evicted_unread);
      }
    }
    if (oldest_age >= 0) eviction_lag_->set(oldest_age);
    if (n_down != 0) faulted_down_->inc(n_down);
    if (n_reject != 0) faulted_reject_->inc(n_reject);
    i = end;
  }
}

std::vector<Message> Broker::poll(std::string_view group,
                                  std::string_view topic_name, std::size_t max) {
  return poll(group, topic_name, max, {});
}

std::vector<Message> Broker::poll(std::string_view group,
                                  std::string_view topic_name, std::size_t max,
                                  std::span<const std::size_t> partitions) {
  FetchBatch batch = poll_batch(group, topic_name, max, partitions);
  std::vector<Message> out;
  out.reserve(batch.records.size());
  for (auto& r : batch.records) {
    Message m;
    m.topic = batch.topic;
    m.key = r.key;
    m.payload = std::move(r.payload);
    m.timestamp = r.timestamp;
    m.offset = r.offset;
    m.append_ts = r.append_ts;
    m.records = r.records;
    m.traces = std::move(r.traces);
    out.push_back(std::move(m));
  }
  return out;
}

FetchBatch Broker::poll_batch(std::string_view group,
                              std::string_view topic_name, std::size_t max,
                              std::span<const std::size_t> partitions) {
  FetchBatch out;
  out.topic = std::string(topic_name);
  const common::Timestamp now = last_now_.load(std::memory_order_relaxed);
  // A down broker serves no fetches either; group offsets are untouched, so
  // consumers simply re-poll from where they left off after recovery.
  if (fault(site_down_, now)) {
    faulted_down_->inc();
    return out;
  }
  Topic* top = find_topic(topic_name);
  if (top == nullptr) return out;

  // The log message outlives the poll (retention evicts, consuming does
  // not), so a record is a cheap header copy plus a payload refcount bump.
  const auto fetch = [&out](const Message& m) {
    out.records.push_back(FetchedRecord{.key = m.key,
                                        .payload = m.payload,
                                        .timestamp = m.timestamp,
                                        .offset = m.offset,
                                        .append_ts = m.append_ts,
                                        .records = m.records,
                                        .traces = m.traces});
    out.total_records += m.records;
  };

  const std::size_t count =
      partitions.empty() ? top->partitions.size() : partitions.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (out.records.size() >= max) break;
    const std::size_t index = partitions.empty() ? i : partitions[i];
    if (index >= top->partitions.size()) continue;
    Partition& part = *top->partitions[index];
    const std::size_t begin = out.records.size();
    std::lock_guard part_lock(part.mutex);
    auto it = part.group_offsets.find(group);
    if (it == part.group_offsets.end()) {
      it = part.group_offsets.emplace(std::string(group), 0).first;
    }
    std::uint64_t& next = it->second;
    // If retention ran past the group's offset, skip to the oldest retained.
    if (next < part.base_offset) next = part.base_offset;
    while (next < part.next_offset && out.records.size() < max) {
      if (fault(site_delay_, now)) {
        // Hold the rest of this partition back; it arrives next poll, in
        // order, because `next` was not advanced.
        faulted_delay_->inc();
        break;
      }
      fetch(part.log[next - part.base_offset]);
      if (out.records.size() < max && fault(site_duplicate_, now)) {
        // Re-deliver adjacent to the original: same offset, so per-key
        // order (non-decreasing offsets) still holds.
        faulted_duplicate_->inc();
        duplicated_records_->inc(part.log[next - part.base_offset].records);
        fetch(part.log[next - part.base_offset]);
      }
      ++next;
    }
    if (out.records.size() > begin) {
      out.slices.push_back(PartitionSlice{
          .broker = 0, .partition = index, .begin = begin,
          .end = out.records.size()});
    }
  }
  consumed_->inc(out.records.size());
  if (out.total_records != 0) consumed_records_->inc(out.total_records);
  return out;
}

double Broker::occupancy(std::string_view topic_name) const {
  Topic* top = find_topic(topic_name);
  if (top == nullptr) return 0.0;
  std::size_t worst = 0;
  for (const auto& part_ptr : top->partitions) {
    std::lock_guard part_lock(part_ptr->mutex);
    worst = std::max(worst, unread(*part_ptr));
  }
  return static_cast<double>(worst) / static_cast<double>(config_.partition_capacity);
}

std::size_t Broker::depth(std::string_view topic_name) const {
  Topic* top = find_topic(topic_name);
  if (top == nullptr) return 0;
  std::size_t total = 0;
  for (const auto& part_ptr : top->partitions) {
    std::lock_guard part_lock(part_ptr->mutex);
    total += part_ptr->log.size();
  }
  return total;
}

std::uint64_t Broker::unread_records(std::string_view topic_name) const {
  Topic* top = find_topic(topic_name);
  if (top == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& part_ptr : top->partitions) {
    Partition& part = *part_ptr;
    std::lock_guard part_lock(part.mutex);
    const std::size_t n = unread(part);
    // The unread tail is the last n log entries (groups read in order).
    for (std::size_t i = part.log.size() - n; i < part.log.size(); ++i) {
      total += part.log[i].records;
    }
  }
  return total;
}

BrokerStats Broker::stats() const {
  // Counters are relaxed atomics; a stats snapshot needs no lock.
  BrokerStats s;
  s.produced = produced_->value();
  s.blocked = blocked_->value();
  s.dropped_retention = dropped_retention_->value();
  s.consumed = consumed_->value();
  s.bytes_in = bytes_in_->value();
  s.produced_records = produced_records_->value();
  s.consumed_records = consumed_records_->value();
  s.evicted_unread_records = evicted_unread_records_->value();
  s.duplicated_records = duplicated_records_->value();
  s.faulted_down = faulted_down_->value();
  s.faulted_reject = faulted_reject_->value();
  s.faulted_delay = faulted_delay_->value();
  s.faulted_duplicate = faulted_duplicate_->value();
  return s;
}

}  // namespace netalytics::mq
