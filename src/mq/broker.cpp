#include "mq/broker.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace netalytics::mq {

Broker::Broker(BrokerConfig config) : config_(config) {
  if (config_.partitions_per_topic == 0) config_.partitions_per_topic = 1;
  if (config_.partition_capacity == 0) config_.partition_capacity = 1;
  owned_metrics_ = std::make_unique<common::MetricsRegistry>();
  resolve_metrics_locked(*owned_metrics_, "mq.broker");
}

void Broker::resolve_metrics_locked(common::MetricsRegistry& registry,
                                    const std::string& prefix) {
  produced_ = &registry.counter(prefix + ".produced");
  blocked_ = &registry.counter(prefix + ".blocked");
  dropped_retention_ = &registry.counter(prefix + ".dropped_retention");
  consumed_ = &registry.counter(prefix + ".consumed");
  bytes_in_ = &registry.counter(prefix + ".bytes_in");
  faulted_down_ = &registry.counter(prefix + ".faulted_down");
  faulted_reject_ = &registry.counter(prefix + ".faulted_reject");
  faulted_delay_ = &registry.counter(prefix + ".faulted_delay");
  faulted_duplicate_ = &registry.counter(prefix + ".faulted_duplicate");
}

void Broker::bind_metrics(common::MetricsRegistry& registry,
                          const std::string& prefix) {
  std::lock_guard lock(mutex_);
  resolve_metrics_locked(registry, prefix);
  owned_metrics_.reset();  // all pointers now target the bound registry
}

Broker::Topic& Broker::topic_locked(const std::string& name) {
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    Topic t;
    t.partitions.resize(config_.partitions_per_topic);
    it = topics_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

std::size_t Broker::unread_locked(const std::string& name, const Partition& part,
                                  std::size_t index) const {
  bool any_group = false;
  std::uint64_t slowest = part.next_offset;
  for (const auto& [key, offset] : offsets_) {
    if (std::get<1>(key) != name || std::get<2>(key) != index) continue;
    any_group = true;
    slowest = std::min(slowest, offset);
  }
  if (!any_group) return part.log.size();
  const std::uint64_t floor = std::max(slowest, part.base_offset);
  return static_cast<std::size_t>(part.next_offset - floor);
}

void Broker::install_faults(common::FaultPlan* plan, std::string site_prefix) {
  std::lock_guard lock(mutex_);
  faults_ = plan;
  fault_prefix_ = std::move(site_prefix);
}

bool Broker::fault_locked(std::string_view suffix, common::Timestamp now) {
  if (faults_ == nullptr) return false;
  std::string site = fault_prefix_;
  site += '.';
  site += suffix;
  return faults_->should_fail(site, now);
}

ProduceStatus Broker::produce(Message&& msg, common::Timestamp now) {
  std::lock_guard lock(mutex_);
  last_now_ = std::max(last_now_, now);

  if (fault_locked(kFaultDown, now)) {
    faulted_down_->inc();
    blocked_->inc();
    return ProduceStatus::blocked;
  }
  if (fault_locked(kFaultReject, now)) {
    faulted_reject_->inc();
    return ProduceStatus::dropped;
  }

  // Disk persistence model: every byte takes 1/rate seconds to persist; the
  // log's write point may lag `now` by at most max_persist_lag.
  if (config_.persist_bytes_per_sec > 0) {
    const common::Duration cost = static_cast<common::Duration>(
        static_cast<double>(msg.payload.size()) /
        static_cast<double>(config_.persist_bytes_per_sec) *
        static_cast<double>(common::kSecond));
    const common::Timestamp start = std::max(disk_busy_until_, now);
    if (start + cost > now + config_.max_persist_lag) {
      blocked_->inc();
      return ProduceStatus::blocked;
    }
    disk_busy_until_ = start + cost;
  }

  const std::string topic_name = msg.topic;
  Topic& topic = topic_locked(topic_name);
  const std::size_t index =
      common::hash_to_bucket(common::mix64(msg.key), topic.partitions.size());
  Partition& part = topic.partitions[index];

  // Retention: evict the oldest message when the partition is full. Kafka
  // drops by age; with a fixed cap this is the same policy at bench scale.
  if (part.log.size() >= config_.partition_capacity) {
    part.log.pop_front();
    ++part.base_offset;
    dropped_retention_->inc();
  }

  msg.offset = part.next_offset++;
  msg.append_ts = now;
  bytes_in_->inc(msg.payload.size());
  produced_->inc();
  part.log.push_back(std::move(msg));

  const double occ = static_cast<double>(unread_locked(topic_name, part, index)) /
                     static_cast<double>(config_.partition_capacity);
  return occ >= config_.high_watermark ? ProduceStatus::low_buffer
                                       : ProduceStatus::ok;
}

std::vector<Message> Broker::poll(const std::string& group,
                                  const std::string& topic_name, std::size_t max) {
  std::lock_guard lock(mutex_);
  std::vector<Message> out;
  // A down broker serves no fetches either; group offsets are untouched, so
  // consumers simply re-poll from where they left off after recovery.
  if (fault_locked(kFaultDown, last_now_)) {
    faulted_down_->inc();
    return out;
  }
  const auto it = topics_.find(topic_name);
  if (it == topics_.end()) return out;

  Topic& topic = it->second;
  for (std::size_t p = 0; p < topic.partitions.size() && out.size() < max; ++p) {
    Partition& part = topic.partitions[p];
    auto& next = offsets_[{group, topic_name, p}];
    // If retention ran past the group's offset, skip to the oldest retained.
    if (next < part.base_offset) next = part.base_offset;
    while (next < part.next_offset && out.size() < max) {
      if (fault_locked(kFaultDelay, last_now_)) {
        // Hold the rest of this partition back; it arrives next poll, in
        // order, because `next` was not advanced.
        faulted_delay_->inc();
        break;
      }
      out.push_back(part.log[next - part.base_offset]);
      if (out.size() < max && fault_locked(kFaultDuplicate, last_now_)) {
        // Re-deliver adjacent to the original: same offset, so per-key
        // order (non-decreasing offsets) still holds.
        faulted_duplicate_->inc();
        out.push_back(part.log[next - part.base_offset]);
      }
      ++next;
    }
  }
  consumed_->inc(out.size());
  return out;
}

double Broker::occupancy(const std::string& topic_name) const {
  std::lock_guard lock(mutex_);
  const auto it = topics_.find(topic_name);
  if (it == topics_.end()) return 0.0;
  std::size_t worst = 0;
  for (std::size_t p = 0; p < it->second.partitions.size(); ++p) {
    worst = std::max(worst, unread_locked(topic_name, it->second.partitions[p], p));
  }
  return static_cast<double>(worst) / static_cast<double>(config_.partition_capacity);
}

std::size_t Broker::depth(const std::string& topic_name) const {
  std::lock_guard lock(mutex_);
  const auto it = topics_.find(topic_name);
  if (it == topics_.end()) return 0;
  std::size_t total = 0;
  for (const auto& part : it->second.partitions) total += part.log.size();
  return total;
}

BrokerStats Broker::stats() const {
  std::lock_guard lock(mutex_);
  BrokerStats s;
  s.produced = produced_->value();
  s.blocked = blocked_->value();
  s.dropped_retention = dropped_retention_->value();
  s.consumed = consumed_->value();
  s.bytes_in = bytes_in_->value();
  s.faulted_down = faulted_down_->value();
  s.faulted_reject = faulted_reject_->value();
  s.faulted_delay = faulted_delay_->value();
  s.faulted_duplicate = faulted_duplicate_->value();
  return s;
}

}  // namespace netalytics::mq
