#include "mq/cluster.hpp"

#include <algorithm>
#include <cassert>

#include "common/hash.hpp"

namespace netalytics::mq {

Cluster::Cluster(std::size_t brokers, BrokerConfig config)
    : coordinator_(brokers == 0 ? 1 : brokers, config.partitions_per_topic) {
  const std::size_t n = brokers == 0 ? 1 : brokers;
  brokers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    brokers_.push_back(std::make_unique<Broker>(config));
  }
}

ProduceStatus Cluster::produce(Message&& msg, common::Timestamp now) {
  return brokers_[broker_of_key(msg.key)]->produce(std::move(msg), now);
}

void Cluster::produce_batch(std::span<Message> msgs, common::Timestamp now,
                            std::span<ProduceStatus> statuses) {
  assert(msgs.size() == statuses.size());
  std::size_t i = 0;
  while (i < msgs.size()) {
    const std::size_t b = broker_of_key(msgs[i].key);
    std::size_t end = i + 1;
    while (end < msgs.size() && broker_of_key(msgs[end].key) == b) ++end;
    brokers_[b]->produce_batch(msgs.subspan(i, end - i), now,
                               statuses.subspan(i, end - i));
    i = end;
  }
}

std::size_t Cluster::broker_of_key(std::uint64_t key) const noexcept {
  return common::hash_to_bucket(common::mix64(key ^ 0x5ca1ab1e), brokers_.size());
}

void Cluster::install_faults(common::FaultPlan* plan) {
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    brokers_[i]->install_faults(plan, "mq.broker." + std::to_string(i));
  }
}

void Cluster::bind_metrics(common::MetricsRegistry& registry,
                           const std::string& prefix) {
  for (std::size_t i = 0; i < brokers_.size(); ++i) {
    brokers_[i]->bind_metrics(registry, prefix + std::to_string(i));
  }
}

std::vector<Message> Cluster::poll(std::string_view group,
                                   std::string_view topic, std::size_t max) {
  std::vector<Message> out;
  for (auto& broker : brokers_) {
    if (out.size() >= max) break;
    auto batch = broker->poll(group, topic, max - out.size());
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

std::vector<Message> Cluster::poll(std::string_view group,
                                   std::string_view topic, std::size_t max,
                                   std::uint64_t member) {
  if (member == 0) return poll(group, topic, max);
  // The assignment is sorted by (broker, partition): fetch each broker's
  // contiguous run of assigned partitions with one call, in the same order
  // every member of every generation uses.
  const auto assigned = coordinator_.assignment(group, member);
  std::vector<Message> out;
  std::vector<std::size_t> indexes;
  std::size_t i = 0;
  while (i < assigned.size() && out.size() < max) {
    const std::size_t b = assigned[i].broker;
    indexes.clear();
    while (i < assigned.size() && assigned[i].broker == b) {
      indexes.push_back(assigned[i].partition);
      ++i;
    }
    auto batch = brokers_[b]->poll(group, topic, max - out.size(), indexes);
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

namespace {
/// Splice one broker's batch onto the tail of `out`: records move (payload
/// refcounts transfer, nothing re-copies), slices shift by the insertion
/// point and learn their broker index.
void merge_batch(FetchBatch& out, FetchBatch&& batch, std::size_t broker) {
  const std::size_t base = out.records.size();
  out.records.insert(out.records.end(),
                     std::make_move_iterator(batch.records.begin()),
                     std::make_move_iterator(batch.records.end()));
  for (PartitionSlice slice : batch.slices) {
    slice.broker = broker;
    slice.begin += base;
    slice.end += base;
    out.slices.push_back(slice);
  }
  out.total_records += batch.total_records;
}
}  // namespace

FetchBatch Cluster::poll_batch(std::string_view group, std::string_view topic,
                               std::size_t max, std::uint64_t member) {
  FetchBatch out;
  out.topic = std::string(topic);
  if (member == 0) {
    for (std::size_t b = 0; b < brokers_.size(); ++b) {
      if (out.records.size() >= max) break;
      merge_batch(out,
                  brokers_[b]->poll_batch(group, topic,
                                          max - out.records.size()),
                  b);
    }
    return out;
  }
  // Same broker-run walk as the member-aware poll(): the assignment is
  // sorted by (broker, partition), so each broker is one poll_batch call.
  const auto assigned = coordinator_.assignment(group, member);
  std::vector<std::size_t> indexes;
  std::size_t i = 0;
  while (i < assigned.size() && out.records.size() < max) {
    const std::size_t b = assigned[i].broker;
    indexes.clear();
    while (i < assigned.size() && assigned[i].broker == b) {
      indexes.push_back(assigned[i].partition);
      ++i;
    }
    merge_batch(out,
                brokers_[b]->poll_batch(group, topic,
                                        max - out.records.size(), indexes),
                b);
  }
  return out;
}

double Cluster::occupancy(std::string_view topic) const {
  double worst = 0.0;
  for (const auto& broker : brokers_) {
    worst = std::max(worst, broker->occupancy(topic));
  }
  return worst;
}

std::size_t Cluster::depth(std::string_view topic) const {
  std::size_t total = 0;
  for (const auto& broker : brokers_) total += broker->depth(topic);
  return total;
}

std::uint64_t Cluster::unread_records(std::string_view topic) const {
  std::uint64_t total = 0;
  for (const auto& broker : brokers_) total += broker->unread_records(topic);
  return total;
}

void Cluster::set_drop_ledger(common::DropLedger* ledger) noexcept {
  for (const auto& broker : brokers_) broker->set_drop_ledger(ledger);
}

BrokerStats Cluster::aggregate_stats() const {
  BrokerStats total;
  for (const auto& broker : brokers_) {
    const auto s = broker->stats();
    total.produced += s.produced;
    total.blocked += s.blocked;
    total.dropped_retention += s.dropped_retention;
    total.consumed += s.consumed;
    total.bytes_in += s.bytes_in;
    total.produced_records += s.produced_records;
    total.consumed_records += s.consumed_records;
    total.evicted_unread_records += s.evicted_unread_records;
    total.duplicated_records += s.duplicated_records;
    total.faulted_down += s.faulted_down;
    total.faulted_reject += s.faulted_reject;
    total.faulted_delay += s.faulted_delay;
    total.faulted_duplicate += s.faulted_duplicate;
  }
  return total;
}

}  // namespace netalytics::mq
