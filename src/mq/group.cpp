#include "mq/group.hpp"

#include <algorithm>

namespace netalytics::mq {

GroupCoordinator::GroupCoordinator(std::size_t brokers,
                                   std::size_t partitions_per_broker,
                                   AssignmentStrategy strategy)
    : brokers_(brokers == 0 ? 1 : brokers),
      partitions_per_broker_(partitions_per_broker == 0 ? 1
                                                        : partitions_per_broker),
      strategy_(strategy) {}

std::uint64_t GroupCoordinator::join(std::string_view group) {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    it = groups_.emplace(std::string(group), Group{}).first;
  }
  Group& g = it->second;
  const std::uint64_t id = g.next_member++;
  g.members.push_back(id);
  ++g.generation;
  return id;
}

bool GroupCoordinator::leave(std::string_view group, std::uint64_t member) {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  Group& g = it->second;
  const auto m = std::find(g.members.begin(), g.members.end(), member);
  if (m == g.members.end()) return false;
  g.members.erase(m);
  ++g.generation;
  return true;
}

std::uint64_t GroupCoordinator::generation(std::string_view group) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.generation;
}

std::size_t GroupCoordinator::member_count(std::string_view group) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.members.size();
}

std::vector<TopicPartition> GroupCoordinator::share(std::size_t rank,
                                                    std::size_t n) const {
  std::vector<TopicPartition> out;
  const std::size_t total = partition_count();
  const auto emit = [&out, this](std::size_t g) {
    out.push_back({g / partitions_per_broker_, g % partitions_per_broker_});
  };
  switch (strategy_) {
    case AssignmentStrategy::round_robin:
      for (std::size_t g = rank; g < total; g += n) emit(g);
      break;
    case AssignmentStrategy::range: {
      const std::size_t chunk = (total + n - 1) / n;
      const std::size_t lo = std::min(rank * chunk, total);
      const std::size_t hi = std::min(lo + chunk, total);
      for (std::size_t g = lo; g < hi; ++g) emit(g);
      break;
    }
  }
  // Global index order is (broker, partition) order already — the poll
  // iteration order every member shares.
  return out;
}

std::vector<TopicPartition> GroupCoordinator::assignment(
    std::string_view group, std::uint64_t member) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  const Group& g = it->second;
  const auto m = std::find(g.members.begin(), g.members.end(), member);
  if (m == g.members.end()) return {};
  return share(static_cast<std::size_t>(m - g.members.begin()),
               g.members.size());
}

std::vector<std::vector<TopicPartition>> GroupCoordinator::assignments(
    std::string_view group) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  const Group& g = it->second;
  std::vector<std::vector<TopicPartition>> out;
  out.reserve(g.members.size());
  for (std::size_t r = 0; r < g.members.size(); ++r) {
    out.push_back(share(r, g.members.size()));
  }
  return out;
}

}  // namespace netalytics::mq
