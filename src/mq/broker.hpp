// A single aggregation broker — the Kafka substitute (§3.2, §6.1). It is a
// distributed queuing service in miniature: topics are split into
// partitions, each an append-only bounded log with a retention cap;
// consumer groups track per-partition offsets; and producers receive
// watermark-based backpressure signals that drive the feedback sampling
// loop (§4.2).
//
// The persistence model reproduces the paper's throughput observation:
// "Kafka provides reliable message delivery by persisting copies of all
// messages to disk, limiting throughput to the disk write rate (70 MB/s).
// Instead, we use a RAM disk..., which improves throughput by more than an
// order of magnitude." A broker configured with persist_bytes_per_sec > 0
// models the disk-backed log; 0 models the RAM disk.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "mq/message.hpp"

namespace netalytics::mq {

enum class ProduceStatus {
  ok,          // appended
  low_buffer,  // appended, but occupancy crossed the high watermark
  blocked,     // persistence saturated or broker down; retry later
  dropped,     // rejected outright (fault injection); retry elsewhere/later
};

/// Fault-site suffixes a broker checks when a FaultPlan is installed; the
/// full site name is "<prefix>.<suffix>" (default prefix "mq.broker").
/// - down:      broker-down window — produce returns blocked, poll returns
///              nothing (armed with a window trigger; `now` for poll checks
///              is the latest produce timestamp the broker has seen).
/// - reject:    produce returns dropped without appending.
/// - delay:     poll stops reading a partition early; held-back messages
///              arrive in a later poll, order intact.
/// - duplicate: poll re-delivers a message adjacent to itself with the same
///              offset (consumers dedupe by (key, offset)).
inline constexpr std::string_view kFaultDown = "down";
inline constexpr std::string_view kFaultReject = "reject";
inline constexpr std::string_view kFaultDelay = "delay";
inline constexpr std::string_view kFaultDuplicate = "duplicate";

struct BrokerConfig {
  std::size_t partitions_per_topic = 1;
  std::size_t partition_capacity = 65536;   // retained messages per partition
  double high_watermark = 0.75;             // occupancy ratio -> low_buffer
  std::uint64_t persist_bytes_per_sec = 0;  // 0 = RAM disk (unlimited)
  /// How far the simulated disk may lag behind `now` before produce blocks.
  common::Duration max_persist_lag = 50 * common::kMillisecond;
};

/// Thin typed view over the broker's registry counters (the numbers live in
/// the MetricsRegistry; stats() copies them out).
struct BrokerStats {
  std::uint64_t produced = 0;
  std::uint64_t blocked = 0;
  std::uint64_t dropped_retention = 0;  // evicted unread by retention
  std::uint64_t consumed = 0;
  std::uint64_t bytes_in = 0;
  // Fault accounting (all zero unless a FaultPlan is installed).
  std::uint64_t faulted_down = 0;      // produce/poll hit a down window
  std::uint64_t faulted_reject = 0;    // produce rejected by injection
  std::uint64_t faulted_delay = 0;     // poll batches cut short
  std::uint64_t faulted_duplicate = 0; // messages re-delivered
};

class Broker {
 public:
  explicit Broker(BrokerConfig config = {});

  /// Append a message; assigns its offset. `now` drives the disk model.
  /// On any non-appending status (blocked/dropped) `msg` is left intact so
  /// the caller can buffer it and retry.
  ProduceStatus produce(Message&& msg, common::Timestamp now);

  /// Poll up to `max` messages for a consumer group across all partitions
  /// of `topic`, advancing the group's offsets.
  std::vector<Message> poll(const std::string& group, const std::string& topic,
                            std::size_t max);

  /// Buffer pressure in [0,1] of the most-backlogged partition of `topic`:
  /// the fraction of the partition's capacity holding messages the slowest
  /// consumer group has not yet read (everything counts while no group has
  /// consumed the topic). Consuming does not delete messages — retention
  /// does — so pressure must be measured as consumer lag, not log size.
  double occupancy(const std::string& topic) const;

  /// Total buffered messages in `topic` not yet evicted.
  std::size_t depth(const std::string& topic) const;

  BrokerStats stats() const;
  const BrokerConfig& config() const noexcept { return config_; }

  /// Install (or clear, with nullptr) a chaos plan. Sites are named
  /// "<site_prefix>.<suffix>" (see kFault* above), so a cluster can target
  /// one broker by index. Not thread-safe against in-flight produce/poll;
  /// install before traffic starts.
  void install_faults(common::FaultPlan* plan,
                      std::string site_prefix = "mq.broker");

  /// Re-home the broker's counters into `registry` under `prefix` (e.g.
  /// "mq.broker0"). Like install_faults: bind before traffic starts;
  /// counts accumulated in the previous registry are not migrated.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix);

 private:
  void resolve_metrics_locked(common::MetricsRegistry& registry,
                              const std::string& prefix);
  bool fault_locked(std::string_view suffix, common::Timestamp now);
  struct Partition {
    std::deque<Message> log;
    std::uint64_t base_offset = 0;  // offset of log.front()
    std::uint64_t next_offset = 0;
  };
  struct Topic {
    std::vector<Partition> partitions;
  };

  Topic& topic_locked(const std::string& name);
  /// Messages in partition `index` of `name` not yet read by the slowest
  /// group (== retained size while the topic has no consumers).
  std::size_t unread_locked(const std::string& name, const Partition& part,
                            std::size_t index) const;

  BrokerConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Topic> topics_;
  // (group, topic, partition index) -> next offset to read.
  std::map<std::tuple<std::string, std::string, std::size_t>, std::uint64_t> offsets_;
  common::Timestamp disk_busy_until_ = 0;
  // Counters live in the bound (or owned fallback) registry.
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::Counter* produced_ = nullptr;
  common::Counter* blocked_ = nullptr;
  common::Counter* dropped_retention_ = nullptr;
  common::Counter* consumed_ = nullptr;
  common::Counter* bytes_in_ = nullptr;
  common::Counter* faulted_down_ = nullptr;
  common::Counter* faulted_reject_ = nullptr;
  common::Counter* faulted_delay_ = nullptr;
  common::Counter* faulted_duplicate_ = nullptr;
  common::FaultPlan* faults_ = nullptr;
  std::string fault_prefix_;
  /// Latest produce timestamp; stands in for `now` on the poll path, which
  /// has no clock parameter (down windows close once producers move on).
  common::Timestamp last_now_ = 0;
};

}  // namespace netalytics::mq
