// A single aggregation broker — the Kafka substitute (§3.2, §6.1). It is a
// distributed queuing service in miniature: topics are split into
// partitions, each an append-only bounded log with a retention cap;
// consumer groups track per-partition offsets; and producers receive
// watermark-based backpressure signals that drive the feedback sampling
// loop (§4.2).
//
// Concurrency (see DESIGN.md "Aggregation layer concurrency"): the topic
// registry is guarded by a lightly-held shared_mutex taken only to resolve
// a topic name to its (address-stable) Topic; all log, offset and retention
// state lives behind per-partition mutexes, so producers and consumers on
// different partitions never contend. All name lookups are heterogeneous
// (std::string_view against std::less<> maps) — the hot path allocates no
// key strings. produce_batch() appends a whole batch taking each partition
// lock once per run of same-partition messages.
//
// The persistence model reproduces the paper's throughput observation:
// "Kafka provides reliable message delivery by persisting copies of all
// messages to disk, limiting throughput to the disk write rate (70 MB/s).
// Instead, we use a RAM disk..., which improves throughput by more than an
// order of magnitude." A broker configured with persist_bytes_per_sec > 0
// models the disk-backed log; 0 models the RAM disk.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "mq/message.hpp"

namespace netalytics::mq {

enum class ProduceStatus {
  ok,          // appended
  low_buffer,  // appended, but occupancy crossed the high watermark
  blocked,     // persistence saturated, broker down, or held back behind an
               // earlier failed message of the same partition; retry later
  dropped,     // rejected outright (fault injection); retry elsewhere/later
};

/// Fault-site suffixes a broker checks when a FaultPlan is installed; the
/// full site name is "<prefix>.<suffix>" (default prefix "mq.broker").
/// - down:      broker-down window — produce returns blocked, poll returns
///              nothing (armed with a window trigger; `now` for poll checks
///              is the latest produce timestamp the broker has seen).
/// - reject:    produce returns dropped without appending.
/// - delay:     poll stops reading a partition early; held-back messages
///              arrive in a later poll, order intact.
/// - duplicate: poll re-delivers a message adjacent to itself with the same
///              offset (consumers dedupe by (key, offset)).
inline constexpr std::string_view kFaultDown = "down";
inline constexpr std::string_view kFaultReject = "reject";
inline constexpr std::string_view kFaultDelay = "delay";
inline constexpr std::string_view kFaultDuplicate = "duplicate";

struct BrokerConfig {
  std::size_t partitions_per_topic = 1;
  std::size_t partition_capacity = 65536;   // retained messages per partition
  double high_watermark = 0.75;             // occupancy ratio -> low_buffer
  std::uint64_t persist_bytes_per_sec = 0;  // 0 = RAM disk (unlimited)
  /// How far the simulated disk may lag behind `now` before produce blocks.
  common::Duration max_persist_lag = 50 * common::kMillisecond;
  /// Kafka-style retention.ms: messages whose append_ts is older than this
  /// are evicted on the produce path (virtual time only advances through
  /// produce), regardless of partition occupancy. 0 disables age retention,
  /// leaving only the partition_capacity cap.
  common::Duration retention_age = 0;
};

/// Thin typed view over the broker's registry counters (the numbers live in
/// the MetricsRegistry; stats() copies them out).
struct BrokerStats {
  std::uint64_t produced = 0;
  std::uint64_t blocked = 0;
  std::uint64_t dropped_retention = 0;  // messages evicted (capacity or age)
  std::uint64_t consumed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t produced_records = 0;   // parser records appended
  std::uint64_t consumed_records = 0;   // parser records polled out
  /// Parser records inside evicted messages no consumer group had read —
  /// the only evictions that are real data loss.
  std::uint64_t evicted_unread_records = 0;
  std::uint64_t duplicated_records = 0;  // records re-delivered by injection
  // Fault accounting (all zero unless a FaultPlan is installed).
  std::uint64_t faulted_down = 0;      // produce/poll hit a down window
  std::uint64_t faulted_reject = 0;    // produce rejected by injection
  std::uint64_t faulted_delay = 0;     // poll batches cut short
  std::uint64_t faulted_duplicate = 0; // messages re-delivered
};

class Broker {
 public:
  explicit Broker(BrokerConfig config = {});

  /// Append a message; assigns its offset. `now` drives the disk model.
  /// On any non-appending status (blocked/dropped) `msg` is left intact so
  /// the caller can buffer it and retry.
  ProduceStatus produce(Message&& msg, common::Timestamp now);

  /// Append a batch; statuses[i] reports the fate of msgs[i] (the spans
  /// must be the same length). Semantically equivalent to calling produce()
  /// per message in order, except that each partition lock is taken once
  /// per run of same-partition messages and — to preserve per-key order
  /// under retry — once a message of a partition fails, every later message
  /// of the *same partition* in this batch is held back unappended with
  /// status blocked. Appended messages are moved from; refused ones are
  /// left intact for the caller's retry buffer.
  void produce_batch(std::span<Message> msgs, common::Timestamp now,
                     std::span<ProduceStatus> statuses);

  /// Poll up to `max` messages for a consumer group across all partitions
  /// of `topic`, advancing the group's offsets. Payload bytes are shared
  /// with the log (refcounted), never copied. Compatibility wrapper over
  /// poll_batch() — it reconstructs a Message (fresh topic string) per
  /// record; batch-aware consumers should call poll_batch() directly.
  std::vector<Message> poll(std::string_view group, std::string_view topic,
                            std::size_t max);

  /// Assignment-aware poll: read only the listed partition indexes, in the
  /// order given (a group member fetches its share and nothing else; see
  /// mq/group.hpp). An empty span means every partition. Out-of-range
  /// indexes are ignored. Offsets advance per (group, partition) exactly as
  /// in the unfiltered poll — the cursors are shared group state, which is
  /// what makes rebalance handoff exact.
  std::vector<Message> poll(std::string_view group, std::string_view topic,
                            std::size_t max,
                            std::span<const std::size_t> partitions);

  /// The primary fetch path: like poll(partitions) but the result carries
  /// one topic header for the whole batch and per-partition slice views,
  /// so nothing per-message is heap-allocated on the consume path (payloads
  /// refcounted as always; see FetchBatch in message.hpp). The Message
  /// poll() overloads wrap this.
  FetchBatch poll_batch(std::string_view group, std::string_view topic,
                        std::size_t max,
                        std::span<const std::size_t> partitions = {});

  /// Buffer pressure in [0,1] of the most-backlogged partition of `topic`:
  /// the fraction of the partition's capacity holding messages the slowest
  /// consumer group has not yet read (everything counts while no group has
  /// consumed the topic). Consuming does not delete messages — retention
  /// does — so pressure must be measured as consumer lag, not log size.
  double occupancy(std::string_view topic) const;

  /// Total buffered messages in `topic` not yet evicted.
  std::size_t depth(std::string_view topic) const;

  /// Parser records buffered in `topic` that the slowest consumer group has
  /// not yet read — the broker's in-flight term in engine.reconcile().
  std::uint64_t unread_records(std::string_view topic) const;

  /// Route evicted-unread record counts into `ledger` (broker_retention
  /// cause). Like bind_metrics: install before traffic starts.
  void set_drop_ledger(common::DropLedger* ledger) noexcept {
    drop_ledger_ = ledger;
  }

  BrokerStats stats() const;
  const BrokerConfig& config() const noexcept { return config_; }

  /// Install (or clear, with nullptr) a chaos plan. Sites are named
  /// "<site_prefix>.<suffix>" (see kFault* above), so a cluster can target
  /// one broker by index. Not thread-safe against in-flight produce/poll;
  /// install before traffic starts.
  void install_faults(common::FaultPlan* plan,
                      std::string site_prefix = "mq.broker");

  /// Re-home the broker's counters into `registry` under `prefix` (e.g.
  /// "mq.broker0"). Like install_faults: bind before traffic starts;
  /// counts accumulated in the previous registry are not migrated.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix);

 private:
  /// One shard of a topic. Everything inside is guarded by `mutex` — log,
  /// offsets, retention and the per-group read cursors all mutate under the
  /// same per-partition lock, so cross-partition traffic never serializes.
  struct Partition {
    mutable std::mutex mutex;
    std::deque<Message> log;
    std::uint64_t base_offset = 0;  // offset of log.front()
    std::uint64_t next_offset = 0;
    /// group name -> next offset to read (heterogeneous lookup).
    std::map<std::string, std::uint64_t, std::less<>> group_offsets;
  };
  struct Topic {
    // unique_ptr for address stability: partition pointers stay valid once
    // the registry lock is released.
    std::vector<std::unique_ptr<Partition>> partitions;
  };

  void resolve_metrics(common::MetricsRegistry& registry,
                       const std::string& prefix);
  bool fault(const std::string& site, common::Timestamp now);
  /// Find an existing topic (shared registry lock); nullptr if absent.
  Topic* find_topic(std::string_view name) const;
  /// Get-or-create (shared lock fast path, exclusive lock on first use).
  Topic& topic(std::string_view name);
  /// Messages the slowest group has not read. Caller holds part.mutex.
  static std::size_t unread(const Partition& part);
  /// Evict log.front(); returns the parser records inside it if no group
  /// had read it yet (real loss), else 0. Caller holds part.mutex.
  static std::uint64_t evict_front(Partition& part);
  /// Disk persistence admission for one message. Caller holds no partition
  /// lock (disk state is broker-global, guarded by disk_mutex_).
  bool disk_admit(std::size_t bytes, common::Timestamp now);

  BrokerConfig config_;
  /// Lightly-held: taken shared to resolve names, exclusive only to create
  /// a topic (or rebind metrics/faults before traffic).
  mutable std::shared_mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<Topic>, std::less<>> topics_;
  std::mutex disk_mutex_;
  common::Timestamp disk_busy_until_ = 0;  // guarded by disk_mutex_
  // Counters live in the bound (or owned fallback) registry.
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::Counter* produced_ = nullptr;
  common::Counter* blocked_ = nullptr;
  common::Counter* dropped_retention_ = nullptr;
  common::Counter* consumed_ = nullptr;
  common::Counter* bytes_in_ = nullptr;
  common::Counter* produced_records_ = nullptr;
  common::Counter* consumed_records_ = nullptr;
  common::Counter* evicted_unread_records_ = nullptr;
  common::Counter* duplicated_records_ = nullptr;
  /// Age of the oldest retained message in the most recently produced-to
  /// partition; watch it approach retention_age.
  common::Gauge* eviction_lag_ = nullptr;
  common::DropLedger* drop_ledger_ = nullptr;
  common::Counter* faulted_down_ = nullptr;
  common::Counter* faulted_reject_ = nullptr;
  common::Counter* faulted_delay_ = nullptr;
  common::Counter* faulted_duplicate_ = nullptr;
  common::FaultPlan* faults_ = nullptr;
  // Full site names, precomputed at install_faults so fault checks on the
  // hot path never concatenate strings.
  std::string site_down_;
  std::string site_reject_;
  std::string site_delay_;
  std::string site_duplicate_;
  /// Latest produce timestamp; stands in for `now` on the poll path, which
  /// has no clock parameter (down windows close once producers move on).
  std::atomic<common::Timestamp> last_now_{0};
};

}  // namespace netalytics::mq
