// Consumer-group membership and partition assignment for the aggregation
// layer — the piece that lets "multiple Kafka 'Spouts' poll for new
// messages" (§5.3) split a topic instead of each draining every broker.
//
// A group is a set of members; every join or leave bumps the group's
// generation and implicitly recomputes the assignment: a pure function of
// the surviving members' ranks (join order), the cluster's partition grid
// (brokers × partitions_per_topic) and the strategy. Nothing about the
// assignment is negotiated or timed — the same membership sequence always
// yields the same ownership map, which is what the determinism contract
// (docs/DETERMINISM.md "Consumer-group assignment & handoff") requires.
//
// Cursor handoff is free by construction: read cursors live per *group*
// (not per member) inside each broker partition, so when a rebalance moves
// a partition from member A to member B, B's first poll resumes at exactly
// the offset A's last poll advanced the shared cursor to. No offset is
// skipped and none is re-read, because a partition has exactly one owner
// per generation and owners poll sequentially.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netalytics::mq {

/// One partition of the cluster-wide grid: partition `partition` of every
/// topic on broker `broker` (all topics share the partitions_per_topic
/// layout, so an assignment is topic-independent).
struct TopicPartition {
  std::size_t broker = 0;
  std::size_t partition = 0;

  friend bool operator==(const TopicPartition&, const TopicPartition&) = default;
};

/// How partitions map onto member ranks. Both are deterministic in the
/// member ranks; they differ only in locality:
/// - round_robin: global partition index g goes to rank g % n (even spread,
///   the default).
/// - range: contiguous chunks of ceil(total/n) partitions per rank (Kafka's
///   RangeAssignor shape).
enum class AssignmentStrategy { round_robin, range };

/// Membership registry for every consumer group of one mq::Cluster. All
/// methods are thread-safe (one mutex — membership changes are rare and
/// poll-path reads are a lookup, not a scan).
class GroupCoordinator {
 public:
  GroupCoordinator(std::size_t brokers, std::size_t partitions_per_broker,
                   AssignmentStrategy strategy = AssignmentStrategy::round_robin);

  /// Add a member to `group`; returns its id (> 0, unique within the group
  /// for the coordinator's lifetime, never reused) and bumps the group's
  /// generation. Rank order is join order, so callers that join in a
  /// deterministic order get a deterministic assignment.
  std::uint64_t join(std::string_view group);

  /// Remove a member; later members' ranks shift down by one and the
  /// generation bumps. Unknown (group, member) pairs are ignored (returns
  /// false) so leave() is idempotent.
  bool leave(std::string_view group, std::uint64_t member);

  /// Current generation of `group`: 0 before the first join, bumped by
  /// every join/leave. Consumers cache their assignment keyed by this.
  std::uint64_t generation(std::string_view group) const;

  std::size_t member_count(std::string_view group) const;

  /// Member `member`'s current share of the partition grid, sorted by
  /// (broker, partition). Empty when the member is not (or no longer) in
  /// the group — a departed member consumes nothing.
  std::vector<TopicPartition> assignment(std::string_view group,
                                         std::uint64_t member) const;

  /// The full ownership map of `group` in rank order (assignment(m) for
  /// every member, by rank). Ranks with no partitions get empty vectors.
  std::vector<std::vector<TopicPartition>> assignments(
      std::string_view group) const;

  std::size_t partition_count() const noexcept {
    return brokers_ * partitions_per_broker_;
  }
  AssignmentStrategy strategy() const noexcept { return strategy_; }

 private:
  struct Group {
    std::vector<std::uint64_t> members;  // in join order == rank order
    std::uint64_t next_member = 1;
    std::uint64_t generation = 0;
  };

  /// Partitions of rank `rank` out of `n` members. Caller holds mutex_ (or
  /// the inputs are immutable config).
  std::vector<TopicPartition> share(std::size_t rank, std::size_t n) const;

  std::size_t brokers_;
  std::size_t partitions_per_broker_;
  AssignmentStrategy strategy_;
  mutable std::mutex mutex_;
  std::map<std::string, Group, std::less<>> groups_;
};

}  // namespace netalytics::mq
