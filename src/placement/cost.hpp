// Placement cost metrics (§6.2). Network cost is "the ratio of extra
// bandwidth consumed by NetAlytics to the original workload traffic",
// computed two ways: Bandwidth Cost (rate x hop count) and
// Weighted-Bandwidth Cost (rate x weighted hops, with core links weighing
// 4). Resource cost is the total number of NetAlytics processes.
#pragma once

#include "placement/types.hpp"

namespace netalytics::placement {

struct CostReport {
  double extra_bandwidth_pct = 0;           // unweighted, % of workload cost
  double extra_weighted_bandwidth_pct = 0;  // weighted hops variant
  std::size_t monitors = 0;
  std::size_t aggregators = 0;
  std::size_t processors = 0;
  std::size_t total_processes = 0;
  double monitored_traffic_bps = 0;  // input side of the monitors
};

/// Bandwidth resources the workload itself consumes: each flow's rate
/// multiplied by its path length (plain hops / weighted hops). These are
/// the denominators of the Fig. 7 ratios — a flow "consumes bandwidth" on
/// every link it crosses, and NetAlytics' extra consumption is compared
/// against that.
struct WorkloadPathCost {
  double plain = 0;     // sum(rate x hop count)
  double weighted = 0;  // sum(rate x weighted hops)
};

WorkloadPathCost workload_path_cost(const dcn::Topology& topo,
                                    const dcn::Workload& workload);

CostReport compute_cost(const dcn::Topology& topo, const Placement& placement,
                        const ProcessSpec& spec,
                        const WorkloadPathCost& workload_cost);

}  // namespace netalytics::placement
