// Shared types for the placement algorithms (§4.1, §6.2). The process
// parameters come from the system evaluation: "each monitor process can
// handle 10 Gbps traffic, one aggregator and two analyzer processes can
// handle 1 Gbps traffic... At the monitors, only 10% data will be
// extracted and sent to the aggregators, and the aggregators will send all
// data to the processors."
#pragma once

#include <cstdint>
#include <vector>

#include "dcn/topology.hpp"
#include "dcn/workload.hpp"

namespace netalytics::placement {

enum class ProcessKind : std::uint8_t { monitor, aggregator, processor };

struct ProcessSpec {
  double monitor_capacity_bps = 10e9;
  double aggregator_capacity_bps = 1e9;
  /// Two analyzer processes per 1 Gbps -> 0.5 Gbps each.
  double processor_capacity_bps = 0.5e9;
  /// Fraction of monitored traffic the monitors forward downstream.
  double reduction = 0.1;
  /// Host resources one NetAlytics process consumes.
  double cpu_per_process = 1.0;
  double mem_per_process_gb = 2.0;
};

struct PlacedProcess {
  ProcessKind kind = ProcessKind::monitor;
  dcn::NodeId host = 0;
  double load_bps = 0;  // input traffic assigned to this process
};

struct Placement {
  std::vector<PlacedProcess> processes;
  /// monitored-flow index -> process index (-1 if unassigned).
  std::vector<int> flow_to_monitor;
  /// Indexed by process index: the aggregator serving process i when i is
  /// a monitor, else -1. Sized to processes.size().
  std::vector<int> monitor_to_aggregator;
  /// Indexed by process index: the processor serving process i when i is
  /// an aggregator, else -1. Sized to processes.size().
  std::vector<int> aggregator_to_processor;

  std::size_t count(ProcessKind kind) const noexcept {
    std::size_t n = 0;
    for (const auto& p : processes) n += (p.kind == kind);
    return n;
  }
  std::size_t total_processes() const noexcept { return processes.size(); }
};

/// Consume host resources for one process if available; over-commits (and
/// reports false) when the host is already full, so placement always makes
/// progress on saturated clusters.
bool consume_host_resources(dcn::Node& host, const ProcessSpec& spec);

}  // namespace netalytics::placement
