// Analytics-engine placement (§4.1, Algorithm 2). "Data extracted from any
// monitor can be sent to any analytics engine" — there is no position
// constraint, so the strategies trade network locality against the number
// of processes:
//   local-random — reuse an engine that shares an aggregate switch with
//     the source, otherwise pick a random host;
//   first-fit — fill the current engine completely before opening another
//     (fewest processes, worst locality);
//   greedy — Algorithm 2: place engines under the aggregate switch that
//     serves the most unassigned sources (keeps traffic below the core).
#pragma once

#include "common/rng.hpp"
#include "placement/types.hpp"

namespace netalytics::placement {

enum class AnalyticsStrategy { local_random, first_fit, greedy };

/// Assign a downstream engine (aggregator or processor) to every source
/// process listed in `source_indices`. `source_output_bps(i)` is the data
/// rate process i ships downstream; `capacity_bps` bounds an engine's total
/// input. New engines of `kind` are appended to placement.processes.
/// Returns assignment: position in source_indices -> engine process index.
std::vector<int> place_analytics(dcn::Topology& topo, Placement& placement,
                                 const std::vector<int>& source_indices,
                                 const std::vector<double>& source_output_bps,
                                 ProcessKind kind, double capacity_bps,
                                 const ProcessSpec& spec,
                                 AnalyticsStrategy strategy, common::Rng& rng);

}  // namespace netalytics::placement
