#include "placement/cost.hpp"

#include "dcn/routing.hpp"

namespace netalytics::placement {

namespace {

/// Extra bandwidth of `rate_bps` flowing between two hosts, in both the
/// hop-count and weighted metrics.
void add_leg(const dcn::Topology& topo, dcn::NodeId from, dcn::NodeId to,
             double rate_bps, double& plain, double& weighted) {
  const auto loc = dcn::classify_pair(topo, from, to);
  plain += rate_bps * static_cast<double>(dcn::locality_hops(loc));
  weighted += rate_bps * dcn::locality_weighted_cost(loc);
}

}  // namespace

WorkloadPathCost workload_path_cost(const dcn::Topology& topo,
                                    const dcn::Workload& workload) {
  WorkloadPathCost cost;
  for (const auto& f : workload.flows) {
    const auto loc = dcn::classify_pair(topo, f.src_host, f.dst_host);
    cost.plain += f.rate_bps * static_cast<double>(dcn::locality_hops(loc));
    cost.weighted += f.rate_bps * dcn::locality_weighted_cost(loc);
  }
  return cost;
}

CostReport compute_cost(const dcn::Topology& topo, const Placement& placement,
                        const ProcessSpec& spec,
                        const WorkloadPathCost& workload_cost) {
  CostReport report;
  report.monitors = placement.count(ProcessKind::monitor);
  report.aggregators = placement.count(ProcessKind::aggregator);
  report.processors = placement.count(ProcessKind::processor);
  report.total_processes = placement.total_processes();

  double plain = 0, weighted = 0;

  // Monitor -> aggregator legs carry the reduced (10%) stream.
  for (std::size_t m = 0; m < placement.monitor_to_aggregator.size(); ++m) {
    const int agg = placement.monitor_to_aggregator[m];
    if (agg < 0) continue;
    // monitor_to_aggregator is indexed by position in the monitor list;
    // monitors are the first processes placed, in order.
    const PlacedProcess& monitor = placement.processes[m];
    if (monitor.kind != ProcessKind::monitor) continue;
    report.monitored_traffic_bps += monitor.load_bps;
    const double out_bps = monitor.load_bps * spec.reduction;
    add_leg(topo, monitor.host, placement.processes[agg].host, out_bps, plain,
            weighted);
  }

  // Aggregator -> processor legs forward everything they receive.
  for (std::size_t a = 0; a < placement.aggregator_to_processor.size(); ++a) {
    const int proc = placement.aggregator_to_processor[a];
    if (proc < 0) continue;
    // Positions map to aggregator process indices via the placement's
    // aggregator ordering; resolved by the strategy layer, which stores
    // process indices directly in aggregator_order.
    const PlacedProcess& agg = placement.processes[a];
    if (agg.kind != ProcessKind::aggregator) continue;
    add_leg(topo, agg.host, placement.processes[proc].host, agg.load_bps, plain,
            weighted);
  }

  if (workload_cost.plain > 0) {
    report.extra_bandwidth_pct = 100.0 * plain / workload_cost.plain;
  }
  if (workload_cost.weighted > 0) {
    report.extra_weighted_bandwidth_pct = 100.0 * weighted / workload_cost.weighted;
  }
  return report;
}

}  // namespace netalytics::placement
