// The three composite placement strategies evaluated in §6.2:
//   Local-Random       — random monitors, local-random analytics;
//   Netalytics-Node    — random monitors, first-fit analytics (minimizes
//                        the number of processes);
//   Netalytics-Network — greedy monitors, greedy analytics (minimizes
//                        monitoring traffic, keeps it inside the rack/pod).
#pragma once

#include <string>

#include "placement/analytics_placement.hpp"
#include "placement/cost.hpp"
#include "placement/monitor_placement.hpp"

namespace netalytics::placement {

enum class Strategy { local_random, netalytics_node, netalytics_network };

std::string strategy_name(Strategy s);

/// Run the full three-stage placement (monitors, aggregators, processors)
/// for the monitored `flows` on a copy of the caller's topology state.
/// Host resources in `topo` are consumed by the placement.
Placement run_placement(dcn::Topology& topo, const std::vector<dcn::Flow>& flows,
                        const ProcessSpec& spec, Strategy strategy,
                        common::Rng& rng);

}  // namespace netalytics::placement
