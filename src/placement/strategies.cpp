#include "placement/strategies.hpp"

namespace netalytics::placement {

bool consume_host_resources(dcn::Node& host, const ProcessSpec& spec) {
  const bool fits = host.cpu_free() >= spec.cpu_per_process &&
                    host.mem_free_gb() >= spec.mem_per_process_gb;
  host.cpu_used += spec.cpu_per_process;
  host.mem_used_gb += spec.mem_per_process_gb;
  return fits;
}

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::local_random: return "Local-Random";
    case Strategy::netalytics_node: return "Netalytics-Node";
    case Strategy::netalytics_network: return "Netalytics-Network";
  }
  return "?";
}

Placement run_placement(dcn::Topology& topo, const std::vector<dcn::Flow>& flows,
                        const ProcessSpec& spec, Strategy strategy,
                        common::Rng& rng) {
  const MonitorStrategy monitor_strategy =
      strategy == Strategy::netalytics_network ? MonitorStrategy::greedy
                                               : MonitorStrategy::random;
  AnalyticsStrategy analytics_strategy = AnalyticsStrategy::greedy;
  if (strategy == Strategy::local_random) {
    analytics_strategy = AnalyticsStrategy::local_random;
  } else if (strategy == Strategy::netalytics_node) {
    analytics_strategy = AnalyticsStrategy::first_fit;
  }

  Placement placement;
  place_monitors(topo, flows, spec, monitor_strategy, rng, placement);

  // Aggregators serve the monitors' reduced output streams.
  std::vector<int> monitor_indices;
  std::vector<double> monitor_output;
  for (std::size_t i = 0; i < placement.processes.size(); ++i) {
    if (placement.processes[i].kind == ProcessKind::monitor) {
      monitor_indices.push_back(static_cast<int>(i));
      monitor_output.push_back(placement.processes[i].load_bps * spec.reduction);
    }
  }
  const auto agg_assignment = place_analytics(
      topo, placement, monitor_indices, monitor_output, ProcessKind::aggregator,
      spec.aggregator_capacity_bps, spec, analytics_strategy, rng);

  // Processors serve the aggregators, which forward everything.
  std::vector<int> aggregator_indices;
  std::vector<double> aggregator_output;
  for (std::size_t i = 0; i < placement.processes.size(); ++i) {
    if (placement.processes[i].kind == ProcessKind::aggregator) {
      aggregator_indices.push_back(static_cast<int>(i));
      aggregator_output.push_back(placement.processes[i].load_bps);
    }
  }
  const auto proc_assignment = place_analytics(
      topo, placement, aggregator_indices, aggregator_output,
      ProcessKind::processor, spec.processor_capacity_bps, spec,
      analytics_strategy, rng);

  placement.monitor_to_aggregator.assign(placement.processes.size(), -1);
  for (std::size_t i = 0; i < monitor_indices.size(); ++i) {
    placement.monitor_to_aggregator[monitor_indices[i]] = agg_assignment[i];
  }
  placement.aggregator_to_processor.assign(placement.processes.size(), -1);
  for (std::size_t i = 0; i < aggregator_indices.size(); ++i) {
    placement.aggregator_to_processor[aggregator_indices[i]] = proc_assignment[i];
  }
  return placement;
}

}  // namespace netalytics::placement
