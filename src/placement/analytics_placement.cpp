#include "placement/analytics_placement.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace netalytics::placement {

namespace {

/// Aggregate switches adjacent to the host's ToR.
std::vector<dcn::NodeId> aggs_of_host(const dcn::Topology& topo, dcn::NodeId host) {
  return topo.aggs_of_tor(topo.tor_of_host(host));
}

/// Host with enough free capacity, preferring the given candidate set;
/// falls back to the least-loaded host overall (Algorithm 2 line 7: "if h
/// is NULL then select one from all hosts with enough capacity").
dcn::NodeId pick_host(const dcn::Topology& topo,
                      const std::vector<dcn::NodeId>& preferred,
                      const ProcessSpec& spec, common::Rng& rng) {
  auto fits = [&](dcn::NodeId h) {
    return topo.node(h).cpu_free() >= spec.cpu_per_process &&
           topo.node(h).mem_free_gb() >= spec.mem_per_process_gb;
  };
  std::vector<dcn::NodeId> ok;
  for (const auto h : preferred) {
    if (fits(h)) ok.push_back(h);
  }
  if (!ok.empty()) return ok[rng.uniform(0, ok.size() - 1)];
  for (const auto h : topo.hosts()) {
    if (fits(h)) ok.push_back(h);
  }
  if (!ok.empty()) return ok[rng.uniform(0, ok.size() - 1)];
  // Cluster saturated: over-commit the least-loaded host.
  dcn::NodeId best = topo.hosts().front();
  for (const auto h : topo.hosts()) {
    if (topo.node(h).load() < topo.node(best).load()) best = h;
  }
  return best;
}

int new_engine(dcn::Topology& topo, Placement& placement, ProcessKind kind,
               dcn::NodeId host, const ProcessSpec& spec) {
  consume_host_resources(topo.node(host), spec);
  PlacedProcess p;
  p.kind = kind;
  p.host = host;
  placement.processes.push_back(p);
  return static_cast<int>(placement.processes.size()) - 1;
}

}  // namespace

std::vector<int> place_analytics(dcn::Topology& topo, Placement& placement,
                                 const std::vector<int>& source_indices,
                                 const std::vector<double>& source_output_bps,
                                 ProcessKind kind, double capacity_bps,
                                 const ProcessSpec& spec,
                                 AnalyticsStrategy strategy, common::Rng& rng) {
  std::vector<int> assignment(source_indices.size(), -1);
  if (source_indices.empty()) return assignment;
  std::vector<int> engines;  // engine process indices created here

  auto engine_fits = [&](int engine, double load) {
    return placement.processes[engine].load_bps + load <= capacity_bps;
  };
  auto assign = [&](std::size_t src_pos, int engine) {
    placement.processes[engine].load_bps += source_output_bps[src_pos];
    assignment[src_pos] = engine;
  };

  switch (strategy) {
    case AnalyticsStrategy::local_random: {
      for (std::size_t i = 0; i < source_indices.size(); ++i) {
        const dcn::NodeId src_host =
            placement.processes[source_indices[i]].host;
        const auto src_aggs = aggs_of_host(topo, src_host);
        int chosen = -1;
        for (const int e : engines) {
          if (!engine_fits(e, source_output_bps[i])) continue;
          const auto engine_aggs =
              aggs_of_host(topo, placement.processes[e].host);
          const bool shares = std::any_of(
              src_aggs.begin(), src_aggs.end(), [&](dcn::NodeId a) {
                return std::find(engine_aggs.begin(), engine_aggs.end(), a) !=
                       engine_aggs.end();
              });
          if (shares) {
            chosen = e;
            break;
          }
        }
        if (chosen < 0) {
          const dcn::NodeId host =
              topo.hosts()[rng.uniform(0, topo.hosts().size() - 1)];
          chosen = new_engine(topo, placement, kind, host, spec);
          engines.push_back(chosen);
        }
        assign(i, chosen);
      }
      break;
    }

    case AnalyticsStrategy::first_fit: {
      int current = -1;
      for (std::size_t i = 0; i < source_indices.size(); ++i) {
        if (current < 0 || !engine_fits(current, source_output_bps[i])) {
          const dcn::NodeId host =
              topo.hosts()[rng.uniform(0, topo.hosts().size() - 1)];
          current = new_engine(topo, placement, kind, host, spec);
          engines.push_back(current);
        }
        assign(i, current);
      }
      break;
    }

    case AnalyticsStrategy::greedy: {
      // Algorithm 2: repeatedly take the aggregate switch serving the most
      // unassigned sources and open an engine on a host beneath it.
      std::set<std::size_t> unassigned;
      for (std::size_t i = 0; i < source_indices.size(); ++i) unassigned.insert(i);
      while (!unassigned.empty()) {
        std::map<dcn::NodeId, std::vector<std::size_t>> under;
        for (const std::size_t i : unassigned) {
          const dcn::NodeId host = placement.processes[source_indices[i]].host;
          for (const auto agg : aggs_of_host(topo, host)) {
            under[agg].push_back(i);
          }
        }
        dcn::NodeId best_agg = under.begin()->first;
        for (const auto& [agg, list] : under) {
          if (list.size() > under[best_agg].size()) best_agg = agg;
        }
        // "choose a host nearby the monitor under that aggregate switch":
        // prefer the rack holding the most covered sources, so their legs
        // stay within the ToR; fall back to the pod, then anywhere.
        std::map<dcn::NodeId, std::size_t> tor_counts;
        for (const std::size_t i : under[best_agg]) {
          const dcn::NodeId src_host = placement.processes[source_indices[i]].host;
          ++tor_counts[topo.tor_of_host(src_host)];
        }
        dcn::NodeId best_tor = tor_counts.begin()->first;
        for (const auto& [tor, count] : tor_counts) {
          if (count > tor_counts[best_tor]) best_tor = tor;
        }
        dcn::NodeId host;
        {
          // Tiered choice: rack first, then pod, then the global fallback
          // inside pick_host.
          auto fits = [&](dcn::NodeId h) {
            return topo.node(h).cpu_free() >= spec.cpu_per_process &&
                   topo.node(h).mem_free_gb() >= spec.mem_per_process_gb;
          };
          std::vector<dcn::NodeId> rack_ok;
          for (const auto h : topo.hosts_under_tor(best_tor)) {
            if (fits(h)) rack_ok.push_back(h);
          }
          if (!rack_ok.empty()) {
            host = rack_ok[rng.uniform(0, rack_ok.size() - 1)];
          } else {
            host = pick_host(topo, topo.hosts_under_agg(best_agg), spec, rng);
          }
        }
        const int engine = new_engine(topo, placement, kind, host, spec);
        engines.push_back(engine);

        bool assigned_any = false;
        for (const std::size_t i : under[best_agg]) {
          if (assignment[i] >= 0) continue;
          if (assigned_any && !engine_fits(engine, source_output_bps[i])) break;
          assign(i, engine);
          assigned_any = true;
          unassigned.erase(i);
        }
      }
      break;
    }
  }
  return assignment;
}

}  // namespace netalytics::placement
