#include "placement/monitor_placement.hpp"

#include <algorithm>
#include <map>

namespace netalytics::placement {

namespace {

/// Pick the host under `tor` with minimal load ("host on switch sw with
/// minimal load", Algorithm 1).
dcn::NodeId min_load_host(const dcn::Topology& topo, dcn::NodeId tor) {
  const auto hosts = topo.hosts_under_tor(tor);
  dcn::NodeId best = hosts.front();
  for (const auto h : hosts) {
    if (topo.node(h).load() < topo.node(best).load()) best = h;
  }
  return best;
}

}  // namespace

void place_monitors(dcn::Topology& topo, const std::vector<dcn::Flow>& flows,
                    const ProcessSpec& spec, MonitorStrategy strategy,
                    common::Rng& rng, Placement& placement) {
  placement.flow_to_monitor.assign(flows.size(), -1);
  if (flows.empty()) return;

  // ToR -> indices of flows it covers (a flow is covered by its source and
  // destination racks). Lazy deletion via the assigned map.
  std::map<dcn::NodeId, std::vector<std::uint32_t>> covered_by;
  std::map<dcn::NodeId, std::size_t> remaining;
  std::vector<bool> assigned(flows.size(), false);
  for (std::uint32_t i = 0; i < flows.size(); ++i) {
    const dcn::NodeId src_tor = topo.tor_of_host(flows[i].src_host);
    const dcn::NodeId dst_tor = topo.tor_of_host(flows[i].dst_host);
    covered_by[src_tor].push_back(i);
    ++remaining[src_tor];
    if (dst_tor != src_tor) {
      covered_by[dst_tor].push_back(i);
      ++remaining[dst_tor];
    }
  }

  std::size_t flows_left = flows.size();
  while (flows_left > 0) {
    // Candidate ToRs still covering at least one unassigned flow.
    std::vector<dcn::NodeId> candidates;
    candidates.reserve(remaining.size());
    for (const auto& [tor, count] : remaining) {
      if (count > 0) candidates.push_back(tor);
    }
    if (candidates.empty()) break;  // defensive; flows_left should be 0

    dcn::NodeId sw;
    if (strategy == MonitorStrategy::random) {
      sw = candidates[rng.uniform(0, candidates.size() - 1)];
    } else {
      sw = candidates.front();
      for (const auto tor : candidates) {
        if (remaining[tor] > remaining[sw]) sw = tor;
      }
    }

    const dcn::NodeId host = min_load_host(topo, sw);
    consume_host_resources(topo.node(host), spec);
    PlacedProcess monitor;
    monitor.kind = ProcessKind::monitor;
    monitor.host = host;
    const int monitor_index = static_cast<int>(placement.processes.size());
    placement.processes.push_back(monitor);
    PlacedProcess& m = placement.processes.back();

    // Assign flows covered by sw until the monitor is out of capacity.
    auto& flow_list = covered_by[sw];
    std::size_t kept = 0;
    bool assigned_any = false;
    for (std::size_t pos = 0; pos < flow_list.size(); ++pos) {
      const std::uint32_t f = flow_list[pos];
      if (assigned[f]) continue;
      // A flow larger than a whole monitor still gets one to itself;
      // otherwise an elephant flow could never be placed.
      if (assigned_any &&
          m.load_bps + flows[f].rate_bps > spec.monitor_capacity_bps) {
        // Monitor full: keep the rest for a future monitor on this ToR.
        flow_list[kept++] = f;
        continue;
      }
      m.load_bps += flows[f].rate_bps;
      placement.flow_to_monitor[f] = monitor_index;
      assigned[f] = true;
      assigned_any = true;
      --flows_left;
      --remaining[sw];
      // The flow's other covering ToR loses a candidate too.
      const dcn::NodeId other_src = topo.tor_of_host(flows[f].src_host);
      const dcn::NodeId other_dst = topo.tor_of_host(flows[f].dst_host);
      const dcn::NodeId other = other_src == sw ? other_dst : other_src;
      if (other != sw) --remaining[other];
    }
    flow_list.resize(kept);
  }
}

}  // namespace netalytics::placement
