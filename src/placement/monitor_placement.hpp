// Algorithm 1 — monitor placement. Two facts drive it (§4.1): "a flow f
// can only be monitored by a monitor under a ToR switch which covers f"
// and "one monitor under a ToR switch sw is able to monitor all flows
// covered by sw". The random strategy picks covering ToRs uniformly; the
// greedy strategy always takes the ToR covering the most unmonitored flows
// to minimize the number of monitors.
#pragma once

#include "common/rng.hpp"
#include "placement/types.hpp"

namespace netalytics::placement {

enum class MonitorStrategy { random, greedy };

/// Place monitors for `flows` (the monitored subset of the workload) on
/// `topo` hosts, consuming host resources. Appends monitor processes to
/// `placement.processes` and fills `placement.flow_to_monitor`.
void place_monitors(dcn::Topology& topo, const std::vector<dcn::Flow>& flows,
                    const ProcessSpec& spec, MonitorStrategy strategy,
                    common::Rng& rng, Placement& placement);

}  // namespace netalytics::placement
