#include "core/result_view.hpp"

#include <map>

namespace netalytics::core {

std::vector<stream::Tuple> ResultView::latest(std::size_t key_fields) const {
  std::map<std::string, stream::Tuple> latest;
  for (const auto& t : *tuples_) {
    std::string key;
    for (std::size_t i = 0; i < key_fields && i < t.size(); ++i) {
      key += stream::format_value(t.at(i));
      key += '\x1f';
    }
    latest.insert_or_assign(key, t);
  }
  std::vector<stream::Tuple> out;
  out.reserve(latest.size());
  for (auto& [k, t] : latest) out.push_back(std::move(t));
  return out;
}

std::string ResultView::render(const RenderOptions& opts) const {
  std::string out;
  std::size_t n = 0;
  for (const auto& t : latest(opts.key_fields)) {
    if (n++ >= opts.max_rows) {
      out += "...\n";
      break;
    }
    out += stream::format_tuple(t);
    out += '\n';
  }
  return out;
}

}  // namespace netalytics::core
