// Query instantiation (§3.4): translate a validated query into a
// deployment plan — which monitors to start and where (via the placement
// algorithms), which OpenFlow mirror rules to install, and how long the
// deployment lives.
#pragma once

#include <optional>

#include "common/expected.hpp"
#include "core/emulation.hpp"
#include "placement/strategies.hpp"
#include "query/semantic.hpp"

namespace netalytics::core {

/// One concrete (from, to) endpoint pair after address resolution. The
/// match fields follow the original query addresses; host nodes guide
/// monitor placement.
struct EndpointPair {
  std::optional<net::Ipv4Prefix> src_prefix;
  std::optional<net::Port> src_port;
  std::optional<net::Ipv4Prefix> dst_prefix;
  std::optional<net::Port> dst_port;
  std::optional<dcn::NodeId> src_host;
  std::optional<dcn::NodeId> dst_host;
};

struct MonitorPlan {
  dcn::NodeId host = 0;
  dcn::NodeId tor = 0;
  std::vector<std::size_t> pair_indices;  // EndpointPairs it monitors
};

struct DeploymentPlan {
  std::vector<EndpointPair> pairs;
  std::vector<MonitorPlan> monitors;
  std::vector<std::string> topics;  // parser topics to run on every monitor
  double initial_sample_rate = 1.0;
  bool auto_sample = false;
  common::Duration duration = 0;    // 0 = unlimited (packet limit or manual)
  std::uint64_t packet_limit = 0;   // 0 = none
  std::vector<query::ProcessorCall> processors;
};

/// Compile a validated query against the emulation's host table and
/// topology. `strategy` picks the monitor-placement flavour (greedy covers
/// with the fewest monitors).
common::Expected<DeploymentPlan> compile_query(
    const query::ValidatedQuery& vq, const Emulation& emu,
    placement::MonitorStrategy strategy = placement::MonitorStrategy::greedy);

}  // namespace netalytics::core
