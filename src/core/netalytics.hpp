// The NetAlytics engine façade (Fig. 1): input query -> SDN rules + NFV
// monitors -> distributed queue -> stream processors -> result interface.
// Runs against an Emulation in virtual time: application traffic goes in
// through Emulation::transmit and the caller pumps the engine as the clock
// advances.
#pragma once

#include <deque>
#include <memory>

#include "core/compiler.hpp"
#include "mq/cluster.hpp"
#include "mq/producer.hpp"
#include "nf/orchestrator.hpp"
#include "stream/processors.hpp"
#include "stream/stepped.hpp"

namespace netalytics::core {

struct EngineConfig {
  std::size_t mq_brokers = 2;
  mq::BrokerConfig broker{};  // default: RAM-disk persistence (§6.1)
  placement::MonitorStrategy monitor_strategy = placement::MonitorStrategy::greedy;
  std::size_t processor_parallelism = 1;
  common::Duration tick_interval = common::kSecond;
  /// Feedback-driven sampling (§4.2): halve the rate above the high
  /// occupancy watermark, recover below the low one.
  double feedback_high_occupancy = 0.5;
  double feedback_low_occupancy = 0.1;
  /// Monitor tuning knobs applied to every deployed monitor.
  std::size_t monitor_output_batch = 32;
  int mirror_rule_priority = 10;
  /// Retry/backoff policy for every monitor's producer (at-least-once
  /// delivery into the aggregation layer).
  mq::RetryPolicy producer_retry{};
};

class NetAlytics;

/// A live (or finished) query: the result interface of Fig. 1.
class QueryHandle {
 public:
  std::uint64_t id() const noexcept { return id_; }
  bool finished() const noexcept { return finished_; }
  const DeploymentPlan& plan() const noexcept { return plan_; }

  /// Every tuple the processors' sinks emitted, in arrival order. Windowed
  /// processors re-emit snapshots each tick; see latest_by_key.
  const std::vector<stream::Tuple>& results() const noexcept { return results_; }

  /// Collapse periodic re-emissions: the last tuple seen for each distinct
  /// value of the first `key_fields` fields, in key order.
  std::vector<stream::Tuple> latest_by_key(std::size_t key_fields) const;

  /// Combined statistics across this query's monitors.
  nf::MonitorStats monitor_stats() const;
  double sample_rate() const;

  /// Plain-text rendering of latest_by_key results.
  std::string render(std::size_t key_fields, std::size_t max_rows = 50) const;

 private:
  friend class NetAlytics;

  std::uint64_t id_ = 0;
  DeploymentPlan plan_;
  bool finished_ = false;
  common::Timestamp start_time = 0;
  common::Timestamp end_time = 0;  // 0 = no deadline
  common::Timestamp last_tick = 0;

  std::vector<std::string> monitor_ids;                 // orchestrator ids
  std::vector<nf::Monitor*> monitors;                   // borrowed
  std::vector<std::unique_ptr<mq::Producer>> producers; // one per monitor
  std::vector<std::pair<sdn::SwitchId, std::uint64_t>> rule_cookies;
  std::vector<std::unique_ptr<stream::SteppedTopology>> topologies;
  std::vector<stream::Tuple> results_;
  nf::MonitorStats final_stats_;  // captured at stop_query
  double final_sample_rate_ = 1.0;
};

class NetAlytics {
 public:
  explicit NetAlytics(Emulation& emu, EngineConfig config = {});

  /// Parse, validate, compile and deploy a query. The returned handle is
  /// owned by the engine and stays valid until the engine is destroyed.
  common::Expected<QueryHandle*> submit(std::string_view text,
                                        common::Timestamp now);

  /// Advance the analytics side: drain processors, run periodic ticks,
  /// enforce LIMITs, and drive feedback sampling. Call as virtual time
  /// advances (at least once per tick interval).
  void pump(common::Timestamp now);

  /// Tear down a query now (uninstall rules, flush monitors, final tick).
  void stop_query(QueryHandle& q, common::Timestamp now);
  void stop_all(common::Timestamp now);

  mq::Cluster& cluster() noexcept { return cluster_; }
  nf::NfvOrchestrator& orchestrator() noexcept { return orchestrator_; }
  Emulation& emulation() noexcept { return emu_; }

  /// Automation hooks (§7.3): subsequently submitted top-k queries write
  /// rankings to `store` and drive the updater callbacks.
  void set_automation(stream::KvStore* store, stream::UpdaterConfig config,
                      stream::UpdaterBolt::ScaleCallback on_scale_up,
                      stream::UpdaterBolt::ScaleCallback on_scale_down);

  const std::deque<std::unique_ptr<QueryHandle>>& queries() const noexcept {
    return queries_;
  }

 private:
  void deploy_monitors(QueryHandle& q, common::Timestamp now);
  void build_processors(QueryHandle& q);
  /// `occupancy` is the pre-drain aggregation-buffer pressure.
  void apply_feedback(QueryHandle& q, double occupancy);

  Emulation& emu_;
  EngineConfig config_;
  mq::Cluster cluster_;
  nf::NfvOrchestrator orchestrator_;
  std::deque<std::unique_ptr<QueryHandle>> queries_;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t next_producer_id_ = 1;
  common::Timestamp now_ = 0;

  stream::KvStore* automation_store_ = nullptr;
  stream::UpdaterConfig automation_config_{};
  stream::UpdaterBolt::ScaleCallback automation_up_;
  stream::UpdaterBolt::ScaleCallback automation_down_;
};

}  // namespace netalytics::core
