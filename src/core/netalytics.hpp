// The NetAlytics engine façade (Fig. 1): input query -> SDN rules + NFV
// monitors -> distributed queue -> stream processors -> result interface.
// Runs against an Emulation in virtual time: application traffic goes in
// through Emulation::transmit and the caller pumps the engine as the clock
// advances.
#pragma once

#include <deque>
#include <memory>
#include <span>

#include "common/expected.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/compiler.hpp"
#include "core/result_view.hpp"
#include "mq/cluster.hpp"
#include "mq/producer.hpp"
#include "nf/orchestrator.hpp"
#include "obs/export.hpp"
#include "stream/executor.hpp"
#include "stream/processors.hpp"
#include "tsdb/store.hpp"

namespace netalytics::core {

// The unified historical read API (src/tsdb/): re-exported here because the
// engine façade is where callers meet it.
using Agg = tsdb::Agg;
using RangeQuery = tsdb::RangeQuery;
using RangeResult = tsdb::RangeResult;

struct EngineConfig {
  std::size_t mq_brokers = 2;
  mq::BrokerConfig broker{};  // default: RAM-disk persistence (§6.1)
  placement::MonitorStrategy monitor_strategy = placement::MonitorStrategy::greedy;
  /// Tasks per topology component (§5.3 "add executors"): partitions the
  /// work by grouping AND sizes the stepped executor's worker pool, so
  /// raising it buys real cores, not just partitioning. Results are
  /// bit-identical at any value a topology's groupings permit (the
  /// determinism contract, docs/DETERMINISM.md).
  std::size_t processor_parallelism = 1;
  /// Execution threads per topology. 0 (default) follows
  /// processor_parallelism; set explicitly to decouple task partitioning
  /// from the thread count (e.g. many tasks, few cores).
  std::size_t executor_workers = 0;
  /// Which executor runs each compiled topology. `stepped` (default) keeps
  /// the bit-identical determinism contract; `free_running` trades
  /// inter-key ordering for run-to-completion throughput while preserving
  /// the multiset of results, per-key order, and exact reconcile/ledger
  /// accounting (docs/DETERMINISM.md "relaxed mode").
  stream::ExecutorMode executor_mode = stream::ExecutorMode::stepped;
  /// Per-task inbox bound for the free-running executor (backpressure);
  /// ignored in stepped mode. Must be nonzero.
  std::size_t executor_inbox_capacity = 4096;
  /// Kafka-spout tasks per topology source (§5.3 "multiple Kafka
  /// 'Spouts'"): the N tasks form one consumer group and split the topic's
  /// partitions via the cluster's GroupCoordinator instead of each
  /// draining every broker. Delivery stays exact across join/leave
  /// rebalances (tests/core/group_rebalance_reconcile_test.cpp); sizes
  /// beyond broker.partitions_per_topic × mq_brokers leave members idle.
  std::size_t spout_group_size = 1;
  common::Duration tick_interval = common::kSecond;
  /// Feedback-driven sampling (§4.2): halve the rate above the high
  /// occupancy watermark, recover below the low one.
  double feedback_high_occupancy = 0.5;
  double feedback_low_occupancy = 0.1;
  /// Monitor tuning knobs applied to every deployed monitor.
  std::size_t monitor_output_batch = 32;
  int mirror_rule_priority = 10;
  /// Retry/backoff policy for every monitor's producer (at-least-once
  /// delivery into the aggregation layer).
  mq::RetryPolicy producer_retry{};
  /// Kafka-style producer accumulation: record batches ship to the brokers
  /// in groups (one partition-lock acquisition per group) instead of one
  /// broker round-trip per send. linger = 0 means open batches ship at the
  /// next engine pump; it must not exceed tick_interval or batched records
  /// would miss their window tick.
  mq::BatchPolicy producer_batch{.max_records = 32,
                                 .max_bytes = 256 * 1024,
                                 .linger = 0};
  /// Trace provenance (common/trace.hpp): 1-in-N ingested packets carry a
  /// flight-recorder trace id through the whole pipeline. 0 disables the
  /// recorder; the per-cause drop ledger is always on regardless.
  std::uint64_t trace_sample_denominator = 0;
  std::size_t trace_span_capacity = 4096;
  /// Windowed metrics time series: keep the last N per-tick snapshot deltas
  /// (netdata-style). 0 disables capture.
  /// Deprecated in favour of the tiered store below; kept for one release.
  std::size_t timeseries_slots = 0;
  /// Embedded tiered time-series store (src/tsdb/): per-tick registry
  /// snapshots and analytics emissions land in per-series hot rings and
  /// downsample into a compressed cold tier. hot_slots = 0 disables
  /// capture (query_range then serves only the live registry head).
  tsdb::StoreConfig tsdb_store{};
  /// Executor stage profiler (docs/OBSERVABILITY.md): per-task wall-clock
  /// self-time / queue-wait / pool-event counters published under
  /// "q<id>.proc<i>.profiler.*". Off by default — wall-clock series are
  /// excluded from the deterministic render contract — and rejected by
  /// validate() in a NETALYTICS_NO_METRICS build.
  bool executor_profiler = false;
  /// Export-layer knobs (src/obs/): the Prometheus metric-family prefix
  /// and the chrome://tracing span cap, validated with the other fields.
  obs::ExportOptions obs_export{};

  /// Reject configurations that cannot run: zero brokers, a zero tick
  /// interval, inverted feedback watermarks, zero processor parallelism,
  /// an absurd executor worker count or spout group size.
  /// The NetAlytics constructor throws on a bad config; submit() returns
  /// the same error recoverably.
  common::Expected<void> validate() const;
};

/// Fleet shape for multi-node streaming federation (src/fed/,
/// docs/FEDERATION.md): N child engines, each monitoring its own traffic
/// slice with this child EngineConfig, stream records and metric
/// snapshots to a parent over the framed wire protocol. Lives here — next
/// to EngineConfig — because the core façade owns engine construction;
/// fed::Federation consumes it to wire parent and children together.
struct FederationConfig {
  /// Child engines in the fleet. Child index, assigned at construction,
  /// is the protocol-visible identity and the deterministic merge order.
  std::size_t children = 2;
  /// Configuration every child engine is built with (the per-slice
  /// EngineConfig — executor workers, tsdb store, chaos wiring all apply
  /// per child).
  EngineConfig child_engine{};
  /// Hosts per rack of each child's emulated fabric
  /// (core::Emulation::make_small).
  std::size_t hosts_per_rack = 4;
  /// Bound on each child's replay buffer (unacknowledged RECORDS frames
  /// kept for gap replication). Overflow drops the oldest frame and is
  /// charged to the child's replay_overflow counters — sizing this too
  /// small is the one way federation gives up exactness.
  std::size_t replay_capacity = 1024;
  /// Max records batched into one RECORDS frame.
  std::size_t records_per_frame = 64;
  /// Reconnect backoff after a link drop: first retry after
  /// `reconnect_backoff`, doubling up to `reconnect_backoff_max`, reset
  /// on a completed handshake.
  common::Duration reconnect_backoff = 200 * common::kMillisecond;
  common::Duration reconnect_backoff_max = 2 * common::kSecond;
  /// Global fan-in top-k size kept by the parent.
  std::size_t top_k = 10;
  /// Record-field index the parent's fan-in counts keys from (e.g. 3 =
  /// "value" in the http_get schema).
  std::size_t key_field = 0;
  /// Parent-side tiered store for the fleet's metric history.
  tsdb::StoreConfig parent_store{};
  /// Parent-side Prometheus export options (fleet-prefixed families).
  obs::ExportOptions parent_export{};

  common::Expected<void> validate() const;
};

class NetAlytics;

/// A live (or finished) query: the result interface of Fig. 1.
class QueryHandle {
 public:
  std::uint64_t id() const noexcept { return id_; }
  bool finished() const noexcept { return finished_; }
  const DeploymentPlan& plan() const noexcept { return plan_; }

  /// The query's result interface: all access patterns live on the view.
  ResultView view() const noexcept { return ResultView(results_); }

  // Pre-ResultView accessors, kept as thin forwarders.
  const std::vector<stream::Tuple>& results() const noexcept { return results_; }
  /// Results appended since `cursor` (a previous results().size()); the
  /// incremental drain a federation child streams from. An out-of-range
  /// cursor yields an empty span.
  std::span<const stream::Tuple> results_since(std::size_t cursor) const noexcept {
    return cursor >= results_.size()
               ? std::span<const stream::Tuple>{}
               : std::span<const stream::Tuple>{results_}.subspan(cursor);
  }
  std::vector<stream::Tuple> latest_by_key(std::size_t key_fields) const {
    return view().latest(key_fields);
  }
  std::string render(std::size_t key_fields, std::size_t max_rows = 50) const {
    return view().render(key_fields, max_rows);
  }

  /// Historical range query scoped to this query: the selector is
  /// interpreted under "q<id>." ("mon" -> every monitor counter, "result"
  /// -> per-tick analytics emissions, "stage" -> latency histograms for
  /// the percentile aggs, "" -> everything this query recorded).
  RangeResult query_range(RangeQuery q) const;

  /// Combined statistics across this query's monitors — a compatibility
  /// shim over query_range("mon", sum): whole-range counter sums are exact
  /// and live (the store merges the registry head), so this matches the
  /// registry for live and finished queries alike.
  nf::MonitorStats monitor_stats() const;
  double sample_rate() const;

  /// Per-stage pipeline latency tracer for this query (emit / produce /
  /// consume / e2e histograms, fed in virtual time).
  const common::StageTracer& tracer() const noexcept { return *tracer_; }

  /// Sampled flight recorder for this query (disabled when
  /// EngineConfig::trace_sample_denominator == 0).
  const common::TraceRecorder& trace_recorder() const noexcept {
    return *recorder_;
  }
  /// Always-on per-cause discard counters ("q<id>.drop.*").
  const common::DropLedger& drop_ledger() const noexcept { return *ledger_; }
  /// Per-trace span timelines from the flight recorder (empty when tracing
  /// is disabled).
  std::string render_trace(std::size_t max_traces = 16) const {
    return recorder_->render(max_traces);
  }

  /// Unified render entry point: Prometheus-style rendering of this
  /// query's slice of the engine registry ("q<id>." + opts.prefix —
  /// monitor counters, producer counters, processor counters, stage
  /// histograms). Table rendering of results stays on view()/render(n).
  std::string render(const RenderOptions& opts) const;

  /// Pre-RenderOptions name, kept as a thin shim for one release.
  std::string render_metrics() const { return render(RenderOptions{}); }

  // Export layer (src/obs/, docs/OBSERVABILITY.md). All three are pure
  // functions of deterministic inputs, so repeated calls (and stepped-mode
  // runs at any worker count) produce byte-identical output.

  /// chrome://tracing / Perfetto event-array JSON of this query's recorded
  /// spans (pid = query id, one lane per pipeline stage, drop-cause
  /// counters from the ledger). Span cap from EngineConfig::obs_export.
  std::string export_chrome_trace() const;
  /// Prometheus text exposition of this query's registry slice ("q<id>.").
  std::string export_metrics() const;
  /// flamegraph.pl collapsed-stack profile of this query's executor
  /// stage-profiler counters (empty unless EngineConfig::executor_profiler).
  std::string export_profile() const;

 private:
  friend class NetAlytics;

  std::uint64_t id_ = 0;
  DeploymentPlan plan_;
  bool finished_ = false;
  common::Timestamp start_time = 0;
  common::Timestamp end_time = 0;  // 0 = no deadline
  common::Timestamp last_tick = 0;

  std::vector<std::string> monitor_ids;                 // orchestrator ids
  std::vector<nf::Monitor*> monitors;                   // borrowed
  std::vector<std::unique_ptr<mq::Producer>> producers; // one per monitor
  std::vector<std::pair<sdn::SwitchId, std::uint64_t>> rule_cookies;
  std::vector<std::unique_ptr<stream::TopologyExecutor>> topologies;
  std::vector<stream::Tuple> results_;
  double final_sample_rate_ = 1.0;

  common::MetricsRegistry* registry_ = nullptr;  // the engine's registry
  const NetAlytics* engine_ = nullptr;           // for query_range
  std::string metrics_prefix_;                   // "q<id>"
  std::unique_ptr<common::StageTracer> tracer_;
  std::unique_ptr<common::TraceRecorder> recorder_;
  std::unique_ptr<common::DropLedger> ledger_;
};

/// Conservation accounting over one query's pipeline: every packet the
/// monitors received either became result tuples, was discarded for a
/// ledger-accounted cause, or is still in flight between stages. Exact
/// (residual() == 0) for deterministic runs of record-preserving
/// processors (identity), where one shipped record is one result tuple;
/// aggregating processors fold many records into one tuple, so only the
/// drop/in-flight terms are meaningful there.
struct ReconcileReport {
  std::uint64_t packets_in = 0;    // monitor rx_packets (pre-drop)
  std::uint64_t tuples_out = 0;    // tuples delivered to the result sink
  std::uint64_t losses = 0;        // Σ ledger loss causes (incl. broker retention)
  std::uint64_t in_flight = 0;     // producer held + broker unread + spout buffered
  std::uint64_t tick_records = 0;  // records minted by parser window ticks
  std::uint64_t extra_records = 0; // records beyond a packet's first
  std::uint64_t duplicated = 0;    // broker at-least-once duplicate deliveries

  /// packets_in − (tuples_out + losses + in_flight) corrected for record
  /// multiplicity: tick and extra records reached the sink without being
  /// (whole) packets, duplicates reached it twice.
  std::int64_t residual() const noexcept {
    return static_cast<std::int64_t>(packets_in) -
           static_cast<std::int64_t>(tuples_out + losses + in_flight) +
           static_cast<std::int64_t>(tick_records + extra_records + duplicated);
  }
  bool exact() const noexcept { return residual() == 0; }

  /// One "term value" line per term plus the residual verdict.
  std::string render() const;
};

class NetAlytics {
 public:
  explicit NetAlytics(Emulation& emu, EngineConfig config = {});

  /// Parse, validate, compile and deploy a query. The returned handle is
  /// owned by the engine and stays valid until the engine is destroyed.
  common::Expected<QueryHandle*> submit(std::string_view text,
                                        common::Timestamp now);

  /// Advance the analytics side: drain processors, run periodic ticks,
  /// enforce LIMITs, and drive feedback sampling. Call as virtual time
  /// advances (at least once per tick interval).
  void pump(common::Timestamp now);

  /// Tear down a query now (uninstall rules, flush monitors, final tick).
  void stop_query(QueryHandle& q, common::Timestamp now);
  void stop_all(common::Timestamp now);

  mq::Cluster& cluster() noexcept { return cluster_; }
  nf::NfvOrchestrator& orchestrator() noexcept { return orchestrator_; }
  Emulation& emulation() noexcept { return emu_; }

  /// The engine-wide metrics registry every layer publishes into.
  common::MetricsRegistry& metrics() noexcept { return metrics_; }
  const common::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Execute a historical range query against the tiered store, merged
  /// with the live registry head (so whole-range counter sums equal the
  /// registry's current values even between captures, and queries work —
  /// from the head alone — with the store disabled).
  RangeResult query_range(const RangeQuery& q) const;
  /// The store itself, for stats (compression ratio, eviction counts).
  const tsdb::TieredStore& timeseries_store() const noexcept { return store_; }

  /// Unified render entry point: Prometheus-style dump of the registry
  /// filtered to names starting with opts.prefix (table fields unused).
  std::string render(const RenderOptions& opts) const {
    return metrics_.render_text(opts.prefix);
  }
  /// Pre-RenderOptions name, kept as a thin shim for one release.
  std::string render_metrics(std::string_view prefix = {}) const {
    return render(RenderOptions{.prefix = prefix});
  }

  /// Prometheus text exposition of the whole registry (optionally filtered
  /// to names starting with `prefix`), using EngineConfig::obs_export for
  /// the family prefix. The exposition every external scraper reads; see
  /// docs/OBSERVABILITY.md.
  std::string export_metrics(std::string_view prefix = {}) const;

  const EngineConfig& config() const noexcept { return config_; }
  /// Last virtual timestamp the engine saw (submit/pump).
  common::Timestamp now() const noexcept { return now_; }

  /// Prove drop accounting closes for `q`: every monitor-received packet is
  /// attributed to a result tuple, a ledger'd drop cause, or in-flight
  /// buffering. Broker-level terms (retention evictions, duplicates,
  /// unread backlog) are engine-wide, so the report is only attributable
  /// when `q` is the sole query on the cluster.
  ReconcileReport reconcile(const QueryHandle& q) const;

  /// Engine-wide drop ledger (broker retention lands here; per-query causes
  /// land in each query's own ledger).
  const common::DropLedger& drop_ledger() const noexcept { return engine_ledger_; }

  /// Windowed time series of registry deltas, captured once per tick
  /// interval during pump(). Null unless EngineConfig::timeseries_slots > 0.
  /// Deprecated: the raw ring exposes internal state; use query_range()
  /// (historical reads) or timeseries_store() (stats) instead.
  [[deprecated("use query_range()/timeseries_store()")]]
  const common::SnapshotRing* timeseries() const noexcept {
    return timeseries_.get();
  }

  /// Automation hooks (§7.3): subsequently submitted top-k queries write
  /// rankings to `store` and drive the updater callbacks.
  void set_automation(stream::KvStore* store, stream::UpdaterConfig config,
                      stream::UpdaterBolt::ScaleCallback on_scale_up,
                      stream::UpdaterBolt::ScaleCallback on_scale_down);

  const std::deque<std::unique_ptr<QueryHandle>>& queries() const noexcept {
    return queries_;
  }

 private:
  void deploy_monitors(QueryHandle& q, common::Timestamp now);
  void build_processors(QueryHandle& q);
  /// `occupancy` is the pre-drain aggregation-buffer pressure.
  void apply_feedback(QueryHandle& q, double occupancy);

  Emulation& emu_;
  EngineConfig config_;
  // Declared before the cluster/orchestrator/queries so it outlives every
  // component holding pointers into it.
  common::MetricsRegistry metrics_;
  // Likewise: the brokers hold a pointer to this ledger.
  common::DropLedger engine_ledger_;
  mq::Cluster cluster_;
  nf::NfvOrchestrator orchestrator_;
  std::deque<std::unique_ptr<QueryHandle>> queries_;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t next_producer_id_ = 1;
  common::Timestamp now_ = 0;
  std::unique_ptr<common::SnapshotRing> timeseries_;
  tsdb::TieredStore store_;
  common::Timestamp last_capture_ = 0;
  bool captured_once_ = false;

  // Engine-level counters ("engine.*"), resolved once in the constructor.
  common::Counter* queries_submitted_ = nullptr;
  common::Counter* queries_finished_ = nullptr;
  common::Counter* pumps_ = nullptr;

  stream::KvStore* automation_store_ = nullptr;
  stream::UpdaterConfig automation_config_{};
  stream::UpdaterBolt::ScaleCallback automation_up_;
  stream::UpdaterBolt::ScaleCallback automation_down_;
};

}  // namespace netalytics::core
