// In-process data-center emulation: a dcn topology whose ToR switches are
// live sdn::SdnSwitch instances under one controller. Application hosts are
// bound to IPs; transmitting a frame walks it through the source and
// destination ToR switches, where NetAlytics mirror rules copy matched
// traffic to attached monitors — the paper's deployment (Fig. 2) in
// miniature, byte-exact on the wire.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "dcn/topology.hpp"
#include "net/decode.hpp"
#include "sdn/controller.hpp"

namespace netalytics::common {
class FaultPlan;
}

namespace netalytics::core {

class Emulation {
 public:
  /// Default rules forward everything out the delivery port; the
  /// controller is wired to every ToR switch.
  explicit Emulation(dcn::Topology topo);

  /// Bind a named application host to a topology host node and an IP.
  /// Throws if the name/IP is taken or the node is not a host.
  void bind_host(const std::string& name, net::Ipv4Addr ip, dcn::NodeId node);

  /// Small-tree emulation with every host auto-bound as "h<i>" at
  /// 10.0.<rack>.<slot>.
  static Emulation make_small(std::size_t hosts_per_rack = 4);

  // ---- lookups --------------------------------------------------------
  std::optional<dcn::NodeId> node_of_ip(net::Ipv4Addr ip) const;
  std::optional<net::Ipv4Addr> ip_of_name(const std::string& name) const;
  std::optional<dcn::NodeId> node_of_name(const std::string& name) const;
  /// First IP bound to a host node.
  std::optional<net::Ipv4Addr> ip_of_node(dcn::NodeId node) const;
  /// Hosts bound inside a prefix.
  std::vector<dcn::NodeId> nodes_in_prefix(const net::Ipv4Prefix& prefix) const;
  /// (host node, bound IP) endpoints inside a prefix — a node may carry
  /// several IPs; each match is its own endpoint.
  std::vector<std::pair<dcn::NodeId, net::Ipv4Addr>> endpoints_in_prefix(
      const net::Ipv4Prefix& prefix) const;

  const dcn::Topology& topology() const noexcept { return topo_; }
  dcn::Topology& topology() noexcept { return topo_; }
  sdn::Controller& controller() noexcept { return controller_; }
  /// The live switch of a ToR node.
  sdn::SdnSwitch& switch_of_tor(dcn::NodeId tor);
  /// SDN switch id for a ToR node (== the node id).
  static sdn::SwitchId switch_id(dcn::NodeId tor) noexcept { return tor; }

  /// Port number on every ToR switch that represents normal delivery.
  static constexpr std::uint32_t kDeliveryPort = 0;
  /// Ingress port frames arrive on from hosts / the fabric.
  static constexpr std::uint32_t kIngressPort = 1;

  /// Chaos hook: a FaultPlan installed here (before a NetAlytics engine is
  /// constructed on this emulation) is threaded into every layer the engine
  /// builds — brokers, monitors, spouts — so an end-to-end test can kill a
  /// broker mid-run with one arm() call. The plan is borrowed, not owned.
  void install_faults(common::FaultPlan* plan) noexcept { fault_plan_ = plan; }
  common::FaultPlan* fault_plan() const noexcept { return fault_plan_; }

  /// Attach a monitor sink to a ToR switch; returns the port to mirror to.
  std::uint32_t attach_monitor(dcn::NodeId tor, sdn::PortSink sink);

  /// Inject a frame from its source host. The frame visits the source ToR
  /// and (when different) the destination ToR, so mirror rules fire
  /// wherever the covering monitor lives.
  void transmit(std::span<const std::byte> frame, common::Timestamp ts);

  std::uint64_t delivered_packets() const noexcept { return delivered_; }
  std::uint64_t delivered_bytes() const noexcept { return delivered_bytes_; }
  std::uint64_t transmitted_packets() const noexcept { return transmitted_; }

 private:
  struct TorState {
    std::unique_ptr<sdn::SdnSwitch> sw;
    std::uint32_t next_monitor_port = 100;
  };

  dcn::Topology topo_;
  sdn::Controller controller_;
  std::map<dcn::NodeId, TorState> tors_;
  std::map<net::Ipv4Addr, dcn::NodeId> ip_to_node_;
  std::map<std::string, net::Ipv4Addr> name_to_ip_;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t transmitted_ = 0;
  common::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace netalytics::core
