// Read-side of a query's result interface (Fig. 1), factored out of
// QueryHandle: one value type owning the access patterns consumers need —
// everything in arrival order, the latest row per key, and a plain-text
// table. Obtained via QueryHandle::view(); valid while the handle lives
// (the engine owns handles for its whole lifetime).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stream/tuple.hpp"

namespace netalytics::core {

/// Options for the unified render(opts) entry points (NetAlytics::render,
/// QueryHandle::render, ResultView::render). One struct serves both render
/// families: metrics renders honour `prefix` (a name filter under the
/// object's scope) and ignore the table fields; table renders honour
/// `key_fields`/`max_rows` and ignore `prefix`.
struct RenderOptions {
  std::string_view prefix{};
  std::size_t key_fields = 1;
  std::size_t max_rows = 50;
};

class ResultView {
 public:
  explicit ResultView(const std::vector<stream::Tuple>& tuples)
      : tuples_(&tuples) {}

  /// Every tuple the processors' sinks emitted, in arrival order. Windowed
  /// processors re-emit snapshots each tick; see latest().
  const std::vector<stream::Tuple>& all() const noexcept { return *tuples_; }
  std::size_t size() const noexcept { return tuples_->size(); }
  bool empty() const noexcept { return tuples_->empty(); }

  /// Collapse periodic re-emissions: the last tuple seen for each distinct
  /// value of the first `key_fields` fields, in key order.
  std::vector<stream::Tuple> latest(std::size_t key_fields) const;

  /// Plain-text rendering of latest(): one formatted tuple per line,
  /// truncated with "..." past opts.max_rows (opts.prefix is unused here).
  std::string render(const RenderOptions& opts) const;

  /// Pre-RenderOptions signature, kept as a thin shim for one release.
  std::string render(std::size_t key_fields, std::size_t max_rows = 50) const {
    return render(RenderOptions{.key_fields = key_fields, .max_rows = max_rows});
  }

 private:
  const std::vector<stream::Tuple>* tuples_;
};

}  // namespace netalytics::core
