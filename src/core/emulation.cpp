#include "core/emulation.hpp"

#include <stdexcept>

namespace netalytics::core {

Emulation::Emulation(dcn::Topology topo) : topo_(std::move(topo)) {
  for (const auto tor : topo_.tor_switches()) {
    TorState state;
    state.sw = std::make_unique<sdn::SdnSwitch>(switch_id(tor));
    controller_.register_switch(*state.sw);

    // Default lowest-priority rule: forward everything out the delivery
    // port. The delivery sink counts final delivery (the port-0 hop of the
    // destination ToR); packets egressing the *source* ToR are re-injected
    // at the destination ToR by transmit(), not here, to keep switch
    // callbacks re-entrancy-free.
    sdn::FlowRule rule;
    rule.priority = 0;
    rule.actions = {sdn::OutputAction{kDeliveryPort}};
    state.sw->table().install(rule, 0);

    // Delivery is counted in transmit() (a cross-rack frame visits two
    // switches; only its arrival at the destination ToR is a delivery).
    state.sw->connect_port(kDeliveryPort,
                           [](std::span<const std::byte>, common::Timestamp) {});
    tors_.emplace(tor, std::move(state));
  }
}

void Emulation::bind_host(const std::string& name, net::Ipv4Addr ip,
                          dcn::NodeId node) {
  if (topo_.node(node).kind != dcn::NodeKind::host) {
    throw std::invalid_argument("bind_host: node " + std::to_string(node) +
                                " is not a host");
  }
  if (name_to_ip_.contains(name)) {
    throw std::invalid_argument("bind_host: name '" + name + "' already bound");
  }
  if (ip_to_node_.contains(ip)) {
    throw std::invalid_argument("bind_host: ip " + net::format_ipv4(ip) +
                                " already bound");
  }
  name_to_ip_[name] = ip;
  ip_to_node_[ip] = node;
}

Emulation Emulation::make_small(std::size_t hosts_per_rack) {
  Emulation emu(dcn::build_small_tree(hosts_per_rack));
  std::size_t i = 0;
  const auto& tors = emu.topo_.tor_switches();
  for (std::size_t rack = 0; rack < tors.size(); ++rack) {
    std::size_t slot = 1;
    for (const auto host : emu.topo_.hosts_under_tor(tors[rack])) {
      emu.bind_host("h" + std::to_string(i++),
                    net::make_ipv4(10, 0, static_cast<std::uint8_t>(rack),
                                   static_cast<std::uint8_t>(slot++)),
                    host);
    }
  }
  return emu;
}

std::optional<dcn::NodeId> Emulation::node_of_ip(net::Ipv4Addr ip) const {
  const auto it = ip_to_node_.find(ip);
  if (it == ip_to_node_.end()) return std::nullopt;
  return it->second;
}

std::optional<net::Ipv4Addr> Emulation::ip_of_name(const std::string& name) const {
  const auto it = name_to_ip_.find(name);
  if (it == name_to_ip_.end()) return std::nullopt;
  return it->second;
}

std::optional<dcn::NodeId> Emulation::node_of_name(const std::string& name) const {
  const auto ip = ip_of_name(name);
  if (!ip) return std::nullopt;
  return node_of_ip(*ip);
}

std::optional<net::Ipv4Addr> Emulation::ip_of_node(dcn::NodeId node) const {
  for (const auto& [ip, n] : ip_to_node_) {
    if (n == node) return ip;
  }
  return std::nullopt;
}

std::vector<dcn::NodeId> Emulation::nodes_in_prefix(
    const net::Ipv4Prefix& prefix) const {
  std::vector<dcn::NodeId> out;
  for (const auto& [ip, node] : ip_to_node_) {
    if (prefix.contains(ip)) out.push_back(node);
  }
  return out;
}

std::vector<std::pair<dcn::NodeId, net::Ipv4Addr>> Emulation::endpoints_in_prefix(
    const net::Ipv4Prefix& prefix) const {
  std::vector<std::pair<dcn::NodeId, net::Ipv4Addr>> out;
  for (const auto& [ip, node] : ip_to_node_) {
    if (prefix.contains(ip)) out.emplace_back(node, ip);
  }
  return out;
}

sdn::SdnSwitch& Emulation::switch_of_tor(dcn::NodeId tor) {
  return *tors_.at(tor).sw;
}

std::uint32_t Emulation::attach_monitor(dcn::NodeId tor, sdn::PortSink sink) {
  TorState& state = tors_.at(tor);
  const std::uint32_t port = state.next_monitor_port++;
  state.sw->connect_port(port, std::move(sink));
  return port;
}

void Emulation::transmit(std::span<const std::byte> frame, common::Timestamp ts) {
  ++transmitted_;
  const auto decoded = net::decode_packet(frame);
  if (!decoded || !decoded->has_ipv4) return;

  const auto src_node = node_of_ip(decoded->ipv4.src);
  const auto dst_node = node_of_ip(decoded->ipv4.dst);

  std::optional<dcn::NodeId> src_tor, dst_tor;
  if (src_node) src_tor = topo_.tor_of_host(*src_node);
  if (dst_node) dst_tor = topo_.tor_of_host(*dst_node);

  // Visit the source ToR first (mirrors fire), then the destination ToR
  // (mirrors fire, delivery counted). With both ends in one rack the frame
  // crosses a single switch, like the real fabric.
  if (src_tor) {
    tors_.at(*src_tor).sw->handle_packet(kIngressPort, frame, ts);
    if (dst_tor && *dst_tor != *src_tor) {
      tors_.at(*dst_tor).sw->handle_packet(kIngressPort, frame, ts);
    }
  } else if (dst_tor) {
    tors_.at(*dst_tor).sw->handle_packet(kIngressPort, frame, ts);
  }
  if (dst_node) {
    ++delivered_;
    delivered_bytes_ += frame.size();
  }
}

}  // namespace netalytics::core
