#include "core/compiler.hpp"

#include <map>

#include "common/rng.hpp"

namespace netalytics::core {

namespace {

common::Error err(std::string message) {
  return common::Error{"compile", std::move(message)};
}

/// A resolved address: concrete bound endpoints (host node + the IP that
/// matched) plus the match fields. An `any` address resolves to an empty
/// endpoint list and no match restriction.
struct Resolved {
  struct HostIp {
    dcn::NodeId node;
    net::Ipv4Addr ip;
  };
  std::vector<HostIp> hosts;
  std::optional<net::Ipv4Prefix> prefix;
  std::optional<net::Port> port;
  bool is_any = false;
};

common::Expected<Resolved> resolve(const query::Address& addr, const Emulation& emu) {
  Resolved r;
  r.port = addr.port;
  switch (addr.kind) {
    case query::Address::Kind::any:
      r.is_any = true;
      return r;
    case query::Address::Kind::hostname: {
      const auto ip = emu.ip_of_name(addr.text);
      if (!ip) return err("unknown hostname '" + addr.text + "'");
      r.prefix = net::Ipv4Prefix{*ip, 32};
      r.hosts = {{*emu.node_of_ip(*ip), *ip}};
      return r;
    }
    case query::Address::Kind::ip: {
      r.prefix = addr.prefix;
      const auto node = emu.node_of_ip(addr.prefix->addr);
      if (!node) {
        return err("ip " + net::format_ipv4(addr.prefix->addr) +
                   " is not bound to any host");
      }
      r.hosts = {{*node, addr.prefix->addr}};
      return r;
    }
    case query::Address::Kind::subnet: {
      r.prefix = addr.prefix;
      for (const auto& [node, ip] : emu.endpoints_in_prefix(*addr.prefix)) {
        r.hosts.push_back({node, ip});
      }
      if (r.hosts.empty()) {
        return err("subnet " + net::format_ipv4_prefix(*addr.prefix) +
                   " contains no bound hosts");
      }
      return r;
    }
  }
  return err("unreachable address kind");
}

}  // namespace

common::Expected<DeploymentPlan> compile_query(const query::ValidatedQuery& vq,
                                               const Emulation& emu,
                                               placement::MonitorStrategy strategy) {
  DeploymentPlan plan;
  plan.topics = vq.topics;
  plan.processors = vq.query.processors;

  switch (vq.query.sample.mode) {
    case query::SampleSpec::Mode::disabled:
      plan.initial_sample_rate = 1.0;
      break;
    case query::SampleSpec::Mode::fixed:
      plan.initial_sample_rate = vq.query.sample.rate;
      break;
    case query::SampleSpec::Mode::automatic:
      plan.initial_sample_rate = 1.0;
      plan.auto_sample = true;
      break;
  }
  if (vq.query.limit.kind == query::LimitSpec::Kind::duration) {
    plan.duration = vq.query.limit.duration;
  } else if (vq.query.limit.kind == query::LimitSpec::Kind::packets) {
    plan.packet_limit = vq.query.limit.packets;
  }

  // Resolve FROM/TO address lists; an absent clause acts as a single "*".
  std::vector<Resolved> from, to;
  for (const auto& a : vq.query.from) {
    auto r = resolve(a, emu);
    if (!r) return r.error();
    from.push_back(std::move(*r));
  }
  for (const auto& a : vq.query.to) {
    auto r = resolve(a, emu);
    if (!r) return r.error();
    to.push_back(std::move(*r));
  }
  Resolved any;
  any.is_any = true;
  if (from.empty()) from.push_back(any);
  if (to.empty()) to.push_back(any);

  // Cross product, expanding subnets to their bound hosts so each pair has
  // concrete endpoints for placement. Expanded pairs match at /32
  // granularity so no two monitors mirror the same flow.
  using MaybeEndpoint = std::optional<Resolved::HostIp>;
  const auto endpoints_of = [](const Resolved& r) {
    std::vector<MaybeEndpoint> v;
    if (r.is_any) {
      v.emplace_back(std::nullopt);
    } else {
      for (const auto& h : r.hosts) v.emplace_back(h);
    }
    return v;
  };
  for (const auto& f : from) {
    for (const auto& t : to) {
      if (f.is_any && t.is_any) continue;  // rejected by semantic analysis
      for (const auto& src : endpoints_of(f)) {
        for (const auto& dst : endpoints_of(t)) {
          EndpointPair pair;
          pair.src_port = f.port;
          pair.dst_port = t.port;
          if (src) {
            pair.src_host = src->node;
            pair.src_prefix = net::Ipv4Prefix{src->ip, 32};
          }
          if (dst) {
            pair.dst_host = dst->node;
            pair.dst_prefix = net::Ipv4Prefix{dst->ip, 32};
          }
          plan.pairs.push_back(pair);
        }
      }
    }
  }
  if (plan.pairs.empty()) return err("query matches no traffic");

  // Monitor placement over the pairs, reusing Algorithm 1. Each pair acts
  // as one "flow" with unit rate; pairs missing one endpoint anchor on the
  // known side.
  std::vector<dcn::Flow> flows;
  flows.reserve(plan.pairs.size());
  for (const auto& pair : plan.pairs) {
    dcn::Flow flow;
    flow.src_host = pair.src_host.value_or(pair.dst_host.value_or(0));
    flow.dst_host = pair.dst_host.value_or(pair.src_host.value_or(0));
    flow.rate_bps = 1.0;
    flows.push_back(flow);
  }

  dcn::Topology scratch = emu.topology();  // placement consumes resources
  common::Rng rng(0xdeadbeef);
  placement::ProcessSpec spec;
  placement::Placement placement;
  placement::place_monitors(scratch, flows, spec, strategy, rng, placement);

  std::map<int, std::size_t> monitor_index;  // placement process -> plan index
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const int m = placement.flow_to_monitor[f];
    if (m < 0) continue;
    auto it = monitor_index.find(m);
    if (it == monitor_index.end()) {
      MonitorPlan mp;
      mp.host = placement.processes[m].host;
      mp.tor = emu.topology().tor_of_host(mp.host);
      it = monitor_index.emplace(m, plan.monitors.size()).first;
      plan.monitors.push_back(std::move(mp));
    }
    plan.monitors[it->second].pair_indices.push_back(f);
  }
  if (plan.monitors.empty()) return err("no monitor placement found");
  return plan;
}

}  // namespace netalytics::core
