#include "core/netalytics.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/profile.hpp"
#include "obs/prometheus.hpp"
#include "parsers/parsers.hpp"

namespace netalytics::core {

namespace {

/// Suffix after the last '.' — "q1.mon0.rx_packets" -> "rx_packets".
std::string_view leaf_name(std::string_view name) {
  const auto dot = name.rfind('.');
  return dot == std::string_view::npos ? name : name.substr(dot + 1);
}

/// Map a windowed emission to a (series-key, value) pair for the tiered
/// store. Shapes (see stream/topk.hpp and GroupAggBolt::emit_groups):
/// rolling-count / local top-k [key, count], global top-k [rank, key,
/// count] (the rank is dropped so a key's series is stable as it moves
/// through the ranking), group aggregations [groups..., result, count]
/// (the double result is the value). Returns nullopt for per-event
/// shapes, which are not captured.
std::optional<std::pair<std::string, double>> result_series(
    const stream::Tuple& t) {
  if (t.size() < 2 || !std::holds_alternative<std::uint64_t>(t.values.back())) {
    return std::nullopt;
  }
  std::size_t key_end = t.size() - 1;
  double value = static_cast<double>(stream::as_u64(t.values.back()));
  if (key_end >= 2 && std::holds_alternative<double>(t.at(key_end - 1))) {
    value = std::get<double>(t.at(key_end - 1));
    --key_end;
  }
  std::size_t key_begin = 0;
  if (key_end >= 2 && std::holds_alternative<std::uint64_t>(t.at(0))) {
    key_begin = 1;  // global top-k rank
  }
  std::string key;
  for (std::size_t i = key_begin; i < key_end; ++i) {
    if (!key.empty()) key += '.';
    key += stream::format_value(t.at(i));
  }
  if (key.empty()) key = "value";
  return std::make_pair(std::move(key), value);
}

}  // namespace

common::Expected<void> EngineConfig::validate() const {
  using common::Error;
  if (mq_brokers == 0) {
    return Error{"config", "mq_brokers must be > 0"};
  }
  if (tick_interval == 0) {
    return Error{"config", "tick_interval must be > 0"};
  }
  if (feedback_low_occupancy > feedback_high_occupancy) {
    return Error{"config",
                 "feedback_low_occupancy must not exceed "
                 "feedback_high_occupancy"};
  }
  if (processor_parallelism == 0) {
    return Error{"config", "processor_parallelism must be > 0"};
  }
  if (executor_workers > 256 || processor_parallelism > 256) {
    return Error{"config",
                 "executor_workers/processor_parallelism must be <= 256"};
  }
  if (spout_group_size == 0 || spout_group_size > 256) {
    return Error{"config", "spout_group_size must be in [1, 256]"};
  }
  if (executor_mode != stream::ExecutorMode::stepped &&
      executor_mode != stream::ExecutorMode::free_running) {
    return Error{"config", "executor_mode must be stepped or free_running"};
  }
  if (executor_inbox_capacity == 0) {
    return Error{"config", "executor_inbox_capacity must be > 0"};
  }
  if (producer_batch.max_records == 0) {
    return Error{"config", "producer_batch.max_records must be > 0"};
  }
  if (producer_batch.linger > tick_interval) {
    return Error{"config",
                 "producer_batch.linger must not exceed tick_interval"};
  }
  if (auto ok = tsdb_store.validate(); !ok) return ok.error();
  if (executor_profiler && !stream::profiler_available()) {
    return Error{"config",
                 "executor_profiler requires a metrics-enabled build "
                 "(built with NETALYTICS_NO_METRICS)"};
  }
  if (!obs::valid_metric_prefix(obs_export.metric_prefix)) {
    return Error{"config",
                 "obs_export.metric_prefix must match "
                 "[a-zA-Z_:][a-zA-Z0-9_:]*"};
  }
  if (obs_export.max_spans > obs::kMaxExportSpans) {
    return Error{"config", "obs_export.max_spans must be <= 2^24"};
  }
  return {};
}

common::Expected<void> FederationConfig::validate() const {
  using common::Error;
  if (children == 0 || children > 64) {
    return Error{"config", "federation children must be in [1, 64]"};
  }
  if (hosts_per_rack == 0) {
    return Error{"config", "hosts_per_rack must be > 0"};
  }
  if (replay_capacity == 0) {
    return Error{"config", "replay_capacity must be > 0"};
  }
  if (records_per_frame == 0) {
    return Error{"config", "records_per_frame must be > 0"};
  }
  if (reconnect_backoff == 0 || reconnect_backoff > reconnect_backoff_max) {
    return Error{"config",
                 "reconnect_backoff must be in (0, reconnect_backoff_max]"};
  }
  if (top_k == 0) {
    return Error{"config", "top_k must be > 0"};
  }
  if (auto ok = parent_store.validate(); !ok) return ok.error();
  if (!obs::valid_metric_prefix(parent_export.metric_prefix)) {
    return Error{"config",
                 "parent_export.metric_prefix must match "
                 "[a-zA-Z_:][a-zA-Z0-9_:]*"};
  }
  return child_engine.validate();
}

std::string ReconcileReport::render() const {
  std::string out;
  const auto line = [&out](std::string_view name, std::uint64_t v) {
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  line("packets_in", packets_in);
  line("tuples_out", tuples_out);
  line("losses", losses);
  line("in_flight", in_flight);
  line("tick_records", tick_records);
  line("extra_records", extra_records);
  line("duplicated", duplicated);
  out += "residual ";
  out += std::to_string(residual());
  out += exact() ? "\nexact true\n" : "\nexact false\n";
  return out;
}

RangeResult QueryHandle::query_range(RangeQuery q) const {
  // Scope the selector under this query's registry prefix ("q<id>.", the
  // trailing dot keeps "q1" from matching "q10.*").
  q.selector = metrics_prefix_ + "." + q.selector;
  if (engine_ == nullptr) {
    RangeResult empty;
    empty.query = std::move(q);
    return empty;
  }
  return engine_->query_range(q);
}

nf::MonitorStats QueryHandle::monitor_stats() const {
  nf::MonitorStats total;
  if (engine_ == nullptr) return total;
  // A whole-range sum per "q<id>.mon*" counter. The store merges the live
  // registry head, so the sums equal the registry's current values exactly
  // — for live and finished queries alike (the counters outlive the
  // monitors) and even with the store disabled.
  const auto res = query_range({.selector = "mon", .agg = Agg::sum});
  for (const auto& s : res.series) {
    if (s.points.empty()) continue;
    const auto v = static_cast<std::uint64_t>(s.points.front().value);
    const auto leaf = leaf_name(s.name);
    if (leaf == "rx_packets") total.rx_packets += v;
    else if (leaf == "rx_dropped") total.rx_dropped += v;
    else if (leaf == "decode_failed") total.decode_failed += v;
    else if (leaf == "sampled_out") total.sampled_out += v;
    else if (leaf == "dispatched") total.dispatched += v;
    else if (leaf == "worker_dropped") total.worker_dropped += v;
    else if (leaf == "parsed") total.parsed += v;
    else if (leaf == "records") total.records += v;
    else if (leaf == "record_bytes") total.record_bytes += v;
    else if (leaf == "raw_bytes") total.raw_bytes += v;
    else if (leaf == "parser_errors") total.parser_errors += v;
  }
  return total;
}

double QueryHandle::sample_rate() const {
  if (finished_ || monitors.empty()) return final_sample_rate_;
  return monitors.front()->sample_rate();
}

std::string QueryHandle::render(const RenderOptions& opts) const {
  if (registry_ == nullptr) return {};
  // Trailing dot so "q1." never matches "q10.*".
  return registry_->render_text(metrics_prefix_ + "." + std::string(opts.prefix));
}

std::string QueryHandle::export_chrome_trace() const {
  obs::ChromeTraceOptions options;
  options.pid = id_;
  options.process_name = "netalytics " + metrics_prefix_;
  if (engine_ != nullptr) {
    options.max_spans = engine_->config().obs_export.max_spans;
  }
  const common::Timestamp now = engine_ != nullptr ? engine_->now() : 0;
  return obs::ChromeTraceExporter(std::move(options))
      .export_json(*recorder_, ledger_.get(), now);
}

std::string QueryHandle::export_metrics() const {
  if (registry_ == nullptr) return {};
  const obs::ExportOptions options = engine_ != nullptr
                                         ? engine_->config().obs_export
                                         : obs::ExportOptions{};
  return obs::PrometheusExporter(options).export_snapshot(
      registry_->snapshot(metrics_prefix_ + "."));
}

std::string QueryHandle::export_profile() const {
  if (registry_ == nullptr) return {};
  return obs::collapsed_stack(registry_->snapshot(metrics_prefix_ + "."));
}

std::string NetAlytics::export_metrics(std::string_view prefix) const {
  return obs::PrometheusExporter(config_.obs_export)
      .export_snapshot(metrics_.snapshot(prefix));
}

NetAlytics::NetAlytics(Emulation& emu, EngineConfig config)
    : emu_(emu),
      config_(config),
      engine_ledger_(metrics_, "drop"),
      cluster_(config.mq_brokers, config.broker),
      store_(config.tsdb_store) {
  if (auto ok = config_.validate(); !ok) {
    throw std::invalid_argument(ok.error().to_string());
  }
  parsers::register_builtin_parsers();
  cluster_.bind_metrics(metrics_);  // "mq.broker<i>.*"
  cluster_.set_drop_ledger(&engine_ledger_);
  if (config_.timeseries_slots > 0) {
    timeseries_ = std::make_unique<common::SnapshotRing>(config_.timeseries_slots);
  }
  queries_submitted_ = &metrics_.counter("engine.queries_submitted");
  queries_finished_ = &metrics_.counter("engine.queries_finished");
  pumps_ = &metrics_.counter("engine.pumps");
  // Chaos wiring: a plan installed on the emulation reaches every layer
  // this engine builds (see Emulation::install_faults).
  if (emu_.fault_plan() != nullptr) cluster_.install_faults(emu_.fault_plan());
}

common::Expected<QueryHandle*> NetAlytics::submit(std::string_view text,
                                                  common::Timestamp now) {
  now_ = now;
  if (auto ok = config_.validate(); !ok) return ok.error();
  auto validated = query::parse_and_validate(text);
  if (!validated) return validated.error();
  auto plan = compile_query(*validated, emu_, config_.monitor_strategy);
  if (!plan) return plan.error();

  auto handle = std::make_unique<QueryHandle>();
  handle->id_ = next_query_id_++;
  handle->plan_ = std::move(*plan);
  handle->start_time = now;
  handle->last_tick = now;
  if (handle->plan_.duration > 0) handle->end_time = now + handle->plan_.duration;

  // Everything this query publishes lives under "q<id>." in the engine's
  // registry; the tracer owns the per-stage latency histograms.
  handle->registry_ = &metrics_;
  handle->engine_ = this;
  handle->metrics_prefix_ = "q" + std::to_string(handle->id_);
  handle->tracer_ = std::make_unique<common::StageTracer>(
      metrics_, handle->metrics_prefix_);
  handle->ledger_ = std::make_unique<common::DropLedger>(
      metrics_, handle->metrics_prefix_ + ".drop");
  handle->recorder_ = std::make_unique<common::TraceRecorder>(
      common::TraceRecorder::Config{
          .sample_denominator = config_.trace_sample_denominator,
          .capacity_per_thread = config_.trace_span_capacity});

  deploy_monitors(*handle, now);
  build_processors(*handle);
  queries_submitted_->inc();

  common::log_info("engine", "query ", handle->id_, " deployed: ",
                   handle->monitors.size(), " monitors, ",
                   handle->rule_cookies.size(), " rules, ",
                   handle->topologies.size(), " processors");
  queries_.push_back(std::move(handle));
  return queries_.back().get();
}

void NetAlytics::deploy_monitors(QueryHandle& q, common::Timestamp now) {
  for (const auto& mp : q.plan_.monitors) {
    const auto j = q.monitors.size();
    // One producer per monitor; its key spreads this monitor's batches
    // across brokers while keeping them ordered.
    auto producer = std::make_unique<mq::Producer>(
        cluster_, next_producer_id_++, nullptr, config_.producer_retry,
        config_.producer_batch);
    producer->bind_metrics(metrics_,
                           q.metrics_prefix_ + ".producer" + std::to_string(j),
                           q.tracer_.get(), q.recorder_.get(), q.ledger_.get());
    mq::Producer* producer_ptr = producer.get();

    nf::MonitorConfig mcfg;
    for (const auto& topic : q.plan_.topics) mcfg.parsers.push_back({topic, 1});
    mcfg.sample_rate = q.plan_.initial_sample_rate;
    mcfg.output_batch_records = config_.monitor_output_batch;
    mcfg.metrics = &metrics_;
    mcfg.metrics_prefix = q.metrics_prefix_ + ".mon" + std::to_string(j);
    mcfg.tracer = q.tracer_.get();
    mcfg.trace_recorder = q.recorder_.get();
    mcfg.drop_ledger = q.ledger_.get();

    nf::BatchSink sink = [this, producer_ptr](std::string_view topic,
                                              std::vector<std::byte> payload,
                                              const nf::BatchInfo& info) {
      producer_ptr->send(topic, std::move(payload), now_, info.records,
                         {info.traces.begin(), info.traces.end()});
    };

    const std::string host_name = "host-" + std::to_string(mp.host);
    const std::string id = orchestrator_.deploy(host_name, mcfg, std::move(sink));
    nf::Monitor* monitor = orchestrator_.find(id);
    monitor->install_faults(emu_.fault_plan());

    // Wire the monitor to its ToR switch (inline processing keeps the
    // emulation deterministic) and mirror the matched pairs to it.
    const auto port = emu_.attach_monitor(
        mp.tor, [monitor](std::span<const std::byte> frame, common::Timestamp ts) {
          monitor->process(frame, ts);
        });

    for (const auto pair_index : mp.pair_indices) {
      const EndpointPair& pair = q.plan_.pairs[pair_index];
      sdn::FlowMatch fwd;
      fwd.eth_type = net::kEtherTypeIpv4;
      fwd.src_prefix = pair.src_prefix;
      fwd.src_port = pair.src_port;
      fwd.dst_prefix = pair.dst_prefix;
      fwd.dst_port = pair.dst_port;
      // Mirror both directions: connection-time, HTTP and MySQL parsers
      // all need the server's responses too.
      sdn::FlowMatch rev;
      rev.eth_type = net::kEtherTypeIpv4;
      rev.src_prefix = pair.dst_prefix;
      rev.src_port = pair.dst_port;
      rev.dst_prefix = pair.src_prefix;
      rev.dst_port = pair.src_port;

      for (const auto& match : {fwd, rev}) {
        const auto cookie = emu_.controller().install_mirror(
            Emulation::switch_id(mp.tor), match, Emulation::kDeliveryPort, port,
            config_.mirror_rule_priority, now, q.plan_.duration);
        if (cookie) {
          q.rule_cookies.emplace_back(Emulation::switch_id(mp.tor), *cookie);
        }
      }
    }

    q.monitor_ids.push_back(id);
    q.monitors.push_back(monitor);
    q.producers.push_back(std::move(producer));
  }
}

void NetAlytics::build_processors(QueryHandle& q) {
  QueryHandle* qp = &q;
  for (std::size_t i = 0; i < q.plan_.processors.size(); ++i) {
    const auto& call = q.plan_.processors[i];
    stream::ProcessorContext ctx;
    ctx.cluster = &cluster_;
    ctx.consumer_group =
        "q" + std::to_string(q.id_) + "-" + call.name + std::to_string(i);
    ctx.topics = q.plan_.topics;
    ctx.parallelism = config_.processor_parallelism;
    ctx.spout_group_size = config_.spout_group_size;
    ctx.fault_plan = emu_.fault_plan();
    ctx.metrics = &metrics_;
    ctx.metrics_prefix = q.metrics_prefix_ + ".proc" + std::to_string(i);
    ctx.tracer = q.tracer_.get();
    ctx.trace_recorder = q.recorder_.get();
    ctx.drop_ledger = q.ledger_.get();
    // End-to-end latency needs the result tuple to still carry the packet's
    // ingress timestamp; only identity preserves the record schema
    // ([id, ts:u64, ...]), so the e2e stage is stamped on its sink alone.
    const bool stamp_e2e = call.name == "identity";
    // Windowed emissions (rankings, group aggregates) are per-tick values
    // worth a history; per-event shapes (identity, join, diffs) are not —
    // their cardinality is the packet stream's.
    const bool capture_results =
        store_.enabled() &&
        (call.name == "top-k" || call.name.rfind("group-", 0) == 0);
    const std::string result_prefix =
        q.metrics_prefix_ + ".result.proc" + std::to_string(i) + ".";
    common::StageTracer* tracer = q.tracer_.get();
    common::TraceRecorder* recorder = q.recorder_.get();
    ctx.result_sink = [this, qp, tracer, recorder, stamp_e2e, capture_results,
                       result_prefix](const stream::Tuple& t) {
      qp->results_.push_back(t);
      const bool has_ts =
          t.size() > 1 && std::holds_alternative<std::uint64_t>(t.at(1));
      if (t.trace != 0) {
        // Only record-schema tuples ([id, ts, ...], i.e. identity) carry
        // the ingress timestamp at index 1; aggregated shapes (rankings,
        // group rows) reach here too now that traces continue through
        // windowed bolts, and their at(1) is a count, not a time.
        recorder->stamp(t.trace, common::TraceStage::deliver,
                        stamp_e2e && has_ts ? stream::as_u64(t.at(1)) : now_,
                        now_);
      }
      if (stamp_e2e && has_ts) {
        tracer->stamp(common::StageTracer::Stage::e2e, now_,
                      stream::as_u64(t.at(1)));
      }
      if (capture_results) {
        if (auto kv = result_series(t)) {
          store_.ingest(result_prefix + kv->first, tsdb::SeriesKind::gauge,
                        now_, kv->second);
        }
      }
    };
    if (automation_store_ != nullptr && call.name == "top-k") {
      ctx.kvstore = automation_store_;
      ctx.updater_config = automation_config_;
      ctx.on_scale_up = automation_up_;
      ctx.on_scale_down = automation_down_;
    }
    stream::ProcessorParams params;
    params.args = call.args;
    auto spec = stream::build_processor(call.name, params, ctx);
    // Semantic analysis pre-validated names/topics; a failure here is a
    // programming error in the processor library.
    const stream::ExecutorConfig exec{
        .workers = config_.executor_workers != 0 ? config_.executor_workers
                                                 : config_.processor_parallelism,
        .mode = config_.executor_mode,
        .inbox_capacity = config_.executor_inbox_capacity,
        .profile = config_.executor_profiler};
    q.topologies.push_back(
        stream::make_executor(std::move(spec.value()), exec));
    q.topologies.back()->bind_metrics(metrics_, ctx.metrics_prefix);
    q.topologies.back()->bind_trace(q.recorder_.get());
  }
}

void NetAlytics::apply_feedback(QueryHandle& q, double occupancy) {
  if (occupancy >= config_.feedback_high_occupancy) {
    for (auto* m : q.monitors) m->on_backpressure();
  } else if (occupancy <= config_.feedback_low_occupancy) {
    for (auto* m : q.monitors) m->set_sample_rate(std::min(1.0, m->sample_rate() + 0.05));
  }
}

void NetAlytics::pump(common::Timestamp now) {
  now_ = now;
  pumps_->inc();
  for (auto& qp : queries_) {
    QueryHandle& q = *qp;
    if (q.finished_) continue;

    // Ship lingering producer batches and give buffered sends their retry
    // window first — occupancy must see every record that reached the
    // aggregation layer, not hide what sat in an open batch.
    for (auto& p : q.producers) p->flush(now);

    // Sample buffer pressure before the processors drain: the aggregation
    // layer's backlog at this instant is the overload signal (§4.2).
    double occupancy = 0;
    if (q.plan_.auto_sample) {
      for (const auto& topic : q.plan_.topics) {
        occupancy = std::max(occupancy, cluster_.occupancy(topic));
      }
    }

    for (auto& topo : q.topologies) topo->run_until_idle(now);

    if (now - q.last_tick >= config_.tick_interval) {
      // Monitor ticks flush aggregating parsers (tcp_pkt_size windows),
      // then the topologies' windows advance on the fresh data. The ticked
      // records join open producer batches, so drain those immediately —
      // the same pump's window tick must see them.
      for (auto* m : q.monitors) m->tick(now);
      for (auto& p : q.producers) p->drain(now);
      for (auto& topo : q.topologies) {
        topo->run_until_idle(now);
        topo->tick(now);
      }
      if (q.plan_.auto_sample) apply_feedback(q, occupancy);
      q.last_tick = now;
    }

    const bool time_up = q.end_time != 0 && now >= q.end_time;
    const bool packets_up = q.plan_.packet_limit != 0 &&
                            q.monitor_stats().parsed >= q.plan_.packet_limit;
    if (time_up || packets_up) stop_query(q, now);
  }

  // One registry snapshot per tick interval feeds both the tiered store
  // and the deprecated SnapshotRing (first pump captures immediately).
  if ((timeseries_ != nullptr || store_.enabled()) &&
      (!captured_once_ || now - last_capture_ >= config_.tick_interval)) {
    const auto snap = metrics_.snapshot();
    if (timeseries_ != nullptr) timeseries_->capture(now, snap);
    store_.capture(now, snap);
    last_capture_ = now;
    captured_once_ = true;
  }
}

RangeResult NetAlytics::query_range(const RangeQuery& q) const {
  // The live head is the registry's current cumulative state, filtered to
  // the selector (the store filters by the same prefix internally).
  const auto snap = metrics_.snapshot(q.selector);
  return store_.query_range(q, tsdb::LiveHead{now_, &snap});
}

ReconcileReport NetAlytics::reconcile(const QueryHandle& q) const {
  ReconcileReport r;
  // Monitor-side terms come out of the registry, so the report works
  // identically for live and finished queries (the counters outlive the
  // monitors). The leaf names are unique to the monitor prefix.
  const auto snap = metrics_.snapshot(q.metrics_prefix_ + ".");
  for (const auto& c : snap.counters) {
    const auto leaf = leaf_name(c.name);
    if (leaf == "rx_packets") r.packets_in += c.value;
    else if (leaf == "tick_records") r.tick_records += c.value;
    else if (leaf == "extra_records") r.extra_records += c.value;
  }
  // Spout buffers: record batches polled off the brokers but not yet
  // re-emitted as tuples (absolute gauges, one per spout task).
  for (const auto& g : snap.gauges) {
    if (leaf_name(g.name) == "buffered_records" && g.value > 0) {
      r.in_flight += static_cast<std::uint64_t>(g.value);
    }
  }

  r.tuples_out = q.results_.size();
  // The query ledger holds every monitor/producer-side loss; retention
  // evictions land in the engine ledger because the broker is shared.
  r.losses = q.drop_ledger().total_losses() +
             engine_ledger_.value(common::DropCause::broker_retention);

  for (const auto& p : q.producers) r.in_flight += p->held_records();
  for (const auto& topic : q.plan_.topics) {
    r.in_flight += cluster_.unread_records(topic);
  }
  r.duplicated = cluster_.aggregate_stats().duplicated_records;
  return r;
}

void NetAlytics::stop_query(QueryHandle& q, common::Timestamp now) {
  if (q.finished_) return;
  emu_.controller().remove_rules(q.rule_cookies);
  q.rule_cookies.clear();

  // Flush parser state and pending batches, then drain the analytics side
  // completely: data -> final window tick -> cleanup flush.
  for (auto* m : q.monitors) m->close(now);
  for (auto& p : q.producers) p->drain(now);
  for (auto& topo : q.topologies) {
    topo->run_until_idle(now);
    topo->tick(now);
    topo->run_until_idle(now);
    topo->close(now);
  }
  // The counters stay readable after undeploy (they live in metrics_);
  // only the live sample rate must be captured before the monitors go.
  q.final_sample_rate_ = q.sample_rate();
  for (const auto& id : q.monitor_ids) orchestrator_.undeploy(id);
  q.monitors.clear();
  q.monitor_ids.clear();
  q.finished_ = true;
  queries_finished_->inc();
  common::log_info("engine", "query ", q.id_, " finished with ",
                   q.results_.size(), " result tuples");
}

void NetAlytics::stop_all(common::Timestamp now) {
  for (auto& q : queries_) stop_query(*q, now);
}

void NetAlytics::set_automation(stream::KvStore* store,
                                stream::UpdaterConfig config,
                                stream::UpdaterBolt::ScaleCallback on_scale_up,
                                stream::UpdaterBolt::ScaleCallback on_scale_down) {
  automation_store_ = store;
  automation_config_ = config;
  automation_up_ = std::move(on_scale_up);
  automation_down_ = std::move(on_scale_down);
}

}  // namespace netalytics::core
