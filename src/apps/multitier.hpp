// The two-tier web application of §7.1 (Fig. 9): a front-end proxy load
// balances requests over two replicated app servers, which fetch data from
// MySQL or Memcached. AppServer1 can be misconfigured so most of its
// requests hit the (much slower) database instead of the cache — producing
// the bimodal client response times of Fig. 10 and the skewed per-tier
// throughput of Fig. 11. All tier-to-tier traffic is emitted as byte-exact
// TCP sessions through the emulation, where NetAlytics monitors see it.
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/emulation.hpp"

namespace netalytics::apps {

struct MultiTierConfig {
  bool app1_misconfigured = true;
  /// Probability a request is served from the cache.
  double cache_ratio_healthy = 0.85;
  double cache_ratio_misconfigured = 0.15;
  /// Backend service times.
  double mysql_latency_ms = 80.0;
  double memcached_latency_ms = 2.0;
  double app_processing_ms = 1.0;
  double network_rtt_ms = 0.5;
  /// Response payload sizes (drive Fig. 11's byte counts).
  std::size_t mysql_response_bytes = 6000;
  std::size_t memcached_response_bytes = 1500;
  std::uint64_t seed = 7;
};

/// Well-known endpoints (bound by the constructor).
struct MultiTierHosts {
  net::Ipv4Addr client, proxy, app1, app2, mysql, memcached;
};

class MultiTierApp {
 public:
  /// Binds client/proxy/app1/app2/mysql/memcached onto hosts of `emu`
  /// spread across racks.
  MultiTierApp(core::Emulation& emu, MultiTierConfig config);

  /// Run one client request at virtual time `now`; returns its completion
  /// time. The proxy alternates between app servers (round robin).
  common::Timestamp run_request(common::Timestamp now);

  /// Run a fixed-rate request stream.
  void run(common::Timestamp start, std::size_t requests,
           common::Duration interarrival);

  const common::SampleSet& client_response_times_ms() const noexcept {
    return client_times_ms_;
  }
  const MultiTierHosts& hosts() const noexcept { return hosts_; }

 private:
  struct Backend {
    net::Ipv4Addr ip;
    net::Port port;
    double latency_ms;
    std::size_t response_bytes;
  };

  /// Emit one nested tier call; returns the observed duration.
  common::Duration call_backend(net::Ipv4Addr app_ip, const Backend& backend,
                                common::Timestamp start);

  core::Emulation& emu_;
  MultiTierConfig config_;
  MultiTierHosts hosts_{};
  common::Rng rng_;
  common::SampleSet client_times_ms_;
  std::uint64_t request_counter_ = 0;
};

}  // namespace netalytics::apps
