// The PHP-over-Sakila web application of §7.2 (Figs. 12-15): a set of
// pages with distinct latency profiles backed by MySQL queries that
// multiplex over persistent connections. One page has an injected bug (a
// wrong variable name skips its database queries), reproducing Fig. 14's
// "suspiciously fast" regression signature.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/emulation.hpp"

namespace netalytics::apps {

struct PageProfile {
  std::string url;
  /// SQL statement template this page runs (per query).
  std::string sql;
  std::size_t queries_per_page = 1;
  double query_latency_ms = 5.0;  // mean per-query DB time
  double weight = 1.0;            // request mix weight
  bool buggy = false;             // bug: page skips its queries entirely
};

struct WebAppConfig {
  std::vector<PageProfile> pages;  // empty = the default Sakila-style mix
  double network_rtt_ms = 0.5;
  double php_overhead_ms = 1.0;
  std::uint64_t seed = 21;
};

class SakilaWebApp {
 public:
  /// Binds web-client / web server (:80) / db server (:3306).
  SakilaWebApp(core::Emulation& emu, WebAppConfig config);

  /// One page request at `now`: emits the client->web session and the
  /// page's MySQL query/response exchanges on a persistent web->db
  /// connection. Returns completion time.
  common::Timestamp run_request(common::Timestamp now);

  void run(common::Timestamp start, std::size_t requests,
           common::Duration interarrival);

  /// Per-URL client-observed response times (ms).
  const std::map<std::string, common::SampleSet>& page_times_ms() const noexcept {
    return page_times_ms_;
  }
  const std::vector<PageProfile>& pages() const noexcept { return config_.pages; }

  net::Ipv4Addr web_ip() const noexcept { return web_ip_; }
  net::Ipv4Addr db_ip() const noexcept { return db_ip_; }

 private:
  const PageProfile& sample_page();

  core::Emulation& emu_;
  WebAppConfig config_;
  net::Ipv4Addr client_ip_{}, web_ip_{}, db_ip_{};
  common::Rng rng_;
  double total_weight_ = 0;
  std::map<std::string, common::SampleSet> page_times_ms_;
  std::uint64_t counter_ = 0;
  net::FiveTuple db_connection_{};  // persistent web->db connection
  std::uint8_t db_sequence_ = 0;
};

/// The default page mix modelled on Fig. 13's URLs.
std::vector<PageProfile> default_sakila_pages();

}  // namespace netalytics::apps
