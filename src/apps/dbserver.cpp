#include "apps/dbserver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>

#include "common/hash.hpp"

namespace netalytics::apps {

DbServer::DbServer(std::size_t rows_per_query)
    : rows_per_query_(rows_per_query == 0 ? 1 : rows_per_query) {
  log_.reserve(1 << 20);
}

std::uint64_t DbServer::execute(const std::string& sql) {
  ++query_counter_;
  // "Parse" the statement and assemble a result set: per-row key lookup
  // plus row serialization, the dominant costs of a simple indexed SELECT.
  std::uint64_t h = common::fnv1a64(std::string_view(sql));
  std::uint64_t checksum = 0;
  char row[48];
  for (std::size_t r = 0; r < rows_per_query_; ++r) {
    h = common::mix64(h + r);
    const int n = std::snprintf(row, sizeof(row), "%016llx|%08x|row",
                                static_cast<unsigned long long>(h),
                                static_cast<unsigned>(r));
    checksum += common::fnv1a64(std::string_view(row, static_cast<std::size_t>(n)));
  }
  if (query_log_) append_log(sql);
  return checksum;
}

void DbServer::append_log(const std::string& sql) {
  // The general query log writes a timestamped line per query. The
  // formatting plus the buffered append (with periodic "flush" that
  // touches the whole tail) is what costs MySQL ~20% on simple statements.
  char header[64];
  const int n = std::snprintf(header, sizeof(header), "%llu Query\t",
                              static_cast<unsigned long long>(query_counter_));
  log_.append(header, static_cast<std::size_t>(n));
  log_.append(sql);
  log_.push_back('\n');
  // Emulated flush: checksum the tail as a stand-in for the kernel copy.
  if ((query_counter_ & 0x3f) == 0) {
    const std::size_t tail = std::min<std::size_t>(log_.size(), 4096);
    const std::string_view view(log_.data() + log_.size() - tail, tail);
    log_flush_guard_ ^= common::fnv1a64(view);
  }
  if (log_.size() > (1 << 22)) log_.resize(0);  // rotate
}

DbBenchResult DbServer::run_benchmark(std::uint64_t queries) {
  DbBenchResult result;
  result.queries = queries;
  const std::string sql = "SELECT name FROM t WHERE id = 12345";
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < queries; ++i) {
    result.checksum += execute(sql);
  }
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.qps = result.seconds > 0 ? static_cast<double>(queries) / result.seconds : 0;
  result.checksum += log_flush_guard_;
  return result;
}

}  // namespace netalytics::apps
