#include "apps/videoservice.hpp"

#include <stdexcept>

#include "pktgen/payloads.hpp"
#include "pktgen/session.hpp"

namespace netalytics::apps {

VideoService::VideoService(core::Emulation& emu, stream::KvStore& kvstore,
                           VideoServiceConfig config)
    : emu_(emu),
      kvstore_(kvstore),
      config_(config),
      rng_(config.seed),
      catalog_(config.catalog_size, config.zipf_exponent, config.seed) {
  const auto& topo = emu_.topology();
  const auto& tors = topo.tor_switches();
  if (tors.size() < 2 + config_.server_count) {
    throw std::invalid_argument("videoservice: not enough racks");
  }

  client1_ip_ = net::make_ipv4(10, 30, 0, 1);
  client2_ip_ = net::make_ipv4(10, 30, 0, 2);
  emu_.bind_host("vid-client1", client1_ip_, topo.hosts_under_tor(tors[0]).at(2));
  emu_.bind_host("vid-client2", client2_ip_, topo.hosts_under_tor(tors[1]).at(2));
  for (std::size_t s = 0; s < config_.server_count; ++s) {
    const auto ip = net::make_ipv4(10, 30, 1, static_cast<std::uint8_t>(s + 1));
    const std::string name = "vid-server" + std::to_string(s + 1);
    emu_.bind_host(name, ip, topo.hosts_under_tor(tors[2 + s]).at(2));
    server_ips_.push_back(ip);
    server_names_.push_back(name);
  }

  // The hot set the second client hammers (Fig. 17's popular content).
  for (std::size_t i = 0; i < config_.hot_set_size; ++i) {
    hot_set_.push_back("/hot/video-" + std::to_string(i) + ".mp4");
  }

  // Initially only server 1 is in the proxy pool.
  kvstore_.del_list("pool");
  kvstore_.rpush("pool", server_names_[0]);
}

std::size_t VideoService::pool_size() const {
  return kvstore_.lrange("pool").size();
}

std::size_t VideoService::route(const std::string& url) {
  // The dynamic proxy (§7.3): hot content is spread round-robin over the
  // current pool; cold catalog content stays on server 1.
  const bool is_hot =
      std::find(hot_set_.begin(), hot_set_.end(), url) != hot_set_.end();
  if (!is_hot) return 0;
  const auto pool = kvstore_.lrange("pool");
  if (pool.size() <= 1) return 0;
  const std::string& pick = pool[rr_cursor_++ % pool.size()];
  for (std::size_t s = 0; s < server_names_.size(); ++s) {
    if (server_names_[s] == pick) return s;
  }
  return 0;
}

void VideoService::request(const std::string& url, net::Ipv4Addr client,
                           common::Timestamp now) {
  const std::size_t server = route(url);
  ++per_server_[server_names_[server]];

  pktgen::SessionSpec session;
  session.flow = {client, server_ips_[server],
                  static_cast<net::Port>(25000 + (counter_++ * 7) % 30000), 80,
                  static_cast<std::uint8_t>(net::IpProto::tcp)};
  session.start = now;
  session.rtt = common::from_millis(config_.network_rtt_ms);
  session.server_latency = common::from_millis(config_.server_latency_ms);
  const auto request_payload = pktgen::http_get_request(url, "video.cdn");
  const auto response_payload = pktgen::http_response(200, 1200);
  session.request = request_payload;
  session.response = response_payload;
  pktgen::emit_tcp_session(
      session, [this](std::span<const std::byte> frame, common::Timestamp ts) {
        emu_.transmit(frame, ts);
      });
}

void VideoService::run_baseline(common::Timestamp now, std::size_t count,
                                common::Duration span) {
  const common::Duration step = count > 0 ? span / count : span;
  for (std::size_t i = 0; i < count; ++i) {
    request(catalog_.sample(rng_), client1_ip_, now + i * step);
  }
}

void VideoService::run_hot_burst(common::Timestamp now, std::size_t count,
                                 common::Duration span) {
  const common::Duration step = count > 0 ? span / count : span;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& url = hot_set_[rng_.uniform(0, hot_set_.size() - 1)];
    request(url, client2_ip_, now + i * step);
  }
}

void VideoService::churn_popularity(double fraction) {
  catalog_.churn(rng_, fraction);
}

void VideoService::scale_up(const std::string& hot_url, std::uint64_t) {
  const auto pool = kvstore_.lrange("pool");
  if (pool.size() >= server_names_.size()) return;
  // Add the next server and "replicate the popular content to it".
  const std::string& next = server_names_[pool.size()];
  kvstore_.rpush("pool", next);
  kvstore_.hset("replicas", hot_url, next);
}

void VideoService::scale_down(const std::string&, std::uint64_t) {
  const auto pool = kvstore_.lrange("pool");
  if (pool.size() <= 1) return;
  kvstore_.del_list("pool");
  for (std::size_t i = 0; i + 1 < pool.size(); ++i) kvstore_.rpush("pool", pool[i]);
}

std::map<std::string, std::uint64_t> VideoService::take_per_server_counts() {
  auto out = per_server_;
  per_server_.clear();
  // Every server appears in the series, including idle ones.
  for (const auto& name : server_names_) out.try_emplace(name, 0);
  return out;
}

}  // namespace netalytics::apps
