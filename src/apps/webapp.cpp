#include "apps/webapp.hpp"

#include <stdexcept>

#include "pktgen/builder.hpp"
#include "pktgen/payloads.hpp"
#include "pktgen/session.hpp"

namespace netalytics::apps {

std::vector<PageProfile> default_sakila_pages() {
  return {
      {"/simple.php", "SELECT first_name FROM actor WHERE actor_id = ?", 1, 1.5,
       4.0, false},
      {"/polyglot-actors.php",
       "SELECT name FROM language JOIN film USING (language_id) WHERE actor = ?",
       2, 8.0, 2.0, false},
      {"/expensive-films.php",
       "SELECT title FROM film ORDER BY replacement_cost DESC LIMIT 20", 3, 25.0,
       2.0, false},
      {"/country-max-payments.php",
       "SELECT country, MAX(amount) FROM payment GROUP BY country", 5, 120.0, 1.0,
       false},
      {"/overdue.php",
       "SELECT rental_id FROM rental WHERE return_date IS NULL AND due < NOW()",
       3, 40.0, 1.0, false},
      {"/overdue-bug.php",
       "SELECT rental_id FROM rental WHERE return_date IS NULL AND due < NOW()",
       3, 40.0, 1.0, true},
  };
}

SakilaWebApp::SakilaWebApp(core::Emulation& emu, WebAppConfig config)
    : emu_(emu), config_(std::move(config)), rng_(config_.seed) {
  if (config_.pages.empty()) config_.pages = default_sakila_pages();
  for (const auto& p : config_.pages) total_weight_ += p.weight;

  const auto& topo = emu_.topology();
  const auto& tors = topo.tor_switches();
  if (tors.size() < 3) throw std::invalid_argument("webapp: need >= 3 racks");
  client_ip_ = net::make_ipv4(10, 20, 0, 1);
  web_ip_ = net::make_ipv4(10, 20, 1, 1);
  db_ip_ = net::make_ipv4(10, 20, 2, 1);
  emu_.bind_host("web-client", client_ip_, topo.hosts_under_tor(tors[0]).at(0));
  emu_.bind_host("web-server", web_ip_, topo.hosts_under_tor(tors[1]).at(0));
  emu_.bind_host("db-server", db_ip_, topo.hosts_under_tor(tors[2]).at(0));

  db_connection_ = {web_ip_, db_ip_, 33000, 3306,
                    static_cast<std::uint8_t>(net::IpProto::tcp)};
}

const PageProfile& SakilaWebApp::sample_page() {
  double draw = rng_.next_double() * total_weight_;
  for (const auto& p : config_.pages) {
    draw -= p.weight;
    if (draw <= 0) return p;
  }
  return config_.pages.back();
}

common::Timestamp SakilaWebApp::run_request(common::Timestamp now) {
  const PageProfile& page = sample_page();
  const auto rtt = common::from_millis(config_.network_rtt_ms);

  // PHP runs the page's queries sequentially over the persistent DB
  // connection (the MySQL parser times each COM_QUERY/response pair).
  common::Timestamp t = now + 2 * rtt;  // request has reached the web tier
  common::Duration db_total = 0;
  if (!page.buggy) {
    for (std::size_t q = 0; q < page.queries_per_page; ++q) {
      const double jitter = 0.7 + rng_.next_double() * 0.6;
      const auto latency = common::from_millis(page.query_latency_ms * jitter);

      pktgen::TcpFrameSpec query;
      query.flow = db_connection_;
      query.flags = net::tcp_flags::kPsh | net::tcp_flags::kAck;
      const auto query_payload = pktgen::mysql_query_packet(page.sql, db_sequence_);
      query.payload = query_payload;
      emu_.transmit(pktgen::build_tcp_frame(query), t);

      pktgen::TcpFrameSpec response;
      response.flow = db_connection_.reversed();
      response.flags = net::tcp_flags::kPsh | net::tcp_flags::kAck;
      const auto response_payload = pktgen::mysql_resultset_packet(400, 1);
      response.payload = response_payload;
      emu_.transmit(pktgen::build_tcp_frame(response), t + latency);

      t += latency + rtt / 2;
      db_total += latency + rtt / 2;
    }
  }

  // The client-observed page time: PHP overhead plus its DB time.
  pktgen::SessionSpec session;
  session.flow = {client_ip_, web_ip_,
                  static_cast<net::Port>(40000 + (counter_++ * 17) % 20000), 80,
                  static_cast<std::uint8_t>(net::IpProto::tcp)};
  session.start = now;
  session.rtt = rtt;
  session.server_latency = common::from_millis(config_.php_overhead_ms) + db_total;
  const auto request = pktgen::http_get_request(page.url, "sakila.example.com");
  const auto response = pktgen::http_response(200, 3000);
  session.request = request;
  session.response = response;
  const auto timing = pktgen::emit_tcp_session(
      session, [this](std::span<const std::byte> frame, common::Timestamp ts) {
        emu_.transmit(frame, ts);
      });

  page_times_ms_[page.url].add(common::to_millis(timing.fin_time - timing.syn_time));
  return timing.fin_time;
}

void SakilaWebApp::run(common::Timestamp start, std::size_t requests,
                       common::Duration interarrival) {
  common::Timestamp now = start;
  for (std::size_t i = 0; i < requests; ++i) {
    run_request(now);
    now += interarrival;
  }
}

}  // namespace netalytics::apps
