#include "apps/multitier.hpp"

#include <stdexcept>

#include "pktgen/payloads.hpp"
#include "pktgen/session.hpp"

namespace netalytics::apps {

namespace {

/// Ephemeral port allocator so concurrent sessions get distinct flows.
net::Port ephemeral_port(std::uint64_t counter) {
  return static_cast<net::Port>(20000 + (counter * 13) % 40000);
}

}  // namespace

MultiTierApp::MultiTierApp(core::Emulation& emu, MultiTierConfig config)
    : emu_(emu), config_(config), rng_(config.seed) {
  // Spread the tiers across racks so traffic crosses the fabric like the
  // testbed deployment in Fig. 9.
  const auto& topo = emu_.topology();
  const auto& tors = topo.tor_switches();
  if (tors.size() < 6) throw std::invalid_argument("multitier: need >= 6 racks");
  auto host_in_rack = [&](std::size_t rack, std::size_t slot) {
    return topo.hosts_under_tor(tors[rack]).at(slot);
  };
  struct Binding {
    const char* name;
    net::Ipv4Addr ip;
    std::size_t rack;
  };
  const Binding bindings[] = {
      {"mt-client", net::make_ipv4(10, 10, 0, 1), 0},
      {"mt-proxy", net::make_ipv4(10, 10, 1, 1), 1},
      {"mt-app1", net::make_ipv4(10, 10, 2, 1), 2},
      {"mt-app2", net::make_ipv4(10, 10, 3, 1), 3},
      {"mt-mysql", net::make_ipv4(10, 10, 4, 1), 4},
      {"mt-memcached", net::make_ipv4(10, 10, 5, 1), 5},
  };
  for (const auto& b : bindings) {
    emu_.bind_host(b.name, b.ip, host_in_rack(b.rack, 1));
  }
  hosts_.client = bindings[0].ip;
  hosts_.proxy = bindings[1].ip;
  hosts_.app1 = bindings[2].ip;
  hosts_.app2 = bindings[3].ip;
  hosts_.mysql = bindings[4].ip;
  hosts_.memcached = bindings[5].ip;
}

common::Duration MultiTierApp::call_backend(net::Ipv4Addr app_ip,
                                            const Backend& backend,
                                            common::Timestamp start) {
  const bool is_mysql = backend.port == 3306;
  const auto request = is_mysql
                           ? pktgen::mysql_query_packet(
                                 "SELECT data FROM items WHERE id = " +
                                 std::to_string(rng_.uniform(1, 10000)))
                           : pktgen::memcached_get_request(
                                 "item:" + std::to_string(rng_.uniform(1, 10000)));
  const auto response =
      is_mysql ? pktgen::mysql_resultset_packet(backend.response_bytes)
               : pktgen::memcached_value_response("item", backend.response_bytes);

  pktgen::SessionSpec session;
  session.flow = {app_ip, backend.ip, ephemeral_port(request_counter_++),
                  backend.port, static_cast<std::uint8_t>(net::IpProto::tcp)};
  session.start = start;
  session.rtt = common::from_millis(config_.network_rtt_ms);
  // Jitter the service time (lognormal-ish spread around the mean).
  const double jitter = 0.75 + rng_.next_double() * 0.5;
  session.server_latency = common::from_millis(backend.latency_ms * jitter);
  session.request = request;
  session.response = response;
  const auto timing = pktgen::emit_tcp_session(
      session, [this](std::span<const std::byte> frame, common::Timestamp ts) {
        emu_.transmit(frame, ts);
      });
  return timing.fin_time - timing.syn_time;
}

common::Timestamp MultiTierApp::run_request(common::Timestamp now) {
  // Round-robin load balancing at the proxy.
  const bool use_app1 = (request_counter_ % 2) == 0;
  const net::Ipv4Addr app_ip = use_app1 ? hosts_.app1 : hosts_.app2;
  const double cache_ratio = (use_app1 && config_.app1_misconfigured)
                                 ? config_.cache_ratio_misconfigured
                                 : config_.cache_ratio_healthy;

  const bool cache_hit = rng_.bernoulli(cache_ratio);
  const Backend backend =
      cache_hit ? Backend{hosts_.memcached, 11211, config_.memcached_latency_ms,
                          config_.memcached_response_bytes}
                : Backend{hosts_.mysql, 3306, config_.mysql_latency_ms,
                          config_.mysql_response_bytes};

  // The app tier's work happens inside the proxy->app window, and the
  // backend call happens inside the app's window; emit inner-most first so
  // every layer's duration is known when its parent session is emitted.
  const auto rtt = common::from_millis(config_.network_rtt_ms);
  const auto app_start = now + 2 * rtt;  // after two handshakes reach the app
  const common::Duration backend_time =
      call_backend(app_ip, backend, app_start +
                                        common::from_millis(config_.app_processing_ms));

  const common::Duration app_latency =
      common::from_millis(config_.app_processing_ms) + backend_time;

  pktgen::SessionSpec proxy_to_app;
  proxy_to_app.flow = {hosts_.proxy, app_ip, ephemeral_port(request_counter_++),
                       8080, static_cast<std::uint8_t>(net::IpProto::tcp)};
  proxy_to_app.start = now + rtt;
  proxy_to_app.rtt = rtt;
  proxy_to_app.server_latency = app_latency;
  const auto inner_req = pktgen::http_get_request("/render", "app.internal");
  const auto inner_resp = pktgen::http_response(200, 2000);
  proxy_to_app.request = inner_req;
  proxy_to_app.response = inner_resp;
  const auto app_timing = pktgen::emit_tcp_session(
      proxy_to_app, [this](std::span<const std::byte> frame, common::Timestamp ts) {
        emu_.transmit(frame, ts);
      });

  pktgen::SessionSpec client_to_proxy;
  client_to_proxy.flow = {hosts_.client, hosts_.proxy,
                          ephemeral_port(request_counter_++), 80,
                          static_cast<std::uint8_t>(net::IpProto::tcp)};
  client_to_proxy.start = now;
  client_to_proxy.rtt = rtt;
  client_to_proxy.server_latency =
      app_timing.fin_time - app_timing.syn_time;  // proxy waits for the app
  const auto outer_req = pktgen::http_get_request("/page", "www.example.com");
  const auto outer_resp = pktgen::http_response(200, 4000);
  client_to_proxy.request = outer_req;
  client_to_proxy.response = outer_resp;
  const auto timing = pktgen::emit_tcp_session(
      client_to_proxy,
      [this](std::span<const std::byte> frame, common::Timestamp ts) {
        emu_.transmit(frame, ts);
      });

  client_times_ms_.add(common::to_millis(timing.fin_time - timing.syn_time));
  return timing.fin_time;
}

void MultiTierApp::run(common::Timestamp start, std::size_t requests,
                       common::Duration interarrival) {
  common::Timestamp now = start;
  for (std::size_t i = 0; i < requests; ++i) {
    run_request(now);
    now += interarrival;
  }
}

}  // namespace netalytics::apps
