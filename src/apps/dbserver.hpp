// The instrumentation-overhead comparison of §7.2: "we measure MySQL's
// throughput with and without the general query log enabled... it lowers
// the throughput for a simple statement from 40.8K to 33K queries per
// second, a 20% drop. In contrast, NetAlytics incurs no overhead on the
// actual application."
//
// This emulated DB server does real per-query work (statement parsing +
// result assembly); enabling the query log adds the synchronous
// format-and-append work the real log performs. Passive monitoring costs
// the server nothing by construction — packets are mirrored in the fabric.
#pragma once

#include <cstdint>
#include <string>

namespace netalytics::apps {

struct DbBenchResult {
  std::uint64_t queries = 0;
  double seconds = 0;
  double qps = 0;
  std::uint64_t checksum = 0;  // defeats dead-code elimination
};

class DbServer {
 public:
  /// Work per query, in arbitrary units; scales both the base service cost
  /// and the log cost proportionally.
  explicit DbServer(std::size_t rows_per_query = 16);

  /// Execute one query; returns a result checksum.
  std::uint64_t execute(const std::string& sql);

  /// Enable/disable the general query log (synchronous formatted append).
  void set_query_log(bool enabled) noexcept { query_log_ = enabled; }
  bool query_log() const noexcept { return query_log_; }

  /// Throughput benchmark: run `queries` simple statements, wall-clock
  /// timed.
  DbBenchResult run_benchmark(std::uint64_t queries);

  std::size_t log_bytes_written() const noexcept { return log_.size(); }
  void clear_log() { log_.clear(); }

 private:
  void append_log(const std::string& sql);

  std::size_t rows_per_query_;
  bool query_log_ = false;
  std::string log_;
  std::uint64_t query_counter_ = 0;
  std::uint64_t log_flush_guard_ = 0;
};

}  // namespace netalytics::apps
