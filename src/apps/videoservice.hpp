// The video-service automation scenario of §7.3 (Figs. 16-17): clients
// request videos whose popularity follows a churning Zipf distribution
// (the synthetic stand-in for the Zink et al. YouTube trace); a dynamic
// proxy load balances over a server pool whose membership lives in the KV
// store. NetAlytics' top-k processor + updater bolt grow the pool when hot
// content surges, and the proxy redistributes load.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/emulation.hpp"
#include "pktgen/generator.hpp"
#include "stream/kvstore.hpp"

namespace netalytics::apps {

struct VideoServiceConfig {
  std::size_t server_count = 3;       // s1..sN; only s1 starts in the pool
  std::size_t catalog_size = 1000;    // distinct URLs
  double zipf_exponent = 0.8;         // baseline popularity skew
  std::size_t hot_set_size = 10;      // the second client's hot URLs
  double network_rtt_ms = 0.5;
  double server_latency_ms = 3.0;
  std::uint64_t seed = 31;
};

class VideoService {
 public:
  VideoService(core::Emulation& emu, stream::KvStore& kvstore,
               VideoServiceConfig config);

  /// Baseline client: `count` catalog requests spread over [now, now+span).
  void run_baseline(common::Timestamp now, std::size_t count,
                    common::Duration span);

  /// Hot client: `count` requests for the hot set over [now, now+span)
  /// (the burst that starts at t=10s in Fig. 17).
  void run_hot_burst(common::Timestamp now, std::size_t count,
                     common::Duration span);

  /// Churn the catalog's popularity ranking (Fig. 16's fluctuations).
  void churn_popularity(double fraction);

  /// Pool-management callbacks for the engine's updater bolt.
  void scale_up(const std::string& hot_url, std::uint64_t count);
  void scale_down(const std::string& url, std::uint64_t count);

  /// Requests served per server since the last call (Fig. 17 series).
  std::map<std::string, std::uint64_t> take_per_server_counts();

  std::size_t pool_size() const;
  const std::string& hot_url(std::size_t i) const { return hot_set_.at(i); }
  net::Ipv4Addr server_ip(std::size_t index) const { return server_ips_.at(index); }

 private:
  void request(const std::string& url, net::Ipv4Addr client,
               common::Timestamp now);
  /// Dynamic proxy: pick the serving backend for a URL from the pool.
  std::size_t route(const std::string& url);

  core::Emulation& emu_;
  stream::KvStore& kvstore_;
  VideoServiceConfig config_;
  common::Rng rng_;
  pktgen::UrlWorkload catalog_;
  std::vector<std::string> hot_set_;
  net::Ipv4Addr client1_ip_{}, client2_ip_{};
  std::vector<net::Ipv4Addr> server_ips_;
  std::vector<std::string> server_names_;
  std::map<std::string, std::uint64_t> per_server_;
  std::uint64_t counter_ = 0;
  std::size_t rr_cursor_ = 0;
};

}  // namespace netalytics::apps
