// Network-layer parsers from Table 1: tcp_flow_key, tcp_conn_time,
// tcp_pkt_size.
#include "common/clock.hpp"
#include "nf/parser.hpp"
#include "parsers/flow_state.hpp"
#include "parsers/parsers.hpp"
#include "parsers/register.hpp"

namespace netalytics::parsers {

namespace {

using nf::PacketParser;
using nf::Record;
using nf::RecordSink;

/// Emits the 4-tuple once per (directional) flow.
class TcpFlowKeyParser final : public PacketParser {
 public:
  std::string_view name() const noexcept override { return kTcpFlowKey; }

  void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) override {
    if (!pkt.has_tcp) return;
    if (seen_.find(pkt.flow_hash) != nullptr) return;
    seen_.put(pkt.flow_hash, true);
    Record r;
    r.topic = std::string(kTcpFlowKey);
    r.id = pkt.flow_hash;
    r.timestamp = pkt.timestamp;
    r.fields = {std::uint64_t{pkt.five_tuple.src_ip},
                std::uint64_t{pkt.five_tuple.dst_ip},
                std::uint64_t{pkt.five_tuple.src_port},
                std::uint64_t{pkt.five_tuple.dst_port}};
    sink.emit(std::move(r));
  }

 private:
  FlowStateMap<bool> seen_;
};

/// Detects SYN/FIN/RST flags and reports connection start and end events;
/// the diff building block downstream computes durations (§7.1).
class TcpConnTimeParser final : public PacketParser {
 public:
  std::string_view name() const noexcept override { return kTcpConnTime; }

  void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) override {
    if (!pkt.has_tcp) return;
    const auto id = pkt.bidirectional_flow_hash;

    const bool is_syn = pkt.tcp.has_flag(net::tcp_flags::kSyn) &&
                        !pkt.tcp.has_flag(net::tcp_flags::kAck);
    if (is_syn) {
      // Remember the originator's orientation so the end event reports the
      // same src/dst regardless of which side closes.
      open_.put(id, pkt.five_tuple);
      emit_event(sink, id, pkt.timestamp, pkt.five_tuple, "start");
      return;
    }

    const bool ends = pkt.tcp.has_flag(net::tcp_flags::kFin) ||
                      pkt.tcp.has_flag(net::tcp_flags::kRst);
    if (ends) {
      const net::FiveTuple* orient = open_.find(id);
      if (orient == nullptr) return;  // never saw the SYN; skip the event
      emit_event(sink, id, pkt.timestamp, *orient, "end");
      open_.erase(id);  // first FIN/RST closes; ignore the peer's FIN
    }
  }

 private:
  void emit_event(RecordSink& sink, std::uint64_t id, common::Timestamp ts,
                  const net::FiveTuple& t, const char* event) {
    Record r;
    r.topic = std::string(kTcpConnTime);
    r.id = id;
    r.timestamp = ts;
    r.fields = {std::string(event), std::uint64_t{t.src_ip}, std::uint64_t{t.dst_ip},
                std::uint64_t{t.src_port}, std::uint64_t{t.dst_port}};
    sink.emit(std::move(r));
  }

  FlowStateMap<net::FiveTuple> open_;
};

/// Aggregates per-flow payload bytes/packets and releases them each tick —
/// downstream group-sum turns this into per-connection throughput (§7.1).
class TcpPktSizeParser final : public PacketParser {
 public:
  std::string_view name() const noexcept override { return kTcpPktSize; }

  void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) override {
    if (!pkt.has_tcp) return;
    Counter* c = counters_.find(pkt.flow_hash);
    if (c == nullptr) {
      c = &counters_.put(pkt.flow_hash, Counter{pkt.five_tuple, 0, 0});
    }
    c->bytes += pkt.l4_payload_size;
    ++c->packets;
    // Flush immediately on connection end so short flows are not delayed a
    // full tick.
    if (pkt.tcp.has_flag(net::tcp_flags::kFin) ||
        pkt.tcp.has_flag(net::tcp_flags::kRst)) {
      flush_one(sink, pkt.flow_hash, *c, pkt.timestamp);
      counters_.erase(pkt.flow_hash);
    }
  }

  void on_tick(common::Timestamp now, RecordSink& sink) override {
    std::vector<std::uint64_t> flushed;
    counters_.for_each([&](std::uint64_t key, const Counter& c) {
      if (c.packets == 0) return;
      flush_one(sink, key, c, now);
      flushed.push_back(key);
    });
    for (const auto key : flushed) counters_.erase(key);
  }

 private:
  struct Counter {
    net::FiveTuple flow;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
  };

  void flush_one(RecordSink& sink, std::uint64_t id, const Counter& c,
                 common::Timestamp ts) {
    Record r;
    r.topic = std::string(kTcpPktSize);
    r.id = id;
    r.timestamp = ts;
    r.fields = {std::uint64_t{c.flow.src_ip}, std::uint64_t{c.flow.dst_ip},
                std::uint64_t{c.flow.dst_port}, c.bytes, c.packets};
    sink.emit(std::move(r));
  }

  FlowStateMap<Counter> counters_;
};

}  // namespace

void register_tcp_parsers() {
  auto& reg = nf::ParserRegistry::instance();
  reg.register_parser(std::string(kTcpFlowKey),
                      [] { return std::make_unique<TcpFlowKeyParser>(); });
  reg.register_parser(std::string(kTcpConnTime),
                      [] { return std::make_unique<TcpConnTimeParser>(); });
  reg.register_parser(std::string(kTcpPktSize),
                      [] { return std::make_unique<TcpPktSizeParser>(); });
}

}  // namespace netalytics::parsers
