// Internal registration hooks; use parsers.hpp / register_builtin_parsers().
#pragma once

namespace netalytics::parsers {

void register_tcp_parsers();
void register_app_parsers();

}  // namespace netalytics::parsers
