#include "parsers/parsers.hpp"
#include "parsers/register.hpp"

namespace netalytics::parsers {

void register_builtin_parsers() {
  // ParserRegistry::register_parser ignores duplicates, so this is
  // idempotent.
  register_tcp_parsers();
  register_app_parsers();
}

}  // namespace netalytics::parsers
