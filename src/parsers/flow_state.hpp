// Bounded per-flow state map shared by the stateful parsers. Parsers must
// run at line rate, so state is capped: when full, the oldest entry is
// evicted (long-lived idle flows lose tracking rather than the monitor
// losing memory).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace netalytics::parsers {

template <typename V>
class FlowStateMap {
 public:
  explicit FlowStateMap(std::size_t capacity = 65536) : capacity_(capacity) {}

  /// Find existing state; nullptr if absent.
  V* find(std::uint64_t key) {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second.value;
  }

  /// Insert (or overwrite) state, evicting the oldest entry when full.
  V& put(std::uint64_t key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      return it->second.value;
    }
    if (map_.size() >= capacity_ && !order_.empty()) {
      map_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
    order_.push_back(key);
    auto [pos, _] = map_.emplace(key, Entry{std::move(value), std::prev(order_.end())});
    pos->second.order_it = std::prev(order_.end());
    return pos->second.value;
  }

  void erase(std::uint64_t key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return;
    order_.erase(it->second.order_it);
    map_.erase(it);
  }

  std::size_t size() const noexcept { return map_.size(); }
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Iterate over (key, value) pairs; F may not mutate the map.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [k, e] : map_) f(k, e.value);
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

 private:
  struct Entry {
    V value;
    std::list<std::uint64_t>::iterator order_it;
  };
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> order_;  // insertion order for eviction
  std::uint64_t evictions_ = 0;
};

}  // namespace netalytics::parsers
