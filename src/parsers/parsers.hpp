// The common NetAlytics parsers (Table 1) and their record layouts.
//
// | parser         | layer | record fields (after topic/id/timestamp)        |
// |----------------|-------|--------------------------------------------------|
// | tcp_flow_key   | Net   | src_ip:u64, dst_ip:u64, src_port:u64, dst_port:u64 (once per flow) |
// | tcp_conn_time  | Net   | event:str ("start"/"end"), src_ip:u64, dst_ip:u64, src_port:u64, dst_port:u64; record timestamp is the event time |
// | tcp_pkt_size   | Net   | src_ip:u64, dst_ip:u64, dst_port:u64, bytes:u64, packets:u64 (per flow, per tick window) |
// | http_get       | App   | kind:str ("request"/"response"), url:str or status:u64 |
// | memcached_get  | App   | key:str                                          |
// | mysql_query    | App   | statement:str, latency_ns:u64 (emitted when the response arrives) |
//
// The record id is the bidirectional flow hash (except tcp_flow_key and
// tcp_pkt_size, which are directional), so records from different parsers
// about the same connection share an id and can be joined downstream (§3.1).
#pragma once

#include <array>
#include <string_view>

namespace netalytics::parsers {

inline constexpr std::string_view kTcpFlowKey = "tcp_flow_key";
inline constexpr std::string_view kTcpConnTime = "tcp_conn_time";
inline constexpr std::string_view kTcpPktSize = "tcp_pkt_size";
inline constexpr std::string_view kHttpGet = "http_get";
inline constexpr std::string_view kMemcachedGet = "memcached_get";
inline constexpr std::string_view kMysqlQuery = "mysql_query";

inline constexpr std::array<std::string_view, 6> kBuiltinParsers = {
    kTcpFlowKey, kTcpConnTime, kTcpPktSize, kHttpGet, kMemcachedGet, kMysqlQuery};

/// Register every built-in parser with the global ParserRegistry.
/// Idempotent; call before compiling queries or constructing monitors.
void register_builtin_parsers();

}  // namespace netalytics::parsers
