// Application-layer parsers from Table 1: http_get, memcached_get,
// mysql_query. Each contains only a handful of lines of protocol-specific
// logic on top of the parser framework — the paper quotes 12 lines for the
// HTTP GET parser.
#include <string_view>

#include "common/byte_io.hpp"
#include "common/string_util.hpp"
#include "nf/parser.hpp"
#include "parsers/flow_state.hpp"
#include "parsers/parsers.hpp"
#include "parsers/register.hpp"

namespace netalytics::parsers {

namespace {

using nf::PacketParser;
using nf::Record;
using nf::RecordSink;

/// Extracts the URL of HTTP GET requests and the status of responses.
class HttpGetParser final : public PacketParser {
 public:
  std::string_view name() const noexcept override { return kHttpGet; }

  void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) override {
    if (!pkt.has_tcp || pkt.l4_payload_size == 0) return;
    const auto payload = common::as_string_view(pkt.payload());
    if (payload.starts_with("GET ")) {
      const auto rest = payload.substr(4);
      const auto space = rest.find(' ');
      if (space == std::string_view::npos || !rest.substr(space).starts_with(" HTTP/"))
        return;
      emit(sink, pkt, {std::string("request"), std::string(rest.substr(0, space))});
    } else if (payload.starts_with("HTTP/1.")) {
      // "HTTP/1.x NNN ..."
      if (payload.size() < 12) return;
      std::uint64_t status = 0;
      if (!common::parse_u64(payload.substr(9, 3), status)) return;
      emit(sink, pkt, {std::string("response"), status});
    }
  }

 private:
  void emit(RecordSink& sink, const net::DecodedPacket& pkt,
            std::vector<nf::FieldValue> fields) {
    Record r;
    r.topic = std::string(kHttpGet);
    r.id = pkt.bidirectional_flow_hash;
    r.timestamp = pkt.timestamp;
    r.fields = std::move(fields);
    sink.emit(std::move(r));
  }
};

/// Parses memcached text-protocol get requests.
class MemcachedGetParser final : public PacketParser {
 public:
  std::string_view name() const noexcept override { return kMemcachedGet; }

  void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) override {
    if (!pkt.has_tcp || pkt.l4_payload_size == 0) return;
    const auto payload = common::as_string_view(pkt.payload());
    if (!payload.starts_with("get ")) return;
    const auto end = payload.find("\r\n", 4);
    if (end == std::string_view::npos) return;
    Record r;
    r.topic = std::string(kMemcachedGet);
    r.id = pkt.bidirectional_flow_hash;
    r.timestamp = pkt.timestamp;
    r.fields = {std::string(payload.substr(4, end - 4))};
    sink.emit(std::move(r));
  }
};

/// Observes a TCP stream to detect individual MySQL query/response pairs
/// (§7.2: several queries can share one connection, so connection-level
/// timing hides per-query latency). Emits the statement plus its latency
/// when the first response packet arrives.
class MysqlQueryParser final : public PacketParser {
 public:
  std::string_view name() const noexcept override { return kMysqlQuery; }

  void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) override {
    if (!pkt.has_tcp || pkt.l4_payload_size < 5) return;
    const auto id = pkt.bidirectional_flow_hash;
    const auto payload = pkt.payload();

    const bool to_server = pkt.five_tuple.dst_port == 3306;
    if (to_server) {
      // MySQL framing: 3-byte length, 1-byte seq, then command byte.
      if (static_cast<std::uint8_t>(payload[4]) != 0x03) return;  // COM_QUERY
      Pending p;
      p.statement.assign(common::as_string_view(payload.subspan(5)));
      p.query_time = pkt.timestamp;
      pending_.put(id, std::move(p));
    } else if (pkt.five_tuple.src_port == 3306) {
      Pending* p = pending_.find(id);
      if (p == nullptr) return;  // response without an observed query
      Record r;
      r.topic = std::string(kMysqlQuery);
      r.id = id;
      r.timestamp = pkt.timestamp;
      r.fields = {std::move(p->statement),
                  std::uint64_t{pkt.timestamp - p->query_time}};
      sink.emit(std::move(r));
      pending_.erase(id);
    }
  }

 private:
  struct Pending {
    std::string statement;
    common::Timestamp query_time = 0;
  };
  FlowStateMap<Pending> pending_;
};

}  // namespace

void register_app_parsers() {
  auto& reg = nf::ParserRegistry::instance();
  reg.register_parser(std::string(kHttpGet),
                      [] { return std::make_unique<HttpGetParser>(); });
  reg.register_parser(std::string(kMemcachedGet),
                      [] { return std::make_unique<MemcachedGetParser>(); });
  reg.register_parser(std::string(kMysqlQuery),
                      [] { return std::make_unique<MysqlQueryParser>(); });
}

}  // namespace netalytics::parsers
