#include "pktgen/generator.hpp"

#include <algorithm>
#include <numeric>

#include "net/headers.hpp"
#include "pktgen/builder.hpp"
#include "pktgen/payloads.hpp"

namespace netalytics::pktgen {

namespace {

net::FiveTuple flow_for(const GeneratorConfig& c, std::size_t i) {
  net::FiveTuple t;
  t.src_ip = c.src_base + static_cast<net::Ipv4Addr>(i % 65536);
  t.dst_ip = c.dst_base + static_cast<net::Ipv4Addr>((i / 7) % 256);
  t.src_port = static_cast<net::Port>(10000 + (i % 50000));
  t.dst_port = c.dst_port;
  t.protocol = static_cast<std::uint8_t>(net::IpProto::tcp);
  return t;
}

std::string sample_sql(common::Rng& rng, std::size_t variant) {
  static constexpr const char* kTemplates[] = {
      "SELECT * FROM film WHERE film_id = ",
      "SELECT customer_id, amount FROM payment WHERE customer_id = ",
      "SELECT title FROM film JOIN film_actor USING (film_id) WHERE actor_id = ",
      "UPDATE rental SET return_date = NOW() WHERE rental_id = ",
  };
  std::string sql = kTemplates[variant % std::size(kTemplates)];
  sql += std::to_string(rng.uniform(1, 9999));
  return sql;
}

}  // namespace

TrafficGenerator::TrafficGenerator(const GeneratorConfig& config)
    : config_(config) {
  common::Rng rng(config_.seed);
  const std::size_t flows = std::max<std::size_t>(config_.flow_count, 1);

  switch (config_.kind) {
    case TrafficKind::raw_tcp: {
      frames_.reserve(flows);
      for (std::size_t i = 0; i < flows; ++i) {
        TcpFrameSpec f;
        f.flow = flow_for(config_, i);
        f.pad_to_frame_size = config_.frame_size;
        frames_.push_back(build_tcp_frame(f));
      }
      break;
    }
    case TrafficKind::tcp_lifecycle: {
      // Three frames per flow: SYN, one data segment, FIN. Replayed in
      // order per flow so connection-time parsers see valid lifecycles.
      frames_.reserve(flows * 3);
      for (std::size_t i = 0; i < flows; ++i) {
        TcpFrameSpec f;
        f.flow = flow_for(config_, i);
        f.flags = net::tcp_flags::kSyn;
        f.pad_to_frame_size = config_.frame_size;
        frames_.push_back(build_tcp_frame(f));
        f.flags = net::tcp_flags::kAck | net::tcp_flags::kPsh;
        frames_.push_back(build_tcp_frame(f));
        f.flags = net::tcp_flags::kFin | net::tcp_flags::kAck;
        frames_.push_back(build_tcp_frame(f));
      }
      break;
    }
    case TrafficKind::http_get: {
      UrlWorkload urls(config_.url_count, config_.zipf_exponent, config_.seed);
      frames_.reserve(flows);
      for (std::size_t i = 0; i < flows; ++i) {
        const auto payload = http_get_request(urls.sample(rng), "backend.internal");
        TcpFrameSpec f;
        f.flow = flow_for(config_, i);
        f.flags = net::tcp_flags::kAck | net::tcp_flags::kPsh;
        f.payload = payload;
        f.pad_to_frame_size = config_.frame_size;
        frames_.push_back(build_tcp_frame(f));
      }
      break;
    }
    case TrafficKind::memcached_get: {
      frames_.reserve(flows);
      for (std::size_t i = 0; i < flows; ++i) {
        const std::string key = "user:" + std::to_string(rng.uniform(0, config_.url_count));
        const auto payload = memcached_get_request(key);
        TcpFrameSpec f;
        f.flow = flow_for(config_, i);
        f.flow.dst_port = 11211;
        f.flags = net::tcp_flags::kAck | net::tcp_flags::kPsh;
        f.payload = payload;
        f.pad_to_frame_size = config_.frame_size;
        frames_.push_back(build_tcp_frame(f));
      }
      break;
    }
    case TrafficKind::mysql_query: {
      frames_.reserve(flows);
      for (std::size_t i = 0; i < flows; ++i) {
        const auto payload = mysql_query_packet(sample_sql(rng, i));
        TcpFrameSpec f;
        f.flow = flow_for(config_, i);
        f.flow.dst_port = 3306;
        f.flags = net::tcp_flags::kAck | net::tcp_flags::kPsh;
        f.payload = payload;
        f.pad_to_frame_size = config_.frame_size;
        frames_.push_back(build_tcp_frame(f));
      }
      break;
    }
  }

  // Pre-shuffle the replay order (except lifecycle traffic, which must stay
  // in per-flow order) so flow-hash sampling sees interleaved flows.
  play_order_.resize(frames_.size());
  std::iota(play_order_.begin(), play_order_.end(), 0u);
  if (config_.kind != TrafficKind::tcp_lifecycle) {
    for (std::size_t i = play_order_.size(); i > 1; --i) {
      std::swap(play_order_[i - 1], play_order_[rng.uniform(0, i - 1)]);
    }
  }
}

std::span<const std::byte> TrafficGenerator::next_frame() noexcept {
  const auto& f = frames_[play_order_[cursor_]];
  cursor_ = (cursor_ + 1) % play_order_.size();
  return f;
}

double TrafficGenerator::mean_frame_size() const noexcept {
  if (frames_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& f : frames_) total += f.size();
  return static_cast<double>(total) / static_cast<double>(frames_.size());
}

UrlWorkload::UrlWorkload(std::size_t url_count, double zipf_exponent,
                         std::uint64_t seed)
    : zipf_(std::max<std::size_t>(url_count, 1), zipf_exponent) {
  common::Rng rng(seed);
  urls_by_rank_.reserve(zipf_.size());
  for (std::size_t i = 0; i < zipf_.size(); ++i) {
    urls_by_rank_.push_back("/video/" + std::to_string(rng.next_u64() % 1000000) +
                            "-" + std::to_string(i) + ".mp4");
  }
}

const std::string& UrlWorkload::sample(common::Rng& rng) const {
  return urls_by_rank_[zipf_.sample(rng)];
}

void UrlWorkload::churn(common::Rng& rng, double fraction) {
  const auto swaps =
      static_cast<std::size_t>(fraction * static_cast<double>(urls_by_rank_.size()));
  for (std::size_t i = 0; i < swaps; ++i) {
    const std::size_t a = rng.uniform(0, urls_by_rank_.size() - 1);
    const std::size_t b = rng.uniform(0, urls_by_rank_.size() - 1);
    std::swap(urls_by_rank_[a], urls_by_rank_[b]);
  }
}

}  // namespace netalytics::pktgen
