// High-rate traffic generation for throughput experiments (Fig. 5/6).
// Like PktGen-DPDK, the generator precomputes a set of template frames
// (distinct flows x payload variants) and then replays them — the per-packet
// cost at the source is a pointer fetch, so the monitor under test is the
// bottleneck being measured.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/flow.hpp"

namespace netalytics::pktgen {

enum class TrafficKind {
  raw_tcp,        // padded ACK data segments
  tcp_lifecycle,  // cycles SYN -> data -> FIN per flow (feeds tcp_conn_time)
  http_get,       // HTTP GET requests with Zipf-popular URLs
  memcached_get,  // memcached text protocol gets
  mysql_query,    // COM_QUERY packets
};

struct GeneratorConfig {
  TrafficKind kind = TrafficKind::raw_tcp;
  std::size_t frame_size = 256;   // total frame bytes (padded when needed)
  std::size_t flow_count = 1024;  // distinct five-tuples
  std::size_t url_count = 1000;   // distinct URLs/keys/statements
  double zipf_exponent = 1.0;     // content-popularity skew
  net::Ipv4Addr src_base = 0x0a000000;  // 10.0.0.0
  net::Ipv4Addr dst_base = 0x0a800000;  // 10.128.0.0
  net::Port dst_port = 80;
  std::uint64_t seed = 42;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const GeneratorConfig& config);

  /// Next template frame. Valid until the generator is destroyed.
  std::span<const std::byte> next_frame() noexcept;

  std::size_t template_count() const noexcept { return frames_.size(); }
  const GeneratorConfig& config() const noexcept { return config_; }

  /// Mean frame size across templates (padding can make sizes uneven).
  double mean_frame_size() const noexcept;

 private:
  GeneratorConfig config_;
  std::vector<std::vector<std::byte>> frames_;
  std::vector<std::uint32_t> play_order_;  // pre-shuffled index sequence
  std::size_t cursor_ = 0;
};

/// A set of URLs with Zipf popularity whose rank order can drift over time
/// — the synthetic stand-in for the Zink et al. YouTube trace (Fig. 16).
class UrlWorkload {
 public:
  UrlWorkload(std::size_t url_count, double zipf_exponent, std::uint64_t seed);

  /// Sample a URL according to current popularity.
  const std::string& sample(common::Rng& rng) const;
  const std::string& url(std::size_t rank) const { return urls_by_rank_.at(rank); }
  std::size_t size() const noexcept { return urls_by_rank_.size(); }

  /// Churn the popularity ranking: each call randomly promotes/demotes a
  /// fraction of entries, so interval-by-interval top-k fluctuates.
  void churn(common::Rng& rng, double fraction);

 private:
  common::ZipfSampler zipf_;
  std::vector<std::string> urls_by_rank_;
};

}  // namespace netalytics::pktgen
