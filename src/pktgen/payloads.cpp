#include "pktgen/payloads.hpp"

#include <cstring>

#include "common/byte_io.hpp"

namespace netalytics::pktgen {

namespace {

std::vector<std::byte> from_string(const std::string& s) {
  const auto b = common::as_bytes(s);
  return {b.begin(), b.end()};
}

/// MySQL packet framing: 3-byte little-endian body length, 1-byte sequence.
std::vector<std::byte> mysql_frame(std::uint8_t sequence_id,
                                   std::span<const std::byte> body) {
  std::vector<std::byte> out(4 + body.size());
  const auto n = static_cast<std::uint32_t>(body.size());
  out[0] = static_cast<std::byte>(n & 0xff);
  out[1] = static_cast<std::byte>((n >> 8) & 0xff);
  out[2] = static_cast<std::byte>((n >> 16) & 0xff);
  out[3] = static_cast<std::byte>(sequence_id);
  std::memcpy(out.data() + 4, body.data(), body.size());
  return out;
}

}  // namespace

std::vector<std::byte> http_get_request(std::string_view url, std::string_view host) {
  std::string s = "GET ";
  s += url;
  s += " HTTP/1.1\r\nHost: ";
  s += host;
  s += "\r\nUser-Agent: netalytics-pktgen\r\n\r\n";
  return from_string(s);
}

std::vector<std::byte> http_response(int status_code, std::size_t body_size) {
  std::string s = "HTTP/1.1 ";
  s += std::to_string(status_code);
  s += status_code == 200 ? " OK" : " Error";
  s += "\r\nContent-Length: ";
  s += std::to_string(body_size);
  s += "\r\nContent-Type: text/html\r\n\r\n";
  s.append(body_size, 'x');
  return from_string(s);
}

std::vector<std::byte> memcached_get_request(std::string_view key) {
  std::string s = "get ";
  s += key;
  s += "\r\n";
  return from_string(s);
}

std::vector<std::byte> memcached_value_response(std::string_view key,
                                                std::size_t value_size) {
  std::string s = "VALUE ";
  s += key;
  s += " 0 ";
  s += std::to_string(value_size);
  s += "\r\n";
  s.append(value_size, 'v');
  s += "\r\nEND\r\n";
  return from_string(s);
}

std::vector<std::byte> mysql_query_packet(std::string_view sql,
                                          std::uint8_t sequence_id) {
  std::vector<std::byte> body(1 + sql.size());
  body[0] = std::byte{0x03};  // COM_QUERY
  std::memcpy(body.data() + 1, sql.data(), sql.size());
  return mysql_frame(sequence_id, body);
}

std::vector<std::byte> mysql_ok_packet(std::uint8_t sequence_id) {
  // OK packet: header 0x00, affected_rows=0, last_insert_id=0, status, warnings.
  const std::byte body[] = {std::byte{0x00}, std::byte{0x00}, std::byte{0x00},
                            std::byte{0x02}, std::byte{0x00}, std::byte{0x00},
                            std::byte{0x00}};
  return mysql_frame(sequence_id, body);
}

std::vector<std::byte> mysql_resultset_packet(std::size_t payload_size,
                                              std::uint8_t sequence_id) {
  std::vector<std::byte> body(payload_size, std::byte{'r'});
  if (!body.empty()) body[0] = std::byte{0x01};  // column-count stub
  return mysql_frame(sequence_id, body);
}

}  // namespace netalytics::pktgen
