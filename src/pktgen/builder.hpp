// Frame builders: compose well-formed Ethernet/IPv4/TCP/UDP frames from a
// five-tuple and a payload. The traffic generator and the application
// emulations build every packet through these, so everything the monitors
// see is byte-exact protocol traffic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.hpp"
#include "net/headers.hpp"

namespace netalytics::pktgen {

struct TcpFrameSpec {
  net::FiveTuple flow;
  std::uint8_t flags = net::tcp_flags::kAck;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::span<const std::byte> payload{};
  /// If non-zero, pad the frame (with zero bytes of payload) up to this
  /// total frame size; used by fixed-packet-size throughput sweeps.
  std::size_t pad_to_frame_size = 0;
};

/// Build a TCP/IPv4/Ethernet frame. Returns the raw frame bytes.
std::vector<std::byte> build_tcp_frame(const TcpFrameSpec& spec);

struct UdpFrameSpec {
  net::FiveTuple flow;  // protocol field is forced to UDP
  std::span<const std::byte> payload{};
  std::size_t pad_to_frame_size = 0;
};

std::vector<std::byte> build_udp_frame(const UdpFrameSpec& spec);

/// Frame overhead for a plain TCP data packet (Ethernet+IPv4+TCP headers).
constexpr std::size_t kTcpFrameOverhead =
    net::EthernetHeader::kSize + net::Ipv4Header::kMinSize + net::TcpHeader::kMinSize;

constexpr std::size_t kUdpFrameOverhead =
    net::EthernetHeader::kSize + net::Ipv4Header::kMinSize + net::UdpHeader::kSize;

}  // namespace netalytics::pktgen
