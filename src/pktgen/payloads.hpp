// Application-layer payload synthesis for the protocols NetAlytics parsers
// understand (Table 1): HTTP, Memcached (text protocol), and the MySQL
// client/server wire protocol (COM_QUERY subset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netalytics::pktgen {

/// "GET <url> HTTP/1.1\r\nHost: <host>\r\n\r\n"
std::vector<std::byte> http_get_request(std::string_view url, std::string_view host);

/// Minimal HTTP response with a zero-filled body of `body_size` bytes.
std::vector<std::byte> http_response(int status_code, std::size_t body_size);

/// Memcached text protocol "get <key>\r\n".
std::vector<std::byte> memcached_get_request(std::string_view key);

/// Memcached "VALUE <key> 0 <len>\r\n<data>\r\nEND\r\n".
std::vector<std::byte> memcached_value_response(std::string_view key,
                                                std::size_t value_size);

/// MySQL protocol packet carrying COM_QUERY (0x03) + statement text,
/// framed with the 3-byte little-endian length + sequence id header.
std::vector<std::byte> mysql_query_packet(std::string_view sql,
                                          std::uint8_t sequence_id = 0);

/// MySQL OK packet (0x00 header) framed the same way.
std::vector<std::byte> mysql_ok_packet(std::uint8_t sequence_id = 1);

/// MySQL result-set stub: a framed packet whose body is `payload_size`
/// filler bytes, standing in for column/row packets.
std::vector<std::byte> mysql_resultset_packet(std::size_t payload_size,
                                              std::uint8_t sequence_id = 1);

}  // namespace netalytics::pktgen
