#include "pktgen/builder.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace netalytics::pktgen {

namespace {

std::size_t padded_payload_size(std::size_t payload_size, std::size_t overhead,
                                std::size_t pad_to_frame_size) {
  if (pad_to_frame_size == 0) return payload_size;
  if (pad_to_frame_size < overhead) {
    throw std::invalid_argument("pad_to_frame_size smaller than headers");
  }
  return std::max(payload_size, pad_to_frame_size - overhead);
}

}  // namespace

std::vector<std::byte> build_tcp_frame(const TcpFrameSpec& spec) {
  const std::size_t payload_size = padded_payload_size(
      spec.payload.size(), kTcpFrameOverhead, spec.pad_to_frame_size);
  const std::size_t frame_size = kTcpFrameOverhead + payload_size;
  std::vector<std::byte> frame(frame_size, std::byte{0});
  std::span<std::byte> buf(frame);

  net::EthernetHeader eth;
  eth.ether_type = net::kEtherTypeIpv4;
  eth.write(buf);

  net::Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kMinSize + net::TcpHeader::kMinSize + payload_size);
  ip.protocol = static_cast<std::uint8_t>(net::IpProto::tcp);
  ip.src = spec.flow.src_ip;
  ip.dst = spec.flow.dst_ip;
  ip.write(buf.subspan(net::EthernetHeader::kSize));

  net::TcpHeader tcp;
  tcp.src_port = spec.flow.src_port;
  tcp.dst_port = spec.flow.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  tcp.write(buf.subspan(net::EthernetHeader::kSize + net::Ipv4Header::kMinSize));

  if (!spec.payload.empty()) {
    std::memcpy(frame.data() + kTcpFrameOverhead, spec.payload.data(),
                spec.payload.size());
  }
  return frame;
}

std::vector<std::byte> build_udp_frame(const UdpFrameSpec& spec) {
  const std::size_t payload_size = padded_payload_size(
      spec.payload.size(), kUdpFrameOverhead, spec.pad_to_frame_size);
  const std::size_t frame_size = kUdpFrameOverhead + payload_size;
  std::vector<std::byte> frame(frame_size, std::byte{0});
  std::span<std::byte> buf(frame);

  net::EthernetHeader eth;
  eth.write(buf);

  net::Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kMinSize + net::UdpHeader::kSize + payload_size);
  ip.protocol = static_cast<std::uint8_t>(net::IpProto::udp);
  ip.src = spec.flow.src_ip;
  ip.dst = spec.flow.dst_ip;
  ip.write(buf.subspan(net::EthernetHeader::kSize));

  net::UdpHeader udp;
  udp.src_port = spec.flow.src_port;
  udp.dst_port = spec.flow.dst_port;
  udp.length = static_cast<std::uint16_t>(net::UdpHeader::kSize + payload_size);
  udp.write(buf.subspan(net::EthernetHeader::kSize + net::Ipv4Header::kMinSize));

  if (!spec.payload.empty()) {
    std::memcpy(frame.data() + kUdpFrameOverhead, spec.payload.data(),
                spec.payload.size());
  }
  return frame;
}

}  // namespace netalytics::pktgen
