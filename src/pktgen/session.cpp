#include "pktgen/session.hpp"

#include "pktgen/builder.hpp"

namespace netalytics::pktgen {

namespace {

using net::tcp_flags::kAck;
using net::tcp_flags::kFin;
using net::tcp_flags::kPsh;
using net::tcp_flags::kSyn;

struct SessionEmitter {
  const SessionSpec& spec;
  const FrameSink& sink;
  bool client_only;
  SessionTiming timing{};
  std::uint32_t client_seq = 1;
  std::uint32_t server_seq = 1;

  void frame(const net::FiveTuple& flow, std::uint8_t flags, std::uint32_t seq,
             std::uint32_t ack, std::span<const std::byte> payload,
             common::Timestamp ts) {
    const bool from_client = flow == spec.flow;
    if (client_only && !from_client) return;
    TcpFrameSpec f;
    f.flow = flow;
    f.flags = flags;
    f.seq = seq;
    f.ack = ack;
    f.payload = payload;
    const auto bytes = build_tcp_frame(f);
    sink(bytes, ts);
    ++timing.frames;
    if (from_client) {
      timing.client_payload_bytes += payload.size();
    } else {
      timing.server_payload_bytes += payload.size();
    }
  }

  /// Segment `data` into MSS-sized packets, one per `gap` nanoseconds.
  common::Timestamp send_data(const net::FiveTuple& flow, std::uint32_t& seq,
                              std::span<const std::byte> data,
                              common::Timestamp ts) {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n = std::min(spec.mss, data.size() - off);
      const bool last = off + n >= data.size();
      frame(flow, static_cast<std::uint8_t>(kAck | (last ? kPsh : 0)), seq, 0,
            data.subspan(off, n), ts);
      seq += static_cast<std::uint32_t>(n);
      off += n;
      ts += common::kMicrosecond;  // back-to-back segments on a fast link
    }
    return ts;
  }

  SessionTiming run() {
    const auto rev = spec.flow.reversed();
    const common::Duration half_rtt = spec.rtt / 2;
    common::Timestamp t = spec.start;

    timing.syn_time = t;
    frame(spec.flow, kSyn, 0, 0, {}, t);                       // SYN
    frame(rev, static_cast<std::uint8_t>(kSyn | kAck), 0, 1, {}, t + half_rtt);
    t += spec.rtt;
    frame(spec.flow, kAck, 1, 1, {}, t);                       // handshake ACK

    t = send_data(spec.flow, client_seq, spec.request, t);     // request
    t += half_rtt + spec.server_latency;                       // server thinks
    t = send_data(rev, server_seq, spec.response, t);          // response
    t += half_rtt;

    // Active close by the client once the response arrives.
    frame(spec.flow, static_cast<std::uint8_t>(kFin | kAck), client_seq, server_seq, {}, t);
    frame(rev, static_cast<std::uint8_t>(kFin | kAck), server_seq, client_seq + 1, {},
          t + half_rtt);
    t += spec.rtt;
    frame(spec.flow, kAck, client_seq + 1, server_seq + 1, {}, t);
    timing.fin_time = t;
    return timing;
  }
};

}  // namespace

SessionTiming emit_tcp_session(const SessionSpec& spec, const FrameSink& sink) {
  SessionEmitter e{spec, sink, /*client_only=*/false};
  return e.run();
}

SessionTiming emit_tcp_session_client_half(const SessionSpec& spec,
                                           const FrameSink& sink) {
  SessionEmitter e{spec, sink, /*client_only=*/true};
  return e.run();
}

}  // namespace netalytics::pktgen
