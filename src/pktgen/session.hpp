// TCP session emulation: turns an application-level exchange (request,
// think time at the server, response) into a timestamped, byte-exact frame
// sequence — SYN/SYN-ACK/ACK, segmented data in both directions, FIN
// teardown. The use-case emulations (§7) generate all tier-to-tier traffic
// through this, so tcp_conn_time observes real connection lifetimes and
// tcp_pkt_size observes real byte counts.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/clock.hpp"
#include "net/flow.hpp"

namespace netalytics::pktgen {

struct SessionSpec {
  net::FiveTuple flow;  // client -> server direction
  common::Timestamp start = 0;
  common::Duration rtt = common::kMillisecond;          // network round trip
  common::Duration server_latency = common::kMillisecond;  // request->response
  std::span<const std::byte> request{};
  std::span<const std::byte> response{};
  std::size_t mss = 1448;  // payload bytes per data segment
};

/// Receives each emitted frame. The span is only valid during the call.
using FrameSink =
    std::function<void(std::span<const std::byte> frame, common::Timestamp ts)>;

struct SessionTiming {
  common::Timestamp syn_time = 0;
  common::Timestamp fin_time = 0;  // last FIN of the teardown
  std::size_t frames = 0;
  std::size_t client_payload_bytes = 0;
  std::size_t server_payload_bytes = 0;
};

/// Emit one full TCP session; returns observable timing facts for tests.
SessionTiming emit_tcp_session(const SessionSpec& spec, const FrameSink& sink);

/// Emit only the client->server half of a session (what a monitor on the
/// server-side ToR sees for asymmetric routing scenarios).
SessionTiming emit_tcp_session_client_half(const SessionSpec& spec,
                                           const FrameSink& sink);

}  // namespace netalytics::pktgen
