// Small string helpers shared by the query lexer, protocol parsers, and
// result renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace netalytics::common {

/// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with_ci(std::string_view s, std::string_view prefix);

/// Parse a non-negative integer; returns false on any non-digit or overflow.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Parse a double; returns false on trailing garbage.
bool parse_double(std::string_view s, double& out);

/// Left-pad/right-pad for table rendering.
std::string pad_right(std::string_view s, std::size_t width);
std::string pad_left(std::string_view s, std::size_t width);

}  // namespace netalytics::common
