// Hashing primitives used across NetAlytics: flow hashing for sampling,
// field grouping in the stream engine, and partition selection in the
// message queue. All hashes are deterministic across runs so simulations
// and tests are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace netalytics::common {

/// 64-bit FNV-1a over a byte range. Stable, endian-independent.
constexpr std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Finalizing mix (splitmix64 finalizer). Good avalanche for integer keys.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combination of two hashes.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Map a hash uniformly onto [0, buckets). `buckets` must be > 0.
constexpr std::size_t hash_to_bucket(std::uint64_t h, std::size_t buckets) noexcept {
  // Multiply-shift avoids modulo bias for non-power-of-two bucket counts.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(h) * buckets) >> 64);
}

}  // namespace netalytics::common
