#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace netalytics::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace netalytics::common
