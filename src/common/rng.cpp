#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netalytics::common {

double Rng::exponential(double rate) noexcept {
  // Avoid log(0); next_double() is in [0,1).
  return -std::log1p(-next_double()) / rate;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; one value per call keeps the generator state simple.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(6.283185307179586 * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = next_double();
  while (u <= 1e-300) u = next_double();
  return xm / std::pow(u, 1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace netalytics::common
