#include "common/fault.hpp"

#include "common/hash.hpp"

namespace netalytics::common {

void FaultPlan::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard lock(mutex_);
  Site s;
  s.spec = spec;
  // Independent stream per site: checks against one site never perturb the
  // random sequence of another, so multi-site runs stay reproducible even
  // when call interleavings differ.
  s.rng = Rng(mix64(seed_ ^ fnv1a64(site)));
  sites_.insert_or_assign(site, s);
}

void FaultPlan::disarm(const std::string& site) {
  std::lock_guard lock(mutex_);
  sites_.erase(site);
}

bool FaultPlan::armed(std::string_view site) const {
  std::lock_guard lock(mutex_);
  return sites_.find(site) != sites_.end();
}

bool FaultPlan::should_fail(std::string_view site, Timestamp now) {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.stats.checks;
  if (s.spec.max_fires != 0 && s.stats.fires >= s.spec.max_fires) return false;

  bool fired = false;
  if (s.spec.window_end > s.spec.window_start && now >= s.spec.window_start &&
      now < s.spec.window_end) {
    fired = true;
  }
  if (!fired && s.spec.every_nth != 0 && s.stats.checks % s.spec.every_nth == 0) {
    fired = true;
  }
  if (!fired && s.spec.probability > 0.0 && s.rng.bernoulli(s.spec.probability)) {
    fired = true;
  }
  if (fired) ++s.stats.fires;
  return fired;
}

FaultSiteStats FaultPlan::site_stats(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? FaultSiteStats{} : it->second.stats;
}

}  // namespace netalytics::common
