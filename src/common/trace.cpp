#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace netalytics::common {

std::string_view trace_stage_name(TraceStage s) noexcept {
  switch (s) {
    case TraceStage::ingest: return "ingest";
    case TraceStage::emit: return "emit";
    case TraceStage::produce: return "produce";
    case TraceStage::consume: return "consume";
    case TraceStage::execute: return "execute";
    case TraceStage::deliver: return "deliver";
  }
  return "unknown";
}

// ---------------------------------------------------------------- recorder

struct TraceRecorder::Slab {
  explicit Slab(std::size_t capacity) : spans(capacity) {}
  std::vector<TraceSpan> spans;
  // Single writer (the owning thread); head published with release so
  // collect() on another thread sees complete spans below it.
  std::atomic<std::size_t> head{0};
  std::atomic<std::uint64_t> dropped{0};
};

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TlSlabRef {
  std::uint64_t recorder_id = 0;
  void* slab = nullptr;
};

// Per-thread cache of (recorder id -> slab). Recorder ids are process-
// unique and never reused, so a stale entry for a destroyed recorder can
// never be matched by a different recorder at the same address.
thread_local std::vector<TlSlabRef> tl_slabs;

}  // namespace

TraceRecorder::TraceRecorder() : TraceRecorder(Config{}) {}

TraceRecorder::TraceRecorder(Config config)
    : config_(config), recorder_id_(next_recorder_id()) {
  if (config_.capacity_per_thread == 0) config_.capacity_per_thread = 1;
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Slab* TraceRecorder::local_slab() const {
  for (const auto& ref : tl_slabs) {
    if (ref.recorder_id == recorder_id_) return static_cast<Slab*>(ref.slab);
  }
  std::lock_guard lock(slabs_mutex_);
  slabs_.push_back(std::make_unique<Slab>(config_.capacity_per_thread));
  Slab* slab = slabs_.back().get();
  // Bound the cache: a thread touching many short-lived recorders keeps the
  // most recent handful (stale refs are only ever scanned, never followed).
  if (tl_slabs.size() >= 64) tl_slabs.erase(tl_slabs.begin());
  tl_slabs.push_back({recorder_id_, slab});
  return slab;
}

TraceContext TraceRecorder::begin(std::uint64_t flow_hash,
                                  Timestamp ts) noexcept {
  TraceContext ctx;
  if (!sample(flow_hash ^ mix64(ts))) return ctx;
  ctx.id = trace_id(flow_hash, ts);
  ctx.mark(TraceStage::ingest);
  stamp(ctx.id, TraceStage::ingest, ts, ts);
  return ctx;
}

void TraceRecorder::stamp(std::uint64_t trace, TraceStage stage,
                          Timestamp start, Timestamp end) noexcept {
  if (!enabled() || trace == 0) return;
  Slab* slab = local_slab();
  const std::size_t h = slab->head.load(std::memory_order_relaxed);
  if (h >= slab->spans.size()) {
    slab->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slab->spans[h] = TraceSpan{trace, stage, start, end};
  slab->head.store(h + 1, std::memory_order_release);
}

std::vector<TraceSpan> TraceRecorder::collect() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard lock(slabs_mutex_);
    for (const auto& slab : slabs_) {
      const std::size_t n = slab->head.load(std::memory_order_acquire);
      out.insert(out.end(), slab->spans.begin(), slab->spans.begin() + n);
    }
  }
  // Content order, not arrival order: deterministic regardless of which
  // thread recorded what when.
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.trace != b.trace) return a.trace < b.trace;
    if (a.stage != b.stage) return a.stage < b.stage;
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  return out;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard lock(slabs_mutex_);
  std::size_t n = 0;
  for (const auto& slab : slabs_) {
    n += slab->head.load(std::memory_order_acquire);
  }
  return n;
}

std::uint64_t TraceRecorder::dropped_spans() const {
  std::lock_guard lock(slabs_mutex_);
  std::uint64_t n = 0;
  for (const auto& slab : slabs_) {
    n += slab->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

std::string TraceRecorder::render(std::size_t max_traces) const {
  const auto spans = collect();
  std::string out;
  std::size_t traces = 0;
  std::uint64_t current = 0;
  std::uint8_t stages = 0;
  std::string block;
  const auto flush_block = [&] {
    if (block.empty()) return;
    out += "trace ";
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(current));
    out += hex;
    out += " stages=";
    for (std::size_t i = 0; i < kTraceStageCount; ++i) {
      out += ((stages >> i) & 1u) ? '1' : '.';
    }
    out += '\n';
    out += block;
    block.clear();
  };
  for (const auto& s : spans) {
    if (s.trace != current || block.empty()) {
      if (s.trace != current && !block.empty()) {
        flush_block();
        if (++traces >= max_traces) {
          out += "...\n";
          return out;
        }
      }
      current = s.trace;
      stages = 0;
    }
    stages |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(s.stage));
    block += "  ";
    block += trace_stage_name(s.stage);
    block += " [";
    block += std::to_string(s.start);
    block += " ";
    block += std::to_string(s.end);
    block += "] +";
    block += std::to_string(s.end >= s.start ? s.end - s.start : 0);
    block += '\n';
  }
  flush_block();
  return out;
}

// ------------------------------------------------------------------ ledger

std::string_view drop_cause_name(DropCause c) noexcept {
  switch (c) {
    case DropCause::ingest_ring_overflow: return "ingest.ring_overflow";
    case DropCause::ingest_decode_error: return "ingest.decode_error";
    case DropCause::sample_rejected: return "sample.rejected";
    case DropCause::parse_worker_overflow: return "parse.worker_overflow";
    case DropCause::parse_error: return "parse.error";
    case DropCause::parse_no_output: return "parse.no_output";
    case DropCause::produce_buffer_overflow: return "produce.buffer_overflow";
    case DropCause::produce_retries_exhausted:
      return "produce.retries_exhausted";
    case DropCause::broker_retention: return "broker.retention";
    case DropCause::consume_poll_failure: return "consume.poll_failure";
    case DropCause::stream_window_eviction: return "stream.window_eviction";
  }
  return "unknown";
}

bool drop_cause_is_loss(DropCause c) noexcept {
  switch (c) {
    case DropCause::consume_poll_failure:     // the data retries next poll
    case DropCause::stream_window_eviction:   // post-aggregation state
      return false;
    default:
      return true;
  }
}

DropLedger::DropLedger(MetricsRegistry& registry, const std::string& prefix) {
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    counters_[i] = &registry.counter(
        prefix + "." +
        std::string(drop_cause_name(static_cast<DropCause>(i))));
  }
}

std::uint64_t DropLedger::total_losses() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    if (drop_cause_is_loss(static_cast<DropCause>(i))) {
      n += counters_[i]->value();
    }
  }
  return n;
}

std::string DropLedger::render() const {
  std::string out;
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    const std::uint64_t v = counters_[i]->value();
    if (v == 0) continue;
    out += drop_cause_name(static_cast<DropCause>(i));
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  return out;
}

// -------------------------------------------------------------- time series

SnapshotRing::SnapshotRing(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {
  ring_.resize(slots_);
}

MetricsSnapshot SnapshotRing::delta(const MetricsSnapshot& prev,
                                    const MetricsSnapshot& curr) {
  MetricsSnapshot d;
  // Names in a registry only ever grow and snapshots are name-sorted per
  // kind, so a linear merge finds each previous value (or 0).
  std::size_t pi = 0;
  for (const auto& c : curr.counters) {
    while (pi < prev.counters.size() && prev.counters[pi].name < c.name) ++pi;
    const std::uint64_t before =
        (pi < prev.counters.size() && prev.counters[pi].name == c.name)
            ? prev.counters[pi].value
            : 0;
    if (c.value != before) d.counters.push_back({c.name, c.value - before});
  }
  d.gauges = curr.gauges;  // gauges are levels, kept absolute
  pi = 0;
  for (const auto& h : curr.histograms) {
    while (pi < prev.histograms.size() && prev.histograms[pi].name < h.name) {
      ++pi;
    }
    const bool known =
        pi < prev.histograms.size() && prev.histograms[pi].name == h.name;
    const std::uint64_t before = known ? prev.histograms[pi].count : 0;
    if (h.count == before) continue;
    MetricsSnapshot::HistogramSample s;
    s.name = h.name;
    s.bounds = h.bounds;
    s.count = h.count - before;
    s.sum = h.sum - (known ? prev.histograms[pi].sum : 0);
    s.buckets.resize(h.buckets.size());
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      s.buckets[b] =
          h.buckets[b] - (known ? prev.histograms[pi].buckets[b] : 0);
    }
    d.histograms.push_back(std::move(s));
  }
  return d;
}

void SnapshotRing::capture(Timestamp ts, const MetricsSnapshot& cumulative) {
  std::lock_guard lock(mutex_);
  Entry e;
  e.ts = ts;
  e.delta = delta(last_, cumulative);
  last_ = cumulative;
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % slots_;
  if (count_ < slots_) ++count_;
  ++captures_;
}

std::vector<SnapshotRing::Entry> SnapshotRing::entries() const {
  std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(count_);
  const std::size_t first = (head_ + slots_ - count_) % slots_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(first + i) % slots_]);
  }
  return out;
}

std::size_t SnapshotRing::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::uint64_t SnapshotRing::captures() const {
  std::lock_guard lock(mutex_);
  return captures_;
}

std::string SnapshotRing::render() const {
  std::string out;
  for (const auto& e : entries()) {
    const std::string t = "t=" + std::to_string(e.ts) + " ";
    for (const auto& c : e.delta.counters) {
      out += t;
      out += c.name;
      out += " +";
      out += std::to_string(c.value);
      out += '\n';
    }
    for (const auto& g : e.delta.gauges) {
      out += t;
      out += g.name;
      out += ' ';
      out += std::to_string(g.value);
      out += '\n';
    }
    for (const auto& h : e.delta.histograms) {
      out += t;
      out += h.name;
      out += "_count +";
      out += std::to_string(h.count);
      out += '\n';
    }
  }
  return out;
}

}  // namespace netalytics::common
