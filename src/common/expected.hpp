// Minimal expected/error types. GCC 12 in C++20 mode has no std::expected,
// so NetAlytics carries a small equivalent for recoverable errors (query
// parsing, semantic validation, configuration). Unrecoverable logic errors
// still throw.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace netalytics::common {

/// A recoverable error: a short machine-readable code plus human detail.
struct Error {
  std::string code;
  std::string message;

  std::string to_string() const { return code + ": " + message; }
};

/// Result of an operation that can fail recoverably.
template <typename T>
class Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Expected(Error error) : storage_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool has_value() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return has_value(); }

  /// Access the value; throws if this holds an error.
  T& value() {
    if (!has_value()) throw std::runtime_error("Expected: " + error().to_string());
    return std::get<T>(storage_);
  }
  const T& value() const {
    if (!has_value()) throw std::runtime_error("Expected: " + error().to_string());
    return std::get<T>(storage_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const { return std::get<Error>(storage_); }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result of an operation with nothing to return on success (validation,
/// side-effecting setup). Default construction is success.
template <>
class Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool has_value() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  /// Throws if this holds an error; no-op on success.
  void value() const {
    if (!has_value()) throw std::runtime_error("Expected: " + error().to_string());
  }

  const Error& error() const { return *error_; }

 private:
  std::optional<Error> error_;
};

/// Helper for functions with nothing to return on success.
struct Ok {};
using Status = Expected<Ok>;

inline Status ok_status() { return Status(Ok{}); }

}  // namespace netalytics::common
