#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace netalytics::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_low(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_rows(bool skip_empty) const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (skip_empty && counts_[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%.3f %llu\n", bucket_center(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
  }
  return out;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("SampleSet::percentile on empty set");
  ensure_sorted();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

std::string SampleSet::cdf_rows(std::size_t points) const {
  ensure_sorted();
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    const double v = samples_.empty() ? 0.0 : percentile(q * 100.0);
    std::snprintf(buf, sizeof(buf), "%.3f %.3f\n", v, q);
    out += buf;
  }
  return out;
}

std::string format_si(double value, const std::string& unit) {
  static constexpr const char* kPrefixes[] = {"", "K", "M", "G", "T"};
  int idx = 0;
  while (std::abs(value) >= 1000.0 && idx < 4) {
    value /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s%s", value, kPrefixes[idx], unit.c_str());
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace netalytics::common
