// Deterministic random number generation for simulations and workload
// synthesis. All NetAlytics experiments seed these explicitly so every run
// of a bench or test reproduces the same series.
#pragma once

#include <cstdint>
#include <vector>

namespace netalytics::common {

/// splitmix64: tiny, fast, and statistically adequate for simulation use.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  constexpr std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return next_u64();  // full 64-bit range
    return lo + static_cast<std::uint64_t>(
                    (static_cast<unsigned __int128>(next_u64()) * range) >> 64);
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform_real(double lo, double hi) noexcept {
    return lo + next_double() * (hi - lo);
  }

  /// True with probability p.
  constexpr bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// Standard normal via Box-Muller.
  double normal(double mean, double stddev) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

 private:
  std::uint64_t state_;
};

/// Zipf-distributed sampler over ranks [0, n). Precomputes the CDF once;
/// sampling is a binary search. Used for content-popularity workloads
/// (video trace, hot URLs).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of rank r.
  double pmf(std::size_t rank) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace netalytics::common
