// Statistics containers used by the evaluation harnesses: fixed-bucket and
// log-bucket histograms, running mean/variance, percentile extraction, and
// text renderers that print paper-style rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netalytics::common {

/// Welford running mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width-bucket histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Midpoint of bucket i.
  double bucket_center(std::size_t i) const;
  double bucket_low(std::size_t i) const;
  /// Approximate quantile (linear within bucket), q in [0,1].
  double quantile(double q) const noexcept;
  /// Render "center count" rows, optionally skipping empty buckets.
  std::string to_rows(bool skip_empty = true) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact-sample percentile set; stores all samples (fine at bench scale).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  /// Percentile p in [0,100]. Requires non-empty.
  double percentile(double p) const;
  double mean() const;
  /// Render a CDF as "value probability" rows at the given resolution.
  std::string cdf_rows(std::size_t points = 20) const;
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Format helpers for bench output.
std::string format_si(double value, const std::string& unit);  // e.g. 4.2 Gbps
std::string format_fixed(double value, int decimals);

}  // namespace netalytics::common
