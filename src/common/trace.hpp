// Trace provenance & drop accounting (see DESIGN.md): the answer to "a
// packet entered at the NIC ring — did it become a result tuple, and if
// not, which stage dropped it and why?". Two complementary mechanisms:
//
//  * TraceRecorder — a sampled flight recorder. A deterministic 1/N of
//    ingested packets get a 64-bit trace id stamped at the monitor and
//    carried through record serialization, mq messages and stream tuples;
//    every hand-off emits a virtual-time TraceSpan into a lock-free
//    per-thread span buffer. collect() merges and content-sorts the spans,
//    so two identical virtual-time runs render identical timelines.
//
//  * DropLedger — unsampled, always-on conservation accounting. Every
//    discard site in the pipeline increments a per-cause counter in the
//    registry ("<prefix>.<stage>.<cause>"), which is what lets
//    engine.reconcile() prove packets_in == tuples_out + Σ(drops) exactly.
//
// Plus SnapshotRing: a fixed-size ring of periodic MetricsSnapshot deltas
// (netdata-style) so benches can plot pipeline health over virtual time
// without a metrics backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/hash.hpp"
#include "common/metrics.hpp"

namespace netalytics::common {

/// Pipeline hand-off points a trace id passes through, in pipeline order.
/// Also the bit positions of TraceContext::stages.
enum class TraceStage : std::uint8_t {
  ingest,   // packet admitted by the monitor (decode + sampler passed)
  emit,     // parser record left the monitor in a shipped batch
  produce,  // producer delivered the record's message to a broker
  consume,  // spout polled the message out of the broker
  execute,  // a stream bolt executed a tuple carrying this trace
  deliver,  // result tuple reached the query's sink
};
inline constexpr std::size_t kTraceStageCount = 6;
std::string_view trace_stage_name(TraceStage s) noexcept;

/// The provenance token stamped onto a sampled packet: the trace id travels
/// with the data (record wire format, mq message, stream tuple); the stage
/// bitmap records which hand-offs this context has witnessed locally.
struct TraceContext {
  std::uint64_t id = 0;
  std::uint8_t stages = 0;  // bit i == stage i seen

  bool sampled() const noexcept { return id != 0; }
  void mark(TraceStage s) noexcept {
    stages |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(s));
  }
  bool seen(TraceStage s) const noexcept {
    return (stages >> static_cast<unsigned>(s)) & 1u;
  }
};

/// One virtual-time interval of one trace at one stage.
struct TraceSpan {
  std::uint64_t trace = 0;
  TraceStage stage = TraceStage::ingest;
  Timestamp start = 0;
  Timestamp end = 0;

  bool operator==(const TraceSpan&) const = default;
};

/// Sampled span collector. stamp() is wait-free on the hot path: each
/// thread owns a fixed-capacity slab (single writer, no CAS; the slab head
/// is published with a release store so collect() on another thread reads
/// fully-written spans). A full slab drops further spans and counts them —
/// flight-recorder semantics with deterministic content: collect() sorts by
/// (trace, stage, start, end), never by arrival interleaving.
class TraceRecorder {
 public:
  struct Config {
    /// 1-in-N packets get a trace id; 0 disables tracing entirely (stamp()
    /// and sample() become no-ops), 1 traces every packet.
    std::uint64_t sample_denominator = 0;
    /// Spans retained per recording thread before new spans are dropped.
    std::size_t capacity_per_thread = 4096;
  };

  // Two constructors instead of `Config config = {}`: a nested aggregate's
  // default member initializers are not usable until the enclosing class is
  // complete, so the brace-init default argument would not compile.
  TraceRecorder();
  explicit TraceRecorder(Config config);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const noexcept { return config_.sample_denominator != 0; }
  const Config& config() const noexcept { return config_; }

  /// Deterministic sampling decision: keyed on a hash of the packet's flow
  /// hash and timestamp, so identical virtual runs trace identical packets.
  bool sample(std::uint64_t key) const noexcept {
    const auto d = config_.sample_denominator;
    return d != 0 && (d == 1 || mix64(key ^ kSampleSalt) % d == 0);
  }

  /// Trace id for a sampled packet; nonzero and deterministic.
  static std::uint64_t trace_id(std::uint64_t flow_hash, Timestamp ts) noexcept {
    const std::uint64_t id = mix64(flow_hash ^ mix64(ts ^ kIdSalt));
    return id == 0 ? 1 : id;
  }

  /// Begin a trace for an admitted packet (ingest span stamped), or return
  /// an unsampled context.
  TraceContext begin(std::uint64_t flow_hash, Timestamp ts) noexcept;

  /// Record one span. No-op when disabled or trace == 0.
  void stamp(std::uint64_t trace, TraceStage stage, Timestamp start,
             Timestamp end) noexcept;

  /// All recorded spans, content-sorted (deterministic across runs).
  std::vector<TraceSpan> collect() const;
  std::size_t span_count() const;
  /// Spans rejected because a thread's slab filled up.
  std::uint64_t dropped_spans() const;

  /// Per-trace timelines: one block per trace id (at most `max_traces`,
  /// smallest ids first), one line per span with stage, [start end] and
  /// duration, plus the stage bitmap reconstructed from the spans.
  std::string render(std::size_t max_traces = 16) const;

 private:
  struct Slab;
  Slab* local_slab() const;

  static constexpr std::uint64_t kSampleSalt = 0x9e3779b97f4a7c15ULL;
  static constexpr std::uint64_t kIdSalt = 0xc2b2ae3d27d4eb4fULL;

  Config config_;
  std::uint64_t recorder_id_;  // process-unique; keys the thread-local cache
  mutable std::mutex slabs_mutex_;
  mutable std::vector<std::unique_ptr<Slab>> slabs_;
};

/// Named causes for every way the pipeline discards (or defers) data, in
/// pipeline order. The first block are loss causes that appear in the
/// reconciliation sum; the last two are bookkeeping causes (a failed poll
/// retries, a window eviction happens after aggregation consumed the data)
/// that the ledger still surfaces for operators.
enum class DropCause : std::uint8_t {
  ingest_ring_overflow,      // RX ring full (packets)
  ingest_decode_error,       // frame failed to decode (packets)
  sample_rejected,           // flow sampler dropped it (packets)
  parse_worker_overflow,     // worker ring full (packet-dispatches)
  parse_error,               // parser threw (packet-dispatches)
  parse_no_output,           // parsed fine, emitted no record (packet-dispatches)
  produce_buffer_overflow,   // producer send-buffer full (records)
  produce_retries_exhausted, // abandoned after max_attempts (records)
  broker_retention,          // evicted unread by capacity/age retention (records)
  consume_poll_failure,      // spout poll failed; data retries (events)
  stream_window_eviction,    // windowed bolt shed state (entries)
};
inline constexpr std::size_t kDropCauseCount = 11;
/// "<stage>.<cause>", e.g. "ingest.ring_overflow".
std::string_view drop_cause_name(DropCause c) noexcept;
/// True for causes that appear in the reconciliation conservation sum.
bool drop_cause_is_loss(DropCause c) noexcept;

/// The unsampled half of provenance: per-cause discard counters resolved in
/// a registry under "<prefix>.<stage>.<cause>". add() is one relaxed atomic
/// add, so the ledger is always on.
class DropLedger {
 public:
  DropLedger(MetricsRegistry& registry, const std::string& prefix = "drop");

  void add(DropCause c, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(c)]->inc(n);
  }
  std::uint64_t value(DropCause c) const noexcept {
    return counters_[static_cast<std::size_t>(c)]->value();
  }
  /// Sum over loss causes only (the reconciliation term).
  std::uint64_t total_losses() const noexcept;

  /// "cause count" lines for every nonzero cause, in enum order.
  std::string render() const;

 private:
  Counter* counters_[kDropCauseCount];
};

/// Fixed-size ring of periodic MetricsSnapshot deltas (netdata-style
/// windowed time series). capture() diffs the given cumulative snapshot
/// against the previous capture and keeps only series that changed (plus
/// every gauge, which is stored absolute), overwriting the oldest entry
/// once `slots` are full. Deterministic: entries depend only on capture
/// timestamps and the metric values.
///
/// Legacy: tsdb::TieredStore supersedes this ring for history — it keeps
/// the same per-tick deltas in tiered storage and answers through the
/// typed RangeQuery API instead of exposing raw entries.
class SnapshotRing {
 public:
  struct Entry {
    Timestamp ts = 0;
    MetricsSnapshot delta;
  };

  explicit SnapshotRing(std::size_t slots);

  void capture(Timestamp ts, const MetricsSnapshot& cumulative);

  /// Retained entries, oldest first.
  std::vector<Entry> entries() const;
  std::size_t size() const;
  std::size_t slots() const noexcept { return slots_; }
  std::uint64_t captures() const;  // total capture() calls (>= size())

  /// "t=<ts> <name> <value>" lines per entry; counters/histogram counts are
  /// per-window deltas, gauges are absolute.
  std::string render() const;

 private:
  static MetricsSnapshot delta(const MetricsSnapshot& prev,
                               const MetricsSnapshot& curr);

  std::size_t slots_;
  mutable std::mutex mutex_;
  std::vector<Entry> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // valid entries
  std::uint64_t captures_ = 0;
  MetricsSnapshot last_;
};

}  // namespace netalytics::common
