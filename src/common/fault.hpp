// Seeded, deterministic fault injection. A FaultPlan is a registry of named
// injection *sites* ("mq.broker.0.down", "nf.parser.throw", ...); production
// code holds a `FaultPlan*` that is null in normal operation, so every fault
// path costs one pointer compare when chaos is off. Tests arm sites with
// probability, every-Nth, or time-window triggers; all randomness comes from
// per-site `common::Rng` streams derived from the plan seed, so a given seed
// reproduces the exact same trigger sequence at every site regardless of how
// checks interleave across sites or threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace netalytics::common {

/// How an armed site decides whether a given check fires. Triggers are
/// evaluated in order: window, every-Nth, probability; the first match wins
/// (and only a reached probability trigger consumes Rng state, which keeps
/// sequences reproducible).
struct FaultSpec {
  /// Per-check Bernoulli trigger; 0 disables.
  double probability = 0.0;
  /// Fire on checks N, 2N, 3N, ... (1-based count per site); 0 disables.
  std::uint64_t every_nth = 0;
  /// Fire while window_start <= now < window_end. An empty window
  /// (window_end <= window_start) disables the trigger. Sites whose checks
  /// cannot supply a timestamp document what they pass as `now`.
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  /// Stop firing after this many fires; 0 = unlimited.
  std::uint64_t max_fires = 0;
};

struct FaultSiteStats {
  std::uint64_t checks = 0;
  std::uint64_t fires = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Arm (or re-arm, resetting counters) a site. Safe at any time.
  void arm(const std::string& site, FaultSpec spec);
  void disarm(const std::string& site);
  bool armed(std::string_view site) const;

  /// One check at injection site `site`. Unarmed sites never fire and keep
  /// no state. `now` drives window triggers only; sites with no notion of
  /// time pass 0. Thread-safe.
  bool should_fail(std::string_view site, Timestamp now = 0);

  FaultSiteStats site_stats(std::string_view site) const;
  std::uint64_t fires(std::string_view site) const { return site_stats(site).fires; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  struct Site {
    FaultSpec spec;
    Rng rng;  // seeded from plan seed + site name: sequences are per-site
    FaultSiteStats stats;
  };

  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_;
};

}  // namespace netalytics::common
