// Single-producer/single-consumer lock-free ring buffer, modelled on the
// DPDK rte_ring SP/SC fast path: power-of-two capacity, cached peer indices,
// and bulk enqueue/dequeue for batching. This is the hot-path queue between
// the monitor's collector and each parser (§5.1-5.2 of the paper).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace netalytics::common {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity - 1.
  explicit SpscRing(std::size_t min_capacity)
      : capacity_(std::bit_ceil(std::max<std::size_t>(min_capacity, 2))),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_ - 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = head + 1;
    if (next - cached_tail_ > capacity_ - 1) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (next - cached_tail_ > capacity_ - 1) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Bulk producer push; returns the number of items actually enqueued.
  std::size_t try_push_bulk(std::span<T> values) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t free_slots = capacity_ - 1 - (head - cached_tail_);
    if (free_slots < values.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free_slots = capacity_ - 1 - (head - cached_tail_);
    }
    const std::size_t n = std::min(free_slots, values.size());
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(head + i) & mask_] = std::move(values[i]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Bulk consumer pop into `out`; returns the number of items dequeued.
  std::size_t try_pop_bulk(std::span<T> out) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = cached_head_ - tail;
    if (avail < out.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = cached_head_ - tail;
    }
    const std::size_t n = std::min(avail, out.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy (exact only when both sides are quiescent).
  std::size_t size_approx() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(64) std::atomic<std::size_t> head_{0};  // written by producer
  alignas(64) std::size_t cached_tail_{0};        // producer-local
  alignas(64) std::atomic<std::size_t> tail_{0};  // written by consumer
  alignas(64) std::size_t cached_head_{0};        // consumer-local
};

}  // namespace netalytics::common
