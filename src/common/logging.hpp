// Tiny leveled logger. NetAlytics components log sparsely (placement
// decisions, rule installation, backpressure events); benches silence
// everything below `warn` so output stays parseable.
#pragma once

#include <sstream>
#include <string>

namespace netalytics::common {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global minimum level. Not thread-synchronized by design: it is set once
/// at startup before worker threads exist.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit a single line `[level] component: message` to stderr (thread-safe).
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, component, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(std::string_view component, const Args&... args) {
  detail::log_fmt(LogLevel::debug, component, args...);
}
template <typename... Args>
void log_info(std::string_view component, const Args&... args) {
  detail::log_fmt(LogLevel::info, component, args...);
}
template <typename... Args>
void log_warn(std::string_view component, const Args&... args) {
  detail::log_fmt(LogLevel::warn, component, args...);
}
template <typename... Args>
void log_error(std::string_view component, const Args&... args) {
  detail::log_fmt(LogLevel::error, component, args...);
}

}  // namespace netalytics::common
