#include "common/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace netalytics::common {

HistogramMetric::HistogramMetric(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("HistogramMetric: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("HistogramMetric: bounds not ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void HistogramMetric::observe(std::uint64_t sample) noexcept {
#ifndef NETALYTICS_NO_METRICS
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
#else
  (void)sample;
#endif
}

std::uint64_t HistogramMetric::bucket(std::size_t i) const {
  if (i > bounds_.size()) throw std::out_of_range("HistogramMetric::bucket");
  return buckets_[i].load(std::memory_order_relaxed);
}

const std::vector<std::uint64_t>& default_latency_bounds() {
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> b;
    // 1-2-5 per decade, 1us .. 100s.
    for (std::uint64_t decade = kMicrosecond; decade <= 100 * kSecond;
         decade *= 10) {
      b.push_back(decade);
      if (decade <= 10 * kSecond) {
        b.push_back(2 * decade);
        b.push_back(5 * decade);
      }
    }
    return b;
  }();
  return kBounds;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::render() const {
  // Globally sorted by name across all three kinds (each vector is already
  // name-sorted, so this is a three-way merge): the output is diff-stable —
  // the same series always renders at the same place, and two identical
  // virtual-time runs produce byte-identical text.
  std::string out;
  std::size_t ci = 0, gi = 0, hi = 0;
  const auto emit_line = [&out](const std::string& name, std::string value) {
    out += name;
    out += ' ';
    out += value;
    out += '\n';
  };
  while (ci < counters.size() || gi < gauges.size() || hi < histograms.size()) {
    static const std::string kSentinel(1, '\x7f');
    const std::string& cn = ci < counters.size() ? counters[ci].name : kSentinel;
    const std::string& gn = gi < gauges.size() ? gauges[gi].name : kSentinel;
    const std::string& hn =
        hi < histograms.size() ? histograms[hi].name : kSentinel;
    if (cn <= gn && cn <= hn) {
      emit_line(cn, std::to_string(counters[ci].value));
      ++ci;
    } else if (gn <= hn) {
      emit_line(gn, std::to_string(gauges[gi].value));
      ++gi;
    } else {
      const auto& h = histograms[hi];
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        cumulative += h.buckets[i];
        out += h.name;
        out += "{le=\"";
        out += i < h.bounds.size() ? std::to_string(h.bounds[i]) : "+Inf";
        out += "\"} ";
        out += std::to_string(cumulative);
        out += '\n';
      }
      emit_line(h.name + "_sum", std::to_string(h.sum));
      emit_line(h.name + "_count", std::to_string(h.count));
      ++hi;
    }
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(
    const std::string& name, const std::vector<std::uint64_t>& bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot(std::string_view prefix) const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    if (!name.starts_with(prefix)) continue;
    snap.counters.push_back({name, c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    if (!name.starts_with(prefix)) continue;
    snap.gauges.push_back({name, g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    if (!name.starts_with(prefix)) continue;
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(h->bucket(i));
    }
    s.count = h->count();
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;  // std::map iteration is already name-sorted
}

std::string MetricsRegistry::render_text(std::string_view prefix) const {
  return snapshot(prefix).render();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string_view StageTracer::stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::emit: return "emit";
    case Stage::produce: return "produce";
    case Stage::consume: return "consume";
    case Stage::e2e: return "e2e";
  }
  return "unknown";
}

StageTracer::StageTracer(MetricsRegistry& registry, const std::string& prefix) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stages_[i] = &registry.histogram(
        prefix + ".stage." + std::string(stage_name(static_cast<Stage>(i))));
  }
  dropped_ = &registry.counter(prefix + ".stage.dropped_stamps");
}

void StageTracer::stamp(Stage s, Timestamp event_time,
                        Timestamp origin_time) noexcept {
  if (origin_time == 0 || event_time < origin_time) {
    dropped_->inc();
    return;
  }
  stages_[static_cast<std::size_t>(s)]->observe(event_time - origin_time);
}

}  // namespace netalytics::common
