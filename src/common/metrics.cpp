#include "common/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace netalytics::common {

HistogramMetric::HistogramMetric(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("HistogramMetric: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("HistogramMetric: bounds not ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void HistogramMetric::observe(std::uint64_t sample) noexcept {
#ifndef NETALYTICS_NO_METRICS
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
#else
  (void)sample;
#endif
}

std::uint64_t HistogramMetric::bucket(std::size_t i) const {
  if (i > bounds_.size()) throw std::out_of_range("HistogramMetric::bucket");
  return buckets_[i].load(std::memory_order_relaxed);
}

const std::vector<std::uint64_t>& default_latency_bounds() {
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> b;
    // 1-2-5 per decade, 1us .. 100s.
    for (std::uint64_t decade = kMicrosecond; decade <= 100 * kSecond;
         decade *= 10) {
      b.push_back(decade);
      if (decade <= 10 * kSecond) {
        b.push_back(2 * decade);
        b.push_back(5 * decade);
      }
    }
    return b;
  }();
  return kBounds;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::render() const {
  std::string out;
  for (const auto& c : counters) {
    out += c.name;
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const auto& g : gauges) {
    out += g.name;
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  for (const auto& h : histograms) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out += h.name;
      out += "{le=\"";
      out += i < h.bounds.size() ? std::to_string(h.bounds[i]) : "+inf";
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += h.name;
    out += "_sum ";
    out += std::to_string(h.sum);
    out += '\n';
    out += h.name;
    out += "_count ";
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(
    const std::string& name, const std::vector<std::uint64_t>& bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot(std::string_view prefix) const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    if (!name.starts_with(prefix)) continue;
    snap.counters.push_back({name, c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    if (!name.starts_with(prefix)) continue;
    snap.gauges.push_back({name, g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    if (!name.starts_with(prefix)) continue;
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(h->bucket(i));
    }
    s.count = h->count();
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;  // std::map iteration is already name-sorted
}

std::string MetricsRegistry::render_text(std::string_view prefix) const {
  return snapshot(prefix).render();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string_view StageTracer::stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::emit: return "emit";
    case Stage::produce: return "produce";
    case Stage::consume: return "consume";
    case Stage::e2e: return "e2e";
  }
  return "unknown";
}

StageTracer::StageTracer(MetricsRegistry& registry, const std::string& prefix) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stages_[i] = &registry.histogram(
        prefix + ".stage." + std::string(stage_name(static_cast<Stage>(i))));
  }
  dropped_ = &registry.counter(prefix + ".stage.dropped_stamps");
}

void StageTracer::stamp(Stage s, Timestamp event_time,
                        Timestamp origin_time) noexcept {
  if (origin_time == 0 || event_time < origin_time) {
    dropped_->inc();
    return;
  }
  stages_[static_cast<std::size_t>(s)]->observe(event_time - origin_time);
}

}  // namespace netalytics::common
