#include "common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace netalytics::common {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_ci(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out += s;
  return out;
}

}  // namespace netalytics::common
