// Time sources. NetAlytics runs in two modes: live (wall clock, used by the
// threaded monitor and stream cluster) and simulated (virtual nanoseconds,
// used by the use-case emulations and the placement simulator so results
// are deterministic).
#pragma once

#include <chrono>
#include <cstdint>

namespace netalytics::common {

/// Nanoseconds since an arbitrary epoch.
using Timestamp = std::uint64_t;
/// Nanosecond duration.
using Duration = std::uint64_t;

constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_millis(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
constexpr Duration from_millis(double ms) noexcept {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Abstract clock so components can run against wall time or virtual time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp now() const noexcept = 0;
};

/// Monotonic wall clock.
class WallClock final : public Clock {
 public:
  Timestamp now() const noexcept override {
    return static_cast<Timestamp>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Manually-advanced clock for deterministic simulation.
class SimClock final : public Clock {
 public:
  Timestamp now() const noexcept override { return now_; }
  void advance(Duration d) noexcept { now_ += d; }
  void set(Timestamp t) noexcept { now_ = t; }

 private:
  Timestamp now_ = 0;
};

}  // namespace netalytics::common
