// Self-observability (DRST-style non-intrusive telemetry for softwarized
// pipelines): a process-wide registry of named counters, gauges and
// fixed-bucket histograms, plus a per-query StageTracer that turns
// virtual-time stamps taken at the pipeline's hand-off points (packet
// ingress, parser emit, mq produce/consume, spout poll, sink emit) into
// stage-by-stage and end-to-end latency histograms.
//
// Hot-path contract: an increment is a single relaxed atomic add (a
// histogram observe is three), so instrumented code stays within noise of
// uninstrumented code. Building with -DNETALYTICS_NO_METRICS compiles every
// mutation down to a no-op while keeping the API intact (the
// bench_metrics_overhead harness compares the two builds).
//
// Determinism: nothing in here reads a clock. All latencies are computed by
// callers from the virtual timestamps already flowing through the pipeline,
// so two identical virtual-time runs produce byte-identical snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::common {

/// Monotonically increasing value. inc() is one relaxed add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef NETALYTICS_NO_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value (queue depth, pool occupancy, sample rate in ppm).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef NETALYTICS_NO_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) noexcept {
#ifndef NETALYTICS_NO_METRICS
    value_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over inclusive upper bounds (Prometheus "le"
/// semantics): a sample lands in the first bucket whose bound >= sample;
/// anything above the last bound lands in the implicit +inf bucket.
/// Distinct from common::Histogram (stats.hpp), which is a single-threaded
/// analysis container — this one is a concurrent metric.
class HistogramMetric {
 public:
  /// `upper_bounds` must be sorted ascending and non-empty.
  explicit HistogramMetric(std::vector<std::uint64_t> upper_bounds);

  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void observe(std::uint64_t sample) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket i; i == bounds().size() is +inf.
  std::uint64_t bucket(std::size_t i) const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Default latency bounds in nanoseconds: 1us .. 100s, roughly 1-2-5 per
/// decade — wide enough for both per-packet costs and broker residency.
const std::vector<std::uint64_t>& default_latency_bounds();

/// Point-in-time copy of a registry, sorted by name within each kind.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterSample&) const = default;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
    bool operator==(const GaugeSample&) const = default;
  };
  struct HistogramSample {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size()+1, non-cumulative
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    bool operator==(const HistogramSample&) const = default;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// First counter matching `name` exactly; 0 if absent.
  std::uint64_t counter_value(std::string_view name) const;
  /// First gauge matching `name` exactly; 0 if absent.
  std::int64_t gauge_value(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;

  /// Plain-text, Prometheus-style rendering with all series merged in
  /// sorted name order (diff-stable): "name value" lines, histogram buckets
  /// cumulative as name{le="<ns>"} ending in a +Inf bucket, plus _sum and
  /// _count.
  std::string render() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Named metric registry. get-or-create accessors hand out references that
/// stay valid for the registry's lifetime (metrics are never removed), so
/// hot paths resolve their metric once and keep the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is only consulted on first creation of `name`.
  HistogramMetric& histogram(const std::string& name,
                             const std::vector<std::uint64_t>& bounds =
                                 default_latency_bounds());

  /// Copy out everything whose name starts with `prefix` ("" = all).
  MetricsSnapshot snapshot(std::string_view prefix = {}) const;
  std::string render_text(std::string_view prefix = {}) const;

  /// Process-wide fallback registry for components used standalone (outside
  /// an engine, which owns its own registry).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Per-query pipeline latency tracer. Each stage histogram is fed at a
/// hand-off point with (event_time, origin_time) pairs already flowing
/// through the pipeline in virtual time:
///   emit     parser record -> batch ship   (batching delay in the monitor)
///   produce  batch ship -> broker append   (retry/backoff + persistence)
///   consume  broker append -> spout poll   (aggregation-layer residency)
///   e2e      packet ingress -> sink emit   (whole pipeline)
/// The first three chain head-to-tail, so their sums reconcile with e2e to
/// within one engine tick (the sink runs in the same pump as the poll).
class StageTracer {
 public:
  enum class Stage { emit, produce, consume, e2e };
  static constexpr std::size_t kStageCount = 4;
  static std::string_view stage_name(Stage s) noexcept;

  StageTracer(MetricsRegistry& registry, const std::string& prefix);

  /// Record event_time - origin_time into the stage histogram. Stamps with
  /// an unknown origin (0) or going backwards are dropped (counted).
  void stamp(Stage s, Timestamp event_time, Timestamp origin_time) noexcept;

  HistogramMetric& histogram(Stage s) noexcept {
    return *stages_[static_cast<std::size_t>(s)];
  }
  const HistogramMetric& histogram(Stage s) const noexcept {
    return *stages_[static_cast<std::size_t>(s)];
  }
  std::uint64_t dropped_stamps() const noexcept { return dropped_->value(); }

 private:
  HistogramMetric* stages_[kStageCount];
  Counter* dropped_;
};

}  // namespace netalytics::common
