// Byte-level serialization helpers. Network headers use big-endian
// (network order) accessors; NetAlytics record framing uses little-endian
// for in-host efficiency. All access is bounds-checked at the API level and
// byte-wise (no type punning), per the type-safety profile.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace netalytics::common {

// ---- Big-endian (network order) raw accessors -----------------------------

inline std::uint8_t load_u8(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint8_t>(buf[off]);
}

inline std::uint16_t load_be16(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(buf[off]) << 8) |
                                    static_cast<std::uint16_t>(buf[off + 1]));
}

inline std::uint32_t load_be32(std::span<const std::byte> buf, std::size_t off) {
  return (static_cast<std::uint32_t>(buf[off]) << 24) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 8) |
         static_cast<std::uint32_t>(buf[off + 3]);
}

inline void store_u8(std::span<std::byte> buf, std::size_t off, std::uint8_t v) {
  buf[off] = static_cast<std::byte>(v);
}

inline void store_be16(std::span<std::byte> buf, std::size_t off, std::uint16_t v) {
  buf[off] = static_cast<std::byte>(v >> 8);
  buf[off + 1] = static_cast<std::byte>(v & 0xff);
}

inline void store_be32(std::span<std::byte> buf, std::size_t off, std::uint32_t v) {
  buf[off] = static_cast<std::byte>(v >> 24);
  buf[off + 1] = static_cast<std::byte>((v >> 16) & 0xff);
  buf[off + 2] = static_cast<std::byte>((v >> 8) & 0xff);
  buf[off + 3] = static_cast<std::byte>(v & 0xff);
}

// ---- Little-endian raw accessors (frame headers) ---------------------------
// ByteWriter/ByteReader below stream little-endian fields; these standalone
// loads let incremental parsers (the federation FrameParser, src/fed/wire.hpp)
// peek a length prefix out of a partially-buffered stream without committing
// a reader position.

inline std::uint16_t load_le16(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(buf[off]) |
                                    (static_cast<std::uint16_t>(buf[off + 1]) << 8));
}

inline std::uint32_t load_le32(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint32_t>(buf[off]) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 8) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 3]) << 24);
}

inline std::uint64_t load_le64(std::span<const std::byte> buf, std::size_t off) {
  return static_cast<std::uint64_t>(load_le32(buf, off)) |
         (static_cast<std::uint64_t>(load_le32(buf, off + 4)) << 32);
}

// ---- Record framing (little-endian, length-prefixed) -----------------------

/// Append-only writer over an owned byte vector.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::byte> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  std::span<const std::byte> view() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept { buf_.clear(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a borrowed byte span. Throws on underflow —
/// malformed records are a programming error in this in-process system.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) noexcept : buf_(buf) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { std::uint16_t v; copy(&v, 2); return v; }
  std::uint32_t u32() { std::uint32_t v; copy(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v; copy(&v, 8); return v; }
  double f64() { double v; copy(&v, 8); return v; }
  std::string str() {
    const auto n = u32();
    const auto s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  std::vector<std::byte> bytes() {
    const auto n = u32();
    const auto s = take(n);
    return {s.begin(), s.end()};
  }

  std::size_t remaining() const noexcept { return buf_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> take(std::size_t n) {
    if (remaining() < n) throw std::out_of_range("ByteReader: underflow");
    auto s = buf_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void copy(void* out, std::size_t n) {
    auto s = take(n);
    std::memcpy(out, s.data(), n);
  }

  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

inline std::span<const std::byte> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

inline std::string_view as_string_view(std::span<const std::byte> b) noexcept {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace netalytics::common
