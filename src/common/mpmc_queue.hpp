// Bounded multi-producer/multi-consumer queue with blocking and
// non-blocking operations. Used off the packet hot path: stream-engine task
// inboxes, broker hand-off, control messages. Mutex-based by design — the
// lock-free structure is reserved for the SPSC packet rings where it is an
// evaluated claim (see bench_ablation_rings).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace netalytics::common {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that leaves `value` intact on failure, so callers
  /// can retry (or reroute) the same item. try_push() takes by value and
  /// destroys the item either way; a retry loop needs this variant.
  bool try_push_keep(T& value) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Pop with timeout; empty optional on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// After close(), pushes fail and pops drain the remaining items.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace netalytics::common
