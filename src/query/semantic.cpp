#include "query/semantic.hpp"

#include <algorithm>
#include <set>

#include "nf/parser.hpp"
#include "query/parser.hpp"
#include "stream/processors.hpp"

namespace netalytics::query {

namespace {

common::Error err(std::string message) {
  return common::Error{"semantic", std::move(message)};
}

}  // namespace

common::Expected<ValidatedQuery> validate(Query query) {
  if (query.parsers.empty()) return err("PARSE clause names no parsers");

  const auto& registry = nf::ParserRegistry::instance();
  std::set<std::string> seen;
  std::vector<std::string> topics;
  for (const auto& name : query.parsers) {
    if (!registry.contains(name)) {
      return err("unknown parser '" + name + "'");
    }
    if (seen.insert(name).second) topics.push_back(name);
  }

  if (query.from.empty() && query.to.empty()) {
    return err("query requires a FROM and/or TO clause");
  }
  // "*" is only meaningful alongside a concrete peer: monitor placement
  // needs at least one resolvable endpoint (§3.4).
  const bool all_any =
      std::all_of(query.from.begin(), query.from.end(),
                  [](const Address& a) { return a.kind == Address::Kind::any; }) &&
      std::all_of(query.to.begin(), query.to.end(),
                  [](const Address& a) { return a.kind == Address::Kind::any; });
  if (all_any) {
    return err("at least one FROM/TO address must name a host, ip or subnet "
               "(network-wide monitoring requires manual placement)");
  }

  if (query.processors.empty()) return err("PROCESS clause names no processors");
  for (const auto& p : query.processors) {
    if (!stream::is_known_processor(p.name)) {
      return err("unknown processor '" + p.name + "'");
    }
    if ((p.name == "diff-group" || p.name == "diff-group-avg") &&
        std::find(topics.begin(), topics.end(), "tcp_conn_time") == topics.end()) {
      return err("processor '" + p.name + "' requires the tcp_conn_time parser");
    }
    if (p.name == "diff-group" || p.name == "diff-group-avg") {
      const auto group = p.args.find("group");
      if (group != p.args.end() && group->second == "get" &&
          std::find(topics.begin(), topics.end(), "http_get") == topics.end()) {
        return err("diff-group with group=get requires the http_get parser");
      }
    }
  }

  if (query.sample.mode == SampleSpec::Mode::fixed &&
      (query.sample.rate < 0.0 || query.sample.rate > 1.0)) {
    return err("sample rate out of range");
  }

  ValidatedQuery out;
  out.query = std::move(query);
  out.topics = std::move(topics);
  return out;
}

common::Expected<ValidatedQuery> parse_and_validate(std::string_view input) {
  auto parsed = parse_query(input);
  if (!parsed) return parsed.error();
  return validate(std::move(*parsed));
}

}  // namespace netalytics::query
