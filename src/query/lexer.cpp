#include "query/lexer.hpp"

#include <cctype>

#include "common/string_util.hpp"

namespace netalytics::query {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-' || c == '/';
}

TokenKind keyword_kind(std::string_view word) {
  const std::string lower = common::to_lower(word);
  if (lower == "parse") return TokenKind::kw_parse;
  if (lower == "from") return TokenKind::kw_from;
  if (lower == "to") return TokenKind::kw_to;
  if (lower == "limit") return TokenKind::kw_limit;
  if (lower == "sample") return TokenKind::kw_sample;
  if (lower == "process") return TokenKind::kw_process;
  return TokenKind::word;
}

}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kw_parse: return "PARSE";
    case TokenKind::kw_from: return "FROM";
    case TokenKind::kw_to: return "TO";
    case TokenKind::kw_limit: return "LIMIT";
    case TokenKind::kw_sample: return "SAMPLE";
    case TokenKind::kw_process: return "PROCESS";
    case TokenKind::word: return "word";
    case TokenKind::star: return "'*'";
    case TokenKind::comma: return "','";
    case TokenKind::colon: return "':'";
    case TokenKind::lparen: return "'('";
    case TokenKind::rparen: return "')'";
    case TokenKind::equals: return "'='";
    case TokenKind::end: return "end of query";
  }
  return "?";
}

common::Expected<std::vector<Token>> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    switch (c) {
      case '*': t.kind = TokenKind::star; t.text = "*"; ++i; break;
      case ',': t.kind = TokenKind::comma; t.text = ","; ++i; break;
      case ':': t.kind = TokenKind::colon; t.text = ":"; ++i; break;
      case '(': t.kind = TokenKind::lparen; t.text = "("; ++i; break;
      case ')': t.kind = TokenKind::rparen; t.text = ")"; ++i; break;
      case '=': t.kind = TokenKind::equals; t.text = "="; ++i; break;
      default: {
        if (!is_word_char(c)) {
          return common::Error{
              "lex", "unexpected character '" + std::string(1, c) + "' at offset " +
                         std::to_string(i)};
        }
        std::size_t start = i;
        while (i < input.size() && is_word_char(input[i])) ++i;
        t.text = std::string(input.substr(start, i - start));
        t.kind = keyword_kind(t.text);
        break;
      }
    }
    tokens.push_back(std::move(t));
  }
  Token eof;
  eof.kind = TokenKind::end;
  eof.offset = input.size();
  tokens.push_back(eof);
  return tokens;
}

}  // namespace netalytics::query
