#include "query/parser.hpp"

#include "common/string_util.hpp"
#include "query/lexer.hpp"

namespace netalytics::query {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  common::Expected<Query> run() {
    Query q;

    if (auto e = expect(TokenKind::kw_parse)) return *e;
    if (auto e = parse_name_list(q.parsers)) return *e;

    if (peek().kind == TokenKind::kw_from) {
      advance();
      if (auto e = parse_address_list(q.from)) return *e;
    }
    if (peek().kind == TokenKind::kw_to) {
      advance();
      if (auto e = parse_address_list(q.to)) return *e;
    }
    if (q.from.empty() && q.to.empty()) {
      return err("query requires a FROM and/or TO clause");
    }

    if (peek().kind == TokenKind::kw_limit) {
      advance();
      if (auto e = parse_limit(q.limit)) return *e;
    }
    if (peek().kind == TokenKind::kw_sample) {
      advance();
      if (auto e = parse_sample(q.sample)) return *e;
    }

    if (auto e = expect(TokenKind::kw_process)) return *e;
    if (auto e = parse_processor_list(q.processors)) return *e;

    if (peek().kind != TokenKind::end) {
      return err("unexpected trailing input '" + peek().text + "'");
    }
    return q;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  common::Error err(std::string message) const {
    return common::Error{"parse", message + " (at offset " +
                                      std::to_string(peek().offset) + ")"};
  }

  /// Returns an error if the next token is not `kind`; consumes it if it is.
  std::optional<common::Error> expect(TokenKind kind) {
    if (peek().kind != kind) {
      return err(std::string("expected ") + token_kind_name(kind) + ", found '" +
                 (peek().kind == TokenKind::end ? "<end>" : peek().text) + "'");
    }
    advance();
    return std::nullopt;
  }

  std::optional<common::Error> parse_name_list(std::vector<std::string>& out) {
    // Optional parentheses around the list (paper §7.2 examples).
    const bool parenthesized = peek().kind == TokenKind::lparen;
    if (parenthesized) advance();
    while (true) {
      if (peek().kind != TokenKind::word) return err("expected a parser name");
      out.push_back(advance().text);
      if (peek().kind != TokenKind::comma) break;
      advance();
    }
    if (parenthesized) {
      if (auto e = expect(TokenKind::rparen)) return e;
    }
    return std::nullopt;
  }

  std::optional<common::Error> parse_address(Address& out) {
    if (peek().kind == TokenKind::star) {
      advance();
      out.kind = Address::Kind::any;
      out.text = "*";
      // "*" may not take a port.
      return std::nullopt;
    }
    if (peek().kind != TokenKind::word) {
      return err("expected an address (ip, subnet, hostname or *)");
    }
    out.text = advance().text;
    if (const auto prefix = net::parse_ipv4_prefix(out.text)) {
      out.prefix = *prefix;
      out.kind = prefix->length == 32 ? Address::Kind::ip : Address::Kind::subnet;
    } else {
      out.kind = Address::Kind::hostname;
    }

    if (peek().kind == TokenKind::colon) {
      advance();
      if (peek().kind == TokenKind::star) {
        advance();  // explicit all-ports
      } else if (peek().kind == TokenKind::word) {
        std::uint64_t port = 0;
        if (!common::parse_u64(peek().text, port) || port > 65535) {
          return err("invalid port '" + peek().text + "'");
        }
        out.port = static_cast<net::Port>(port);
        advance();
      } else {
        return err("expected a port number or * after ':'");
      }
    }
    return std::nullopt;
  }

  std::optional<common::Error> parse_address_list(std::vector<Address>& out) {
    while (true) {
      Address a;
      if (auto e = parse_address(a)) return e;
      out.push_back(std::move(a));
      if (peek().kind != TokenKind::comma) break;
      advance();
    }
    return std::nullopt;
  }

  std::optional<common::Error> parse_limit(LimitSpec& out) {
    if (peek().kind != TokenKind::word) {
      return err("expected a limit like 90s or 5000p");
    }
    const std::string text = advance().text;
    if (text.empty()) return err("empty LIMIT value");
    const char suffix = text.back();
    std::uint64_t value = 0;
    const std::string digits = text.substr(0, text.size() - 1);
    if (suffix == 's' || suffix == 'm') {
      if (!common::parse_u64(digits, value)) {
        return err("invalid duration '" + text + "'");
      }
      out.kind = LimitSpec::Kind::duration;
      out.duration = value * (suffix == 'm' ? 60 * common::kSecond : common::kSecond);
    } else if (suffix == 'p') {
      if (!common::parse_u64(digits, value)) {
        return err("invalid packet count '" + text + "'");
      }
      out.kind = LimitSpec::Kind::packets;
      out.packets = value;
    } else {
      return err("LIMIT must end in 's', 'm' (time) or 'p' (packets): '" + text +
                 "'");
    }
    return std::nullopt;
  }

  std::optional<common::Error> parse_sample(SampleSpec& out) {
    if (peek().kind == TokenKind::star) {
      advance();
      out.mode = SampleSpec::Mode::disabled;
      return std::nullopt;
    }
    if (peek().kind != TokenKind::word) {
      return err("expected a sample rate, 'auto' or '*'");
    }
    const std::string text = advance().text;
    if (common::to_lower(text) == "auto") {
      out.mode = SampleSpec::Mode::automatic;
      return std::nullopt;
    }
    double rate = 0;
    if (!common::parse_double(text, rate) || rate < 0.0 || rate > 1.0) {
      return err("sample rate must be in [0,1], 'auto' or '*': '" + text + "'");
    }
    out.mode = SampleSpec::Mode::fixed;
    out.rate = rate;
    return std::nullopt;
  }

  std::optional<common::Error> parse_processor(ProcessorCall& out) {
    if (auto e = expect(TokenKind::lparen)) return e;
    if (peek().kind != TokenKind::word) return err("expected a processor name");
    out.name = advance().text;
    if (peek().kind == TokenKind::colon) {
      advance();
      while (true) {
        if (peek().kind != TokenKind::word) return err("expected an argument name");
        const std::string key = advance().text;
        if (auto e = expect(TokenKind::equals)) return e;
        std::string value;
        if (peek().kind == TokenKind::word) {
          value = advance().text;
        } else if (peek().kind == TokenKind::star) {
          advance();
          value = "*";
        } else {
          return err("expected a value for argument '" + key + "'");
        }
        out.args[key] = value;
        if (peek().kind != TokenKind::comma) break;
        advance();
      }
    }
    return expect(TokenKind::rparen);
  }

  std::optional<common::Error> parse_processor_list(std::vector<ProcessorCall>& out) {
    while (true) {
      ProcessorCall p;
      if (auto e = parse_processor(p)) return e;
      out.push_back(std::move(p));
      if (peek().kind != TokenKind::comma) break;
      advance();
    }
    return std::nullopt;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

common::Expected<Query> parse_query(std::string_view input) {
  auto tokens = tokenize(input);
  if (!tokens) return tokens.error();
  return Parser(std::move(*tokens)).run();
}

}  // namespace netalytics::query
