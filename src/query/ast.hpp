// Abstract syntax of the NetAlytics query language (Table 3):
//   PARSE parser-list FROM address-list TO address-list
//   LIMIT limit-rate SAMPLE sample-rate PROCESS processor-list
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/ip.hpp"

namespace netalytics::query {

/// One endpoint in a FROM/TO list: ip:port, subnet:port, hostname:port or
/// "*". A missing or "*" port means all ports of the host.
struct Address {
  enum class Kind { any, ip, subnet, hostname };

  Kind kind = Kind::any;
  std::string text;  // original spelling (hostname or address literal)
  std::optional<net::Ipv4Prefix> prefix;  // ip/subnet kinds
  std::optional<net::Port> port;

  bool operator==(const Address&) const = default;
};

/// LIMIT: how long the monitors and processors run, by time or packets.
struct LimitSpec {
  enum class Kind { none, duration, packets };
  Kind kind = Kind::none;
  common::Duration duration = 0;
  std::uint64_t packets = 0;

  bool operator==(const LimitSpec&) const = default;
};

/// SAMPLE: a fixed per-flow rate, "auto" (feedback-driven, §4.2) or "*"
/// (sampling disabled).
struct SampleSpec {
  enum class Mode { disabled, fixed, automatic };
  Mode mode = Mode::disabled;
  double rate = 1.0;  // for Mode::fixed

  bool operator==(const SampleSpec&) const = default;
};

/// One processor in the PROCESS clause: (name: arg=value, ...).
struct ProcessorCall {
  std::string name;
  std::map<std::string, std::string> args;

  bool operator==(const ProcessorCall&) const = default;
};

struct Query {
  std::vector<std::string> parsers;
  std::vector<Address> from;
  std::vector<Address> to;
  LimitSpec limit;
  SampleSpec sample;
  std::vector<ProcessorCall> processors;

  bool operator==(const Query&) const = default;
};

}  // namespace netalytics::query
