// Tokenizer for the query language. Keywords are case-insensitive; words
// cover identifiers, numbers, durations ("90s"), packet counts ("5000p"),
// rates ("0.1"), hostnames and dotted/prefixed addresses.
#pragma once

#include <string>
#include <vector>

#include "common/expected.hpp"

namespace netalytics::query {

enum class TokenKind {
  kw_parse,
  kw_from,
  kw_to,
  kw_limit,
  kw_sample,
  kw_process,
  word,    // identifiers, numbers, addresses, durations
  star,    // *
  comma,   // ,
  colon,   // :
  lparen,  // (
  rparen,  // )
  equals,  // =
  end,
};

struct Token {
  TokenKind kind = TokenKind::end;
  std::string text;
  std::size_t offset = 0;  // byte offset in the input, for error messages

  bool operator==(const Token&) const = default;
};

const char* token_kind_name(TokenKind kind);

/// Tokenize; fails on characters outside the language.
common::Expected<std::vector<Token>> tokenize(std::string_view input);

}  // namespace netalytics::query
