// Semantic validation: parser names against the parser registry, processor
// names against the stream library, and structural rules the grammar can't
// express (duplicate parsers, processor/parser compatibility, sampling
// bounds).
#pragma once

#include "common/expected.hpp"
#include "query/ast.hpp"

namespace netalytics::query {

struct ValidatedQuery {
  Query query;
  /// Parser topics in PARSE order (equal to query.parsers, deduplicated).
  std::vector<std::string> topics;
};

/// Validate a parsed query. Registry-backed checks consult
/// nf::ParserRegistry and stream::is_known_processor; call
/// parsers::register_builtin_parsers() first.
common::Expected<ValidatedQuery> validate(Query query);

/// Convenience: parse + validate in one step.
common::Expected<ValidatedQuery> parse_and_validate(std::string_view input);

}  // namespace netalytics::query
