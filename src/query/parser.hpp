// Recursive-descent parser for the Table 3 grammar. Produces an AST or a
// recoverable error with the offending position — queries are user input.
#pragma once

#include "common/expected.hpp"
#include "query/ast.hpp"

namespace netalytics::query {

/// Parse one query. The grammar (Table 3):
///   PARSE parser[, parser]...
///   [FROM address[, address]...] [TO address[, address]...]
///   [LIMIT <90s|5000p>] [SAMPLE <0.1|auto|*>]
///   PROCESS (name: arg=value[, arg=value]...)[, (name: ...)]...
/// At least one of FROM/TO is required (§3.4). Parser lists may be
/// parenthesized, matching the paper's examples.
common::Expected<Query> parse_query(std::string_view input);

}  // namespace netalytics::query
