// Unified observability export layer (see docs/OBSERVABILITY.md): the
// bridge between the engine's internal signals — TraceRecorder spans,
// MetricsRegistry snapshots, tsdb range results, the executor stage
// profiler — and standard external formats a human or a scraper can read.
// This header is the module's front door: the format registry (what the
// code can serialize, greppable by tests/check_docs.sh), the shared
// ExportOptions knob block EngineConfig embeds, and the file sink.
//
// Determinism contract: every exporter in this module is a pure function
// of already-deterministic inputs (content-sorted spans, name-sorted
// snapshots), so exported bytes are identical across repeated runs and
// across stepped-mode worker counts — the property tests/obs/ locks in.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace netalytics::obs {

/// One output format this module can serialize. `name` is the stable
/// machine identifier (docs must mention every registered name;
/// tests/check_docs.sh check 5 enforces it).
struct ExporterFormat {
  std::string_view name;
  std::string_view extension;
  std::string_view description;
};

/// Every format registered by the export layer, in pipeline order
/// (traces, metrics, profile).
const std::vector<ExporterFormat>& exporter_formats();

/// Lookup by stable name; nullptr when unknown.
const ExporterFormat* find_format(std::string_view name) noexcept;

/// Export knobs embedded in core::EngineConfig as `obs_export` and
/// validated there alongside the other config fields.
struct ExportOptions {
  /// Prefix prepended to every Prometheus metric family name. Must match
  /// the Prometheus metric-name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*).
  std::string metric_prefix = "netalytics_";
  /// Cap on spans serialized into one chrome://tracing export; 0 = all.
  /// Truncation keeps the content-sorted order deterministic and is
  /// reported in the export's summary event.
  std::size_t max_spans = 0;
};

/// Largest accepted `ExportOptions::max_spans` (16M spans ~ 2-3 GB of
/// JSON — anything above is a config mistake, not a real export).
inline constexpr std::size_t kMaxExportSpans = std::size_t{1} << 24;

/// True when `prefix` is a valid Prometheus metric-name prefix.
bool valid_metric_prefix(std::string_view prefix) noexcept;

/// File sink for any exporter's output. Overwrites; parent directory must
/// exist. Errors are recoverable (code "obs").
common::Expected<void> write_file(const std::string& path,
                                  std::string_view content);

}  // namespace netalytics::obs
