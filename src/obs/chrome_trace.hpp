// chrome://tracing exporter: turns TraceRecorder spans into the Trace
// Event Format event-array JSON that chrome://tracing and Perfetto load
// directly (docs/OBSERVABILITY.md has the walkthrough). Layout: one
// chrome "process" per query (pid = query id), one "thread" lane per
// pipeline stage (tid = TraceStage index, sorted in pipeline order), one
// complete ("X") event per span with args carrying the trace id, plus
// counter ("C") events for the DropLedger's per-cause totals and a
// closing instant event summarizing the export (span counts, truncation,
// recorder slab drops).
//
// Deterministic: spans arrive content-sorted from TraceRecorder::collect()
// and are serialized in that order with integer-only µs.ns formatting, so
// the JSON is byte-identical across runs and worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/trace.hpp"

namespace netalytics::obs {

struct ChromeTraceOptions {
  /// chrome "process id" for every event; the engine passes the query id.
  std::uint64_t pid = 1;
  /// chrome "process name" metadata (shown in the Perfetto track header).
  std::string process_name = "netalytics";
  /// Serialize at most this many spans (0 = all). Truncation keeps the
  /// content-sorted prefix and reports the cut in the summary event.
  std::size_t max_spans = 0;
  /// Emit one counter ("C") event per nonzero DropLedger cause.
  bool drop_counters = true;
};

class ChromeTraceExporter {
 public:
  ChromeTraceExporter() = default;
  explicit ChromeTraceExporter(ChromeTraceOptions options)
      : options_(std::move(options)) {}

  const ChromeTraceOptions& options() const noexcept { return options_; }

  /// Serialize pre-collected spans. `ledger` (optional) contributes the
  /// drop-cause counter events, `now` timestamps them, and
  /// `dropped_spans` (recorder slab overflow) lands in the summary.
  std::string export_json(const std::vector<common::TraceSpan>& spans,
                          const common::DropLedger* ledger = nullptr,
                          common::Timestamp now = 0,
                          std::uint64_t dropped_spans = 0) const;

  /// Convenience: collect() + export in one call.
  std::string export_json(const common::TraceRecorder& recorder,
                          const common::DropLedger* ledger = nullptr,
                          common::Timestamp now = 0) const;

 private:
  ChromeTraceOptions options_{};
};

}  // namespace netalytics::obs
