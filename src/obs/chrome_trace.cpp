#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace netalytics::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual-time ns rendered as a chrome-trace µs JSON number with the ns
/// fraction preserved ("12.345"). Integer math only: deterministic.
void append_us(std::string& out, common::Timestamp ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_hex_id(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  out += buf;
}

void event_head(std::string& out, bool& first, char ph, std::uint64_t pid,
                unsigned tid, std::string_view name) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid);
  out += ",\"name\":\"";
  append_escaped(out, name);
  out += '"';
}

}  // namespace

std::string ChromeTraceExporter::export_json(
    const std::vector<common::TraceSpan>& spans,
    const common::DropLedger* ledger, common::Timestamp now,
    std::uint64_t dropped_spans) const {
  const std::uint64_t pid = options_.pid;
  std::string out;
  out.reserve(256 + spans.size() * 128);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  event_head(out, first, 'M', pid, 0, "process_name");
  out += ",\"args\":{\"name\":\"";
  append_escaped(out, options_.process_name);
  out += "\"}}";

  // One lane per pipeline stage, sorted top-to-bottom in pipeline order.
  for (std::size_t i = 0; i < common::kTraceStageCount; ++i) {
    const auto stage = static_cast<common::TraceStage>(i);
    event_head(out, first, 'M', pid, static_cast<unsigned>(i),
               "thread_name");
    out += ",\"args\":{\"name\":\"stage:";
    append_escaped(out, common::trace_stage_name(stage));
    out += "\"}}";
    event_head(out, first, 'M', pid, static_cast<unsigned>(i),
               "thread_sort_index");
    out += ",\"args\":{\"sort_index\":";
    append_u64(out, i);
    out += "}}";
  }

  const std::size_t cap =
      options_.max_spans == 0 ? spans.size()
                              : std::min(options_.max_spans, spans.size());
  for (std::size_t i = 0; i < cap; ++i) {
    const auto& span = spans[i];
    const auto tid = static_cast<unsigned>(span.stage);
    event_head(out, first, 'X', pid, tid,
               common::trace_stage_name(span.stage));
    out += ",\"cat\":\"span\",\"ts\":";
    append_us(out, span.start);
    out += ",\"dur\":";
    append_us(out, span.end >= span.start ? span.end - span.start : 0);
    out += ",\"args\":{\"trace\":\"";
    append_hex_id(out, span.trace);
    out += "\"}}";
  }

  if (options_.drop_counters && ledger != nullptr) {
    for (std::size_t i = 0; i < common::kDropCauseCount; ++i) {
      const auto cause = static_cast<common::DropCause>(i);
      const std::uint64_t n = ledger->value(cause);
      if (n == 0) continue;
      std::string name = "drop:";
      name += common::drop_cause_name(cause);
      event_head(out, first, 'C', pid, 0, name);
      out += ",\"ts\":";
      append_us(out, now);
      out += ",\"args\":{\"count\":";
      append_u64(out, n);
      out += "}}";
    }
  }

  event_head(out, first, 'I', pid, 0, "export_summary");
  out += ",\"s\":\"p\",\"ts\":";
  append_us(out, now);
  out += ",\"args\":{\"spans\":";
  append_u64(out, spans.size());
  out += ",\"exported\":";
  append_u64(out, cap);
  out += ",\"truncated\":";
  append_u64(out, spans.size() - cap);
  out += ",\"dropped_spans\":";
  append_u64(out, dropped_spans);
  out += "}}";

  out += "\n]}\n";
  return out;
}

std::string ChromeTraceExporter::export_json(
    const common::TraceRecorder& recorder, const common::DropLedger* ledger,
    common::Timestamp now) const {
  return export_json(recorder.collect(), ledger, now,
                     recorder.dropped_spans());
}

}  // namespace netalytics::obs
