// Prometheus text-exposition exporter over the registry's dotted names.
// The registry namespaces series structurally ("q1.proc0.count.window_keys",
// "q2.mon3.rx_packets"); a scraper wants those coordinates as labels, not
// baked into the family name. The exporter splits each dotted name into
// segments and lifts the structural ones — a known alphabetic prefix plus a
// decimal index (q3 -> query="3", mon0 -> monitor="0", proc1 ->
// processor="1", spout0/task2/t2, producer/broker indices) — into labels;
// the remaining segments join with '_' under ExportOptions::metric_prefix
// to form the family name. Families render sorted by name with one
// "# TYPE" line each; labels render sorted by label name; histograms
// expose cumulative _bucket{le=...} / _sum / _count.
//
// Everything is derived from name-sorted snapshots with pure string math,
// so the exposition is byte-identical across runs and worker counts.
#pragma once

#include <string>

#include "common/metrics.hpp"
#include "obs/export.hpp"
#include "tsdb/query.hpp"

namespace netalytics::obs {

class PrometheusExporter {
 public:
  PrometheusExporter() = default;
  explicit PrometheusExporter(ExportOptions options)
      : options_(std::move(options)) {}

  const ExportOptions& options() const noexcept { return options_; }

  /// Current levels: counters/gauges/histograms of one registry snapshot.
  std::string export_snapshot(const common::MetricsSnapshot& snapshot) const;

  /// Historical range: one timestamped sample line (milliseconds) per
  /// point. Counter series hold per-capture deltas folded by the query's
  /// aggregation, so they are exposed with their stored kind but carry
  /// multiple timestamped samples per labelset (backfill-style exposition;
  /// see docs/OBSERVABILITY.md).
  std::string export_range(const tsdb::RangeResult& result) const;

 private:
  ExportOptions options_{};
};

}  // namespace netalytics::obs
