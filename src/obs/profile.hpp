// Executor stage-profiler export. Both executors, when
// ExecutorConfig::profile is on, publish per-task wall-clock counters
// into the registry under the executor's metrics prefix:
//
//   <prefix>.profiler.<component>.t<k>.tuples         bolt executions
//   <prefix>.profiler.<component>.t<k>.self_ns        time inside execute()/poll
//   <prefix>.profiler.<component>.t<k>.queue_wait_ns  dispatch/inbox wait
//   <prefix>.profiler.pool.*                          executor-wide events
//                                                     (stage_dispatches,
//                                                     parallel_stages /
//                                                     claims, helps, parks)
//
// Because they live in the registry they flow into tsdb captures for
// free; this header turns a snapshot of them into a flamegraph.pl
// collapsed-stack profile ("q1;proc0;count;t0 123456" lines, self_ns
// weights) and into totals that reconcile against
// TopologyExecutor::tuples_executed().
#pragma once

#include <cstdint>
#include <string>

#include "common/metrics.hpp"

namespace netalytics::obs {

/// Sums of the per-task profiler counters in a snapshot. `tuples` counts
/// bolt executions only (spout tasks publish time, not tuples), so it
/// equals the executor's tuples_executed() for the same topology.
struct ProfileTotals {
  std::uint64_t tuples = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t tasks = 0;  // distinct per-task self_ns series seen
};

ProfileTotals profile_totals(const common::MetricsSnapshot& snapshot);

/// flamegraph.pl collapsed-stack text: one "frame;frame;... weight" line
/// per task with nonzero self-time, frames = the counter's dotted path
/// minus the "profiler" marker and the trailing field. Deterministic:
/// snapshot order is name-sorted.
std::string collapsed_stack(const common::MetricsSnapshot& snapshot);

}  // namespace netalytics::obs
