#include "obs/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace netalytics::obs {
namespace {

constexpr std::string_view kMarker = ".profiler.";

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

bool is_profiler(std::string_view name) {
  return name.find(kMarker) != std::string_view::npos;
}

}  // namespace

ProfileTotals profile_totals(const common::MetricsSnapshot& snapshot) {
  ProfileTotals totals;
  for (const auto& c : snapshot.counters) {
    if (!is_profiler(c.name)) continue;
    if (ends_with(c.name, ".tuples")) {
      totals.tuples += c.value;
    } else if (ends_with(c.name, ".self_ns")) {
      totals.self_ns += c.value;
      ++totals.tasks;
    } else if (ends_with(c.name, ".queue_wait_ns")) {
      totals.queue_wait_ns += c.value;
    }
  }
  return totals;
}

std::string collapsed_stack(const common::MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    if (!is_profiler(c.name) || !ends_with(c.name, ".self_ns")) continue;
    if (c.value == 0) continue;
    // "q1.proc0.profiler.count.t0.self_ns" -> "q1;proc0;count;t0".
    const std::string_view name = c.name;
    const std::string_view path =
        name.substr(0, name.size() - sizeof(".self_ns") + 1);
    std::string frames;
    for (std::size_t pos = 0; pos <= path.size();) {
      const std::size_t dot = std::min(path.find('.', pos), path.size());
      const std::string_view seg = path.substr(pos, dot - pos);
      pos = dot + 1;
      if (seg.empty() || seg == "profiler") continue;
      if (!frames.empty()) frames += ';';
      frames += seg;
    }
    char weight[32];
    std::snprintf(weight, sizeof weight, " %" PRIu64 "\n", c.value);
    out += frames;
    out += weight;
  }
  return out;
}

}  // namespace netalytics::obs
