#include "obs/export.hpp"

#include <cctype>
#include <fstream>

namespace netalytics::obs {

const std::vector<ExporterFormat>& exporter_formats() {
  // One literal per format, one per line: tests/check_docs.sh check 5
  // extracts the names from this initializer and requires
  // docs/OBSERVABILITY.md to document each of them.
  static const std::vector<ExporterFormat> kFormats = {
      ExporterFormat{"chrome-trace", ".trace.json",
                     "chrome://tracing / Perfetto event-array JSON of "
                     "TraceRecorder spans"},
      ExporterFormat{"prometheus", ".prom",
                     "Prometheus text exposition of MetricsRegistry "
                     "snapshots and tsdb range results"},
      ExporterFormat{"collapsed-stack", ".folded",
                     "flamegraph.pl collapsed-stack text of executor "
                     "stage profiler self-time"},
  };
  return kFormats;
}

const ExporterFormat* find_format(std::string_view name) noexcept {
  for (const auto& f : exporter_formats()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool valid_metric_prefix(std::string_view prefix) noexcept {
  if (prefix.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  if (!head(prefix.front())) return false;
  for (std::size_t i = 1; i < prefix.size(); ++i) {
    if (!tail(prefix[i])) return false;
  }
  return true;
}

common::Expected<void> write_file(const std::string& path,
                                  std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Error{"obs", "cannot open export file: " + path};
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    return common::Error{"obs", "short write to export file: " + path};
  }
  return {};
}

}  // namespace netalytics::obs
