#include "obs/prometheus.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

namespace netalytics::obs {
namespace {

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Structural segment prefixes lifted into labels, alphabetical by prefix.
/// A segment qualifies when it is one of these prefixes followed by only
/// decimal digits ("q1", "mon0", "t3", ...).
constexpr std::pair<std::string_view, std::string_view> kStructural[] = {
    {"broker", "broker"},     {"child", "child"}, {"mon", "monitor"},
    {"proc", "processor"},    {"producer", "producer"}, {"q", "query"},
    {"spout", "spout"},       {"t", "task"},      {"task", "task"},
};

std::string_view structural_label(std::string_view prefix) noexcept {
  for (const auto& [p, label] : kStructural) {
    if (p == prefix) return label;
  }
  return {};
}

void append_sanitized(std::string& out, std::string_view segment) {
  for (char c : segment) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
}

struct ParsedName {
  std::string family;  // metric_prefix + '_'-joined non-structural segments
  Labels labels;       // sorted by label name
};

ParsedName parse_name(std::string_view name, const std::string& prefix) {
  ParsedName parsed;
  parsed.family = prefix;
  bool have_part = false;
  std::size_t pos = 0;
  while (pos <= name.size()) {
    const std::size_t dot = std::min(name.find('.', pos), name.size());
    const std::string_view seg = name.substr(pos, dot - pos);
    pos = dot + 1;
    if (seg.empty()) continue;
    std::size_t alpha = 0;
    while (alpha < seg.size() &&
           std::isalpha(static_cast<unsigned char>(seg[alpha])) != 0) {
      ++alpha;
    }
    const bool digits_tail =
        alpha > 0 && alpha < seg.size() &&
        std::all_of(seg.begin() + static_cast<std::ptrdiff_t>(alpha),
                    seg.end(), [](char c) {
                      return std::isdigit(static_cast<unsigned char>(c)) != 0;
                    });
    const std::string_view label =
        digits_tail ? structural_label(seg.substr(0, alpha))
                    : std::string_view{};
    const bool label_taken =
        !label.empty() &&
        std::any_of(parsed.labels.begin(), parsed.labels.end(),
                    [&](const auto& kv) { return kv.first == label; });
    if (!label.empty() && !label_taken) {
      parsed.labels.emplace_back(std::string(label),
                                 std::string(seg.substr(alpha)));
    } else {
      // Non-structural segment (or a repeated coordinate, which stays in
      // the name so no duplicate label can be emitted).
      if (have_part) parsed.family += '_';
      append_sanitized(parsed.family, seg);
      have_part = true;
    }
  }
  if (!have_part) parsed.family += "series";
  std::sort(parsed.labels.begin(), parsed.labels.end());
  return parsed;
}

void append_label_value(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// `{a="1",b="2"}` (or nothing when empty); `extra` is merged into the
/// sorted position by label name (used for the histogram `le` label).
void append_labels(std::string& out, const Labels& labels,
                   const std::pair<std::string_view, std::string_view>* extra =
                       nullptr) {
  if (labels.empty() && extra == nullptr) return;
  out += '{';
  bool first = true;
  bool extra_done = extra == nullptr;
  const auto emit = [&](std::string_view k, std::string_view v) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_label_value(out, v);
    out += '"';
  };
  for (const auto& [k, v] : labels) {
    if (!extra_done && extra->first < k) {
      emit(extra->first, extra->second);
      extra_done = true;
    }
    emit(k, v);
  }
  if (!extra_done) emit(extra->first, extra->second);
  out += '}';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

/// Family accumulator: "# TYPE" line type plus sample lines in insertion
/// order (snapshots are name-sorted, so insertion order is deterministic).
struct Family {
  std::string type;
  std::vector<std::string> lines;
};

std::string render_families(const std::map<std::string, Family>& families) {
  std::string out;
  for (const auto& [name, fam] : families) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += fam.type;
    out += '\n';
    for (const auto& line : fam.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

Family& family_for(std::map<std::string, Family>& families,
                   const std::string& name, std::string_view type) {
  auto [it, inserted] = families.try_emplace(std::string(name));
  if (inserted) it->second.type = type;
  return it->second;
}

}  // namespace

std::string PrometheusExporter::export_snapshot(
    const common::MetricsSnapshot& snapshot) const {
  std::map<std::string, Family> families;
  const std::string& prefix = options_.metric_prefix;

  for (const auto& c : snapshot.counters) {
    const ParsedName p = parse_name(c.name, prefix);
    Family& fam = family_for(families, p.family, "counter");
    std::string line = p.family;
    append_labels(line, p.labels);
    line += ' ';
    append_u64(line, c.value);
    fam.lines.push_back(std::move(line));
  }

  for (const auto& g : snapshot.gauges) {
    const ParsedName p = parse_name(g.name, prefix);
    Family& fam = family_for(families, p.family, "gauge");
    std::string line = p.family;
    append_labels(line, p.labels);
    line += ' ';
    append_i64(line, g.value);
    fam.lines.push_back(std::move(line));
  }

  for (const auto& h : snapshot.histograms) {
    const ParsedName p = parse_name(h.name, prefix);
    Family& fam = family_for(families, p.family, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      std::string le;
      if (i < h.bounds.size()) {
        append_u64(le, h.bounds[i]);
      } else {
        le = "+Inf";
      }
      const std::pair<std::string_view, std::string_view> extra{"le", le};
      std::string line = p.family;
      line += "_bucket";
      append_labels(line, p.labels, &extra);
      line += ' ';
      append_u64(line, cumulative);
      fam.lines.push_back(std::move(line));
    }
    std::string sum_line = p.family;
    sum_line += "_sum";
    append_labels(sum_line, p.labels);
    sum_line += ' ';
    append_u64(sum_line, h.sum);
    fam.lines.push_back(std::move(sum_line));
    std::string count_line = p.family;
    count_line += "_count";
    append_labels(count_line, p.labels);
    count_line += ' ';
    append_u64(count_line, h.count);
    fam.lines.push_back(std::move(count_line));
  }

  return render_families(families);
}

std::string PrometheusExporter::export_range(
    const tsdb::RangeResult& result) const {
  std::map<std::string, Family> families;
  for (const auto& series : result.series) {
    const ParsedName p = parse_name(series.name, options_.metric_prefix);
    Family& fam = family_for(
        families, p.family,
        series.kind == tsdb::SeriesKind::counter ? "counter" : "gauge");
    for (const auto& point : series.points) {
      std::string line = p.family;
      append_labels(line, p.labels);
      line += ' ';
      line += tsdb::format_number(point.value);
      line += ' ';
      append_u64(line, point.t / 1'000'000);  // virtual ns -> ms
      fam.lines.push_back(std::move(line));
    }
  }
  return render_families(families);
}

}  // namespace netalytics::obs
