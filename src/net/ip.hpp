// IPv4 address and endpoint types. Addresses are host-order uint32 inside
// NetAlytics; conversion to network order happens only at the header codec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netalytics::net {

using Ipv4Addr = std::uint32_t;
using Port = std::uint16_t;

/// Build an address from dotted components, e.g. make_ipv4(10,0,2,8).
constexpr Ipv4Addr make_ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                             std::uint8_t d) noexcept {
  return (static_cast<Ipv4Addr>(a) << 24) | (static_cast<Ipv4Addr>(b) << 16) |
         (static_cast<Ipv4Addr>(c) << 8) | static_cast<Ipv4Addr>(d);
}

/// Parse dotted-quad notation; nullopt on malformed input.
std::optional<Ipv4Addr> parse_ipv4(std::string_view s);

std::string format_ipv4(Ipv4Addr addr);

/// An IPv4 prefix (address + mask length) used in SDN match rules and the
/// query language's subnet addresses.
struct Ipv4Prefix {
  Ipv4Addr addr = 0;
  std::uint8_t length = 32;  // 0 = match everything

  constexpr bool contains(Ipv4Addr a) const noexcept {
    if (length == 0) return true;
    const Ipv4Addr mask = length >= 32 ? ~Ipv4Addr{0} : ~((Ipv4Addr{1} << (32 - length)) - 1);
    return (a & mask) == (addr & mask);
  }
  constexpr bool operator==(const Ipv4Prefix&) const noexcept = default;
};

/// Parse "a.b.c.d" or "a.b.c.d/len"; nullopt on malformed input.
std::optional<Ipv4Prefix> parse_ipv4_prefix(std::string_view s);

std::string format_ipv4_prefix(const Ipv4Prefix& p);

/// ip:port endpoint.
struct Endpoint {
  Ipv4Addr ip = 0;
  Port port = 0;

  constexpr bool operator==(const Endpoint&) const noexcept = default;
};

std::string format_endpoint(const Endpoint& e);

}  // namespace netalytics::net
