// Flow identification. The five-tuple is the unit of sampling (§3.3:
// sampling is by flow, not packet) and the default tuple ID emitted by
// parsers so processors can join data from different parsers (§3.1).
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.hpp"
#include "net/ip.hpp"

namespace netalytics::net {

enum class IpProto : std::uint8_t { tcp = 6, udp = 17 };

struct FiveTuple {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  Port src_port = 0;
  Port dst_port = 0;
  std::uint8_t protocol = 0;

  constexpr bool operator==(const FiveTuple&) const noexcept = default;

  /// Direction-sensitive hash (a flow and its reverse hash differently).
  constexpr std::uint64_t hash(std::uint64_t seed = 0) const noexcept {
    std::uint64_t h = common::hash_combine(seed, src_ip);
    h = common::hash_combine(h, dst_ip);
    h = common::hash_combine(h, (static_cast<std::uint64_t>(src_port) << 32) |
                                    (static_cast<std::uint64_t>(dst_port) << 16) |
                                    protocol);
    return h;
  }

  /// Direction-insensitive hash: the two directions of a TCP connection map
  /// to the same value, so request and response packets sample together.
  constexpr std::uint64_t bidirectional_hash(std::uint64_t seed = 0) const noexcept {
    const std::uint64_t fwd =
        common::hash_combine(common::hash_combine(seed, src_ip),
                             (static_cast<std::uint64_t>(src_port) << 16) | protocol);
    const std::uint64_t rev =
        common::hash_combine(common::hash_combine(seed, dst_ip),
                             (static_cast<std::uint64_t>(dst_port) << 16) | protocol);
    return fwd ^ rev;
  }

  constexpr FiveTuple reversed() const noexcept {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }
};

inline std::string format_five_tuple(const FiveTuple& t) {
  return format_ipv4(t.src_ip) + ":" + std::to_string(t.src_port) + "->" +
         format_ipv4(t.dst_ip) + ":" + std::to_string(t.dst_port) + "/" +
         std::to_string(t.protocol);
}

}  // namespace netalytics::net

template <>
struct std::hash<netalytics::net::FiveTuple> {
  std::size_t operator()(const netalytics::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
