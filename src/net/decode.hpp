// One-pass packet decoder: classifies a raw frame into layered views that
// parsers and SDN match logic consume. Decoding happens once per packet in
// the collector; every parser then reads the same DecodedPacket.
#pragma once

#include <optional>
#include <span>

#include "common/clock.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"

namespace netalytics::net {

struct DecodedPacket {
  std::span<const std::byte> frame;  // whole packet
  common::Timestamp timestamp = 0;  // arrival time, set by the capture point

  EthernetHeader eth;
  bool has_ipv4 = false;
  Ipv4Header ipv4;
  bool has_tcp = false;
  TcpHeader tcp;
  bool has_udp = false;
  UdpHeader udp;

  std::size_t l4_payload_offset = 0;
  std::size_t l4_payload_size = 0;

  FiveTuple five_tuple;
  std::uint64_t flow_hash = 0;                // direction-sensitive
  std::uint64_t bidirectional_flow_hash = 0;  // connection-level

  std::span<const std::byte> payload() const noexcept {
    return frame.subspan(l4_payload_offset, l4_payload_size);
  }
};

/// Decode a frame. Returns nullopt for anything that is not well-formed
/// Ethernet. Non-IPv4 and non-TCP/UDP frames decode with the corresponding
/// `has_*` flags false.
std::optional<DecodedPacket> decode_packet(std::span<const std::byte> frame);

}  // namespace netalytics::net
