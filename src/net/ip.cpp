#include "net/ip.hpp"

#include <cstdio>

#include "common/string_util.hpp"

namespace netalytics::net {

std::optional<Ipv4Addr> parse_ipv4(std::string_view s) {
  const auto parts = common::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  Ipv4Addr addr = 0;
  for (const auto part : parts) {
    std::uint64_t v = 0;
    if (!common::parse_u64(part, v) || v > 255) return std::nullopt;
    addr = (addr << 8) | static_cast<Ipv4Addr>(v);
  }
  return addr;
}

std::string format_ipv4(Ipv4Addr addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::optional<Ipv4Prefix> parse_ipv4_prefix(std::string_view s) {
  const std::size_t slash = s.find('/');
  std::uint8_t length = 32;
  if (slash != std::string_view::npos) {
    std::uint64_t v = 0;
    if (!common::parse_u64(s.substr(slash + 1), v) || v > 32) return std::nullopt;
    length = static_cast<std::uint8_t>(v);
    s = s.substr(0, slash);
  }
  const auto addr = parse_ipv4(s);
  if (!addr) return std::nullopt;
  return Ipv4Prefix{*addr, length};
}

std::string format_ipv4_prefix(const Ipv4Prefix& p) {
  if (p.length == 32) return format_ipv4(p.addr);
  return format_ipv4(p.addr) + "/" + std::to_string(p.length);
}

std::string format_endpoint(const Endpoint& e) {
  return format_ipv4(e.ip) + ":" + std::to_string(e.port);
}

}  // namespace netalytics::net
