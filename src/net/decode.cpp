#include "net/decode.hpp"

#include <algorithm>

namespace netalytics::net {

std::optional<DecodedPacket> decode_packet(std::span<const std::byte> frame) {
  DecodedPacket d;
  d.frame = frame;

  const auto eth = EthernetHeader::parse(frame);
  if (!eth) return std::nullopt;
  d.eth = *eth;
  std::size_t offset = EthernetHeader::kSize;
  if (d.eth.ether_type != kEtherTypeIpv4) return d;

  const auto ipv4 = Ipv4Header::parse(frame.subspan(offset));
  if (!ipv4) return d;
  d.has_ipv4 = true;
  d.ipv4 = *ipv4;
  d.five_tuple.src_ip = d.ipv4.src;
  d.five_tuple.dst_ip = d.ipv4.dst;
  d.five_tuple.protocol = d.ipv4.protocol;
  offset += d.ipv4.header_bytes();

  // The IP total_length bounds the L4 region; guard against frames shorter
  // than the header claims (truncated capture).
  const std::size_t ip_end = std::min(
      frame.size(), EthernetHeader::kSize + std::size_t{d.ipv4.total_length});
  if (ip_end <= offset) return d;
  const auto l4 = frame.subspan(offset, ip_end - offset);

  if (d.ipv4.protocol == static_cast<std::uint8_t>(IpProto::tcp)) {
    const auto tcp = TcpHeader::parse(l4);
    if (!tcp) return d;
    d.has_tcp = true;
    d.tcp = *tcp;
    d.five_tuple.src_port = d.tcp.src_port;
    d.five_tuple.dst_port = d.tcp.dst_port;
    d.l4_payload_offset = offset + d.tcp.header_bytes();
    d.l4_payload_size = ip_end - d.l4_payload_offset;
  } else if (d.ipv4.protocol == static_cast<std::uint8_t>(IpProto::udp)) {
    const auto udp = UdpHeader::parse(l4);
    if (!udp) return d;
    d.has_udp = true;
    d.udp = *udp;
    d.five_tuple.src_port = d.udp.src_port;
    d.five_tuple.dst_port = d.udp.dst_port;
    d.l4_payload_offset = offset + UdpHeader::kSize;
    d.l4_payload_size = ip_end - d.l4_payload_offset;
  }

  d.flow_hash = d.five_tuple.hash();
  d.bidirectional_flow_hash = d.five_tuple.bidirectional_hash();
  return d;
}

}  // namespace netalytics::net
