#include "net/headers.hpp"

#include "common/byte_io.hpp"

namespace netalytics::net {

using common::load_be16;
using common::load_be32;
using common::load_u8;
using common::store_be16;
using common::store_be32;
using common::store_u8;

std::optional<EthernetHeader> EthernetHeader::parse(std::span<const std::byte> buf) {
  if (buf.size() < kSize) return std::nullopt;
  EthernetHeader h;
  for (std::size_t i = 0; i < 6; ++i) h.dst[i] = load_u8(buf, i);
  for (std::size_t i = 0; i < 6; ++i) h.src[i] = load_u8(buf, 6 + i);
  h.ether_type = load_be16(buf, 12);
  return h;
}

void EthernetHeader::write(std::span<std::byte> buf) const {
  for (std::size_t i = 0; i < 6; ++i) store_u8(buf, i, dst[i]);
  for (std::size_t i = 0; i < 6; ++i) store_u8(buf, 6 + i, src[i]);
  store_be16(buf, 12, ether_type);
}

std::optional<Ipv4Header> Ipv4Header::parse(std::span<const std::byte> buf) {
  if (buf.size() < kMinSize) return std::nullopt;
  const std::uint8_t version_ihl = load_u8(buf, 0);
  if ((version_ihl >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.ihl = version_ihl & 0x0f;
  if (h.ihl < 5 || buf.size() < h.header_bytes()) return std::nullopt;
  h.tos = load_u8(buf, 1);
  h.total_length = load_be16(buf, 2);
  h.identification = load_be16(buf, 4);
  h.ttl = load_u8(buf, 8);
  h.protocol = load_u8(buf, 9);
  h.checksum = load_be16(buf, 10);
  h.src = load_be32(buf, 12);
  h.dst = load_be32(buf, 16);
  return h;
}

void Ipv4Header::write(std::span<std::byte> buf) const {
  store_u8(buf, 0, static_cast<std::uint8_t>((4u << 4) | ihl));
  store_u8(buf, 1, tos);
  store_be16(buf, 2, total_length);
  store_be16(buf, 4, identification);
  store_be16(buf, 6, 0);  // flags + fragment offset: unfragmented
  store_u8(buf, 8, ttl);
  store_u8(buf, 9, protocol);
  store_be16(buf, 10, 0);  // checksum placeholder
  store_be32(buf, 12, src);
  store_be32(buf, 16, dst);
  const std::uint16_t cksum = compute_checksum(buf.first(header_bytes()));
  store_be16(buf, 10, cksum);
}

std::uint16_t Ipv4Header::compute_checksum(std::span<const std::byte> header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    sum += load_be16(header, i);
  }
  if (header.size() % 2 == 1) {
    sum += static_cast<std::uint32_t>(load_u8(header, header.size() - 1)) << 8;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::byte> buf) {
  if (buf.size() < kMinSize) return std::nullopt;
  TcpHeader h;
  h.src_port = load_be16(buf, 0);
  h.dst_port = load_be16(buf, 2);
  h.seq = load_be32(buf, 4);
  h.ack = load_be32(buf, 8);
  h.data_offset = load_u8(buf, 12) >> 4;
  if (h.data_offset < 5 || buf.size() < h.header_bytes()) return std::nullopt;
  h.flags = load_u8(buf, 13);
  h.window = load_be16(buf, 14);
  return h;
}

void TcpHeader::write(std::span<std::byte> buf) const {
  store_be16(buf, 0, src_port);
  store_be16(buf, 2, dst_port);
  store_be32(buf, 4, seq);
  store_be32(buf, 8, ack);
  store_u8(buf, 12, static_cast<std::uint8_t>(data_offset << 4));
  store_u8(buf, 13, flags);
  store_be16(buf, 14, window);
  store_be16(buf, 16, 0);  // checksum: not modelled (no wire corruption)
  store_be16(buf, 18, 0);  // urgent pointer
}

std::optional<UdpHeader> UdpHeader::parse(std::span<const std::byte> buf) {
  if (buf.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(buf, 0);
  h.dst_port = load_be16(buf, 2);
  h.length = load_be16(buf, 4);
  return h;
}

void UdpHeader::write(std::span<std::byte> buf) const {
  store_be16(buf, 0, src_port);
  store_be16(buf, 2, dst_port);
  store_be16(buf, 4, length);
  store_be16(buf, 6, 0);  // checksum optional in IPv4
}

}  // namespace netalytics::net
