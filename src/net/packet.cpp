#include "net/packet.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

namespace netalytics::net {

void PacketPtr::release() noexcept {
  if (packet_ == nullptr) return;
  if (packet_->refcount_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    packet_->pool_->deallocate(packet_);
  }
  packet_ = nullptr;
}

PacketPool::PacketPool(std::size_t capacity) : packets_(capacity) {
  free_list_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    packets_[i].pool_ = this;
    packets_[i].index_ = static_cast<std::uint32_t>(i);
    free_list_.push_back(static_cast<std::uint32_t>(i));
  }
}

PacketPtr PacketPool::allocate() noexcept {
  Packet* p = nullptr;
  {
    std::lock_guard lock(free_mutex_);
    if (free_list_.empty()) {
      alloc_failures_.fetch_add(1, std::memory_order_relaxed);
      if (fail_counter_ != nullptr) fail_counter_->inc();
      return PacketPtr{};
    }
    p = &packets_[free_list_.back()];
    free_list_.pop_back();
    if (in_use_gauge_ != nullptr) in_use_gauge_->add(1);
  }
  p->len_ = 0;
  p->timestamp_ = 0;
  p->refcount_.store(1, std::memory_order_relaxed);
  return PacketPtr{p};
}

PacketPtr PacketPool::make_packet(std::span<const std::byte> bytes,
                                  common::Timestamp timestamp) noexcept {
  if (bytes.size() > Packet::kMaxSize) return PacketPtr{};
  PacketPtr p = allocate();
  if (!p) return p;
  std::memcpy(p->writable().data(), bytes.data(), bytes.size());
  p->set_size(bytes.size());
  p->set_timestamp(timestamp);
  return p;
}

std::size_t PacketPool::available() const noexcept {
  std::lock_guard lock(free_mutex_);
  return free_list_.size();
}

void PacketPool::deallocate(Packet* p) noexcept {
  std::lock_guard lock(free_mutex_);
  free_list_.push_back(p->index_);
  if (in_use_gauge_ != nullptr) in_use_gauge_->add(-1);
}

void PacketPool::bind_metrics(common::MetricsRegistry& registry,
                              const std::string& prefix) {
  std::lock_guard lock(free_mutex_);
  registry.gauge(prefix + ".capacity")
      .set(static_cast<std::int64_t>(packets_.size()));
  in_use_gauge_ = &registry.gauge(prefix + ".in_use");
  in_use_gauge_->set(static_cast<std::int64_t>(packets_.size() - free_list_.size()));
  fail_counter_ = &registry.counter(prefix + ".alloc_failures");
}

}  // namespace netalytics::net
