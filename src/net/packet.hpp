// Packet buffers and the refcounted packet pool — the DPDK mbuf-pool
// equivalent. The collector hands the *same* buffer to every parser by
// enqueueing descriptors (PacketPtr), and a reference count frees the
// buffer once all parsers are done with it (§5.2: "we have a reference
// count on each packet so we know when all collectors and parsers have
// finished with it").
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/spsc_ring.hpp"

namespace netalytics::net {

class PacketPool;

/// A fixed-size packet buffer owned by a PacketPool.
class Packet {
 public:
  static constexpr std::size_t kMaxSize = 2048;

  std::span<std::byte> writable() noexcept { return {data_.data(), kMaxSize}; }
  std::span<const std::byte> bytes() const noexcept { return {data_.data(), len_}; }
  std::size_t size() const noexcept { return len_; }
  void set_size(std::size_t len) noexcept { len_ = len; }

  common::Timestamp timestamp() const noexcept { return timestamp_; }
  void set_timestamp(common::Timestamp t) noexcept { timestamp_ = t; }

 private:
  friend class PacketPool;
  friend class PacketPtr;

  std::array<std::byte, kMaxSize> data_;
  std::size_t len_ = 0;
  common::Timestamp timestamp_ = 0;
  std::atomic<std::uint32_t> refcount_{0};
  PacketPool* pool_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Intrusive refcounted handle. Copying adds a reference (another parser
/// queue); destruction releases it, returning the buffer to the pool at
/// zero. Cheap to move.
class PacketPtr {
 public:
  PacketPtr() noexcept = default;
  ~PacketPtr() { release(); }

  PacketPtr(const PacketPtr& other) noexcept : packet_(other.packet_) { acquire(); }
  PacketPtr& operator=(const PacketPtr& other) noexcept {
    if (this != &other) {
      release();
      packet_ = other.packet_;
      acquire();
    }
    return *this;
  }
  PacketPtr(PacketPtr&& other) noexcept : packet_(other.packet_) {
    other.packet_ = nullptr;
  }
  PacketPtr& operator=(PacketPtr&& other) noexcept {
    if (this != &other) {
      release();
      packet_ = other.packet_;
      other.packet_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const noexcept { return packet_ != nullptr; }
  Packet* operator->() const noexcept { return packet_; }
  Packet& operator*() const noexcept { return *packet_; }
  Packet* get() const noexcept { return packet_; }

  void reset() noexcept {
    release();
    packet_ = nullptr;
  }

 private:
  friend class PacketPool;
  explicit PacketPtr(Packet* p) noexcept : packet_(p) {}  // refcount pre-set

  void acquire() noexcept {
    if (packet_ != nullptr) {
      packet_->refcount_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() noexcept;

  Packet* packet_ = nullptr;
};

/// Preallocated pool of packet buffers with a free list. Allocation never
/// touches the heap after construction; exhaustion returns an empty handle
/// (the caller drops the packet, as a NIC would under pool pressure).
class PacketPool {
 public:
  explicit PacketPool(std::size_t capacity);

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Allocate a buffer with refcount 1; empty handle if the pool is dry.
  PacketPtr allocate() noexcept;

  /// Allocate and fill from `bytes` with the given timestamp.
  PacketPtr make_packet(std::span<const std::byte> bytes,
                        common::Timestamp timestamp) noexcept;

  std::size_t capacity() const noexcept { return packets_.size(); }
  std::size_t available() const noexcept;
  std::uint64_t allocation_failures() const noexcept {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

  /// Publish pool occupancy into a metrics registry: "<prefix>.capacity"
  /// and "<prefix>.in_use" gauges plus an "<prefix>.alloc_failures"
  /// counter, updated on every allocate/release.
  void bind_metrics(common::MetricsRegistry& registry, const std::string& prefix);

 private:
  friend class PacketPtr;
  void deallocate(Packet* p) noexcept;

  std::vector<Packet> packets_;
  // Free list as a lock-protected stack: release can come from any parser
  // thread, allocate from any generator thread. Depth is small and accesses
  // are batched at the ring level, so contention is not on the hot path.
  mutable std::mutex free_mutex_;
  std::vector<std::uint32_t> free_list_;
  std::atomic<std::uint64_t> alloc_failures_{0};
  common::Gauge* in_use_gauge_ = nullptr;        // null until bind_metrics
  common::Counter* fail_counter_ = nullptr;
};

}  // namespace netalytics::net
