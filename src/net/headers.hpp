// Ethernet/IPv4/TCP/UDP header codecs (the paper's ProtocolLib, §5.2).
// Headers are parsed from and written to raw bytes explicitly — no struct
// punning — so the code is portable and alignment/strict-aliasing safe.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "net/ip.hpp"

namespace netalytics::net {

using MacAddr = std::array<std::uint8_t, 6>;

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ether_type = kEtherTypeIpv4;

  /// Parse from the start of `buf`; nullopt if too short.
  static std::optional<EthernetHeader> parse(std::span<const std::byte> buf);
  /// Write kSize bytes at the start of `buf`; requires buf.size() >= kSize.
  void write(std::span<std::byte> buf) const;
};

namespace tcp_flags {
constexpr std::uint8_t kFin = 0x01;
constexpr std::uint8_t kSyn = 0x02;
constexpr std::uint8_t kRst = 0x04;
constexpr std::uint8_t kPsh = 0x08;
constexpr std::uint8_t kAck = 0x10;
}  // namespace tcp_flags

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl = 5;  // header length in 32-bit words
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;

  std::size_t header_bytes() const noexcept { return std::size_t{ihl} * 4; }

  static std::optional<Ipv4Header> parse(std::span<const std::byte> buf);
  /// Writes the header with a freshly computed checksum.
  void write(std::span<std::byte> buf) const;

  /// RFC 1071 checksum over a serialized header (checksum field zeroed).
  static std::uint16_t compute_checksum(std::span<const std::byte> header);
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  Port src_port = 0;
  Port dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // header length in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  std::size_t header_bytes() const noexcept { return std::size_t{data_offset} * 4; }
  bool has_flag(std::uint8_t f) const noexcept { return (flags & f) != 0; }

  static std::optional<TcpHeader> parse(std::span<const std::byte> buf);
  void write(std::span<std::byte> buf) const;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  Port src_port = 0;
  Port dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  static std::optional<UdpHeader> parse(std::span<const std::byte> buf);
  void write(std::span<std::byte> buf) const;
};

}  // namespace netalytics::net
