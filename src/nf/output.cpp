#include "nf/output.hpp"

namespace netalytics::nf {

OutputInterface::OutputInterface(BatchSink sink, std::size_t batch_records)
    : sink_(std::move(sink)),
      batch_records_(batch_records == 0 ? 1 : batch_records) {}

void OutputInterface::emit(Record record) {
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (record.trace == 0) record.trace = current_trace_;
  auto [it, inserted] = pending_.try_emplace(record.topic);
  (void)inserted;
  it->second.push_back(std::move(record));
  if (it->second.size() >= batch_records_) {
    // A full batch ships immediately, so the record that tipped it over is
    // the freshest timestamp we have — that is the ship time in virtual runs.
    ship(it->first, it->second, it->second.back().timestamp);
  }
}

void OutputInterface::flush(common::Timestamp now) {
  for (auto& [topic, batch] : pending_) {
    if (!batch.empty()) ship(topic, batch, now);
  }
}

void OutputInterface::ship(std::string_view topic, std::vector<Record>& batch,
                           common::Timestamp ship_time) {
  auto payload = serialize_batch(batch);
  records_.fetch_add(batch.size(), std::memory_order_relaxed);
  bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (records_ctr_ != nullptr) records_ctr_->inc(batch.size());
  if (bytes_ctr_ != nullptr) bytes_ctr_->inc(payload.size());
  if (batches_ctr_ != nullptr) batches_ctr_->inc();
  if (tracer_ != nullptr && ship_time != 0) {
    for (const Record& r : batch) {
      tracer_->stamp(common::StageTracer::Stage::emit, ship_time, r.timestamp);
    }
  }
  trace_scratch_.clear();
  for (const Record& r : batch) {
    if (r.trace == 0) continue;
    trace_scratch_.push_back(r.trace);
    if (recorder_ != nullptr) {
      recorder_->stamp(r.trace, common::TraceStage::emit, r.timestamp,
                       ship_time != 0 ? ship_time : r.timestamp);
    }
  }
  BatchInfo info;
  info.records = batch.size();
  info.ship_time = ship_time;
  info.traces = trace_scratch_;
  sink_(topic, std::move(payload), info);
  batch.clear();
}

}  // namespace netalytics::nf
