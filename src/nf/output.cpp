#include "nf/output.hpp"

namespace netalytics::nf {

OutputInterface::OutputInterface(BatchSink sink, std::size_t batch_records)
    : sink_(std::move(sink)),
      batch_records_(batch_records == 0 ? 1 : batch_records) {}

void OutputInterface::emit(Record record) {
  auto [it, inserted] = pending_.try_emplace(record.topic);
  (void)inserted;
  it->second.push_back(std::move(record));
  if (it->second.size() >= batch_records_) ship(it->first, it->second);
}

void OutputInterface::flush() {
  for (auto& [topic, batch] : pending_) {
    if (!batch.empty()) ship(topic, batch);
  }
}

void OutputInterface::ship(const std::string& topic, std::vector<Record>& batch) {
  auto payload = serialize_batch(batch);
  records_.fetch_add(batch.size(), std::memory_order_relaxed);
  bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  sink_(topic, std::move(payload), batch.size());
  batch.clear();
}

}  // namespace netalytics::nf
