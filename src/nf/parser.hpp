// Parser interface and registry (§3.1). "System administrators can develop
// their own parsers with a simple interface: they define a packet handler
// function called when each packet arrives and make use of the monitoring
// library's output functions to emit the desired information."
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "net/decode.hpp"
#include "nf/record.hpp"

namespace netalytics::nf {

/// Where a parser's records go. Implementations batch (OutputInterface) or
/// collect directly (tests).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void emit(Record record) = 0;
};

/// A protocol parser. One instance runs per worker thread; flow-id dispatch
/// guarantees all packets of a flow reach the same instance, so per-flow
/// state needs no synchronization.
class PacketParser {
 public:
  virtual ~PacketParser() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Handle one decoded packet. `pkt.frame` stays valid for the call only.
  virtual void on_packet(const net::DecodedPacket& pkt, RecordSink& sink) = 0;

  /// Periodic tick for parsers that aggregate across packets; default no-op.
  virtual void on_tick(common::Timestamp now, RecordSink& sink);

  /// Flush remaining aggregate state at shutdown; default forwards to on_tick.
  virtual void on_close(common::Timestamp now, RecordSink& sink);
};

using ParserFactory = std::function<std::unique_ptr<PacketParser>()>;

/// Process-wide parser registry; the query compiler validates PARSE clauses
/// against it and monitors instantiate parsers through it.
class ParserRegistry {
 public:
  static ParserRegistry& instance();

  /// Returns false (and ignores the call) if the name is already taken.
  bool register_parser(std::string name, ParserFactory factory);
  bool contains(std::string_view name) const;
  /// Throws std::invalid_argument for unknown names.
  std::unique_ptr<PacketParser> make(std::string_view name) const;
  std::vector<std::string> names() const;

 private:
  ParserRegistry() = default;
  std::vector<std::pair<std::string, ParserFactory>> entries_;
};

/// Collects records into a vector; used by tests and inline pipelines.
class VectorSink final : public RecordSink {
 public:
  void emit(Record record) override { records.push_back(std::move(record)); }
  std::vector<Record> records;
};

}  // namespace netalytics::nf
