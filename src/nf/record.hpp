// The data tuple a parser emits (§3.1). "The first element in each tuple is
// an ID field, usually calculated as a hash of the packet's n-tuple" — the
// ID lets processors join records produced by different parsers for the
// same flow. Records are batched and serialized before leaving the monitor,
// which is where the paper's ~10:1 data reduction versus raw packets comes
// from.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.hpp"

namespace netalytics::nf {

using FieldValue = std::variant<std::int64_t, std::uint64_t, double, std::string>;

struct Record {
  std::string topic;  // parser name; selects the aggregation buffer (§3.2)
  std::uint64_t id = 0;
  common::Timestamp timestamp = 0;
  std::vector<FieldValue> fields;
  /// Provenance: nonzero when the packet this record came from was chosen
  /// by the trace sampler. Serialized batches carry traced records in a
  /// compact trailer, so the wire cost is zero when tracing is off.
  std::uint64_t trace = 0;

  bool operator==(const Record&) const = default;
};

/// Serialized size of one record (for data-reduction accounting).
std::size_t serialized_size(const Record& r);

/// Serialize a batch of records into one message payload.
std::vector<std::byte> serialize_batch(std::span<const Record> records);

/// Inverse of serialize_batch. Throws std::out_of_range on corrupt input.
std::vector<Record> deserialize_batch(std::span<const std::byte> payload);

// Typed field access helpers; throw std::bad_variant_access on mismatch.
inline std::int64_t as_i64(const FieldValue& v) { return std::get<std::int64_t>(v); }
inline std::uint64_t as_u64(const FieldValue& v) { return std::get<std::uint64_t>(v); }
inline double as_f64(const FieldValue& v) { return std::get<double>(v); }
inline const std::string& as_str(const FieldValue& v) { return std::get<std::string>(v); }

}  // namespace netalytics::nf
