#include "nf/orchestrator.hpp"

#include "common/logging.hpp"

namespace netalytics::nf {

std::string NfvOrchestrator::deploy(const std::string& host, MonitorConfig config,
                                    BatchSink sink) {
  std::string id = "mon-" + std::to_string(next_id_++) + "@" + host;
  auto monitor = std::make_unique<Monitor>(std::move(config), std::move(sink));
  common::log_info("nfv", "deploying monitor ", id);
  monitors_.emplace(id, Entry{host, std::move(monitor)});
  return id;
}

Monitor* NfvOrchestrator::find(const std::string& id) noexcept {
  const auto it = monitors_.find(id);
  return it == monitors_.end() ? nullptr : it->second.monitor.get();
}

bool NfvOrchestrator::undeploy(const std::string& id) {
  const auto it = monitors_.find(id);
  if (it == monitors_.end()) return false;
  if (it->second.monitor->running()) it->second.monitor->stop();
  common::log_info("nfv", "undeploying monitor ", id);
  monitors_.erase(it);
  return true;
}

void NfvOrchestrator::undeploy_all() {
  for (auto& [id, entry] : monitors_) {
    if (entry.monitor->running()) entry.monitor->stop();
  }
  monitors_.clear();
}

std::vector<MonitorInfo> NfvOrchestrator::list() const {
  std::vector<MonitorInfo> out;
  out.reserve(monitors_.size());
  for (const auto& [id, entry] : monitors_) {
    MonitorInfo info;
    info.id = id;
    info.host = entry.host;
    for (const auto& spec : entry.monitor->config().parsers) {
      info.parser_names.push_back(spec.name);
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace netalytics::nf
