#include "nf/monitor.hpp"

#include <chrono>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "net/decode.hpp"

namespace netalytics::nf {

Monitor::Monitor(MonitorConfig config, BatchSink sink)
    : config_(std::move(config)),
      sink_(std::move(sink)),
      sampler_(config_.sample_rate),
      rx_ring_(config_.rx_ring_capacity) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<common::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  const std::string& p = config_.metrics_prefix;
  rx_packets_ = &metrics_->counter(p + ".rx_packets");
  rx_dropped_ = &metrics_->counter(p + ".rx_dropped");
  decode_failed_ = &metrics_->counter(p + ".decode_failed");
  sampled_out_ = &metrics_->counter(p + ".sampled_out");
  dispatched_ = &metrics_->counter(p + ".dispatched");
  worker_dropped_ = &metrics_->counter(p + ".worker_dropped");
  parser_errors_ = &metrics_->counter(p + ".parser_errors");
  parsed_ = &metrics_->counter(p + ".parsed");
  parse_no_output_ = &metrics_->counter(p + ".parse_no_output");
  parse_with_output_ = &metrics_->counter(p + ".parse_with_output");
  extra_records_ = &metrics_->counter(p + ".extra_records");
  tick_records_ = &metrics_->counter(p + ".tick_records");
  raw_bytes_ = &metrics_->counter(p + ".raw_bytes");
  rx_depth_ = &metrics_->gauge(p + ".rx_ring_depth");
  parse_time_ = &metrics_->histogram(p + ".parse_time");
  records_ = &metrics_->counter(p + ".records");
  record_bytes_ = &metrics_->counter(p + ".record_bytes");
  batches_ = &metrics_->counter(p + ".batches");
  groups_.reserve(config_.parsers.size());
  for (const auto& spec : config_.parsers) {
    ParserGroup group;
    group.name = spec.name;
    const std::size_t workers = spec.workers == 0 ? 1 : spec.workers;
    for (std::size_t w = 0; w < workers; ++w) {
      auto worker = std::make_unique<Worker>();
      worker->parser = ParserRegistry::instance().make(spec.name);
      worker->ring =
          std::make_unique<common::SpscRing<WorkItem>>(config_.worker_ring_capacity);
      worker->output =
          std::make_unique<OutputInterface>(sink_, config_.output_batch_records);
      worker->output->set_tracer(config_.tracer);
      worker->output->set_trace_recorder(config_.trace_recorder);
      worker->output->bind_counters(records_, record_bytes_, batches_);
      group.workers.push_back(std::move(worker));
    }
    groups_.push_back(std::move(group));
  }
}

Monitor::~Monitor() {
  if (running()) stop();
}

void Monitor::start() {
  if (running()) return;
  collector_done_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& group : groups_) {
    for (auto& worker : group.workers) {
      worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
    }
  }
  collector_thread_ = std::thread([this] { collector_loop(); });
}

void Monitor::stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  if (collector_thread_.joinable()) collector_thread_.join();
  for (auto& group : groups_) {
    for (auto& worker : group.workers) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
}

bool Monitor::inject(net::PacketPtr pkt) noexcept {
  rx_packets_->inc();
  if (faults_ != nullptr &&
      faults_->should_fail(kFaultRxOverflow, pkt ? pkt->timestamp() : 0)) {
    drop(common::DropCause::ingest_ring_overflow, *rx_dropped_);
    return false;
  }
  if (!rx_ring_.try_push(std::move(pkt))) {
    drop(common::DropCause::ingest_ring_overflow, *rx_dropped_);
    return false;
  }
  rx_depth_->add(1);
  return true;
}

void Monitor::dispatch(const net::PacketPtr& pkt, const net::DecodedPacket& decoded,
                       std::uint64_t trace) {
  for (auto& group : groups_) {
    // Flow-id dispatch: both directions of a connection land on the same
    // worker, so per-flow parser state is single-threaded by construction.
    const std::size_t idx =
        group.workers.size() == 1
            ? 0
            : common::hash_to_bucket(decoded.bidirectional_flow_hash,
                                     group.workers.size());
    Worker& w = *group.workers[idx];
    if (faults_ != nullptr &&
        faults_->should_fail(kFaultWorkerOverflow, decoded.timestamp)) {
      drop(common::DropCause::parse_worker_overflow, *worker_dropped_);
      continue;
    }
    WorkItem item{pkt, decoded, trace};
    if (w.ring->try_push(std::move(item))) {
      dispatched_->inc();
    } else {
      drop(common::DropCause::parse_worker_overflow, *worker_dropped_);
    }
  }
}

void Monitor::parse_guarded(Worker& w, const net::DecodedPacket& decoded,
                            std::size_t raw_size, std::uint64_t trace) {
  w.output->set_current_trace(trace);
  const std::uint64_t before = w.output->emitted();
  try {
    if (faults_ != nullptr &&
        faults_->should_fail(kFaultParserThrow, decoded.timestamp)) {
      throw std::runtime_error("injected parser fault");
    }
    w.parser->on_packet(decoded, *w.output);
    parsed_->inc();
    raw_bytes_->inc(raw_size);
    const std::uint64_t emitted = w.output->emitted() - before;
    if (emitted == 0) {
      // Parsed cleanly but produced nothing — a sink for conservation
      // accounting, distinct from an error.
      drop(common::DropCause::parse_no_output, *parse_no_output_);
    } else {
      parse_with_output_->inc();
      // Fan-out beyond one record per packet-dispatch; reconcile subtracts
      // this so packets and records stay comparable.
      if (emitted > 1) extra_records_->inc(emitted - 1);
    }
  } catch (const std::exception&) {
    // Parsers meet garbage at cloud scale; a throw costs one packet, never
    // the worker. The count surfaces in MonitorStats::parser_errors.
    drop(common::DropCause::parse_error, *parser_errors_);
    // Anything emitted before the throw is surplus relative to the packet
    // we just wrote off as lost.
    const std::uint64_t emitted = w.output->emitted() - before;
    if (emitted != 0) extra_records_->inc(emitted);
  }
  w.output->set_current_trace(0);
}

void Monitor::collector_loop() {
  std::vector<net::PacketPtr> burst(config_.burst_size);
  while (true) {
    const std::size_t n = rx_ring_.try_pop_bulk(burst);
    if (n == 0) {
      if (!running()) {
        collector_done_.store(true, std::memory_order_release);
        return;  // RX drained after stop
      }
      std::this_thread::yield();
      continue;
    }
    rx_depth_->add(-static_cast<std::int64_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      net::PacketPtr& pkt = burst[i];
      auto decoded = net::decode_packet(pkt->bytes());
      if (!decoded) {
        drop(common::DropCause::ingest_decode_error, *decode_failed_);
        pkt.reset();
        continue;
      }
      decoded->timestamp = pkt->timestamp();
      if (!sampler_.keep(decoded->bidirectional_flow_hash)) {
        drop(common::DropCause::sample_rejected, *sampled_out_);
        pkt.reset();
        continue;
      }
      std::uint64_t trace = 0;
      if (config_.trace_recorder != nullptr) {
        trace = config_.trace_recorder
                    ->begin(decoded->bidirectional_flow_hash, decoded->timestamp)
                    .id;
      }
      dispatch(pkt, *decoded, trace);
      pkt.reset();
    }
  }
}

void Monitor::worker_loop(Worker& w) {
  common::WallClock clock;
  std::vector<WorkItem> burst(config_.burst_size);
  common::Timestamp last_tick = clock.now();
  while (true) {
    const std::size_t n = w.ring->try_pop_bulk(burst);
    if (n == 0) {
      if (collector_done_.load(std::memory_order_acquire)) break;
      const common::Timestamp now = clock.now();
      if (now - last_tick >= config_.tick_interval) {
        w.parser->on_tick(now, *w.output);
        w.output->flush();
        last_tick = now;
      }
      std::this_thread::yield();
      continue;
    }
    // Wall-clock parse-time histogram: threaded mode only, so the virtual-
    // time (inline) paths stay clock-free and deterministic.
    const common::Timestamp t0 = clock.now();
    for (std::size_t i = 0; i < n; ++i) {
      WorkItem& item = burst[i];
      parse_guarded(w, item.decoded, item.pkt->size(), item.trace);
      item.pkt.reset();
    }
    const common::Timestamp t1 = clock.now();
    if (t1 > t0) parse_time_->observe((t1 - t0) / n);
  }
  w.parser->on_close(clock.now(), *w.output);
  w.output->flush();
}

void Monitor::process(std::span<const std::byte> frame, common::Timestamp ts) {
  rx_packets_->inc();
  if (faults_ != nullptr && faults_->should_fail(kFaultRxOverflow, ts)) {
    drop(common::DropCause::ingest_ring_overflow, *rx_dropped_);
    return;
  }
  auto decoded = net::decode_packet(frame);
  if (!decoded) {
    drop(common::DropCause::ingest_decode_error, *decode_failed_);
    return;
  }
  decoded->timestamp = ts;
  if (!sampler_.keep(decoded->bidirectional_flow_hash)) {
    drop(common::DropCause::sample_rejected, *sampled_out_);
    return;
  }
  std::uint64_t trace = 0;
  if (config_.trace_recorder != nullptr) {
    trace = config_.trace_recorder
                ->begin(decoded->bidirectional_flow_hash, ts)
                .id;
  }
  for (auto& group : groups_) {
    const std::size_t idx =
        group.workers.size() == 1
            ? 0
            : common::hash_to_bucket(decoded->bidirectional_flow_hash,
                                     group.workers.size());
    Worker& w = *group.workers[idx];
    parse_guarded(w, *decoded, frame.size(), trace);
    dispatched_->inc();
  }
}

void Monitor::tick(common::Timestamp now) {
  for (auto& group : groups_) {
    for (auto& worker : group.workers) {
      const std::uint64_t before = worker->output->emitted();
      worker->parser->on_tick(now, *worker->output);
      // Records emitted here come from aggregation windows, not from any one
      // packet; reconcile subtracts them from the record stream.
      const std::uint64_t emitted = worker->output->emitted() - before;
      if (emitted != 0) tick_records_->inc(emitted);
      // Ship partially-filled batches so downstream latency is bounded by
      // the tick interval even at low record rates.
      worker->output->flush(now);
    }
  }
}

void Monitor::close(common::Timestamp now) {
  for (auto& group : groups_) {
    for (auto& worker : group.workers) {
      const std::uint64_t before = worker->output->emitted();
      worker->parser->on_close(now, *worker->output);
      const std::uint64_t emitted = worker->output->emitted() - before;
      if (emitted != 0) tick_records_->inc(emitted);
      worker->output->flush(now);
    }
  }
}

MonitorStats Monitor::stats() const {
  MonitorStats s;
  s.rx_packets = rx_packets_->value();
  s.rx_dropped = rx_dropped_->value();
  s.decode_failed = decode_failed_->value();
  s.sampled_out = sampled_out_->value();
  s.dispatched = dispatched_->value();
  s.worker_dropped = worker_dropped_->value();
  s.parser_errors = parser_errors_->value();
  s.parsed = parsed_->value();
  s.raw_bytes = raw_bytes_->value();
  s.records = records_->value();
  s.record_bytes = record_bytes_->value();
  return s;
}

}  // namespace netalytics::nf
