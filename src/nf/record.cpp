#include "nf/record.hpp"

#include <algorithm>

#include "common/byte_io.hpp"

namespace netalytics::nf {

namespace {

enum class FieldTag : std::uint8_t { i64 = 0, u64 = 1, f64 = 2, str = 3 };

// Batch layouts. Batches are built per topic by the output interface, so
// the common case hoists the topic string out of every record.
enum class BatchLayout : std::uint8_t { uniform_topic = 1, per_record_topic = 2 };

// Set on the layout byte when a trace trailer (count + [index, trace id]
// pairs for every traced record) follows the records. Untraced batches are
// byte-identical to the pre-trace format.
inline constexpr std::uint8_t kTraceTrailerFlag = 0x80;

void write_record(common::ByteWriter& w, const Record& r, bool with_topic) {
  if (with_topic) w.str(r.topic);
  w.u64(r.id);
  w.u64(r.timestamp);
  w.u16(static_cast<std::uint16_t>(r.fields.size()));
  for (const auto& f : r.fields) {
    std::visit(
        [&w](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::int64_t>) {
            w.u8(static_cast<std::uint8_t>(FieldTag::i64));
            w.u64(static_cast<std::uint64_t>(v));
          } else if constexpr (std::is_same_v<T, std::uint64_t>) {
            w.u8(static_cast<std::uint8_t>(FieldTag::u64));
            w.u64(v);
          } else if constexpr (std::is_same_v<T, double>) {
            w.u8(static_cast<std::uint8_t>(FieldTag::f64));
            w.f64(v);
          } else {
            w.u8(static_cast<std::uint8_t>(FieldTag::str));
            w.str(v);
          }
        },
        f);
  }
}

Record read_record(common::ByteReader& r, const std::string* shared_topic) {
  Record rec;
  rec.topic = shared_topic != nullptr ? *shared_topic : r.str();
  rec.id = r.u64();
  rec.timestamp = r.u64();
  const std::uint16_t n = r.u16();
  rec.fields.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    switch (static_cast<FieldTag>(r.u8())) {
      case FieldTag::i64:
        rec.fields.emplace_back(static_cast<std::int64_t>(r.u64()));
        break;
      case FieldTag::u64:
        rec.fields.emplace_back(r.u64());
        break;
      case FieldTag::f64:
        rec.fields.emplace_back(r.f64());
        break;
      case FieldTag::str:
        rec.fields.emplace_back(r.str());
        break;
      default:
        throw std::out_of_range("Record: unknown field tag");
    }
  }
  return rec;
}

}  // namespace

std::size_t serialized_size(const Record& r) {
  common::ByteWriter w;
  write_record(w, r, /*with_topic=*/true);
  return w.size();
}

std::vector<std::byte> serialize_batch(std::span<const Record> records) {
  common::ByteWriter w;
  const bool uniform =
      !records.empty() &&
      std::all_of(records.begin(), records.end(),
                  [&](const Record& r) { return r.topic == records[0].topic; });
  const std::uint32_t traced = static_cast<std::uint32_t>(std::count_if(
      records.begin(), records.end(),
      [](const Record& r) { return r.trace != 0; }));
  std::uint8_t layout = static_cast<std::uint8_t>(
      uniform ? BatchLayout::uniform_topic : BatchLayout::per_record_topic);
  if (traced != 0) layout |= kTraceTrailerFlag;
  w.u8(layout);
  if (uniform) w.str(records[0].topic);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& rec : records) write_record(w, rec, !uniform);
  if (traced != 0) {
    w.u32(traced);
    for (std::uint32_t i = 0; i < records.size(); ++i) {
      if (records[i].trace == 0) continue;
      w.u32(i);
      w.u64(records[i].trace);
    }
  }
  return w.take();
}

std::vector<Record> deserialize_batch(std::span<const std::byte> payload) {
  common::ByteReader r(payload);
  const std::uint8_t raw_layout = r.u8();
  const bool has_traces = (raw_layout & kTraceTrailerFlag) != 0;
  const auto layout = static_cast<BatchLayout>(raw_layout & ~kTraceTrailerFlag);
  if (layout != BatchLayout::uniform_topic &&
      layout != BatchLayout::per_record_topic) {
    throw std::out_of_range("Record batch: unknown layout");
  }
  std::string shared_topic;
  const bool uniform = layout == BatchLayout::uniform_topic;
  if (uniform) shared_topic = r.str();
  const std::uint32_t n = r.u32();
  std::vector<Record> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(read_record(r, uniform ? &shared_topic : nullptr));
  }
  if (has_traces) {
    const std::uint32_t traced = r.u32();
    for (std::uint32_t i = 0; i < traced; ++i) {
      const std::uint32_t index = r.u32();
      const std::uint64_t trace = r.u64();
      if (index >= out.size()) {
        throw std::out_of_range("Record batch: trace index out of range");
      }
      out[index].trace = trace;
    }
  }
  return out;
}

}  // namespace netalytics::nf
