// Flow-hash sampling (§3.3): "a sampling rate to apply at the monitor can
// be specified, which is enforced by hashing each packet's n-tuple to do
// sampling by flow, not packet". The rate is an atomic so the
// feedback-driven sampling loop (§4.2) can adjust it while the collector
// thread runs.
#pragma once

#include <atomic>
#include <cstdint>

namespace netalytics::nf {

class FlowSampler {
 public:
  explicit FlowSampler(double rate = 1.0, std::uint64_t seed = 0x5eed) noexcept
      : seed_(seed) {
    set_rate(rate);
  }

  /// Keep a packet iff its (bidirectional) flow hash falls under the rate
  /// threshold — all packets of a flow share the same fate.
  bool keep(std::uint64_t flow_hash) const noexcept {
    const std::uint64_t t = threshold_.load(std::memory_order_relaxed);
    if (t == ~std::uint64_t{0}) return true;  // sampling disabled
    // Re-mix with the sampler seed so the decision is independent of any
    // other use of the flow hash (e.g. worker dispatch).
    return common_mix(flow_hash ^ seed_) <= t;
  }

  void set_rate(double rate) noexcept {
    if (rate >= 1.0) {
      threshold_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    } else if (rate <= 0.0) {
      threshold_.store(0, std::memory_order_relaxed);
    } else {
      threshold_.store(
          static_cast<std::uint64_t>(rate * 18446744073709551615.0),
          std::memory_order_relaxed);
    }
  }

  double rate() const noexcept {
    const std::uint64_t t = threshold_.load(std::memory_order_relaxed);
    if (t == ~std::uint64_t{0}) return 1.0;
    return static_cast<double>(t) / 18446744073709551615.0;
  }

  /// Multiplicative decrease / additive increase used by the backpressure
  /// loop: halve under overload, recover slowly when healthy.
  void decrease() noexcept { set_rate(rate() * 0.5); }
  void increase(double step = 0.05, double cap = 1.0) noexcept {
    const double r = rate() + step;
    set_rate(r > cap ? cap : r);
  }

 private:
  static constexpr std::uint64_t common_mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::atomic<std::uint64_t> threshold_{~std::uint64_t{0}};
  const std::uint64_t seed_;
};

}  // namespace netalytics::nf
