#include "nf/parser.hpp"

#include <algorithm>
#include <stdexcept>

namespace netalytics::nf {

void PacketParser::on_tick(common::Timestamp, RecordSink&) {}

void PacketParser::on_close(common::Timestamp now, RecordSink& sink) {
  on_tick(now, sink);
}

ParserRegistry& ParserRegistry::instance() {
  static ParserRegistry registry;
  return registry;
}

bool ParserRegistry::register_parser(std::string name, ParserFactory factory) {
  if (contains(name)) return false;
  entries_.emplace_back(std::move(name), std::move(factory));
  return true;
}

bool ParserRegistry::contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [name](const auto& e) { return e.first == name; });
}

std::unique_ptr<PacketParser> ParserRegistry::make(std::string_view name) const {
  for (const auto& [n, factory] : entries_) {
    if (n == name) return factory();
  }
  throw std::invalid_argument("ParserRegistry: unknown parser '" +
                              std::string(name) + "'");
}

std::vector<std::string> ParserRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, _] : entries_) out.push_back(n);
  return out;
}

}  // namespace netalytics::nf
