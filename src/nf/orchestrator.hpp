// NFV orchestrator (§3.4): instantiates monitors "exactly when and where
// they are needed". In this in-process reproduction the orchestrator owns
// Monitor instances tagged with the host they are placed on; the core layer
// asks it to deploy/undeploy per query.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nf/monitor.hpp"

namespace netalytics::nf {

struct MonitorInfo {
  std::string id;
  std::string host;
  std::vector<std::string> parser_names;
};

class NfvOrchestrator {
 public:
  /// Instantiate a monitor on `host`; returns its id ("mon-<n>@<host>").
  std::string deploy(const std::string& host, MonitorConfig config, BatchSink sink);

  /// Look up a running monitor; nullptr if unknown.
  Monitor* find(const std::string& id) noexcept;

  /// Stop and destroy a monitor. Returns false if unknown.
  bool undeploy(const std::string& id);

  /// Stop and destroy everything (end of query / shutdown).
  void undeploy_all();

  std::vector<MonitorInfo> list() const;
  std::size_t count() const noexcept { return monitors_.size(); }

 private:
  struct Entry {
    std::string host;
    std::unique_ptr<Monitor> monitor;
  };
  std::map<std::string, Entry> monitors_;
  std::size_t next_id_ = 0;
};

}  // namespace netalytics::nf
