// The NetAlytics monitor (§5.1-5.2, Fig. 3): Collector -> per-parser SPSC
// descriptor queues -> parser workers -> output interface. Design pillars
// from the paper, all present here:
//   * zero-copy: queues carry refcounted packet descriptors, never bytes;
//   * lockless: the hot path uses SPSC rings only;
//   * multi-level queuing: an RX ring feeds per-worker rings, one ring and
//     one parser instance per worker thread;
//   * batching: bursts at every ring hop and batched record output;
//   * sampling: flow-hash sampling drops early, before any parser work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/spsc_ring.hpp"
#include "net/packet.hpp"
#include "nf/output.hpp"
#include "nf/parser.hpp"
#include "nf/sampler.hpp"

namespace netalytics::nf {

/// Fault sites the monitor checks when a FaultPlan is installed:
/// - nf.ring.overflow:   the RX ring pretends to be full (packet dropped,
///   counted in rx_dropped) — in inject() and inline process().
/// - nf.worker.overflow: a worker ring pretends to be full (counted in
///   worker_dropped) — in dispatch().
/// - nf.parser.throw:    the parser throws mid-packet; the monitor catches,
///   counts parser_errors, and keeps going.
inline constexpr std::string_view kFaultRxOverflow = "nf.ring.overflow";
inline constexpr std::string_view kFaultWorkerOverflow = "nf.worker.overflow";
inline constexpr std::string_view kFaultParserThrow = "nf.parser.throw";

struct ParserSpec {
  std::string name;
  std::size_t workers = 1;  // worker threads (and parser instances)
};

struct MonitorConfig {
  std::vector<ParserSpec> parsers;
  std::size_t rx_ring_capacity = 8192;
  std::size_t worker_ring_capacity = 4096;
  std::size_t burst_size = 32;
  std::size_t output_batch_records = 64;
  double sample_rate = 1.0;
  /// Interval between parser on_tick calls (aggregating parsers flush here).
  common::Duration tick_interval = 100 * common::kMillisecond;
};

struct MonitorStats {
  std::uint64_t rx_packets = 0;       // packets offered to the monitor
  std::uint64_t rx_dropped = 0;       // RX ring full
  std::uint64_t sampled_out = 0;      // dropped by the flow sampler
  std::uint64_t dispatched = 0;       // descriptors enqueued to workers
  std::uint64_t worker_dropped = 0;   // worker ring full
  std::uint64_t parsed = 0;           // packets run through a parser
  std::uint64_t records = 0;          // records emitted (all workers)
  std::uint64_t record_bytes = 0;     // serialized record bytes shipped
  std::uint64_t raw_bytes = 0;        // raw bytes of parsed packets
  std::uint64_t parser_errors = 0;    // packets whose parser threw (survived)
};

/// A software NF monitor. Two execution modes:
///  - threaded: start()/stop() spawn the collector and worker threads and
///    packets are delivered with inject() (used by throughput benches);
///  - inline: process() runs collect+parse on the caller's thread (used by
///    deterministic simulations and tests).
class Monitor {
 public:
  Monitor(MonitorConfig config, BatchSink sink);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // ---- threaded mode ----
  void start();
  /// Stop threads, drain rings, flush outputs.
  void stop();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }
  /// Offer a packet to the RX ring; false = dropped (ring full).
  bool inject(net::PacketPtr pkt) noexcept;

  // ---- inline mode ----
  /// Decode/sample/parse one raw frame synchronously on this thread.
  void process(std::span<const std::byte> frame, common::Timestamp ts);
  /// Run aggregating parsers' periodic flush (inline mode).
  void tick(common::Timestamp now);
  /// Flush parser state and pending output batches (inline mode).
  void close(common::Timestamp now);

  MonitorStats stats() const;
  double sample_rate() const noexcept { return sampler_.rate(); }
  /// Feedback-driven sampling hook (§4.2).
  void set_sample_rate(double rate) noexcept { sampler_.set_rate(rate); }
  void on_backpressure() noexcept { sampler_.decrease(); }

  /// Install (or clear) a chaos plan. Call before start()/first process().
  void install_faults(common::FaultPlan* plan) noexcept { faults_ = plan; }

  const MonitorConfig& config() const noexcept { return config_; }

 private:
  struct WorkItem {
    net::PacketPtr pkt;
    net::DecodedPacket decoded;  // spans reference pkt's buffer
  };

  struct Worker {
    std::unique_ptr<PacketParser> parser;
    std::unique_ptr<common::SpscRing<WorkItem>> ring;
    std::unique_ptr<OutputInterface> output;
    std::thread thread;
    std::atomic<std::uint64_t> parsed{0};
    std::atomic<std::uint64_t> raw_bytes{0};
  };

  struct ParserGroup {
    std::string name;
    std::vector<std::unique_ptr<Worker>> workers;
  };

  void collector_loop();
  void worker_loop(Worker& w);
  /// Fan one decoded packet out to every parser group (flow-id dispatch).
  void dispatch(const net::PacketPtr& pkt, const net::DecodedPacket& decoded);
  /// Run one packet through a parser, absorbing (and counting) anything it
  /// throws — injected or real — so one bad packet never kills a worker.
  void parse_guarded(Worker& w, const net::DecodedPacket& decoded,
                     std::size_t raw_size);

  MonitorConfig config_;
  BatchSink sink_;
  common::FaultPlan* faults_ = nullptr;
  FlowSampler sampler_;
  common::SpscRing<net::PacketPtr> rx_ring_;
  std::vector<ParserGroup> groups_;

  std::atomic<bool> running_{false};
  std::atomic<bool> collector_done_{false};
  std::thread collector_thread_;

  std::atomic<std::uint64_t> rx_packets_{0};
  std::atomic<std::uint64_t> rx_dropped_{0};
  std::atomic<std::uint64_t> sampled_out_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> worker_dropped_{0};
  std::atomic<std::uint64_t> parser_errors_{0};
};

}  // namespace netalytics::nf
