// The NetAlytics monitor (§5.1-5.2, Fig. 3): Collector -> per-parser SPSC
// descriptor queues -> parser workers -> output interface. Design pillars
// from the paper, all present here:
//   * zero-copy: queues carry refcounted packet descriptors, never bytes;
//   * lockless: the hot path uses SPSC rings only;
//   * multi-level queuing: an RX ring feeds per-worker rings, one ring and
//     one parser instance per worker thread;
//   * batching: bursts at every ring hop and batched record output;
//   * sampling: flow-hash sampling drops early, before any parser work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/spsc_ring.hpp"
#include "net/packet.hpp"
#include "nf/output.hpp"
#include "nf/parser.hpp"
#include "nf/sampler.hpp"

namespace netalytics::nf {

/// Fault sites the monitor checks when a FaultPlan is installed:
/// - nf.ring.overflow:   the RX ring pretends to be full (packet dropped,
///   counted in rx_dropped) — in inject() and inline process().
/// - nf.worker.overflow: a worker ring pretends to be full (counted in
///   worker_dropped) — in dispatch().
/// - nf.parser.throw:    the parser throws mid-packet; the monitor catches,
///   counts parser_errors, and keeps going.
inline constexpr std::string_view kFaultRxOverflow = "nf.ring.overflow";
inline constexpr std::string_view kFaultWorkerOverflow = "nf.worker.overflow";
inline constexpr std::string_view kFaultParserThrow = "nf.parser.throw";

struct ParserSpec {
  std::string name;
  std::size_t workers = 1;  // worker threads (and parser instances)
};

struct MonitorConfig {
  std::vector<ParserSpec> parsers;
  std::size_t rx_ring_capacity = 8192;
  std::size_t worker_ring_capacity = 4096;
  std::size_t burst_size = 32;
  std::size_t output_batch_records = 64;
  double sample_rate = 1.0;
  /// Interval between parser on_tick calls (aggregating parsers flush here).
  common::Duration tick_interval = 100 * common::kMillisecond;

  /// Registry the monitor's counters live in. Null = the monitor owns a
  /// private registry (standalone use); the engine always binds its own and
  /// prefixes per query/monitor ("q<id>.mon<j>").
  common::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "nf.monitor";
  /// Optional per-query pipeline tracer; forwarded to every worker's output
  /// interface for emit-stage (batching delay) stamps.
  common::StageTracer* tracer = nullptr;
  /// Optional trace-provenance recorder: a deterministic 1-in-N of admitted
  /// packets get a trace id stamped at ingest and carried onto the records
  /// their parsers emit.
  common::TraceRecorder* trace_recorder = nullptr;
  /// Optional drop ledger: every discard the monitor makes (ring overflow,
  /// decode failure, sampler rejection, worker overflow, parser error,
  /// parse with no output) is attributed to its cause.
  common::DropLedger* drop_ledger = nullptr;
};

/// Thin typed view over the monitor's registry counters. The numbers live
/// in the MetricsRegistry; this struct is a convenience copy for tests and
/// reports, not a parallel store.
struct MonitorStats {
  std::uint64_t rx_packets = 0;       // packets offered to the monitor
  std::uint64_t rx_dropped = 0;       // RX ring full
  std::uint64_t decode_failed = 0;    // frames that failed to decode
  std::uint64_t sampled_out = 0;      // dropped by the flow sampler
  std::uint64_t dispatched = 0;       // descriptors enqueued to workers
  std::uint64_t worker_dropped = 0;   // worker ring full
  std::uint64_t parsed = 0;           // packets run through a parser
  std::uint64_t records = 0;          // records emitted (all workers)
  std::uint64_t record_bytes = 0;     // serialized record bytes shipped
  std::uint64_t raw_bytes = 0;        // raw bytes of parsed packets
  std::uint64_t parser_errors = 0;    // packets whose parser threw (survived)
};

/// A software NF monitor. Two execution modes:
///  - threaded: start()/stop() spawn the collector and worker threads and
///    packets are delivered with inject() (used by throughput benches);
///  - inline: process() runs collect+parse on the caller's thread (used by
///    deterministic simulations and tests).
class Monitor {
 public:
  Monitor(MonitorConfig config, BatchSink sink);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // ---- threaded mode ----
  void start();
  /// Stop threads, drain rings, flush outputs.
  void stop();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }
  /// Offer a packet to the RX ring; false = dropped (ring full).
  bool inject(net::PacketPtr pkt) noexcept;

  // ---- inline mode ----
  /// Decode/sample/parse one raw frame synchronously on this thread.
  void process(std::span<const std::byte> frame, common::Timestamp ts);
  /// Run aggregating parsers' periodic flush (inline mode).
  void tick(common::Timestamp now);
  /// Flush parser state and pending output batches (inline mode).
  void close(common::Timestamp now);

  MonitorStats stats() const;
  double sample_rate() const noexcept { return sampler_.rate(); }
  /// Feedback-driven sampling hook (§4.2).
  void set_sample_rate(double rate) noexcept { sampler_.set_rate(rate); }
  void on_backpressure() noexcept { sampler_.decrease(); }

  /// Install (or clear) a chaos plan. Call before start()/first process().
  void install_faults(common::FaultPlan* plan) noexcept { faults_ = plan; }

  const MonitorConfig& config() const noexcept { return config_; }

 private:
  struct WorkItem {
    net::PacketPtr pkt;
    net::DecodedPacket decoded;  // spans reference pkt's buffer
    std::uint64_t trace = 0;     // provenance id (0 = untraced)
  };

  struct Worker {
    std::unique_ptr<PacketParser> parser;
    std::unique_ptr<common::SpscRing<WorkItem>> ring;
    std::unique_ptr<OutputInterface> output;
    std::thread thread;
  };

  struct ParserGroup {
    std::string name;
    std::vector<std::unique_ptr<Worker>> workers;
  };

  void collector_loop();
  void worker_loop(Worker& w);
  /// Fan one decoded packet out to every parser group (flow-id dispatch).
  void dispatch(const net::PacketPtr& pkt, const net::DecodedPacket& decoded,
                std::uint64_t trace);
  /// Run one packet through a parser, absorbing (and counting) anything it
  /// throws — injected or real — so one bad packet never kills a worker.
  /// `trace` tags the records this packet produces (0 = untraced).
  void parse_guarded(Worker& w, const net::DecodedPacket& decoded,
                     std::size_t raw_size, std::uint64_t trace);
  void drop(common::DropCause cause, common::Counter& counter) noexcept {
    counter.inc();
    if (config_.drop_ledger != nullptr) config_.drop_ledger->add(cause);
  }

  MonitorConfig config_;
  BatchSink sink_;
  common::FaultPlan* faults_ = nullptr;
  FlowSampler sampler_;
  common::SpscRing<net::PacketPtr> rx_ring_;
  std::vector<ParserGroup> groups_;

  std::atomic<bool> running_{false};
  std::atomic<bool> collector_done_{false};
  std::thread collector_thread_;

  // Counters live in the bound (or owned fallback) registry; the monitor
  // keeps resolved pointers so the hot path stays one relaxed add.
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::MetricsRegistry* metrics_ = nullptr;
  common::Counter* rx_packets_ = nullptr;
  common::Counter* rx_dropped_ = nullptr;
  common::Counter* decode_failed_ = nullptr;
  common::Counter* sampled_out_ = nullptr;
  common::Counter* dispatched_ = nullptr;
  common::Counter* worker_dropped_ = nullptr;
  common::Counter* parser_errors_ = nullptr;
  common::Counter* parsed_ = nullptr;
  common::Counter* parse_no_output_ = nullptr;
  common::Counter* parse_with_output_ = nullptr;
  common::Counter* extra_records_ = nullptr;
  common::Counter* tick_records_ = nullptr;
  common::Counter* raw_bytes_ = nullptr;
  common::Counter* records_ = nullptr;
  common::Counter* record_bytes_ = nullptr;
  common::Counter* batches_ = nullptr;
  common::Gauge* rx_depth_ = nullptr;            // threaded mode ring depth
  common::HistogramMetric* parse_time_ = nullptr;  // wall-clock, threaded mode
};

}  // namespace netalytics::nf
