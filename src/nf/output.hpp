// Output interface (§5.2): "reorganizes processed data in a specific format
// and outputs the message via a TCP socket or Kafka producer". Records are
// grouped by topic and shipped in batches to cut per-tuple overhead
// ("NetAlytics further reduces the overhead of transmitting data tuples by
// aggregating tuples produced by all parsers and having the monitor send
// them in batches", §3.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "nf/parser.hpp"
#include "nf/record.hpp"

namespace netalytics::nf {

/// What a shipped batch carries besides its serialized bytes: the record
/// count (exact drop accounting downstream works in records, not batches)
/// and the trace ids of the sampled records inside it. Views are only valid
/// for the duration of the sink call.
struct BatchInfo {
  std::size_t records = 0;
  /// Virtual ship time; 0 = unknown (threaded mode).
  common::Timestamp ship_time = 0;
  std::span<const std::uint64_t> traces;
};

/// Downstream of the monitor: the core layer wires this to an mq producer.
/// Must be callable from multiple worker threads. The topic view is only
/// valid for the duration of the call.
using BatchSink = std::function<void(std::string_view topic,
                                     std::vector<std::byte> payload,
                                     const BatchInfo& info)>;

struct OutputStats {
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes = 0;
};

/// Per-worker batching stage. emit()/flush() are single-threaded (each
/// worker owns one instance); stats() may be read from other threads.
class OutputInterface final : public RecordSink {
 public:
  OutputInterface(BatchSink sink, std::size_t batch_records = 64);

  void emit(Record record) override;

  /// Ship all partially-filled batches. `now` (virtual time) stamps the
  /// emit-stage latency of the shipped records; 0 means "time unknown"
  /// (threaded paths), which skips the stamp.
  void flush(common::Timestamp now = 0);

  /// Route batching-delay stamps into `tracer` (emit stage). The tracer
  /// must outlive this interface.
  void set_tracer(common::StageTracer* tracer) noexcept { tracer_ = tracer; }

  /// Route per-trace emit spans into `recorder` (must outlive this
  /// interface). Null disables span recording.
  void set_trace_recorder(common::TraceRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Provenance context for subsequently emitted records: the monitor sets
  /// this to the current packet's trace id (0 = untraced) before running
  /// the parser, so every record the parser emits inherits it.
  void set_current_trace(std::uint64_t trace) noexcept {
    current_trace_ = trace;
  }

  /// Mirror ship() accounting into registry counters that outlive this
  /// interface (all workers of a monitor share the same three). Null
  /// pointers are allowed and skipped.
  void bind_counters(common::Counter* records, common::Counter* bytes,
                     common::Counter* batches) noexcept {
    records_ctr_ = records;
    bytes_ctr_ = bytes;
    batches_ctr_ = batches;
  }

  OutputStats stats() const noexcept {
    return {records_.load(std::memory_order_relaxed),
            batches_.load(std::memory_order_relaxed),
            bytes_.load(std::memory_order_relaxed)};
  }

  /// Records emitted so far, including ones still pending in open batches.
  /// stats().records lags this by the pending count (it counts at ship()).
  std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  void ship(std::string_view topic, std::vector<Record>& batch,
            common::Timestamp ship_time);

  BatchSink sink_;
  common::StageTracer* tracer_ = nullptr;
  common::TraceRecorder* recorder_ = nullptr;
  std::uint64_t current_trace_ = 0;
  std::vector<std::uint64_t> trace_scratch_;  // reused per ship()
  common::Counter* records_ctr_ = nullptr;
  common::Counter* bytes_ctr_ = nullptr;
  common::Counter* batches_ctr_ = nullptr;
  std::size_t batch_records_;
  std::map<std::string, std::vector<Record>, std::less<>> pending_;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> emitted_{0};
};

}  // namespace netalytics::nf
