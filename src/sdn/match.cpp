#include "sdn/match.hpp"

namespace netalytics::sdn {

bool FlowMatch::matches(const net::DecodedPacket& pkt,
                        std::uint32_t packet_in_port) const {
  if (in_port && *in_port != packet_in_port) return false;
  if (eth_type && pkt.eth.ether_type != *eth_type) return false;

  // Any L3/L4 field set requires the packet to actually have that layer.
  const bool needs_ip = ip_proto || src_prefix || dst_prefix || src_port || dst_port;
  if (needs_ip && !pkt.has_ipv4) return false;
  if (ip_proto && pkt.ipv4.protocol != *ip_proto) return false;
  if (src_prefix && !src_prefix->contains(pkt.ipv4.src)) return false;
  if (dst_prefix && !dst_prefix->contains(pkt.ipv4.dst)) return false;

  const bool needs_l4 = src_port || dst_port;
  if (needs_l4 && !pkt.has_tcp && !pkt.has_udp) return false;
  if (src_port && pkt.five_tuple.src_port != *src_port) return false;
  if (dst_port && pkt.five_tuple.dst_port != *dst_port) return false;
  return true;
}

bool FlowMatch::is_wildcard() const noexcept {
  return !in_port && !eth_type && !ip_proto && !src_prefix && !dst_prefix &&
         !src_port && !dst_port;
}

int FlowMatch::specificity() const noexcept {
  int n = 0;
  n += in_port.has_value();
  n += eth_type.has_value();
  n += ip_proto.has_value();
  n += src_prefix.has_value();
  n += dst_prefix.has_value();
  n += src_port.has_value();
  n += dst_port.has_value();
  return n;
}

std::string FlowMatch::to_string() const {
  if (is_wildcard()) return "match(*)";
  std::string out = "match(";
  auto field = [&out](const std::string& text) {
    if (out.back() != '(') out += ", ";
    out += text;
  };
  if (in_port) field("in_port=" + std::to_string(*in_port));
  if (eth_type) field("eth_type=0x" + std::to_string(*eth_type));
  if (ip_proto) field("proto=" + std::to_string(*ip_proto));
  if (src_prefix) field("src=" + net::format_ipv4_prefix(*src_prefix));
  if (dst_prefix) field("dst=" + net::format_ipv4_prefix(*dst_prefix));
  if (src_port) field("sport=" + std::to_string(*src_port));
  if (dst_port) field("dport=" + std::to_string(*dst_port));
  out += ")";
  return out;
}

FlowMatch match_from_endpoint(net::Ipv4Prefix src, std::optional<net::Port> sport) {
  FlowMatch m;
  m.eth_type = net::kEtherTypeIpv4;
  m.src_prefix = src;
  m.src_port = sport;
  return m;
}

FlowMatch match_to_endpoint(net::Ipv4Prefix dst, std::optional<net::Port> dport) {
  FlowMatch m;
  m.eth_type = net::kEtherTypeIpv4;
  m.dst_prefix = dst;
  m.dst_port = dport;
  return m;
}

}  // namespace netalytics::sdn
