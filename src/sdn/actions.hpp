// OpenFlow-style actions. Query instantiation (§3.4) builds "an action list
// with both the standard output port leading to the destination and a
// secondary output leading to the monitor" — mirroring copies packets off
// the critical path without adding latency.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace netalytics::sdn {

/// Forward out a port (the normal delivery path).
struct OutputAction {
  std::uint32_t port = 0;
  bool operator==(const OutputAction&) const = default;
};

/// Copy the packet out a port (monitor mirror). Semantically Output on a
/// second port; kept distinct so mirror traffic is accounted separately.
struct MirrorAction {
  std::uint32_t port = 0;
  bool operator==(const MirrorAction&) const = default;
};

struct DropAction {
  bool operator==(const DropAction&) const = default;
};

/// Punt to the controller (reactive path).
struct ToControllerAction {
  bool operator==(const ToControllerAction&) const = default;
};

using Action = std::variant<OutputAction, MirrorAction, DropAction, ToControllerAction>;
using ActionList = std::vector<Action>;

std::string format_action(const Action& a);
std::string format_actions(const ActionList& actions);

}  // namespace netalytics::sdn
