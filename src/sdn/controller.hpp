// The centralized SDN controller (§2.1). Owns the switch registry,
// exposes the northbound API the query interpreter calls ("the query
// interpreter combines the match and action criteria to build a rule
// transmitted to the SDN controller via its Northbound interface", §3.4),
// and serves the reactive packet-in path with a pluggable forwarding
// application.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sdn/switch.hpp"

namespace netalytics::sdn {

/// Decides default forwarding for a miss (e.g. L2 learning or topology
/// routing). Returns the action list for the flow.
using ForwardingApp = std::function<ActionList(const PacketIn&)>;

class Controller final : public PacketInHandler {
 public:
  /// `default_app` handles misses; if omitted, misses drop.
  explicit Controller(ForwardingApp default_app = nullptr);

  /// Attach a switch; the controller becomes its packet-in handler.
  void register_switch(SdnSwitch& sw);
  SdnSwitch* find_switch(SwitchId id) noexcept;

  // ---- Northbound API -----------------------------------------------------

  /// Proactively install a rule. Returns the cookie, or nullopt if the
  /// switch is unknown or its table is full.
  std::optional<std::uint64_t> install_rule(SwitchId sw, FlowRule rule,
                                            common::Timestamp now);

  /// Install the NetAlytics mirror pair for a monitored flow: the matched
  /// traffic keeps flowing out `normal_port` and a copy goes to
  /// `monitor_port` (§3.4). When another query already mirrors the same
  /// (priority, match), the controller merges both monitors into one rule
  /// (a switch applies a single matching rule, so stacked rules would
  /// starve one query). Returns a controller-level cookie that removes
  /// only this query's mirror.
  std::optional<std::uint64_t> install_mirror(SwitchId sw, FlowMatch match,
                                              std::uint32_t normal_port,
                                              std::uint32_t monitor_port,
                                              int priority, common::Timestamp now,
                                              common::Duration hard_timeout = 0);

  /// Remove by cookie: mirror cookies detach one monitor from a merged
  /// rule; plain cookies remove the switch rule directly.
  bool remove_rule(SwitchId sw, std::uint64_t cookie);

  /// Remove a set of rules (end of a query's LIMIT window).
  void remove_rules(const std::vector<std::pair<SwitchId, std::uint64_t>>& cookies);

  /// Collect flow stats from one switch.
  std::vector<FlowStatsEntry> flow_stats(SwitchId sw) const;

  // ---- Reactive path ------------------------------------------------------
  ActionList on_packet_in(const PacketIn& event) override;

  std::uint64_t packet_in_count() const noexcept { return packet_ins_; }
  std::uint64_t flow_mods_sent() const noexcept { return flow_mods_; }

 private:
  /// Controller-side state of one merged mirror rule.
  struct MirrorEntry {
    SwitchId sw = 0;
    int priority = 0;
    FlowMatch match;
    std::uint32_t normal_port = 0;
    common::Duration hard_timeout = 0;
    std::uint64_t rule_cookie = 0;  // current rule on the switch
    /// (controller cookie, monitor port) per attached query.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> mirrors;
  };

  /// Reinstall the entry's rule reflecting its current mirror set.
  bool sync_entry(MirrorEntry& entry, common::Timestamp now);

  ForwardingApp default_app_;
  std::map<SwitchId, SdnSwitch*> switches_;
  std::vector<MirrorEntry> mirror_entries_;
  /// Controller cookies live in a distinct space from switch rule cookies.
  static constexpr std::uint64_t kMirrorCookieBase = 1ULL << 48;
  std::uint64_t next_mirror_cookie_ = kMirrorCookieBase;
  std::uint64_t packet_ins_ = 0;
  std::uint64_t flow_mods_ = 0;
};

}  // namespace netalytics::sdn
