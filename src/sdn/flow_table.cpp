#include "sdn/flow_table.hpp"

#include <algorithm>

namespace netalytics::sdn {

FlowTable::FlowTable(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<std::uint64_t> FlowTable::install(FlowRule rule, common::Timestamp now) {
  rule.cookie = next_cookie_++;
  rule.install_time = now;
  rule.packet_count = 0;
  rule.byte_count = 0;

  // Identical (priority, match) replaces in place (OpenFlow modify).
  const auto existing = std::find_if(
      rules_.begin(), rules_.end(), [&rule](const FlowRule& r) {
        return r.priority == rule.priority && r.match == rule.match;
      });
  if (existing != rules_.end()) {
    const std::uint64_t cookie = rule.cookie;
    *existing = std::move(rule);
    return cookie;
  }

  if (rules_.size() >= capacity_) return std::nullopt;
  const std::uint64_t cookie = rule.cookie;
  const auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule.priority,
      [](int priority, const FlowRule& r) { return priority > r.priority; });
  rules_.insert(pos, std::move(rule));
  return cookie;
}

bool FlowTable::remove(std::uint64_t cookie) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [cookie](const FlowRule& r) { return r.cookie == cookie; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

FlowRule* FlowTable::lookup(const net::DecodedPacket& pkt, std::uint32_t in_port) {
  for (auto& rule : rules_) {  // sorted by priority desc: first hit wins
    if (rule.match.matches(pkt, in_port)) return &rule;
  }
  return nullptr;
}

std::size_t FlowTable::expire(common::Timestamp now) {
  const auto before = rules_.size();
  std::erase_if(rules_, [now](const FlowRule& r) {
    return r.hard_timeout != 0 && now >= r.install_time + r.hard_timeout;
  });
  return before - rules_.size();
}

std::string format_action(const Action& a) {
  return std::visit(
      [](const auto& act) -> std::string {
        using T = std::decay_t<decltype(act)>;
        if constexpr (std::is_same_v<T, OutputAction>) {
          return "output:" + std::to_string(act.port);
        } else if constexpr (std::is_same_v<T, MirrorAction>) {
          return "mirror:" + std::to_string(act.port);
        } else if constexpr (std::is_same_v<T, DropAction>) {
          return "drop";
        } else {
          return "controller";
        }
      },
      a);
}

std::string format_actions(const ActionList& actions) {
  std::string out = "[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ", ";
    out += format_action(actions[i]);
  }
  out += "]";
  return out;
}

}  // namespace netalytics::sdn
