// OpenFlow-style match (§2.1): flows "are typically matched by a set of IP
// header fields"; unset fields are wildcards. The query compiler translates
// FROM/TO clauses into these (§3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/decode.hpp"
#include "net/ip.hpp"

namespace netalytics::sdn {

struct FlowMatch {
  std::optional<std::uint32_t> in_port;
  std::optional<std::uint16_t> eth_type;
  std::optional<std::uint8_t> ip_proto;
  std::optional<net::Ipv4Prefix> src_prefix;
  std::optional<net::Ipv4Prefix> dst_prefix;
  std::optional<net::Port> src_port;
  std::optional<net::Port> dst_port;

  bool operator==(const FlowMatch&) const = default;

  /// True when every set field matches the packet.
  bool matches(const net::DecodedPacket& pkt, std::uint32_t packet_in_port) const;

  /// True when no field is set (matches everything).
  bool is_wildcard() const noexcept;

  /// Number of set fields; a coarse specificity measure for debugging.
  int specificity() const noexcept;

  std::string to_string() const;
};

/// Convenience builders for the common query-compiler shapes.
FlowMatch match_from_endpoint(net::Ipv4Prefix src, std::optional<net::Port> sport);
FlowMatch match_to_endpoint(net::Ipv4Prefix dst, std::optional<net::Port> dport);

}  // namespace netalytics::sdn
