#include "sdn/controller.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace netalytics::sdn {

Controller::Controller(ForwardingApp default_app)
    : default_app_(std::move(default_app)) {}

void Controller::register_switch(SdnSwitch& sw) {
  switches_[sw.id()] = &sw;
  sw.set_packet_in_handler(this);
}

SdnSwitch* Controller::find_switch(SwitchId id) noexcept {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : it->second;
}

std::optional<std::uint64_t> Controller::install_rule(SwitchId sw, FlowRule rule,
                                                      common::Timestamp now) {
  SdnSwitch* target = find_switch(sw);
  if (target == nullptr) return std::nullopt;
  FlowMod mod;
  mod.command = FlowMod::Command::add;
  mod.switch_id = sw;
  mod.rule = std::move(rule);
  ++flow_mods_;
  return target->apply(mod, now);
}

bool Controller::sync_entry(MirrorEntry& entry, common::Timestamp now) {
  SdnSwitch* target = find_switch(entry.sw);
  if (target == nullptr) return false;
  FlowRule rule;
  rule.priority = entry.priority;
  rule.match = entry.match;
  rule.actions = {OutputAction{entry.normal_port}};
  for (const auto& [cookie, port] : entry.mirrors) {
    rule.actions.push_back(MirrorAction{port});
  }
  rule.hard_timeout = entry.hard_timeout;
  // Same (priority, match) replaces the previous incarnation in place.
  FlowMod mod;
  mod.command = FlowMod::Command::add;
  mod.switch_id = entry.sw;
  mod.rule = std::move(rule);
  ++flow_mods_;
  const auto cookie = target->apply(mod, now);
  if (!cookie) return false;
  entry.rule_cookie = *cookie;
  return true;
}

std::optional<std::uint64_t> Controller::install_mirror(
    SwitchId sw, FlowMatch match, std::uint32_t normal_port,
    std::uint32_t monitor_port, int priority, common::Timestamp now,
    common::Duration hard_timeout) {
  // Merge into an existing entry when another query mirrors the same match.
  MirrorEntry* entry = nullptr;
  for (auto& e : mirror_entries_) {
    if (e.sw == sw && e.priority == priority && e.match == match) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    MirrorEntry fresh;
    fresh.sw = sw;
    fresh.priority = priority;
    fresh.match = std::move(match);
    fresh.normal_port = normal_port;
    fresh.hard_timeout = hard_timeout;
    mirror_entries_.push_back(std::move(fresh));
    entry = &mirror_entries_.back();
  } else {
    // A shared rule may not expire under the other query's feet; the
    // longest-lived owner wins (0 = permanent).
    if (hard_timeout == 0 || entry->hard_timeout == 0) {
      entry->hard_timeout = 0;
    } else {
      entry->hard_timeout = std::max(entry->hard_timeout, hard_timeout);
    }
  }

  const std::uint64_t cookie = next_mirror_cookie_++;
  entry->mirrors.emplace_back(cookie, monitor_port);
  common::log_info("sdn", "mirror on sw", sw, " ", entry->match.to_string(),
                   " ports=", entry->mirrors.size());
  if (!sync_entry(*entry, now)) {
    entry->mirrors.pop_back();
    if (entry->mirrors.empty()) mirror_entries_.pop_back();
    return std::nullopt;
  }
  return cookie;
}

bool Controller::remove_rule(SwitchId sw, std::uint64_t cookie) {
  if (cookie >= kMirrorCookieBase) {
    for (std::size_t i = 0; i < mirror_entries_.size(); ++i) {
      MirrorEntry& entry = mirror_entries_[i];
      if (entry.sw != sw) continue;
      const auto it = std::find_if(
          entry.mirrors.begin(), entry.mirrors.end(),
          [cookie](const auto& m) { return m.first == cookie; });
      if (it == entry.mirrors.end()) continue;
      entry.mirrors.erase(it);
      if (entry.mirrors.empty()) {
        SdnSwitch* target = find_switch(sw);
        if (target != nullptr) {
          FlowMod mod;
          mod.command = FlowMod::Command::remove;
          mod.switch_id = sw;
          mod.cookie = entry.rule_cookie;
          ++flow_mods_;
          target->apply(mod, 0);
        }
        mirror_entries_.erase(mirror_entries_.begin() +
                              static_cast<std::ptrdiff_t>(i));
      } else {
        sync_entry(entry, 0);
      }
      return true;
    }
    return false;
  }

  SdnSwitch* target = find_switch(sw);
  if (target == nullptr) return false;
  FlowMod mod;
  mod.command = FlowMod::Command::remove;
  mod.switch_id = sw;
  mod.cookie = cookie;
  ++flow_mods_;
  return target->apply(mod, 0).has_value();
}

void Controller::remove_rules(
    const std::vector<std::pair<SwitchId, std::uint64_t>>& cookies) {
  for (const auto& [sw, cookie] : cookies) remove_rule(sw, cookie);
}

std::vector<FlowStatsEntry> Controller::flow_stats(SwitchId sw) const {
  std::vector<FlowStatsEntry> out;
  const auto it = switches_.find(sw);
  if (it == switches_.end()) return out;
  for (const auto& rule : it->second->table().rules()) {
    out.push_back({rule.cookie, rule.priority, rule.packet_count, rule.byte_count});
  }
  return out;
}

ActionList Controller::on_packet_in(const PacketIn& event) {
  ++packet_ins_;
  if (!default_app_) return {};
  return default_app_(event);
}

}  // namespace netalytics::sdn
