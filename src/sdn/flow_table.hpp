// Priority-ordered flow table with per-rule statistics and timeouts —
// one per switch.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "sdn/actions.hpp"
#include "sdn/match.hpp"

namespace netalytics::sdn {

struct FlowRule {
  std::uint64_t cookie = 0;  // assigned by the table on install
  int priority = 0;          // higher wins
  FlowMatch match;
  ActionList actions;
  common::Duration hard_timeout = 0;  // 0 = permanent
  // Statistics maintained by the switch.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  common::Timestamp install_time = 0;
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity = 4096);

  /// Install a rule; returns its cookie, or nullopt when the table is full.
  /// A rule with an identical (priority, match) replaces the old one.
  std::optional<std::uint64_t> install(FlowRule rule, common::Timestamp now);

  bool remove(std::uint64_t cookie);

  /// Highest-priority matching rule; nullptr on miss. The caller updates
  /// the returned rule's counters.
  FlowRule* lookup(const net::DecodedPacket& pkt, std::uint32_t in_port);

  /// Drop rules whose hard timeout elapsed; returns how many expired.
  std::size_t expire(common::Timestamp now);

  std::size_t size() const noexcept { return rules_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const std::vector<FlowRule>& rules() const noexcept { return rules_; }

 private:
  std::size_t capacity_;
  std::vector<FlowRule> rules_;  // kept sorted by priority desc
  std::uint64_t next_cookie_ = 1;
};

}  // namespace netalytics::sdn
