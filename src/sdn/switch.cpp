#include "sdn/switch.hpp"

#include "common/logging.hpp"
#include "net/decode.hpp"

namespace netalytics::sdn {

SdnSwitch::SdnSwitch(SwitchId id, std::size_t table_capacity)
    : id_(id), table_(table_capacity) {}

void SdnSwitch::connect_port(std::uint32_t port, PortSink sink) {
  ports_[port] = std::move(sink);
}

void SdnSwitch::handle_packet(std::uint32_t in_port,
                              std::span<const std::byte> frame,
                              common::Timestamp ts) {
  ++stats_.rx_packets;
  auto decoded = net::decode_packet(frame);
  if (!decoded) {
    ++stats_.dropped;
    return;
  }
  decoded->timestamp = ts;

  FlowRule* rule = table_.lookup(*decoded, in_port);
  if (rule != nullptr) {
    ++stats_.matched;
    ++rule->packet_count;
    rule->byte_count += frame.size();
    run_actions(rule->actions, frame, ts);
    return;
  }

  ++stats_.missed;
  if (handler_ == nullptr) {
    ++stats_.dropped;
    return;
  }
  PacketIn event;
  event.switch_id = id_;
  event.in_port = in_port;
  event.timestamp = ts;
  event.packet = *decoded;
  run_actions(handler_->on_packet_in(event), frame, ts);
}

std::optional<std::uint64_t> SdnSwitch::apply(const FlowMod& mod,
                                              common::Timestamp now) {
  if (mod.command == FlowMod::Command::add) {
    return table_.install(mod.rule, now);
  }
  return table_.remove(mod.cookie) ? std::optional<std::uint64_t>{1} : std::nullopt;
}

void SdnSwitch::run_actions(const ActionList& actions,
                            std::span<const std::byte> frame,
                            common::Timestamp ts) {
  if (actions.empty()) {
    ++stats_.dropped;
    return;
  }
  for (const auto& action : actions) {
    std::visit(
        [&](const auto& act) {
          using T = std::decay_t<decltype(act)>;
          if constexpr (std::is_same_v<T, OutputAction>) {
            const auto it = ports_.find(act.port);
            if (it != ports_.end()) {
              ++stats_.forwarded;
              it->second(frame, ts);
            } else {
              ++stats_.dropped;
            }
          } else if constexpr (std::is_same_v<T, MirrorAction>) {
            const auto it = ports_.find(act.port);
            if (it != ports_.end()) {
              ++stats_.mirrored;
              stats_.mirrored_bytes += frame.size();
              it->second(frame, ts);
            }
            // A missing monitor port silently drops the copy: mirroring
            // must never break normal delivery.
          } else if constexpr (std::is_same_v<T, DropAction>) {
            ++stats_.dropped;
          } else {
            // ToControllerAction inside a rule is not used by NetAlytics;
            // the reactive path goes through table misses instead.
          }
        },
        action);
  }
}

}  // namespace netalytics::sdn
