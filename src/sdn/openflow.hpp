// OpenFlow-shaped control messages between switches and the controller.
// Only the fields the NetAlytics control plane uses are modelled; the point
// is that rule installation and the reactive path flow through explicit
// protocol messages, as they would over a real southbound channel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "sdn/flow_table.hpp"

namespace netalytics::sdn {

using SwitchId = std::uint32_t;

/// FLOW_MOD: install or delete a rule on a switch.
struct FlowMod {
  enum class Command { add, remove };
  Command command = Command::add;
  SwitchId switch_id = 0;
  FlowRule rule;              // for add
  std::uint64_t cookie = 0;   // for remove
};

/// PACKET_IN: a table miss punted to the controller.
struct PacketIn {
  SwitchId switch_id = 0;
  std::uint32_t in_port = 0;
  common::Timestamp timestamp = 0;
  net::DecodedPacket packet;  // spans valid only during the callback
};

/// Per-rule counters reported by a stats request.
struct FlowStatsEntry {
  std::uint64_t cookie = 0;
  int priority = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

}  // namespace netalytics::sdn
