// Software SDN switch data plane: per-port delivery callbacks, a priority
// flow table, mirror support, and a reactive miss path to the controller.
// The in-process emulation attaches hosts and monitors to ports; mirroring
// a flow to a monitor is exactly the paper's "match and mirror" deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>

#include "sdn/openflow.hpp"

namespace netalytics::sdn {

/// Called when the switch sends a frame out a port.
using PortSink = std::function<void(std::span<const std::byte> frame,
                                    common::Timestamp ts)>;

/// Controller-side handler for table misses. Returns the actions to apply
/// to this packet (and typically installs a rule via the controller's
/// northbound API so the next packet hits the table).
class PacketInHandler {
 public:
  virtual ~PacketInHandler() = default;
  virtual ActionList on_packet_in(const PacketIn& event) = 0;
};

struct SwitchStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t matched = 0;
  std::uint64_t missed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t mirrored = 0;
  std::uint64_t mirrored_bytes = 0;
  std::uint64_t dropped = 0;
};

class SdnSwitch {
 public:
  explicit SdnSwitch(SwitchId id, std::size_t table_capacity = 4096);

  SwitchId id() const noexcept { return id_; }

  /// Attach a delivery sink to a port (host link, monitor link, uplink).
  void connect_port(std::uint32_t port, PortSink sink);

  /// Reactive path: unset means misses are dropped.
  void set_packet_in_handler(PacketInHandler* handler) noexcept {
    handler_ = handler;
  }

  /// Data plane entry: a frame arrives on `in_port`.
  void handle_packet(std::uint32_t in_port, std::span<const std::byte> frame,
                     common::Timestamp ts);

  /// Southbound: apply a FlowMod. Returns the installed cookie (add) or
  /// whether removal succeeded encoded as cookie 0/1.
  std::optional<std::uint64_t> apply(const FlowMod& mod, common::Timestamp now);

  FlowTable& table() noexcept { return table_; }
  const SwitchStats& stats() const noexcept { return stats_; }

 private:
  void run_actions(const ActionList& actions, std::span<const std::byte> frame,
                   common::Timestamp ts);

  SwitchId id_;
  FlowTable table_;
  std::map<std::uint32_t, PortSink> ports_;
  PacketInHandler* handler_ = nullptr;
  SwitchStats stats_;
};

}  // namespace netalytics::sdn
