// TieredStore behavior: hot-ring wrap-around, hot->cold downsampling
// boundaries, chunk eviction into the lossless rollup, the live-head
// merge, the series cap, and percentile queries over captured histograms.
#include "tsdb/store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace netalytics::tsdb {
namespace {

using common::MetricsSnapshot;
using common::Timestamp;

StoreConfig small_config() {
  StoreConfig cfg;
  cfg.hot_slots = 8;
  cfg.downsample_ticks = 4;
  cfg.cold_chunk_buckets = 4;
  cfg.cold_chunks = 2;
  return cfg;
}

double whole_range_sum(const TieredStore& store, const std::string& name) {
  const auto res = store.query_range({.selector = name, .agg = Agg::sum});
  if (res.series.empty() || res.series.front().points.empty()) return 0;
  return res.series.front().points.front().value;
}

TEST(StoreConfig, Validation) {
  EXPECT_TRUE(StoreConfig{}.validate());
  StoreConfig bad;
  bad.downsample_ticks = 0;
  EXPECT_FALSE(bad.validate());
  bad = StoreConfig{};
  bad.cold_chunk_buckets = 1 << 13;
  EXPECT_FALSE(bad.validate());
}

TEST(TieredStore, DisabledStoreServesLiveHeadOnly) {
  StoreConfig cfg;
  cfg.hot_slots = 0;
  TieredStore store(cfg);
  EXPECT_FALSE(store.enabled());

  MetricsSnapshot snap;
  snap.counters.push_back({"app.requests", 42});
  store.capture(10, snap);  // no-op
  EXPECT_EQ(store.stats().captures, 0u);

  const auto res = store.query_range({.selector = "app", .agg = Agg::sum},
                                     LiveHead{20, &snap});
  ASSERT_EQ(res.series.size(), 1u);
  EXPECT_EQ(res.series[0].name, "app.requests");
  ASSERT_EQ(res.series[0].points.size(), 1u);
  EXPECT_EQ(res.series[0].points[0].value, 42.0);
  EXPECT_TRUE(res.exact);
}

TEST(TieredStore, HotRingSumExactAcrossWrapAround) {
  TieredStore store(small_config());
  // 100 samples of value 1 wraps the 8-slot ring many times; the
  // whole-range sum must stay exact (cold + evicted tiers absorb it all).
  for (Timestamp t = 1; t <= 100; ++t) {
    store.ingest("s", SeriesKind::counter, t, 1.0);
  }
  EXPECT_EQ(whole_range_sum(store, "s"), 100.0);

  const auto st = store.stats();
  EXPECT_EQ(st.samples_ingested, 100u);
  EXPECT_EQ(st.hot_samples, 8u);
  EXPECT_GT(st.evicted_buckets, 0u);
}

TEST(TieredStore, HotTierRangeIsExactPerSample) {
  TieredStore store(small_config());
  for (Timestamp t = 1; t <= 20; ++t) {
    store.ingest("s", SeriesKind::gauge, t, static_cast<double>(t));
  }
  // The newest 8 samples (13..20) are hot: per-sample points at step 1.
  const auto res = store.query_range(
      {.selector = "s", .t0 = 13, .t1 = 20, .step = 1, .agg = Agg::last});
  ASSERT_EQ(res.series.size(), 1u);
  EXPECT_TRUE(res.exact);
  ASSERT_EQ(res.series[0].points.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(res.series[0].points[i].t, 13 + i);
    EXPECT_EQ(res.series[0].points[i].value, static_cast<double>(13 + i));
    EXPECT_EQ(res.series[0].points[i].samples, 1u);
  }
}

TEST(TieredStore, StraddlingRangeMarksInexactButSumsExact) {
  TieredStore store(small_config());
  for (Timestamp t = 1; t <= 20; ++t) {
    store.ingest("s", SeriesKind::counter, t, 2.0);
  }
  // Samples 1..12 were folded into cold buckets of 4; 13..20 are hot.
  const auto res = store.query_range({.selector = "s", .agg = Agg::sum});
  ASSERT_EQ(res.series.size(), 1u);
  EXPECT_FALSE(res.exact);  // downsampled buckets contributed
  ASSERT_EQ(res.series[0].points.size(), 1u);
  EXPECT_EQ(res.series[0].points[0].value, 40.0);  // still exact in value
  EXPECT_EQ(res.series[0].points[0].samples, 20u);

  // A hot-only range stays exact.
  const auto hot = store.query_range({.selector = "s", .t0 = 13});
  EXPECT_TRUE(hot.exact);
  EXPECT_EQ(hot.series[0].points[0].value, 16.0);
}

TEST(TieredStore, PendingBucketIsVisible) {
  StoreConfig cfg = small_config();
  cfg.downsample_ticks = 4;
  TieredStore store(cfg);
  // 10 samples: 2 evicted into the pending bucket (not yet a full bucket
  // of 4), 8 hot. The pending samples must still be queryable.
  for (Timestamp t = 1; t <= 10; ++t) {
    store.ingest("s", SeriesKind::counter, t, 1.0);
  }
  EXPECT_EQ(store.stats().cold_buckets, 0u);
  EXPECT_EQ(whole_range_sum(store, "s"), 10.0);
}

TEST(TieredStore, ChunkEvictionFoldsIntoLosslessRollup) {
  StoreConfig cfg = small_config();  // 2 chunks x 4 buckets x 4 ticks
  TieredStore store(cfg);
  // Enough samples to evict several chunks: capacity past the hot ring is
  // 2*4*4 = 32 folded samples; ingest far more.
  for (Timestamp t = 1; t <= 500; ++t) {
    store.ingest("s", SeriesKind::counter, t, 3.0);
  }
  const auto st = store.stats();
  EXPECT_GT(st.evicted_buckets, 0u);
  // min/max/sum/count all survive eviction exactly for a whole-range query.
  const auto res = store.query_range({.selector = "s", .agg = Agg::sum});
  EXPECT_EQ(res.series[0].points[0].value, 1500.0);
  EXPECT_EQ(res.series[0].points[0].samples, 500u);
  const auto mx = store.query_range({.selector = "s", .agg = Agg::max});
  EXPECT_EQ(mx.series[0].points[0].value, 3.0);
}

TEST(TieredStore, ColdTierCompresses) {
  StoreConfig cfg;
  cfg.hot_slots = 16;
  cfg.downsample_ticks = 4;
  cfg.cold_chunk_buckets = 64;
  cfg.cold_chunks = 0;  // unlimited, keep everything encoded
  TieredStore store(cfg);
  // Regular cadence and small integral deltas: the delta-of-delta varint
  // path should beat 16 B/sample by a wide margin.
  for (Timestamp t = 0; t < 10000; ++t) {
    store.ingest("s", SeriesKind::counter, t * 1000, 5.0);
  }
  const auto st = store.stats();
  ASSERT_GT(st.cold_buckets, 0u);
  ASSERT_GT(st.cold_bytes, 0u);
  EXPECT_GE(st.cold_raw_bytes, 4 * st.cold_bytes)
      << "compression ratio " << (double(st.cold_raw_bytes) / st.cold_bytes);
}

TEST(TieredStore, MaxSeriesCapRejectsNewNamesOnly) {
  StoreConfig cfg = small_config();
  cfg.max_series = 2;
  TieredStore store(cfg);
  store.ingest("a", SeriesKind::gauge, 1, 1.0);
  store.ingest("b", SeriesKind::gauge, 1, 1.0);
  store.ingest("c", SeriesKind::gauge, 1, 1.0);  // rejected
  store.ingest("a", SeriesKind::gauge, 2, 2.0);  // existing: accepted
  const auto st = store.stats();
  EXPECT_EQ(st.series, 2u);
  EXPECT_EQ(st.rejected_samples, 1u);
  EXPECT_EQ(st.samples_ingested, 3u);
}

TEST(TieredStore, CaptureDiffsCountersAndStoresGaugeLevels) {
  TieredStore store(small_config());
  MetricsSnapshot s1;
  s1.counters.push_back({"c", 10});
  s1.gauges.push_back({"g", 7});
  store.capture(100, s1);
  MetricsSnapshot s2;
  s2.counters.push_back({"c", 25});
  s2.gauges.push_back({"g", 3});
  store.capture(200, s2);

  // Counter: two delta samples 10 and 15.
  const auto c = store.query_range(
      {.selector = "c", .t0 = 0, .t1 = 1000, .step = 100, .agg = Agg::sum});
  ASSERT_EQ(c.series.size(), 1u);
  ASSERT_EQ(c.series[0].points.size(), 2u);
  EXPECT_EQ(c.series[0].points[0].value, 10.0);
  EXPECT_EQ(c.series[0].points[1].value, 15.0);
  EXPECT_EQ(c.series[0].kind, SeriesKind::counter);

  // Gauge: absolute levels at both captures.
  const auto g = store.query_range({.selector = "g", .agg = Agg::last});
  ASSERT_EQ(g.series.size(), 1u);
  EXPECT_EQ(g.series[0].points[0].value, 3.0);
  EXPECT_EQ(g.series[0].kind, SeriesKind::gauge);

  // Unchanged counters produce no sample on the next capture.
  store.capture(300, s2);
  const auto c2 = store.query_range({.selector = "c", .agg = Agg::sum});
  EXPECT_EQ(c2.series[0].points[0].samples, 2u);
}

TEST(TieredStore, LiveHeadMakesCounterSumsExactBetweenCaptures) {
  TieredStore store(small_config());
  MetricsSnapshot s1;
  s1.counters.push_back({"c", 10});
  store.capture(100, s1);

  // The registry has moved on since the capture.
  MetricsSnapshot live;
  live.counters.push_back({"c", 17});
  const auto res = store.query_range({.selector = "c", .agg = Agg::sum},
                                     LiveHead{150, &live});
  EXPECT_EQ(res.series[0].points[0].value, 17.0);

  // A historical range ending before the live head excludes the tail.
  const auto hist = store.query_range(
      {.selector = "c", .t0 = 0, .t1 = 120, .agg = Agg::sum},
      LiveHead{150, &live});
  EXPECT_EQ(hist.series[0].points[0].value, 10.0);
}

TEST(TieredStore, LiveHeadGaugeYieldsCurrentLevel) {
  TieredStore store(small_config());
  MetricsSnapshot s1;
  s1.gauges.push_back({"g", 5});
  store.capture(100, s1);
  MetricsSnapshot live;
  live.gauges.push_back({"g", 9});
  const auto res = store.query_range({.selector = "g", .agg = Agg::last},
                                     LiveHead{150, &live});
  EXPECT_EQ(res.series[0].points.back().value, 9.0);
  // At the capture instant itself the stored sample wins (no double count).
  const auto at = store.query_range({.selector = "g", .agg = Agg::sum},
                                    LiveHead{100, &s1});
  EXPECT_EQ(at.series[0].points[0].samples, 1u);
}

TEST(TieredStore, PercentilesFromCapturedHistograms) {
  TieredStore store(small_config());
  MetricsSnapshot s1;
  MetricsSnapshot::HistogramSample h;
  h.name = "lat";
  h.bounds = {10, 100, 1000};
  h.buckets = {0, 90, 10, 0};  // 90 in (10,100], 10 in (100,1000]
  h.count = 100;
  h.sum = 5000;
  s1.histograms.push_back(h);
  store.capture(100, s1);

  const auto p50 = store.query_range({.selector = "lat", .agg = Agg::p50});
  ASSERT_EQ(p50.series.size(), 1u);
  EXPECT_EQ(p50.series[0].points[0].value, 100.0);
  const auto p99 = store.query_range({.selector = "lat", .agg = Agg::p99});
  EXPECT_EQ(p99.series[0].points[0].value, 1000.0);

  // The synthetic _count/_sum scalar series exist for scalar aggs.
  EXPECT_EQ(whole_range_sum(store, "lat_count"), 100.0);
  EXPECT_EQ(whole_range_sum(store, "lat_sum"), 5000.0);
}

TEST(TieredStore, PercentileLiveTailWithoutCapture) {
  TieredStore store(small_config());
  MetricsSnapshot live;
  MetricsSnapshot::HistogramSample h;
  h.name = "lat";
  h.bounds = {10, 100};
  h.buckets = {100, 0, 0};
  h.count = 100;
  live.histograms.push_back(h);
  const auto res = store.query_range({.selector = "lat", .agg = Agg::p95},
                                     LiveHead{50, &live});
  ASSERT_EQ(res.series.size(), 1u);
  EXPECT_EQ(res.series[0].points[0].value, 10.0);
  EXPECT_EQ(res.series[0].points[0].samples, 100u);
}

TEST(TieredStore, RenderIsDeterministicAndStable) {
  TieredStore store(small_config());
  store.ingest("b", SeriesKind::gauge, 10, 2.5);
  store.ingest("a", SeriesKind::counter, 10, 3.0);
  const RangeQuery q{.selector = "", .t0 = 0, .t1 = 100, .step = 0,
                     .agg = Agg::sum};
  const auto r1 = store.query_range(q).render();
  const auto r2 = store.query_range(q).render();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1,
            "range selector=* agg=sum t0=0 t1=100 step=0 exact=true\n"
            "a counter points=1\n"
            "  t=0 v=3 n=1\n"
            "b gauge points=1\n"
            "  t=0 v=2.5 n=1\n");
}

TEST(TieredStore, ConcurrentIngestAndQuery) {
  // TSan lane: captures, ingests and queries from multiple threads must
  // not race (one mutex over all state).
  TieredStore store(small_config());
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&store, w] {
      const std::string name = "t" + std::to_string(w);
      for (Timestamp t = 1; t <= 200; ++t) {
        store.ingest(name, SeriesKind::counter, t, 1.0);
        if (t % 50 == 0) {
          (void)store.query_range({.selector = "t", .agg = Agg::sum});
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto res = store.query_range({.selector = "t", .agg = Agg::sum});
  ASSERT_EQ(res.series.size(), 4u);
  for (const auto& s : res.series) {
    EXPECT_EQ(s.points[0].value, 200.0);
  }
}

}  // namespace
}  // namespace netalytics::tsdb
