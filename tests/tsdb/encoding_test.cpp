// Exactness of the cold-tier codecs: every value must roundtrip
// bit-for-bit, including the raw-escape doubles.
#include "tsdb/encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace netalytics::tsdb {
namespace {

TEST(Encoding, UvarintRoundtrip) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 300,
                                 (1ull << 21) - 1,
                                 1ull << 21,
                                 (1ull << 42) + 12345,
                                 std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::byte> buf;
  for (const auto v : cases) put_uvarint(buf, v);
  std::size_t pos = 0;
  for (const auto v : cases) EXPECT_EQ(get_uvarint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Encoding, UvarintSmallValuesAreOneByte) {
  std::vector<std::byte> buf;
  put_uvarint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Encoding, UvarintThrowsOnTruncation) {
  std::vector<std::byte> buf;
  put_uvarint(buf, 1ull << 42);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(get_uvarint(buf, pos), std::out_of_range);
}

TEST(Encoding, ZigzagFoldsSigns) {
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(zigzag(-2), 3u);
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{42},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
}

TEST(Encoding, SvarintRoundtrip) {
  const std::int64_t cases[] = {0, -1, 1, -64, 64, -1000000,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  std::vector<std::byte> buf;
  for (const auto v : cases) put_svarint(buf, v);
  std::size_t pos = 0;
  for (const auto v : cases) EXPECT_EQ(get_svarint(buf, pos), v);
}

TEST(Encoding, IntegralNumberClassification) {
  EXPECT_TRUE(integral_number(0.0));
  EXPECT_TRUE(integral_number(-12345.0));
  EXPECT_TRUE(integral_number(1e15));
  EXPECT_FALSE(integral_number(0.5));
  EXPECT_FALSE(integral_number(1e19));  // beyond 2^61
  EXPECT_FALSE(integral_number(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(integral_number(std::nan("")));
}

TEST(Encoding, NumberRoundtripExact) {
  const double cases[] = {0.0,  1.0,     -1.0, 123456789.0, 0.5,
                          -2.5, 3.14159, 1e19, -1e300,      1.0 / 3.0};
  std::vector<std::byte> buf;
  for (const auto v : cases) put_number(buf, v);
  std::size_t pos = 0;
  for (const auto v : cases) {
    const double got = get_number(buf, pos);
    EXPECT_EQ(std::memcmp(&got, &v, 8), 0) << v;
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Encoding, IntegralNumbersCompress) {
  std::vector<std::byte> buf;
  put_number(buf, 3.0);
  EXPECT_EQ(buf.size(), 1u);  // vs 8 raw bytes
  buf.clear();
  put_number(buf, 0.5);
  EXPECT_EQ(buf.size(), 9u);  // marker + raw IEEE bits
}

TEST(Encoding, NumberDeltaRoundtripExact) {
  // (prev, cur) pairs covering integral deltas and the raw fallback.
  const std::pair<double, double> cases[] = {
      {0.0, 0.0},   {100.0, 103.0}, {103.0, 100.0}, {5.0, 0.25},
      {0.25, 7.0},  {0.5, 0.75},    {1e18, 1e18 + 512}};
  for (const auto& [prev, cur] : cases) {
    std::vector<std::byte> buf;
    put_number_delta(buf, prev, cur);
    std::size_t pos = 0;
    const double got = get_number_delta(buf, pos, prev);
    EXPECT_EQ(std::memcmp(&got, &cur, 8), 0) << prev << " -> " << cur;
  }
}

TEST(Encoding, SmallDeltasAreOneByte) {
  std::vector<std::byte> buf;
  put_number_delta(buf, 1000000.0, 1000003.0);
  EXPECT_EQ(buf.size(), 1u);
}

}  // namespace
}  // namespace netalytics::tsdb
