// Differential suite: TieredStore vs a naive reference store fed the same
// sample stream. The reference keeps every raw sample and evaluates
// RangeQuery directly, so any disagreement in the regimes where the store
// documents exactness (hot-tier ranges for every agg; whole-range and
// bucket-aligned sums across tiers; whole-range percentiles) is a bug.
// All test values are dyadic rationals so double addition is exact and
// results can be compared with ==.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "tsdb/store.hpp"

namespace netalytics::tsdb {
namespace {

using common::Timestamp;

/// Keeps every sample; evaluates queries over raw data with no tiers.
class NaiveStore {
 public:
  void ingest(const std::string& name, SeriesKind kind, Timestamp ts,
              double value) {
    auto& s = series_[name];
    s.kind = kind;
    s.samples.emplace_back(ts, value);
  }

  RangeResult query_range(const RangeQuery& q) const {
    RangeResult res;
    res.query = q;
    for (const auto& [name, s] : series_) {
      if (name.compare(0, q.selector.size(), q.selector) != 0) continue;
      RangeResult::Series out;
      out.name = name;
      out.kind = s.kind;
      // Group samples per window, in timestamp order (insertion order).
      struct Acc {
        std::uint64_t n = 0;
        double sum = 0, min = 0, max = 0, last = 0;
      };
      std::map<Timestamp, Acc> windows;
      for (const auto& [ts, v] : s.samples) {
        if (ts < q.t0 || ts > q.t1) continue;
        const Timestamp w =
            q.step == 0 ? q.t0 : q.t0 + ((ts - q.t0) / q.step) * q.step;
        auto& a = windows[w];
        if (a.n == 0) {
          a.min = a.max = v;
        } else {
          a.min = std::min(a.min, v);
          a.max = std::max(a.max, v);
        }
        a.sum += v;
        a.last = v;
        ++a.n;
      }
      for (const auto& [w, a] : windows) {
        double value = 0;
        switch (q.agg) {
          case Agg::sum: value = a.sum; break;
          case Agg::avg: value = a.sum / static_cast<double>(a.n); break;
          case Agg::min: value = a.min; break;
          case Agg::max: value = a.max; break;
          case Agg::last: value = a.last; break;
          default: break;
        }
        out.points.push_back({w, value, a.n});
      }
      if (!out.points.empty()) res.series.push_back(std::move(out));
    }
    return res;
  }

 private:
  struct S {
    SeriesKind kind = SeriesKind::counter;
    std::vector<std::pair<Timestamp, double>> samples;
  };
  std::map<std::string, S> series_;
};

/// Deterministic value stream: dyadic rationals in [0, 32) at 1/8 steps.
double dyadic(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<double>((state >> 33) % 256) / 8.0;
}

constexpr Agg kScalarAggs[] = {Agg::sum, Agg::avg, Agg::min, Agg::max,
                               Agg::last};

void expect_same(const RangeResult& got, const RangeResult& want,
                 const std::string& what) {
  ASSERT_EQ(got.series.size(), want.series.size()) << what;
  for (std::size_t i = 0; i < got.series.size(); ++i) {
    EXPECT_EQ(got.series[i].name, want.series[i].name) << what;
    EXPECT_EQ(got.series[i].points, want.series[i].points)
        << what << " series " << got.series[i].name;
  }
}

TEST(Differential, HotTierRangesMatchNaiveForEveryAgg) {
  StoreConfig cfg;
  cfg.hot_slots = 64;
  cfg.downsample_ticks = 4;
  TieredStore store(cfg);
  NaiveStore naive;

  std::uint64_t rng = 42;
  for (Timestamp t = 1; t <= 200; ++t) {
    const double v = dyadic(rng);
    store.ingest("s", SeriesKind::gauge, t * 10, v);
    naive.ingest("s", SeriesKind::gauge, t * 10, v);
  }
  // The newest 64 samples (t = 137..200 -> ts 1370..2000) are hot: the
  // store documents per-sample exactness there, for every agg and step.
  for (const auto agg : kScalarAggs) {
    for (const Timestamp step : {Timestamp{0}, Timestamp{10}, Timestamp{70},
                                 Timestamp{333}}) {
      const RangeQuery q{.selector = "s", .t0 = 1370, .t1 = 2000,
                         .step = step, .agg = agg};
      const auto got = store.query_range(q);
      EXPECT_TRUE(got.exact);
      expect_same(got, naive.query_range(q),
                  std::string(agg_name(agg)) + " step=" + std::to_string(step));
    }
  }
}

TEST(Differential, WholeRangeAggregatesMatchAcrossAllTiers) {
  StoreConfig cfg;
  cfg.hot_slots = 8;
  cfg.downsample_ticks = 4;
  cfg.cold_chunk_buckets = 4;
  cfg.cold_chunks = 2;  // forces eviction into the lossless rollup
  TieredStore store(cfg);
  NaiveStore naive;

  std::uint64_t rng = 7;
  for (Timestamp t = 1; t <= 1000; ++t) {
    const double v = dyadic(rng);
    store.ingest("s", SeriesKind::counter, t, v);
    naive.ingest("s", SeriesKind::counter, t, v);
  }
  // Everything flowed through pending buckets, encoded chunks and the
  // evicted rollup; whole-range sum/min/max/last/samples must survive.
  for (const auto agg : kScalarAggs) {
    const RangeQuery q{.selector = "s", .agg = agg};
    const auto got = store.query_range(q);
    const auto want = naive.query_range(q);
    if (agg != Agg::avg) {
      expect_same(got, want, std::string(agg_name(agg)));
    } else {
      // avg = sum/count: both exact, but fold order differs; compare terms.
      ASSERT_EQ(got.series.size(), 1u);
      EXPECT_EQ(got.series[0].points[0].samples,
                want.series[0].points[0].samples);
      EXPECT_EQ(got.series[0].points[0].value, want.series[0].points[0].value);
    }
  }
}

TEST(Differential, BucketAlignedStepSumsMatchNaive) {
  StoreConfig cfg;
  cfg.hot_slots = 8;
  cfg.downsample_ticks = 4;
  cfg.cold_chunk_buckets = 8;
  cfg.cold_chunks = 0;  // keep every bucket encoded (no rollup collapse)
  TieredStore store(cfg);
  NaiveStore naive;

  // Fixed cadence 10 starting at t0 = 100: every cold bucket covers
  // exactly [100 + 40k, 100 + 40k + 40), so step = 40 windows align.
  std::uint64_t rng = 99;
  for (Timestamp i = 0; i < 400; ++i) {
    const double v = dyadic(rng);
    store.ingest("s", SeriesKind::counter, 100 + i * 10, v);
    naive.ingest("s", SeriesKind::counter, 100 + i * 10, v);
  }
  const RangeQuery q{.selector = "s", .t0 = 100, .t1 = 100 + 400 * 10,
                     .step = 40, .agg = Agg::sum};
  const auto got = store.query_range(q);
  EXPECT_FALSE(got.exact);  // downsampled buckets contributed...
  expect_same(got, naive.query_range(q), "aligned sum");  // ...yet sums match
}

TEST(Differential, WholeRangePercentilesMatchNaiveReference) {
  StoreConfig cfg;
  cfg.hot_slots = 4;  // force bucket-count series through every tier
  cfg.downsample_ticks = 2;
  cfg.cold_chunk_buckets = 2;
  cfg.cold_chunks = 1;
  TieredStore store(cfg);

  const std::vector<std::uint64_t> bounds = {10, 100, 1000};
  // Cumulative bucket counts over 50 captures; the naive reference sums
  // raw per-capture deltas and scans the distribution independently.
  std::vector<std::uint64_t> cum(bounds.size() + 1, 0);
  std::vector<std::uint64_t> naive_totals(bounds.size() + 1, 0);
  std::uint64_t rng = 5;
  for (Timestamp t = 1; t <= 50; ++t) {
    for (std::size_t b = 0; b < cum.size(); ++b) {
      const auto add = static_cast<std::uint64_t>(dyadic(rng) * 8.0);
      cum[b] += add;
      naive_totals[b] += add;
    }
    common::MetricsSnapshot snap;
    common::MetricsSnapshot::HistogramSample h;
    h.name = "lat";
    h.bounds = bounds;
    h.buckets = cum;
    for (const auto c : cum) h.count += c;
    snap.histograms.push_back(h);
    store.capture(t * 100, snap);
  }

  const auto naive_percentile = [&](double q) {
    std::uint64_t total = 0;
    for (const auto c : naive_totals) total += c;
    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < naive_totals.size(); ++i) {
      seen += naive_totals[i];
      if (static_cast<double>(seen) >= target) {
        return static_cast<double>(bounds[std::min(i, bounds.size() - 1)]);
      }
    }
    return static_cast<double>(bounds.back());
  };

  for (const auto& [agg, q] : {std::pair{Agg::p50, 0.50},
                               std::pair{Agg::p95, 0.95},
                               std::pair{Agg::p99, 0.99}}) {
    const auto res = store.query_range({.selector = "lat", .agg = agg});
    ASSERT_EQ(res.series.size(), 1u) << agg_name(agg);
    EXPECT_EQ(res.series[0].points[0].value, naive_percentile(q))
        << agg_name(agg);
  }
}

}  // namespace
}  // namespace netalytics::tsdb
