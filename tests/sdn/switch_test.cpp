#include "sdn/switch.hpp"

#include <gtest/gtest.h>

#include "pktgen/builder.hpp"

namespace netalytics::sdn {
namespace {

std::vector<std::byte> frame_to_port(net::Port dst_port) {
  pktgen::TcpFrameSpec spec;
  spec.flow = {net::make_ipv4(10, 0, 0, 1), net::make_ipv4(10, 0, 0, 2), 1234,
               dst_port, 6};
  spec.pad_to_frame_size = 128;
  return pktgen::build_tcp_frame(spec);
}

struct PortCapture {
  int count = 0;
  std::size_t bytes = 0;
  PortSink sink() {
    return [this](std::span<const std::byte> f, common::Timestamp) {
      ++count;
      bytes += f.size();
    };
  }
};

FlowMod mirror_mod(net::Port dst_port, std::uint32_t out, std::uint32_t mirror) {
  FlowMod mod;
  mod.rule.priority = 10;
  mod.rule.match.dst_port = dst_port;
  mod.rule.actions = {OutputAction{out}, MirrorAction{mirror}};
  return mod;
}

TEST(SdnSwitch, ForwardsOnMatch) {
  SdnSwitch sw(1);
  PortCapture out;
  sw.connect_port(0, out.sink());
  FlowMod mod;
  mod.rule.actions = {OutputAction{0}};  // wildcard
  sw.apply(mod, 0);
  sw.handle_packet(5, frame_to_port(80), 0);
  EXPECT_EQ(out.count, 1);
  EXPECT_EQ(sw.stats().matched, 1u);
  EXPECT_EQ(sw.stats().forwarded, 1u);
}

TEST(SdnSwitch, MirrorDeliversCopyToBothPorts) {
  SdnSwitch sw(1);
  PortCapture normal, monitor;
  sw.connect_port(0, normal.sink());
  sw.connect_port(7, monitor.sink());
  sw.apply(mirror_mod(80, 0, 7), 0);

  sw.handle_packet(1, frame_to_port(80), 0);
  EXPECT_EQ(normal.count, 1);
  EXPECT_EQ(monitor.count, 1);
  EXPECT_EQ(monitor.bytes, 128u);
  EXPECT_EQ(sw.stats().mirrored, 1u);
  EXPECT_EQ(sw.stats().mirrored_bytes, 128u);
}

TEST(SdnSwitch, MissingMonitorPortDoesNotBreakDelivery) {
  SdnSwitch sw(1);
  PortCapture normal;
  sw.connect_port(0, normal.sink());
  sw.apply(mirror_mod(80, 0, 99), 0);  // port 99 unattached
  sw.handle_packet(1, frame_to_port(80), 0);
  EXPECT_EQ(normal.count, 1);  // normal path unaffected
  EXPECT_EQ(sw.stats().mirrored, 0u);
}

TEST(SdnSwitch, MissWithoutHandlerDrops) {
  SdnSwitch sw(1);
  sw.handle_packet(1, frame_to_port(80), 0);
  EXPECT_EQ(sw.stats().missed, 1u);
  EXPECT_EQ(sw.stats().dropped, 1u);
}

class InstallOnMissHandler final : public PacketInHandler {
 public:
  explicit InstallOnMissHandler(SdnSwitch& sw) : sw_(sw) {}
  ActionList on_packet_in(const PacketIn& event) override {
    ++events;
    // Reactive: install a rule for this destination port, then forward.
    FlowMod mod;
    mod.rule.priority = 5;
    mod.rule.match.dst_port = event.packet.five_tuple.dst_port;
    mod.rule.actions = {OutputAction{0}};
    sw_.apply(mod, event.timestamp);
    return {OutputAction{0}};
  }
  int events = 0;

 private:
  SdnSwitch& sw_;
};

TEST(SdnSwitch, ReactivePathInstallsRuleOnFirstPacket) {
  SdnSwitch sw(1);
  PortCapture out;
  sw.connect_port(0, out.sink());
  InstallOnMissHandler handler(sw);
  sw.set_packet_in_handler(&handler);

  sw.handle_packet(1, frame_to_port(80), 0);  // miss -> controller
  sw.handle_packet(1, frame_to_port(80), 1);  // hit the installed rule
  EXPECT_EQ(handler.events, 1);
  EXPECT_EQ(out.count, 2);
  EXPECT_EQ(sw.stats().missed, 1u);
  EXPECT_EQ(sw.stats().matched, 1u);
}

TEST(SdnSwitch, DropActionCounts) {
  SdnSwitch sw(1);
  FlowMod mod;
  mod.rule.actions = {DropAction{}};
  sw.apply(mod, 0);
  sw.handle_packet(1, frame_to_port(80), 0);
  EXPECT_EQ(sw.stats().dropped, 1u);
}

TEST(SdnSwitch, RuleStatsAccumulate) {
  SdnSwitch sw(1);
  PortCapture out;
  sw.connect_port(0, out.sink());
  FlowMod mod;
  mod.rule.actions = {OutputAction{0}};
  const auto cookie = sw.apply(mod, 0);
  ASSERT_TRUE(cookie.has_value());
  for (int i = 0; i < 3; ++i) sw.handle_packet(1, frame_to_port(80), i);
  EXPECT_EQ(sw.table().rules()[0].packet_count, 3u);
  EXPECT_EQ(sw.table().rules()[0].byte_count, 3u * 128u);
}

TEST(SdnSwitch, MalformedFrameDropped) {
  SdnSwitch sw(1);
  std::vector<std::byte> junk(5);
  sw.handle_packet(0, junk, 0);
  EXPECT_EQ(sw.stats().dropped, 1u);
  EXPECT_EQ(sw.stats().rx_packets, 1u);
}

}  // namespace
}  // namespace netalytics::sdn
