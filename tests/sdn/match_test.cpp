#include "sdn/match.hpp"

#include <gtest/gtest.h>

#include "pktgen/builder.hpp"

namespace netalytics::sdn {
namespace {

net::DecodedPacket make_packet(const net::FiveTuple& flow,
                               std::vector<std::byte>& storage) {
  pktgen::TcpFrameSpec spec;
  spec.flow = flow;
  spec.pad_to_frame_size = 64;
  storage = pktgen::build_tcp_frame(spec);
  auto d = net::decode_packet(storage);
  EXPECT_TRUE(d.has_value());
  return *d;
}

net::FiveTuple sample_flow() {
  return {net::make_ipv4(10, 0, 2, 8), net::make_ipv4(10, 0, 2, 9), 5555, 80, 6};
}

TEST(FlowMatch, WildcardMatchesEverything) {
  std::vector<std::byte> storage;
  const auto pkt = make_packet(sample_flow(), storage);
  FlowMatch m;
  EXPECT_TRUE(m.is_wildcard());
  EXPECT_TRUE(m.matches(pkt, 0));
  EXPECT_TRUE(m.matches(pkt, 99));
}

TEST(FlowMatch, ExactFiveTupleMatch) {
  std::vector<std::byte> storage;
  const auto pkt = make_packet(sample_flow(), storage);
  FlowMatch m;
  m.src_prefix = net::Ipv4Prefix{net::make_ipv4(10, 0, 2, 8), 32};
  m.dst_prefix = net::Ipv4Prefix{net::make_ipv4(10, 0, 2, 9), 32};
  m.src_port = 5555;
  m.dst_port = 80;
  m.ip_proto = 6;
  EXPECT_TRUE(m.matches(pkt, 0));

  m.dst_port = 81;
  EXPECT_FALSE(m.matches(pkt, 0));
}

TEST(FlowMatch, PrefixMatch) {
  std::vector<std::byte> storage;
  const auto pkt = make_packet(sample_flow(), storage);
  FlowMatch m;
  m.dst_prefix = net::Ipv4Prefix{net::make_ipv4(10, 0, 2, 0), 24};
  EXPECT_TRUE(m.matches(pkt, 0));
  m.dst_prefix = net::Ipv4Prefix{net::make_ipv4(10, 0, 3, 0), 24};
  EXPECT_FALSE(m.matches(pkt, 0));
}

TEST(FlowMatch, InPortRestricts) {
  std::vector<std::byte> storage;
  const auto pkt = make_packet(sample_flow(), storage);
  FlowMatch m;
  m.in_port = 3;
  EXPECT_TRUE(m.matches(pkt, 3));
  EXPECT_FALSE(m.matches(pkt, 4));
}

TEST(FlowMatch, L4FieldRequiresL4) {
  // A non-IP packet cannot match a rule with a dst_port.
  std::vector<std::byte> storage;
  auto pkt = make_packet(sample_flow(), storage);
  storage[12] = std::byte{0x86};
  storage[13] = std::byte{0xdd};
  const auto nonip = net::decode_packet(storage);
  ASSERT_TRUE(nonip.has_value());
  FlowMatch m;
  m.dst_port = 80;
  EXPECT_FALSE(m.matches(*nonip, 0));
}

TEST(FlowMatch, SpecificityCountsFields) {
  FlowMatch m;
  EXPECT_EQ(m.specificity(), 0);
  m.dst_port = 80;
  m.ip_proto = 6;
  EXPECT_EQ(m.specificity(), 2);
}

TEST(FlowMatch, Builders) {
  std::vector<std::byte> storage;
  const auto pkt = make_packet(sample_flow(), storage);
  const auto from = match_from_endpoint({net::make_ipv4(10, 0, 2, 8), 32}, 5555);
  EXPECT_TRUE(from.matches(pkt, 0));
  const auto to = match_to_endpoint({net::make_ipv4(10, 0, 2, 9), 32}, 80);
  EXPECT_TRUE(to.matches(pkt, 0));
  const auto wrong = match_to_endpoint({net::make_ipv4(10, 0, 2, 9), 32}, 8080);
  EXPECT_FALSE(wrong.matches(pkt, 0));
}

TEST(FlowMatch, ToStringReadable) {
  FlowMatch m;
  EXPECT_EQ(m.to_string(), "match(*)");
  m.dst_port = 80;
  m.dst_prefix = net::Ipv4Prefix{net::make_ipv4(10, 0, 2, 9), 32};
  const auto s = m.to_string();
  EXPECT_NE(s.find("dst=10.0.2.9"), std::string::npos);
  EXPECT_NE(s.find("dport=80"), std::string::npos);
}

}  // namespace
}  // namespace netalytics::sdn
