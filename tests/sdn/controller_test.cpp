#include "sdn/controller.hpp"

#include <gtest/gtest.h>

#include "pktgen/builder.hpp"

namespace netalytics::sdn {
namespace {

std::vector<std::byte> http_frame() {
  pktgen::TcpFrameSpec spec;
  spec.flow = {net::make_ipv4(10, 0, 2, 8), net::make_ipv4(10, 0, 2, 9), 5555, 80,
               6};
  spec.pad_to_frame_size = 200;
  return pktgen::build_tcp_frame(spec);
}

TEST(Controller, InstallRuleOnRegisteredSwitch) {
  SdnSwitch sw(7);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowRule rule;
  rule.actions = {OutputAction{0}};
  EXPECT_TRUE(ctrl.install_rule(7, rule, 0).has_value());
  EXPECT_FALSE(ctrl.install_rule(99, rule, 0).has_value());
  EXPECT_EQ(sw.table().size(), 1u);
  EXPECT_EQ(ctrl.flow_mods_sent(), 1u);
}

TEST(Controller, InstallMirrorBuildsActionPair) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowMatch match;
  match.dst_port = 80;
  const auto cookie = ctrl.install_mirror(1, match, 0, 9, 10, 0);
  ASSERT_TRUE(cookie.has_value());
  const auto& rule = sw.table().rules()[0];
  ASSERT_EQ(rule.actions.size(), 2u);
  EXPECT_EQ(std::get<OutputAction>(rule.actions[0]).port, 0u);
  EXPECT_EQ(std::get<MirrorAction>(rule.actions[1]).port, 9u);
  EXPECT_EQ(rule.priority, 10);
}

TEST(Controller, MirrorRuleWithTimeoutExpires) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowMatch match;
  match.dst_port = 80;
  ctrl.install_mirror(1, match, 0, 9, 10, 0, 90 * common::kSecond);
  EXPECT_EQ(sw.table().expire(91 * common::kSecond), 1u);
}

TEST(Controller, RemoveRules) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowRule rule;
  rule.actions = {OutputAction{0}};
  const auto c1 = ctrl.install_rule(1, rule, 0);
  rule.priority = 5;
  const auto c2 = ctrl.install_rule(1, rule, 0);
  ctrl.remove_rules({{1, *c1}, {1, *c2}});
  EXPECT_EQ(sw.table().size(), 0u);
  EXPECT_FALSE(ctrl.remove_rule(1, *c1));
  EXPECT_FALSE(ctrl.remove_rule(42, 1));
}

TEST(Controller, ReactiveForwardingAppInvoked) {
  SdnSwitch sw(1);
  int app_calls = 0;
  Controller ctrl([&app_calls](const PacketIn&) -> ActionList {
    ++app_calls;
    return {OutputAction{0}};
  });
  ctrl.register_switch(sw);
  int delivered = 0;
  sw.connect_port(0, [&delivered](std::span<const std::byte>, common::Timestamp) {
    ++delivered;
  });
  sw.handle_packet(2, http_frame(), 0);
  EXPECT_EQ(app_calls, 1);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(ctrl.packet_in_count(), 1u);
}

TEST(Controller, NoAppMissDrops) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  sw.handle_packet(2, http_frame(), 0);
  EXPECT_EQ(sw.stats().dropped, 1u);
  EXPECT_EQ(ctrl.packet_in_count(), 1u);
}

TEST(Controller, SharedMatchMergesMirrors) {
  // Two queries mirroring the same traffic must both receive copies: the
  // controller merges them into one rule with two mirror actions.
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  int mon_a = 0, mon_b = 0, delivered = 0;
  sw.connect_port(0, [&](std::span<const std::byte>, common::Timestamp) { ++delivered; });
  sw.connect_port(11, [&](std::span<const std::byte>, common::Timestamp) { ++mon_a; });
  sw.connect_port(12, [&](std::span<const std::byte>, common::Timestamp) { ++mon_b; });

  FlowMatch match;
  match.dst_port = 80;
  const auto c1 = ctrl.install_mirror(1, match, 0, 11, 10, 0);
  const auto c2 = ctrl.install_mirror(1, match, 0, 12, 10, 0);
  ASSERT_TRUE(c1 && c2);
  EXPECT_NE(*c1, *c2);
  EXPECT_EQ(sw.table().size(), 1u);  // one merged rule

  sw.handle_packet(1, http_frame(), 0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(mon_a, 1);
  EXPECT_EQ(mon_b, 1);

  // Detaching one query keeps the other's mirror alive.
  EXPECT_TRUE(ctrl.remove_rule(1, *c1));
  sw.handle_packet(1, http_frame(), 1);
  EXPECT_EQ(mon_a, 1);
  EXPECT_EQ(mon_b, 2);
  EXPECT_EQ(delivered, 2);

  // Detaching the last query removes the rule entirely.
  EXPECT_TRUE(ctrl.remove_rule(1, *c2));
  EXPECT_EQ(sw.table().size(), 0u);
  EXPECT_FALSE(ctrl.remove_rule(1, *c2));
}

TEST(Controller, MergedMirrorNeverInheritsShorterTimeout) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowMatch match;
  match.dst_port = 80;
  ctrl.install_mirror(1, match, 0, 11, 10, 0, 10 * common::kSecond);
  ctrl.install_mirror(1, match, 0, 12, 10, 0, 0);  // permanent query joins
  // The merged rule must not expire after the first query's 10s.
  EXPECT_EQ(sw.table().expire(11 * common::kSecond), 0u);
  EXPECT_EQ(sw.table().size(), 1u);
}

TEST(Controller, DistinctMatchesStayDistinctRules) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowMatch m80, m443;
  m80.dst_port = 80;
  m443.dst_port = 443;
  ctrl.install_mirror(1, m80, 0, 11, 10, 0);
  ctrl.install_mirror(1, m443, 0, 11, 10, 0);
  EXPECT_EQ(sw.table().size(), 2u);
}

TEST(Controller, FlowStatsReflectTraffic) {
  SdnSwitch sw(1);
  Controller ctrl;
  ctrl.register_switch(sw);
  FlowRule rule;
  rule.actions = {OutputAction{0}};
  ctrl.install_rule(1, rule, 0);
  sw.connect_port(0, [](std::span<const std::byte>, common::Timestamp) {});
  sw.handle_packet(2, http_frame(), 0);
  sw.handle_packet(2, http_frame(), 1);
  const auto stats = ctrl.flow_stats(1);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].packet_count, 2u);
  EXPECT_EQ(stats[0].byte_count, 400u);
  EXPECT_TRUE(ctrl.flow_stats(9).empty());
}

}  // namespace
}  // namespace netalytics::sdn
