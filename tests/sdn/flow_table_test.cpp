#include "sdn/flow_table.hpp"

#include <gtest/gtest.h>

#include "pktgen/builder.hpp"

namespace netalytics::sdn {
namespace {

struct PacketFixture {
  std::vector<std::byte> storage;
  net::DecodedPacket pkt;

  explicit PacketFixture(net::Port dst_port = 80) {
    pktgen::TcpFrameSpec spec;
    spec.flow = {net::make_ipv4(10, 0, 0, 1), net::make_ipv4(10, 0, 0, 2), 1234,
                 dst_port, 6};
    spec.pad_to_frame_size = 100;
    storage = pktgen::build_tcp_frame(spec);
    pkt = *net::decode_packet(storage);
  }
};

FlowRule rule_with_port(net::Port dst_port, int priority) {
  FlowRule r;
  r.priority = priority;
  r.match.dst_port = dst_port;
  r.actions = {OutputAction{0}};
  return r;
}

TEST(FlowTable, InstallAndLookup) {
  FlowTable table;
  const auto cookie = table.install(rule_with_port(80, 10), 0);
  ASSERT_TRUE(cookie.has_value());
  PacketFixture f;
  FlowRule* hit = table.lookup(f.pkt, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, *cookie);
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  FlowRule low;
  low.priority = 1;
  low.actions = {DropAction{}};
  FlowRule high = rule_with_port(80, 100);
  table.install(low, 0);
  const auto high_cookie = table.install(high, 0);
  PacketFixture f;
  EXPECT_EQ(table.lookup(f.pkt, 0)->cookie, *high_cookie);
  // Non-matching traffic falls to the wildcard rule.
  PacketFixture other(443);
  EXPECT_EQ(table.lookup(other.pkt, 0)->priority, 1);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable table;
  table.install(rule_with_port(443, 5), 0);
  PacketFixture f(80);
  EXPECT_EQ(table.lookup(f.pkt, 0), nullptr);
}

TEST(FlowTable, SameMatchSamePriorityReplaces) {
  FlowTable table;
  auto r = rule_with_port(80, 10);
  table.install(r, 0);
  r.actions = {DropAction{}};
  table.install(r, 0);
  EXPECT_EQ(table.size(), 1u);
  PacketFixture f;
  EXPECT_TRUE(std::holds_alternative<DropAction>(table.lookup(f.pkt, 0)->actions[0]));
}

TEST(FlowTable, CapacityLimitRejects) {
  FlowTable table(2);
  EXPECT_TRUE(table.install(rule_with_port(1, 1), 0).has_value());
  EXPECT_TRUE(table.install(rule_with_port(2, 1), 0).has_value());
  EXPECT_FALSE(table.install(rule_with_port(3, 1), 0).has_value());
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  const auto cookie = table.install(rule_with_port(80, 1), 0);
  EXPECT_TRUE(table.remove(*cookie));
  EXPECT_FALSE(table.remove(*cookie));
  PacketFixture f;
  EXPECT_EQ(table.lookup(f.pkt, 0), nullptr);
}

TEST(FlowTable, HardTimeoutExpires) {
  FlowTable table;
  auto r = rule_with_port(80, 1);
  r.hard_timeout = 90 * common::kSecond;  // a LIMIT 90s query window
  table.install(r, 1000);
  EXPECT_EQ(table.expire(1000 + 89 * common::kSecond), 0u);
  EXPECT_EQ(table.expire(1000 + 90 * common::kSecond), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, PermanentRulesNeverExpire) {
  FlowTable table;
  table.install(rule_with_port(80, 1), 0);
  EXPECT_EQ(table.expire(~common::Timestamp{0} / 2), 0u);
}

TEST(FlowTable, LookupStatsUpdatedByCaller) {
  FlowTable table;
  table.install(rule_with_port(80, 1), 0);
  PacketFixture f;
  FlowRule* hit = table.lookup(f.pkt, 0);
  hit->packet_count += 1;
  hit->byte_count += 100;
  EXPECT_EQ(table.rules()[0].packet_count, 1u);
  EXPECT_EQ(table.rules()[0].byte_count, 100u);
}

}  // namespace
}  // namespace netalytics::sdn
