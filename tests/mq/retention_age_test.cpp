// Age-based retention (Kafka retention.ms analogue): expired messages are
// evicted on the produce path, read evictions cost nothing, unread ones are
// recorded as broker_retention losses and surface the eviction_lag gauge.
#include <gtest/gtest.h>

#include "common/trace.hpp"
#include "mq/broker.hpp"
#include "mq/cluster.hpp"
#include "mq/consumer.hpp"

namespace netalytics::mq {
namespace {

Message make_msg(const std::string& topic, std::uint64_t key,
                 std::uint64_t records = 1) {
  Message m;
  m.topic = topic;
  m.key = key;
  m.payload = std::vector<std::byte>(8, std::byte{0x7f});
  m.records = records;
  return m;
}

BrokerConfig aged(common::Duration retention) {
  BrokerConfig cfg;
  cfg.retention_age = retention;
  return cfg;
}

TEST(RetentionAge, ExpiredMessagesAreEvictedOnProduce) {
  Broker broker(aged(1000));
  ASSERT_EQ(broker.produce(make_msg("t", 1), 0), ProduceStatus::ok);
  ASSERT_EQ(broker.produce(make_msg("t", 1), 500), ProduceStatus::ok);
  // Both are younger than 1000 at now=900: nothing evicted yet.
  ASSERT_EQ(broker.produce(make_msg("t", 1), 900), ProduceStatus::ok);
  EXPECT_EQ(broker.stats().dropped_retention, 0u);
  // At now=1700 the first two (append_ts 0 and 500) have expired.
  ASSERT_EQ(broker.produce(make_msg("t", 1), 1700), ProduceStatus::ok);
  EXPECT_EQ(broker.stats().dropped_retention, 2u);
  const auto msgs = broker.poll("g", "t", 10);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].append_ts, 900u);
}

TEST(RetentionAge, ZeroDisablesAgeEviction) {
  Broker broker;  // default config: no retention_age
  broker.produce(make_msg("t", 1), 0);
  broker.produce(make_msg("t", 1), 1u << 30);
  EXPECT_EQ(broker.stats().dropped_retention, 0u);
  EXPECT_EQ(broker.poll("g", "t", 10).size(), 2u);
}

TEST(RetentionAge, ReadEvictionsAreNotCountedAsLost) {
  common::MetricsRegistry registry;
  common::DropLedger ledger(registry, "drop");
  Broker broker(aged(1000));
  broker.set_drop_ledger(&ledger);

  broker.produce(make_msg("t", 1, /*records=*/5), 0);
  ASSERT_EQ(broker.poll("g", "t", 10).size(), 1u);  // consumed before expiry
  broker.produce(make_msg("t", 1), 5000);           // expires the first one
  EXPECT_EQ(broker.stats().dropped_retention, 1u);
  EXPECT_EQ(broker.stats().evicted_unread_records, 0u);
  EXPECT_EQ(ledger.value(common::DropCause::broker_retention), 0u);
}

TEST(RetentionAge, UnreadEvictionsLandInTheLedgerInRecords) {
  common::MetricsRegistry registry;
  common::DropLedger ledger(registry, "drop");
  Broker broker(aged(1000));
  broker.set_drop_ledger(&ledger);

  broker.produce(make_msg("t", 1, /*records=*/5), 0);
  broker.produce(make_msg("t", 1, /*records=*/3), 100);
  broker.produce(make_msg("t", 1), 5000);  // both unread and expired
  EXPECT_EQ(broker.stats().dropped_retention, 2u);
  EXPECT_EQ(broker.stats().evicted_unread_records, 8u);
  EXPECT_EQ(ledger.value(common::DropCause::broker_retention), 8u);
}

TEST(RetentionAge, SlowestGroupDefinesUnread) {
  Broker broker(aged(1000));
  broker.produce(make_msg("t", 1), 0);
  broker.produce(make_msg("t", 1, /*records=*/4), 100);
  ASSERT_EQ(broker.poll("fast", "t", 10).size(), 2u);
  ASSERT_EQ(broker.poll("slow", "t", 1).size(), 1u);  // stops before msg 2
  broker.produce(make_msg("t", 1), 5000);  // expires both
  // Everyone read message 1; "slow" never read message 2, so only its
  // records count as lost.
  EXPECT_EQ(broker.stats().dropped_retention, 2u);
  EXPECT_EQ(broker.stats().evicted_unread_records, 4u);
}

TEST(RetentionAge, EvictionLagGaugeTracksOldestRetainedAge) {
  common::MetricsRegistry registry;
  Broker broker(aged(10'000));
  broker.bind_metrics(registry, "mq.broker0");

  broker.produce(make_msg("t", 1), 1000);
  broker.produce(make_msg("t", 1), 4000);
  const auto snap = registry.snapshot("mq.broker0.");
  std::int64_t lag = -1;
  for (const auto& g : snap.gauges) {
    if (g.name == "mq.broker0.eviction_lag") lag = g.value;
  }
  // Oldest retained message was appended at 1000; now is 4000.
  EXPECT_EQ(lag, 3000);
}

TEST(RetentionAge, UnreadRecordsReportsBacklogPerTopic) {
  Cluster cluster(2, aged(0));
  for (std::uint64_t key = 0; key < 8; ++key) {
    ASSERT_EQ(cluster.produce(make_msg("t", key, /*records=*/2), 0),
              ProduceStatus::ok);
  }
  EXPECT_EQ(cluster.unread_records("t"), 16u);
  (void)cluster.poll("g", "t", 3);
  EXPECT_EQ(cluster.unread_records("t"), 10u);
  (void)cluster.poll("g", "t", 100);
  EXPECT_EQ(cluster.unread_records("t"), 0u);
  EXPECT_EQ(cluster.unread_records("other"), 0u);
}

TEST(RetentionAge, GroupMemberBehindRetentionHorizonResumesAtLogHead) {
  // A group member whose inherited cursor points below the retention
  // horizon must resume at the log head: the evicted gap is charged once
  // to broker_retention, never re-delivered and never silently skipped.
  common::MetricsRegistry registry;
  common::DropLedger ledger(registry, "drop");
  Cluster cluster(1, aged(1000));
  cluster.set_drop_ledger(&ledger);

  Consumer first(cluster, "g", /*join_group=*/true);
  for (std::uint64_t key = 0; key < 4; ++key) {
    ASSERT_EQ(cluster.produce(make_msg("t", key, /*records=*/2), 0),
              ProduceStatus::ok);
  }
  // The member reads only part of the backlog, then stalls.
  ASSERT_EQ(first.poll("t", 1).size(), 1u);

  // While the cursor lags, the unread remainder ages past retention_age
  // (evicted on the next produce). 3 messages * 2 records were unread.
  for (std::uint64_t key = 0; key < 4; ++key) {
    ASSERT_EQ(cluster.produce(make_msg("t", key, /*records=*/2), 5000),
              ProduceStatus::ok);
  }
  EXPECT_EQ(ledger.value(common::DropCause::broker_retention), 6u);

  // Rebalance: the stalled member leaves and a fresh one inherits the
  // group cursor — now older than the log head.
  first.leave();
  Consumer second(cluster, "g", /*join_group=*/true);
  const auto resumed = second.poll("t", 100);
  // It resumes at the head: exactly the 4 live messages, nothing replayed.
  EXPECT_EQ(resumed.size(), 4u);
  for (const auto& m : resumed) EXPECT_EQ(m.append_ts, 5000u);
  // The accounting is closed: consumed + evicted-unread covers every
  // produced record, and no further retention charge appears on poll.
  EXPECT_EQ(ledger.value(common::DropCause::broker_retention), 6u);
  EXPECT_EQ(cluster.unread_records("t"), 0u);
}

TEST(RetentionAge, CapacityEvictionAlsoFeedsTheLedger) {
  common::MetricsRegistry registry;
  common::DropLedger ledger(registry, "drop");
  BrokerConfig cfg;
  cfg.partition_capacity = 2;
  Broker broker(cfg);
  broker.set_drop_ledger(&ledger);

  for (int i = 0; i < 5; ++i) {
    // Ring semantics: the produce always lands (backpressure may advise
    // low_buffer, but nothing blocks).
    ASSERT_NE(broker.produce(make_msg("t", 1, /*records=*/2), i),
              ProduceStatus::blocked);
  }
  // Ring semantics: 3 unread messages fell off the front.
  EXPECT_EQ(broker.stats().dropped_retention, 3u);
  EXPECT_EQ(broker.stats().evicted_unread_records, 6u);
  EXPECT_EQ(ledger.value(common::DropCause::broker_retention), 6u);
}

}  // namespace
}  // namespace netalytics::mq
