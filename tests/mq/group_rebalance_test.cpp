// Consumer-group membership & rebalance (mq/group.hpp): a group of N
// members must deliver exactly what one consumer would — same message
// multiset, per-key order intact — including across mid-run join/leave
// generations, because partition cursors are shared group state and every
// partition has exactly one owner per generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/byte_io.hpp"
#include "mq/cluster.hpp"
#include "mq/consumer.hpp"
#include "mq/group.hpp"

namespace netalytics::mq {
namespace {

constexpr std::size_t kBrokers = 2;
constexpr std::size_t kPartitionsPerBroker = 4;
constexpr std::size_t kKeys = 16;
constexpr std::size_t kMessages = 200;

BrokerConfig grid_config() {
  BrokerConfig cfg;
  cfg.partitions_per_topic = kPartitionsPerBroker;
  return cfg;
}

/// Message seq `i` of key `i % kKeys`; the seq rides in the payload so a
/// delivery is identifiable regardless of which member fetched it.
Message make_msg(std::uint64_t seq) {
  Message m;
  m.topic = "t";
  m.key = seq % kKeys;
  common::ByteWriter w;
  w.u64(seq);
  m.payload = w.take();
  return m;
}

void produce_all(Cluster& cluster) {
  for (std::uint64_t seq = 0; seq < kMessages; ++seq) {
    ASSERT_EQ(cluster.produce(make_msg(seq), seq), ProduceStatus::ok);
  }
}

std::uint64_t seq_of(const Message& m) {
  return common::ByteReader(m.payload.view()).u64();
}

/// Delivery log: seqs per key, in the order they were handed out.
using PerKey = std::map<std::uint64_t, std::vector<std::uint64_t>>;

void record(PerKey& log, const std::vector<Message>& batch) {
  for (const auto& m : batch) log[m.key].push_back(seq_of(m));
}

std::size_t total(const PerKey& log) {
  std::size_t n = 0;
  for (const auto& [key, seqs] : log) n += seqs.size();
  return n;
}

/// What one member-less consumer delivers — the differential baseline.
PerKey baseline() {
  Cluster cluster(kBrokers, grid_config());
  produce_all(cluster);
  Consumer consumer(cluster, "base");
  PerKey log;
  for (;;) {
    const auto batch = consumer.poll("t", 7);
    if (batch.empty()) break;
    record(log, batch);
  }
  EXPECT_EQ(total(log), kMessages);
  return log;
}

/// Poll every member once (member-rank order), appending to `log`.
/// Returns messages fetched this round.
std::size_t poll_round(std::vector<std::unique_ptr<Consumer>>& members,
                       PerKey& log) {
  std::size_t n = 0;
  for (auto& m : members) {
    const auto batch = m->poll("t", 7);
    n += batch.size();
    record(log, batch);
  }
  return n;
}

void drain(std::vector<std::unique_ptr<Consumer>>& members, PerKey& log) {
  while (poll_round(members, log) != 0) {
  }
}

TEST(GroupRebalance, AssignmentIsDeterministicDisjointAndCovering) {
  for (const auto strategy :
       {AssignmentStrategy::round_robin, AssignmentStrategy::range}) {
    GroupCoordinator coord(kBrokers, kPartitionsPerBroker, strategy);
    std::vector<std::uint64_t> members;
    for (std::size_t n = 1; n <= 5; ++n) {
      members.push_back(coord.join("g"));
      const auto shares = coord.assignments("g");
      ASSERT_EQ(shares.size(), n);
      // Disjoint and covering: every grid slot appears exactly once.
      std::vector<TopicPartition> all;
      for (const auto& share : shares) {
        all.insert(all.end(), share.begin(), share.end());
      }
      EXPECT_EQ(all.size(), coord.partition_count());
      const auto less = [](const TopicPartition& a, const TopicPartition& b) {
        return a.broker != b.broker ? a.broker < b.broker
                                    : a.partition < b.partition;
      };
      std::sort(all.begin(), all.end(), less);
      for (std::size_t i = 0; i + 1 < all.size(); ++i) {
        EXPECT_FALSE(all[i] == all[i + 1]);
      }
      // Pure function of membership: asking twice gives the same answer.
      for (const auto id : members) {
        EXPECT_EQ(coord.assignment("g", id), coord.assignment("g", id));
      }
    }
  }
}

TEST(GroupRebalance, RangeStrategyAssignsContiguousRuns) {
  GroupCoordinator coord(kBrokers, kPartitionsPerBroker,
                         AssignmentStrategy::range);
  const auto a = coord.join("g");
  const auto b = coord.join("g");
  // 8 partitions, 2 members: ranks get [0,4) and [4,8) of the global index.
  const auto share_a = coord.assignment("g", a);
  ASSERT_EQ(share_a.size(), 4u);
  EXPECT_EQ(share_a.front(), (TopicPartition{0, 0}));
  EXPECT_EQ(share_a.back(), (TopicPartition{0, 3}));
  const auto share_b = coord.assignment("g", b);
  ASSERT_EQ(share_b.size(), 4u);
  EXPECT_EQ(share_b.front(), (TopicPartition{1, 0}));
  EXPECT_EQ(share_b.back(), (TopicPartition{1, 3}));
}

TEST(GroupRebalance, JoinLeaveBumpGenerationAndShiftRanks) {
  GroupCoordinator coord(kBrokers, kPartitionsPerBroker);
  EXPECT_EQ(coord.generation("g"), 0u);
  const auto a = coord.join("g");
  const auto b = coord.join("g");
  const auto c = coord.join("g");
  EXPECT_EQ(coord.generation("g"), 3u);
  EXPECT_EQ(coord.member_count("g"), 3u);

  const auto b_share_before = coord.assignment("g", b);
  EXPECT_TRUE(coord.leave("g", a));
  EXPECT_EQ(coord.generation("g"), 4u);
  // b is rank 0 now; its share changed (handoff) and a's is empty.
  EXPECT_NE(coord.assignment("g", b), b_share_before);
  EXPECT_TRUE(coord.assignment("g", a).empty());
  EXPECT_FALSE(coord.leave("g", a));  // idempotent
  EXPECT_EQ(coord.generation("g"), 4u);
  // Member ids are never reused.
  const auto d = coord.join("g");
  EXPECT_GT(d, c);
}

TEST(GroupRebalance, GroupOfNMatchesSingleConsumerBaseline) {
  const PerKey base = baseline();
  for (const std::size_t n : {1u, 2u, 4u}) {
    Cluster cluster(kBrokers, grid_config());
    produce_all(cluster);
    std::vector<std::unique_ptr<Consumer>> members;
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(
          std::make_unique<Consumer>(cluster, "g", /*join_group=*/true));
    }
    ASSERT_EQ(cluster.coordinator().member_count("g"), n);
    PerKey log;
    drain(members, log);
    // Exactly the baseline: same multiset AND same per-key order (all
    // messages of a key live in one partition, owned by one member at a
    // time, so the shared cursor preserves their order).
    EXPECT_EQ(log, base) << "group size " << n;
  }
}

TEST(GroupRebalance, MidRunJoinAndLeaveKeepDeliveryExact) {
  const PerKey base = baseline();
  Cluster cluster(kBrokers, grid_config());
  produce_all(cluster);

  std::vector<std::unique_ptr<Consumer>> members;
  members.push_back(std::make_unique<Consumer>(cluster, "g", true));
  members.push_back(std::make_unique<Consumer>(cluster, "g", true));
  PerKey log;
  // Partial drain at size 2, then a third member joins (generation bump:
  // partitions move to it mid-stream)...
  for (int round = 0; round < 3; ++round) poll_round(members, log);
  const std::uint64_t gen_before = cluster.coordinator().generation("g");
  members.push_back(std::make_unique<Consumer>(cluster, "g", true));
  EXPECT_EQ(cluster.coordinator().generation("g"), gen_before + 1);
  for (int round = 0; round < 3; ++round) poll_round(members, log);
  // ...then the first member leaves; its partitions hand their cursors to
  // the survivors.
  members.front()->leave();
  EXPECT_EQ(cluster.coordinator().member_count("g"), 2u);
  drain(members, log);

  EXPECT_EQ(total(log), kMessages);
  EXPECT_EQ(log, base);
}

TEST(GroupRebalance, RepeatedChurnNeverSkipsOrDoubleDelivers) {
  // Heavier churn: membership changes between every poll round. The union
  // must still be exact — no offset skipped (missing seq) and none read
  // twice (duplicate seq).
  const PerKey base = baseline();
  Cluster cluster(kBrokers, grid_config());
  produce_all(cluster);

  std::vector<std::unique_ptr<Consumer>> members;
  members.push_back(std::make_unique<Consumer>(cluster, "g", true));
  PerKey log;
  for (int round = 0; total(log) < kMessages && round < 200; ++round) {
    if (round % 3 == 1 && members.size() < 5) {
      members.push_back(std::make_unique<Consumer>(cluster, "g", true));
    } else if (round % 3 == 2 && members.size() > 1) {
      members.erase(members.begin());  // ~Consumer leaves the group
    }
    poll_round(members, log);
  }
  EXPECT_EQ(log, base);
}

TEST(GroupRebalance, DepartedMemberFetchesNothingUntilRejoin) {
  Cluster cluster(kBrokers, grid_config());
  produce_all(cluster);
  Consumer member(cluster, "g", /*join_group=*/true);
  const auto id = member.member_id();
  EXPECT_GT(id, 0u);
  member.leave();
  EXPECT_EQ(member.member_id(), 0u);
  EXPECT_TRUE(member.poll("t", 100).empty());
  member.rejoin();
  EXPECT_GT(member.member_id(), id);  // fresh identity, never reused
  EXPECT_FALSE(member.poll("t", 100).empty());
}

TEST(GroupRebalance, NonMemberShimStillDrainsEverything) {
  // The legacy two-argument Consumer keeps its poll-everything semantics
  // and never registers with the coordinator.
  Cluster cluster(kBrokers, grid_config());
  produce_all(cluster);
  Consumer legacy(cluster, "g");
  EXPECT_EQ(legacy.member_id(), 0u);
  EXPECT_EQ(cluster.coordinator().member_count("g"), 0u);
  std::size_t got = 0;
  for (;;) {
    const auto batch = legacy.poll("t", 64);
    if (batch.empty()) break;
    got += batch.size();
  }
  EXPECT_EQ(got, kMessages);
}

TEST(GroupRebalance, MembersSplitPartitionsInsteadOfMultiplyingWork) {
  // The scaling claim itself: 4 members consume each message once between
  // them (the broker counts every fetched message; splitting keeps the
  // total at kMessages, where 4 independent groups would read 4x).
  Cluster cluster(kBrokers, grid_config());
  produce_all(cluster);
  std::vector<std::unique_ptr<Consumer>> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(std::make_unique<Consumer>(cluster, "g", true));
  }
  PerKey log;
  drain(members, log);
  EXPECT_EQ(cluster.aggregate_stats().consumed, kMessages);
  // And the split was real: every member fetched something.
  for (const auto& m : members) EXPECT_GT(m->total_consumed(), 0u);
}

}  // namespace
}  // namespace netalytics::mq
