#include "mq/broker.hpp"

#include <gtest/gtest.h>

namespace netalytics::mq {
namespace {

Message make_msg(const std::string& topic, std::uint64_t key, std::size_t bytes) {
  Message m;
  m.topic = topic;
  m.key = key;
  m.payload = std::vector<std::byte>(bytes, std::byte{0x7f});
  return m;
}

TEST(Broker, ProduceThenPollRoundTrip) {
  Broker broker;
  ASSERT_EQ(broker.produce(make_msg("t", 1, 10), 0), ProduceStatus::ok);
  ASSERT_EQ(broker.produce(make_msg("t", 1, 20), 0), ProduceStatus::ok);
  const auto msgs = broker.poll("g", "t", 10);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].payload.size(), 10u);
  EXPECT_EQ(msgs[1].payload.size(), 20u);
  EXPECT_LT(msgs[0].offset, msgs[1].offset);
}

TEST(Broker, OffsetsAdvancePerGroup) {
  Broker broker;
  broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_EQ(broker.poll("g", "t", 10).size(), 1u);
  EXPECT_EQ(broker.poll("g", "t", 10).size(), 0u);  // already consumed
  broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_EQ(broker.poll("g", "t", 10).size(), 1u);
}

TEST(Broker, IndependentConsumerGroupsReplay) {
  Broker broker;
  broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_EQ(broker.poll("g1", "t", 10).size(), 1u);
  EXPECT_EQ(broker.poll("g2", "t", 10).size(), 1u);  // fresh group sees it too
}

TEST(Broker, PollRespectsMax) {
  Broker broker;
  for (int i = 0; i < 10; ++i) broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_EQ(broker.poll("g", "t", 3).size(), 3u);
  EXPECT_EQ(broker.poll("g", "t", 100).size(), 7u);
}

TEST(Broker, UnknownTopicPollsEmpty) {
  Broker broker;
  EXPECT_TRUE(broker.poll("g", "nope", 10).empty());
  EXPECT_DOUBLE_EQ(broker.occupancy("nope"), 0.0);
}

TEST(Broker, TopicsAreIsolated) {
  Broker broker;
  broker.produce(make_msg("a", 1, 1), 0);
  broker.produce(make_msg("b", 1, 1), 0);
  EXPECT_EQ(broker.poll("g", "a", 10).size(), 1u);
  EXPECT_EQ(broker.depth("b"), 1u);
}

TEST(Broker, RetentionEvictsOldest) {
  BrokerConfig cfg;
  cfg.partition_capacity = 4;
  Broker broker(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    broker.produce(make_msg("t", 1, static_cast<std::size_t>(i + 1)), 0);
  }
  EXPECT_EQ(broker.depth("t"), 4u);
  EXPECT_EQ(broker.stats().dropped_retention, 6u);
  // A late consumer only sees the retained tail, starting at the oldest
  // surviving offset.
  const auto msgs = broker.poll("late", "t", 10);
  ASSERT_EQ(msgs.size(), 4u);
  EXPECT_EQ(msgs[0].payload.size(), 7u);  // message index 6
}

TEST(Broker, HighWatermarkSignalsLowBuffer) {
  BrokerConfig cfg;
  cfg.partition_capacity = 10;
  cfg.high_watermark = 0.5;
  Broker broker(cfg);
  ProduceStatus status = ProduceStatus::ok;
  for (int i = 0; i < 4; ++i) status = broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_EQ(status, ProduceStatus::ok);
  status = broker.produce(make_msg("t", 1, 1), 0);  // 5/10 = watermark
  EXPECT_EQ(status, ProduceStatus::low_buffer);
}

TEST(Broker, OccupancyIsConsumerLagNotLogSize) {
  // Consuming does not delete messages (retention does), so buffer
  // pressure must reflect what the slowest group has NOT yet read —
  // otherwise feedback sampling would see a "full" buffer forever.
  BrokerConfig cfg;
  cfg.partition_capacity = 10;
  Broker broker(cfg);
  for (int i = 0; i < 8; ++i) broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_NEAR(broker.occupancy("t"), 0.8, 1e-9);  // nothing consumed yet
  broker.poll("g", "t", 6);
  EXPECT_NEAR(broker.occupancy("t"), 0.2, 1e-9);  // 2 unread
  broker.poll("g", "t", 10);
  EXPECT_NEAR(broker.occupancy("t"), 0.0, 1e-9);  // fully drained
  // A second, slower group pins the pressure.
  broker.produce(make_msg("t", 1, 1), 0);
  broker.poll("slow", "t", 1);  // reads from the retained tail
  EXPECT_GT(broker.occupancy("t"), 0.0);
}

TEST(Broker, LowBufferSignalClearsAfterConsumption) {
  BrokerConfig cfg;
  cfg.partition_capacity = 10;
  cfg.high_watermark = 0.5;
  Broker broker(cfg);
  ProduceStatus status = ProduceStatus::ok;
  for (int i = 0; i < 6; ++i) status = broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_EQ(status, ProduceStatus::low_buffer);
  broker.poll("g", "t", 6);
  EXPECT_EQ(broker.produce(make_msg("t", 1, 1), 0), ProduceStatus::ok);
}

TEST(Broker, OccupancyTracksFullestPartition) {
  BrokerConfig cfg;
  cfg.partition_capacity = 10;
  Broker broker(cfg);
  for (int i = 0; i < 5; ++i) broker.produce(make_msg("t", 1, 1), 0);
  EXPECT_NEAR(broker.occupancy("t"), 0.5, 1e-9);
}

TEST(Broker, DiskModelBlocksWhenSaturated) {
  // 1 MB/s disk, 50 ms max lag -> at most ~50 KB outstanding at one instant.
  BrokerConfig cfg;
  cfg.persist_bytes_per_sec = 1'000'000;
  Broker broker(cfg);
  ASSERT_EQ(broker.produce(make_msg("t", 1, 40'000), 0), ProduceStatus::ok);
  // Another 40 KB at the same instant exceeds the allowed persist lag.
  EXPECT_EQ(broker.produce(make_msg("t", 1, 40'000), 0), ProduceStatus::blocked);
  EXPECT_EQ(broker.stats().blocked, 1u);
  // After the disk catches up (100 ms later), produce succeeds again.
  EXPECT_EQ(broker.produce(make_msg("t", 1, 40'000), 100 * common::kMillisecond),
            ProduceStatus::ok);
}

TEST(Broker, RamDiskModeNeverBlocks) {
  Broker broker;  // persist_bytes_per_sec = 0
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(broker.produce(make_msg("t", 1, 100'000), 0), ProduceStatus::blocked);
  }
}

TEST(Broker, DiskVsRamDiskThroughputGap) {
  // The paper's observation: RAM-disk Kafka sustains an order of magnitude
  // more than the 70 MB/s disk log. Count accepted messages over one
  // simulated second.
  BrokerConfig disk_cfg;
  disk_cfg.persist_bytes_per_sec = 70'000'000;
  disk_cfg.partition_capacity = 1 << 20;
  Broker disk(disk_cfg);
  BrokerConfig ram_cfg;
  ram_cfg.partition_capacity = 1 << 20;
  Broker ram(ram_cfg);

  constexpr std::size_t kMsgBytes = 10'000;
  std::uint64_t disk_ok = 0, ram_ok = 0;
  for (int i = 0; i < 20000; ++i) {
    const common::Timestamp now =
        static_cast<common::Timestamp>(i) * (common::kSecond / 20000);
    if (disk.produce(make_msg("t", 1, kMsgBytes), now) != ProduceStatus::blocked) {
      ++disk_ok;
    }
    if (ram.produce(make_msg("t", 1, kMsgBytes), now) != ProduceStatus::blocked) {
      ++ram_ok;
    }
  }
  EXPECT_NEAR(static_cast<double>(disk_ok) * kMsgBytes, 70e6, 20e6);
  EXPECT_GT(ram_ok, disk_ok * 2);
  EXPECT_EQ(ram_ok, 20000u);
}

TEST(Broker, StatsCountProducedAndConsumed) {
  Broker broker;
  broker.produce(make_msg("t", 1, 5), 0);
  broker.produce(make_msg("t", 1, 5), 0);
  broker.poll("g", "t", 1);
  const auto s = broker.stats();
  EXPECT_EQ(s.produced, 2u);
  EXPECT_EQ(s.consumed, 1u);
  EXPECT_EQ(s.bytes_in, 10u);
}

TEST(Broker, MultiplePartitionsSpreadKeys) {
  BrokerConfig cfg;
  cfg.partitions_per_topic = 4;
  cfg.partition_capacity = 100;
  Broker broker(cfg);
  for (std::uint64_t k = 0; k < 64; ++k) {
    broker.produce(make_msg("t", k, 1), 0);
  }
  // All messages retrievable despite partitioning.
  EXPECT_EQ(broker.poll("g", "t", 1000).size(), 64u);
  // Spread: the fullest partition holds well under everything.
  EXPECT_LT(broker.occupancy("t"), 0.5);
}

}  // namespace
}  // namespace netalytics::mq
