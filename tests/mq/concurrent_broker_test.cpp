// Real-thread concurrency over the sharded broker: N producer threads with
// distinct keys hammer one topic (optionally while a consumer polls), and
// per-key order plus zero loss must hold. These are the suites the TSan
// lane (tests/run_tsan.sh) exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "mq/consumer.hpp"
#include "mq/producer.hpp"

namespace netalytics::mq {
namespace {

std::vector<std::byte> encode_seq(std::uint64_t v) {
  std::vector<std::byte> p(8);
  for (int i = 0; i < 8; ++i) {
    p[static_cast<std::size_t>(i)] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
  return p;
}

std::uint64_t decode_seq(std::span<const std::byte> p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

TEST(ConcurrentBroker, ParallelBatchProducersKeepPerKeyOrder) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  constexpr std::size_t kBatch = 16;

  BrokerConfig cfg;
  cfg.partitions_per_topic = 4;
  cfg.partition_capacity = kThreads * kPerThread;  // no retention pressure
  Broker broker(cfg);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&broker, t] {
      std::uint64_t seq = 0;
      while (seq < kPerThread) {
        std::vector<Message> batch;
        for (std::size_t i = 0; i < kBatch && seq < kPerThread; ++i, ++seq) {
          Message m;
          m.topic = "t";
          m.key = t + 1;
          m.timestamp = static_cast<common::Timestamp>(seq);
          m.payload = encode_seq(seq);
          batch.push_back(std::move(m));
        }
        std::vector<ProduceStatus> statuses(batch.size());
        broker.produce_batch(batch, 0, statuses);
        for (const auto s : statuses) {
          ASSERT_TRUE(s == ProduceStatus::ok || s == ProduceStatus::low_buffer);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(broker.stats().produced, kThreads * kPerThread);

  // One group drains everything; per key, offsets must be strictly
  // increasing and the sequence numbers must come out in send order.
  std::map<std::uint64_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      by_key;  // key -> (offset, seq) in arrival order
  std::size_t total = 0;
  for (;;) {
    const auto msgs = broker.poll("g", "t", 512);
    if (msgs.empty()) break;
    total += msgs.size();
    for (const auto& m : msgs) by_key[m.key].emplace_back(m.offset, decode_seq(m.payload));
  }
  ASSERT_EQ(total, kThreads * kPerThread);
  ASSERT_EQ(by_key.size(), kThreads);
  for (const auto& [key, arrivals] : by_key) {
    ASSERT_EQ(arrivals.size(), kPerThread) << "key " << key;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (i > 0) {
        EXPECT_GT(arrivals[i].first, arrivals[i - 1].first)
            << "offset order broken for key " << key;
      }
      EXPECT_EQ(arrivals[i].second, i) << "seq order broken for key " << key;
    }
  }
}

TEST(ConcurrentBroker, ProducersAndConsumerOverlapWithoutLoss) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 1500;

  BrokerConfig cfg;
  cfg.partitions_per_topic = 2;
  cfg.partition_capacity = kThreads * kPerThread;
  Cluster cluster(2, cfg);

  std::map<std::uint64_t, std::vector<std::uint64_t>> seqs;  // key -> seqs
  std::size_t consumed = 0;
  std::atomic<bool> done{false};
  Consumer consumer(cluster, "live");
  const auto drain = [&] {
    for (const auto& m : consumer.poll("t", 256)) {
      seqs[m.key].push_back(decode_seq(m.payload));
      ++consumed;
    }
  };

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) drain();
  });

  {
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&cluster, t] {
        // Batched producer facade, exercised concurrently with the poller.
        BatchPolicy batch;
        batch.max_records = 8;
        Producer producer(cluster, t + 1, nullptr, {}, batch);
        for (std::uint64_t seq = 0; seq < kPerThread; ++seq) {
          ASSERT_TRUE(producer.send("t", encode_seq(seq),
                                    static_cast<common::Timestamp>(seq)));
        }
        producer.drain(kPerThread);
        ASSERT_EQ(producer.pending(), 0u);
      });
    }
    for (auto& th : writers) th.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  // Pick up the tail: everything was produced, so drain until a poll
  // comes back empty.
  for (std::size_t before = consumed - 1; before != consumed;) {
    before = consumed;
    drain();
  }

  ASSERT_EQ(consumed, kThreads * kPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    const auto& s = seqs[t + 1];
    ASSERT_EQ(s.size(), kPerThread) << "key " << t + 1;
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i], i) << "per-key order broken for key " << t + 1;
    }
  }
}

}  // namespace
}  // namespace netalytics::mq
