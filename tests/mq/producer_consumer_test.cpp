#include <gtest/gtest.h>

#include "mq/consumer.hpp"
#include "mq/producer.hpp"

namespace netalytics::mq {
namespace {

std::vector<std::byte> payload(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x42});
}

TEST(ProducerConsumer, EndToEndDelivery) {
  Cluster cluster(2);
  Producer producer(cluster, /*producer_id=*/7);
  Consumer consumer(cluster, "g");

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(producer.send("http_get", payload(16), i));
  }
  const auto msgs = consumer.poll("http_get", 100);
  ASSERT_EQ(msgs.size(), 5u);
  for (const auto& m : msgs) {
    EXPECT_EQ(m.topic, "http_get");
    EXPECT_EQ(m.key, 7u);
    EXPECT_EQ(m.payload.size(), 16u);
  }
  EXPECT_EQ(consumer.total_consumed(), 5u);
}

TEST(Producer, StatsTrackSentAndBytes) {
  Cluster cluster(1);
  Producer producer(cluster, 1);
  producer.send("t", payload(100), 0);
  producer.send("t", payload(50), 0);
  const auto s = producer.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.bytes, 150u);
  EXPECT_EQ(s.lost, 0u);
}

TEST(Producer, BackpressureCallbackFiresOnLowBuffer) {
  BrokerConfig cfg;
  cfg.partition_capacity = 10;
  cfg.high_watermark = 0.3;
  Cluster cluster(1, cfg);
  int events = 0;
  Producer producer(cluster, 1, [&](ProduceStatus s) {
    EXPECT_EQ(s, ProduceStatus::low_buffer);
    ++events;
  });
  for (int i = 0; i < 5; ++i) producer.send("t", payload(1), 0);
  EXPECT_GT(events, 0);
  EXPECT_EQ(producer.stats().backpressure_events, static_cast<std::uint64_t>(events));
}

TEST(Producer, BlockedSendIsBufferedAndRetriedToDelivery) {
  // 1 MB/s disk, 50 ms lag cap: the second 40 KB burst at t=0 blocks, goes
  // to the send-buffer, and lands once the simulated disk catches up.
  BrokerConfig cfg;
  cfg.persist_bytes_per_sec = 1'000'000;
  Cluster cluster(1, cfg);
  int events = 0;
  Producer producer(cluster, 1, [&](ProduceStatus) { ++events; });
  EXPECT_TRUE(producer.send("t", payload(40'000), 0));
  EXPECT_TRUE(producer.send("t", payload(40'000), 0));  // buffered, not lost
  EXPECT_EQ(producer.pending(), 1u);
  EXPECT_EQ(events, 1);
  EXPECT_EQ(producer.flush(100 * common::kMillisecond), 0u);
  const auto s = producer.stats();
  EXPECT_EQ(s.sent, 2u);
  EXPECT_EQ(s.lost, 0u);
  EXPECT_GE(s.retries, 1u);
  EXPECT_EQ(cluster.aggregate_stats().produced, 2u);
}

TEST(Producer, PermanentlyBlockedSendIsAbandonedAfterMaxAttempts) {
  // A 5 KB message can never persist within the 50 ms lag cap at 1 KB/s,
  // so every retry fails and the message is dropped after max_attempts.
  BrokerConfig cfg;
  cfg.persist_bytes_per_sec = 1000;
  Cluster cluster(1, cfg);
  RetryPolicy retry;
  retry.max_attempts = 4;
  Producer producer(cluster, 1, nullptr, retry);
  EXPECT_TRUE(producer.send("t", payload(5000), 0));  // accepted: buffered
  common::Timestamp t = 0;
  while (producer.pending() > 0) {
    t += 100 * common::kMillisecond;
    producer.flush(t);
  }
  const auto s = producer.stats();
  EXPECT_EQ(s.lost, 1u);
  EXPECT_EQ(s.sent, 0u);
  EXPECT_EQ(s.retries, 3u);  // attempts 2..4 were retries
  EXPECT_EQ(s.backpressure_events, 4u);
}

TEST(Producer, SendBufferOverflowDropsNewMessages) {
  BrokerConfig cfg;
  cfg.persist_bytes_per_sec = 1;  // everything blocks
  Cluster cluster(1, cfg);
  RetryPolicy retry;
  retry.max_buffered = 2;
  retry.max_attempts = 0;  // never abandon by attempts
  Producer producer(cluster, 1, nullptr, retry);
  EXPECT_TRUE(producer.send("t", payload(100), 0));
  EXPECT_TRUE(producer.send("t", payload(100), 0));
  EXPECT_FALSE(producer.send("t", payload(100), 0));  // buffer full
  EXPECT_EQ(producer.stats().lost, 1u);
  EXPECT_EQ(producer.pending(), 2u);
}

TEST(Consumer, SeparateGroupsIndependentOffsets) {
  Cluster cluster(1);
  Producer producer(cluster, 1);
  producer.send("t", payload(1), 0);
  Consumer a(cluster, "a");
  Consumer b(cluster, "b");
  EXPECT_EQ(a.poll("t", 10).size(), 1u);
  EXPECT_EQ(b.poll("t", 10).size(), 1u);
  EXPECT_EQ(a.poll("t", 10).size(), 0u);
}

TEST(ProducerConsumer, MultipleProducersFuseIntoOneTopic) {
  // §3.2: the aggregation layer fuses data streams from parsers replicated
  // at different points in the network.
  Cluster cluster(3);
  Producer p1(cluster, 1), p2(cluster, 2), p3(cluster, 3);
  for (int i = 0; i < 4; ++i) {
    p1.send("tcp_conn_time", payload(8), i);
    p2.send("tcp_conn_time", payload(8), i);
    p3.send("tcp_conn_time", payload(8), i);
  }
  Consumer consumer(cluster, "storm");
  EXPECT_EQ(consumer.poll("tcp_conn_time", 100).size(), 12u);
}

}  // namespace
}  // namespace netalytics::mq
