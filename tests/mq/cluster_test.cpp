#include "mq/cluster.hpp"

#include <gtest/gtest.h>

namespace netalytics::mq {
namespace {

Message make_msg(const std::string& topic, std::uint64_t key) {
  Message m;
  m.topic = topic;
  m.key = key;
  m.payload = std::vector<std::byte>(8, std::byte{1});
  return m;
}

TEST(Cluster, RoutesByKeyAcrossBrokers) {
  Cluster cluster(4);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(cluster.produce(make_msg("t", k), 0), ProduceStatus::ok);
  }
  // All brokers should hold something (100 keys over 4 brokers).
  int nonempty = 0;
  for (std::size_t b = 0; b < cluster.broker_count(); ++b) {
    nonempty += cluster.broker(b).depth("t") > 0;
  }
  EXPECT_EQ(nonempty, 4);
  EXPECT_EQ(cluster.depth("t"), 100u);
}

TEST(Cluster, SameKeyAlwaysSameBroker) {
  Cluster cluster(4);
  for (int i = 0; i < 10; ++i) cluster.produce(make_msg("t", 42), 0);
  int holders = 0;
  for (std::size_t b = 0; b < cluster.broker_count(); ++b) {
    holders += cluster.broker(b).depth("t") > 0;
  }
  EXPECT_EQ(holders, 1);  // ordering preserved for one producer
}

TEST(Cluster, PollGathersFromAllBrokers) {
  Cluster cluster(3);
  for (std::uint64_t k = 0; k < 30; ++k) cluster.produce(make_msg("t", k), 0);
  const auto msgs = cluster.poll("g", "t", 100);
  EXPECT_EQ(msgs.size(), 30u);
  EXPECT_TRUE(cluster.poll("g", "t", 100).empty());
}

TEST(Cluster, PollRespectsMaxAcrossBrokers) {
  Cluster cluster(3);
  for (std::uint64_t k = 0; k < 30; ++k) cluster.produce(make_msg("t", k), 0);
  EXPECT_EQ(cluster.poll("g", "t", 7).size(), 7u);
}

TEST(Cluster, ZeroBrokersClampedToOne) {
  Cluster cluster(0);
  EXPECT_EQ(cluster.broker_count(), 1u);
  EXPECT_EQ(cluster.produce(make_msg("t", 1), 0), ProduceStatus::ok);
}

TEST(Cluster, AggregateStatsSumBrokers) {
  Cluster cluster(2);
  for (std::uint64_t k = 0; k < 10; ++k) cluster.produce(make_msg("t", k), 0);
  cluster.poll("g", "t", 4);
  const auto s = cluster.aggregate_stats();
  EXPECT_EQ(s.produced, 10u);
  EXPECT_EQ(s.consumed, 4u);
  EXPECT_EQ(s.bytes_in, 80u);
}

TEST(Cluster, OccupancyIsWorstCase) {
  BrokerConfig cfg;
  cfg.partition_capacity = 10;
  Cluster cluster(2, cfg);
  // Push 6 messages with one key -> all on one broker.
  for (int i = 0; i < 6; ++i) cluster.produce(make_msg("t", 7), 0);
  EXPECT_NEAR(cluster.occupancy("t"), 0.6, 1e-9);
}

}  // namespace
}  // namespace netalytics::mq
